// Injected-fault framework: the simulated memory-safety bugs of the seven
// dialects.
//
// Real DBMS function bugs are *missing validations*: a boundary argument
// reaches code that assumed it could not occur. We model each Table 4 bug as
// a BugSpec — pure data: which function, which boundary condition (a trigger
// predicate over the evaluated arguments and evaluation context), which crash
// type it would have caused, which paper pattern constructs it. The engine
// consults the FaultEngine *before* its own argument validation (that is
// exactly what "missing check" means); a triggered spec surfaces as a
// simulated crash in the statement result instead of real undefined
// behaviour, keeping the harness testable.
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sqlvalue/value.h"
#include "src/util/status.h"

namespace soft {

// Crash taxonomy of Table 4.
enum class CrashType {
  kNullPointerDereference,
  kSegmentationViolation,
  kUseAfterFree,
  kHeapBufferOverflow,
  kGlobalBufferOverflow,
  kAssertionFailure,
  kStackOverflow,
  kDivideByZero,
};

std::string_view CrashTypeName(CrashType type);        // "NPD", "SEGV", ...
std::string_view CrashTypeLongName(CrashType type);    // "null pointer dereference"

// DBMS processing stage (Finding 1).
enum class Stage { kParse, kOptimize, kExecute };
std::string_view StageName(Stage stage);

// The boundary condition that triggers a bug.
enum class TriggerKind {
  kArgIsStar,                // argument is the '*' literal
  kArgIsNull,                // argument is NULL (reaching a non-null path)
  kArgEmptyString,           // argument is ''
  kDecimalDigitsAtLeast,     // DECIMAL argument with >= threshold total digits
  kDecimalFractionAtLeast,   // DECIMAL argument with >= threshold fraction digits
  kIntAtLeast,               // integer argument >= threshold
  kIntAtMost,                // integer argument <= threshold (negative extremes)
  kStringLengthAtLeast,      // string/blob argument with >= threshold bytes
  kJsonDepthAtLeast,         // string argument whose JSON nesting >= threshold
  kArgTypeIs,                // argument has TypeKind param_type (ROW, BLOB, ...)
  kBlobNotGeometry,          // BLOB argument that fails geometry decoding
  kStringContains,           // string argument contains param_text
  kCallDepthAtLeast,         // nested function-call depth >= threshold
  kArgCountAtLeast,          // invocation with >= threshold arguments
  kDistinctFlag,             // aggregate invoked with DISTINCT
  kDistinctAndAllArgsString, // DISTINCT aggregate whose args are all strings
                             // (the CVE-2023-5868 unknown-type shape)
  kCastTargetIs,             // cast-layer bug: cast to param_type
  kAlways,                   // unconditional for the spec's function+stage
};

struct BugSpec {
  int id = 0;                       // stable identifier (BUG-<dbms>-<n>)
  std::string dbms;                 // dialect name, lower-case
  std::string function;             // upper-case; "CAST" for cast-layer bugs
  std::string function_type;        // Figure 1 category label ("string", ...)
  CrashType crash = CrashType::kSegmentationViolation;
  std::string pattern;              // paper pattern credited, e.g. "P1.2"
  Stage stage = Stage::kExecute;

  TriggerKind trigger = TriggerKind::kAlways;
  int arg_index = -1;               // -1: any argument position
  int64_t threshold = 0;
  TypeKind param_type = TypeKind::kNull;
  std::string param_text;

  std::string description;          // one-line account, used in bug reports
};

// How a wrong-result (logic) bug perturbs a function's return value. Unlike
// a CrashType there is no signal and no error status: the statement succeeds
// and simply returns a wrong row or value — the bug class only a result-set
// oracle (EET, differential, NoREC, TLP) can observe.
enum class LogicEffect {
  kOffByOne,   // numeric +1, boolean flip, string gains a trailing byte
  kNegate,     // numeric sign flip / boolean negation
  kNullOut,    // result silently replaced by NULL
  kZeroOut,    // result replaced by the type's zero/empty value
  kTruncate,   // string halved / integer halved / double truncated
};

std::string_view LogicEffectName(LogicEffect effect);  // "off_by_one", ...

// Where in the statement a LogicBugSpec applies. The scopes are chosen so
// each maps onto a distinct detection channel: an EET rewrite perturbs call
// depth and argument const-ness, the WHERE scope is what NoREC's projection
// rewrite escapes, and kAnyCall is only observable differentially.
enum class LogicScope {
  kAnyCall,         // every evaluation of the function
  kTopLevelCall,    // only outermost calls (call depth 1) — an EET
                    // COALESCE shell pushes the call to depth 2 and evades it
  kConstArgs,       // only when every argument expression is constant — an
                    // EET identity chain over an argument evades it
  kWherePredicate,  // only while evaluating a WHERE predicate — NoREC's
                    // projection rewrite and the differential oracle see it
};

std::string_view LogicScopeName(LogicScope scope);  // "any_call", ...

// A seeded wrong-result bug: pure data, exactly like BugSpec, but firing
// perturbs the function's (successful) return value instead of raising a
// crash. The trigger fields mirror BugSpec so the same boundary-argument
// matching applies.
struct LogicBugSpec {
  int id = 0;                       // stable identifier (LBUG-<dbms>-<n>)
  std::string dbms;
  std::string function;             // upper-case
  std::string function_type;
  LogicEffect effect = LogicEffect::kOffByOne;
  LogicScope scope = LogicScope::kAnyCall;
  std::string pattern;              // paper pattern credited, e.g. "L1"

  TriggerKind trigger = TriggerKind::kAlways;
  int arg_index = -1;
  int64_t threshold = 0;
  TypeKind param_type = TypeKind::kNull;
  std::string param_text;

  std::string description;
};

// What the evaluator records when a LogicBugSpec fires. Recording is silent
// — the statement still succeeds — and exists only so campaigns can verify
// oracle verdicts against injected ground truth (and flag divergences with
// no recorded hit as oracle false positives).
struct LogicBugInfo {
  int bug_id = 0;
  std::string dbms;
  std::string function;
  LogicEffect effect = LogicEffect::kOffByOne;
  LogicScope scope = LogicScope::kAnyCall;
  std::string pattern;
  std::string description;

  std::string Summary() const;

  bool operator==(const LogicBugInfo&) const = default;
};

// Applies a LogicEffect to a successfully computed value. Total and
// deterministic; kinds an effect cannot meaningfully perturb become NULL.
Value ApplyLogicEffect(LogicEffect effect, const Value& v);

// What the harness observes when a spec fires.
struct CrashInfo {
  int bug_id = 0;
  std::string dbms;
  std::string function;
  CrashType crash = CrashType::kSegmentationViolation;
  Stage stage = Stage::kExecute;
  std::string pattern;
  std::string description;

  std::string Summary() const;

  bool operator==(const CrashInfo&) const = default;
};

// How a triggered BugSpec is realized (docs/ROBUSTNESS.md).
enum class CrashRealism {
  // The fault surfaces as a kCrash StatementResult in-process — the default,
  // and the mode every deterministic comparison runs in.
  kSimulated,
  // The fault raises the *actual* signal for its CrashType (SIGSEGV for the
  // memory errors, SIGABRT for assertion failures, SIGFPE for divide-by-zero,
  // real stack exhaustion for kStackOverflow), killing the process. Only
  // meaningful inside a forked worker (src/soft/worker.h) whose supervisor
  // decodes the death back into the same CrashInfo.
  kReal,
};

// Per-database crash-realization policy. In kReal mode the first
// `simulate_first` fault firings still take the simulated path — that is how
// a restarted worker deterministically replays past its already-confirmed
// crashes — and `announce` (when set) is invoked with the CrashInfo
// immediately before the signal is raised, so the supervisor learns the
// crash identity from the pipe rather than from the signal number alone.
struct CrashRealismPolicy {
  CrashRealism mode = CrashRealism::kSimulated;
  int simulate_first = 0;
  // Arm a SIGALRM hard backstop around each statement (worker children only;
  // see Database::Execute). The itimer fires well after the cooperative
  // watchdog deadline, so it only triggers when cooperation failed.
  bool alarm_backstop = false;
  std::function<void(const CrashInfo&)> announce;
};

// Signal the kernel would deliver for a CrashType (SIGSEGV/SIGABRT/SIGFPE).
int ExpectedSignalFor(CrashType type);

// Raises the real signal for `type` after resetting its handler to SIG_DFL:
// genuine null/wild dereferences for the pointer bugs, abort() for assertion
// failures, a volatile division by zero for SIGFPE, and actual stack
// exhaustion (with an alternate signal stack installed so sanitizer handlers
// can still report) for kStackOverflow. Never returns.
[[noreturn]] void RaiseRealCrashSignal(CrashType type);

class FaultEngine {
 public:
  void AddBug(BugSpec spec);
  size_t bug_count() const { return total_bugs_; }
  const std::vector<BugSpec>& AllBugs() const { return all_; }

  // Consulted by the evaluator before a function validates its arguments.
  // `distinct` is the aggregate-DISTINCT flag. Returns the triggered spec.
  std::optional<CrashInfo> CheckFunction(std::string_view function, const ValueList& args,
                                         int call_depth, bool distinct, Stage stage) const;

  // Consulted by the cast matrix wrapper for cast-layer bugs ("CAST" specs).
  std::optional<CrashInfo> CheckCast(TypeKind target, const Value& input,
                                     Stage stage) const;

  // Wrong-result (logic) bug corpus. Specs are seeded unconditionally by the
  // dialect constructors but only consulted when the owning Database has
  // logic faults enabled — the crash path and every existing campaign are
  // untouched by default.
  void AddLogicBug(LogicBugSpec spec);
  size_t logic_bug_count() const { return all_logic_.size(); }
  const std::vector<LogicBugSpec>& AllLogicBugs() const { return all_logic_; }
  bool HasLogicBugs(std::string_view function) const;

  // Consulted by the evaluator after a function call succeeds. `const_args`
  // is true when every argument *expression* was constant; `in_where` while
  // evaluating a WHERE predicate. Returns the first matching spec.
  std::optional<LogicBugInfo> CheckLogicFunction(std::string_view function,
                                                 const ValueList& args, int call_depth,
                                                 bool const_args, bool in_where) const;

 private:
  std::unordered_map<std::string, std::vector<BugSpec>> by_function_;
  std::vector<BugSpec> all_;
  size_t total_bugs_ = 0;
  std::unordered_map<std::string, std::vector<LogicBugSpec>> logic_by_function_;
  std::vector<LogicBugSpec> all_logic_;
};

}  // namespace soft

#endif  // SRC_FAULT_FAULT_H_
