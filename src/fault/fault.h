// Injected-fault framework: the simulated memory-safety bugs of the seven
// dialects.
//
// Real DBMS function bugs are *missing validations*: a boundary argument
// reaches code that assumed it could not occur. We model each Table 4 bug as
// a BugSpec — pure data: which function, which boundary condition (a trigger
// predicate over the evaluated arguments and evaluation context), which crash
// type it would have caused, which paper pattern constructs it. The engine
// consults the FaultEngine *before* its own argument validation (that is
// exactly what "missing check" means); a triggered spec surfaces as a
// simulated crash in the statement result instead of real undefined
// behaviour, keeping the harness testable.
#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/sqlvalue/value.h"
#include "src/util/status.h"

namespace soft {

// Crash taxonomy of Table 4.
enum class CrashType {
  kNullPointerDereference,
  kSegmentationViolation,
  kUseAfterFree,
  kHeapBufferOverflow,
  kGlobalBufferOverflow,
  kAssertionFailure,
  kStackOverflow,
  kDivideByZero,
};

std::string_view CrashTypeName(CrashType type);        // "NPD", "SEGV", ...
std::string_view CrashTypeLongName(CrashType type);    // "null pointer dereference"

// DBMS processing stage (Finding 1).
enum class Stage { kParse, kOptimize, kExecute };
std::string_view StageName(Stage stage);

// The boundary condition that triggers a bug.
enum class TriggerKind {
  kArgIsStar,                // argument is the '*' literal
  kArgIsNull,                // argument is NULL (reaching a non-null path)
  kArgEmptyString,           // argument is ''
  kDecimalDigitsAtLeast,     // DECIMAL argument with >= threshold total digits
  kDecimalFractionAtLeast,   // DECIMAL argument with >= threshold fraction digits
  kIntAtLeast,               // integer argument >= threshold
  kIntAtMost,                // integer argument <= threshold (negative extremes)
  kStringLengthAtLeast,      // string/blob argument with >= threshold bytes
  kJsonDepthAtLeast,         // string argument whose JSON nesting >= threshold
  kArgTypeIs,                // argument has TypeKind param_type (ROW, BLOB, ...)
  kBlobNotGeometry,          // BLOB argument that fails geometry decoding
  kStringContains,           // string argument contains param_text
  kCallDepthAtLeast,         // nested function-call depth >= threshold
  kArgCountAtLeast,          // invocation with >= threshold arguments
  kDistinctFlag,             // aggregate invoked with DISTINCT
  kDistinctAndAllArgsString, // DISTINCT aggregate whose args are all strings
                             // (the CVE-2023-5868 unknown-type shape)
  kCastTargetIs,             // cast-layer bug: cast to param_type
  kAlways,                   // unconditional for the spec's function+stage
};

struct BugSpec {
  int id = 0;                       // stable identifier (BUG-<dbms>-<n>)
  std::string dbms;                 // dialect name, lower-case
  std::string function;             // upper-case; "CAST" for cast-layer bugs
  std::string function_type;        // Figure 1 category label ("string", ...)
  CrashType crash = CrashType::kSegmentationViolation;
  std::string pattern;              // paper pattern credited, e.g. "P1.2"
  Stage stage = Stage::kExecute;

  TriggerKind trigger = TriggerKind::kAlways;
  int arg_index = -1;               // -1: any argument position
  int64_t threshold = 0;
  TypeKind param_type = TypeKind::kNull;
  std::string param_text;

  std::string description;          // one-line account, used in bug reports
};

// What the harness observes when a spec fires.
struct CrashInfo {
  int bug_id = 0;
  std::string dbms;
  std::string function;
  CrashType crash = CrashType::kSegmentationViolation;
  Stage stage = Stage::kExecute;
  std::string pattern;
  std::string description;

  std::string Summary() const;

  bool operator==(const CrashInfo&) const = default;
};

// How a triggered BugSpec is realized (docs/ROBUSTNESS.md).
enum class CrashRealism {
  // The fault surfaces as a kCrash StatementResult in-process — the default,
  // and the mode every deterministic comparison runs in.
  kSimulated,
  // The fault raises the *actual* signal for its CrashType (SIGSEGV for the
  // memory errors, SIGABRT for assertion failures, SIGFPE for divide-by-zero,
  // real stack exhaustion for kStackOverflow), killing the process. Only
  // meaningful inside a forked worker (src/soft/worker.h) whose supervisor
  // decodes the death back into the same CrashInfo.
  kReal,
};

// Per-database crash-realization policy. In kReal mode the first
// `simulate_first` fault firings still take the simulated path — that is how
// a restarted worker deterministically replays past its already-confirmed
// crashes — and `announce` (when set) is invoked with the CrashInfo
// immediately before the signal is raised, so the supervisor learns the
// crash identity from the pipe rather than from the signal number alone.
struct CrashRealismPolicy {
  CrashRealism mode = CrashRealism::kSimulated;
  int simulate_first = 0;
  // Arm a SIGALRM hard backstop around each statement (worker children only;
  // see Database::Execute). The itimer fires well after the cooperative
  // watchdog deadline, so it only triggers when cooperation failed.
  bool alarm_backstop = false;
  std::function<void(const CrashInfo&)> announce;
};

// Signal the kernel would deliver for a CrashType (SIGSEGV/SIGABRT/SIGFPE).
int ExpectedSignalFor(CrashType type);

// Raises the real signal for `type` after resetting its handler to SIG_DFL:
// genuine null/wild dereferences for the pointer bugs, abort() for assertion
// failures, a volatile division by zero for SIGFPE, and actual stack
// exhaustion (with an alternate signal stack installed so sanitizer handlers
// can still report) for kStackOverflow. Never returns.
[[noreturn]] void RaiseRealCrashSignal(CrashType type);

class FaultEngine {
 public:
  void AddBug(BugSpec spec);
  size_t bug_count() const { return total_bugs_; }
  const std::vector<BugSpec>& AllBugs() const { return all_; }

  // Consulted by the evaluator before a function validates its arguments.
  // `distinct` is the aggregate-DISTINCT flag. Returns the triggered spec.
  std::optional<CrashInfo> CheckFunction(std::string_view function, const ValueList& args,
                                         int call_depth, bool distinct, Stage stage) const;

  // Consulted by the cast matrix wrapper for cast-layer bugs ("CAST" specs).
  std::optional<CrashInfo> CheckCast(TypeKind target, const Value& input,
                                     Stage stage) const;

 private:
  static bool TriggerMatches(const BugSpec& spec, const ValueList& args, int call_depth,
                             bool distinct);
  static bool ArgMatches(const BugSpec& spec, const Value& v);

  std::unordered_map<std::string, std::vector<BugSpec>> by_function_;
  std::vector<BugSpec> all_;
  size_t total_bugs_ = 0;
};

}  // namespace soft

#endif  // SRC_FAULT_FAULT_H_
