#include "src/fault/fault.h"

#include <csignal>
#include <cstdint>
#include <cstdlib>

#include "src/sqlvalue/geometry.h"
#include "src/sqlvalue/json.h"
#include "src/util/str_util.h"

namespace soft {

std::string_view CrashTypeName(CrashType type) {
  switch (type) {
    case CrashType::kNullPointerDereference:
      return "NPD";
    case CrashType::kSegmentationViolation:
      return "SEGV";
    case CrashType::kUseAfterFree:
      return "UAF";
    case CrashType::kHeapBufferOverflow:
      return "HBOF";
    case CrashType::kGlobalBufferOverflow:
      return "GBOF";
    case CrashType::kAssertionFailure:
      return "AF";
    case CrashType::kStackOverflow:
      return "SO";
    case CrashType::kDivideByZero:
      return "DBZ";
  }
  return "?";
}

std::string_view CrashTypeLongName(CrashType type) {
  switch (type) {
    case CrashType::kNullPointerDereference:
      return "null pointer dereference";
    case CrashType::kSegmentationViolation:
      return "segmentation violation";
    case CrashType::kUseAfterFree:
      return "use-after-free";
    case CrashType::kHeapBufferOverflow:
      return "heap buffer overflow";
    case CrashType::kGlobalBufferOverflow:
      return "global buffer overflow";
    case CrashType::kAssertionFailure:
      return "assertion failure";
    case CrashType::kStackOverflow:
      return "stack overflow";
    case CrashType::kDivideByZero:
      return "divide-by-zero";
  }
  return "?";
}

int ExpectedSignalFor(CrashType type) {
  switch (type) {
    case CrashType::kAssertionFailure:
      return SIGABRT;
    case CrashType::kDivideByZero:
      return SIGFPE;
    default:
      // The pointer bugs (NPD/SEGV/UAF/HBOF/GBOF) and stack exhaustion all
      // die by SIGSEGV under default dispositions.
      return SIGSEGV;
  }
}

namespace {

// Resets the fatal-signal dispositions sanitizers/harnesses may have
// installed: real-crash mode wants the kernel default (terminate by signal)
// so the supervisor can decode WTERMSIG, even under ASan.
void ResetFatalHandlers() {
  std::signal(SIGSEGV, SIG_DFL);
  std::signal(SIGBUS, SIG_DFL);
  std::signal(SIGABRT, SIG_DFL);
  std::signal(SIGFPE, SIG_DFL);
  std::signal(SIGILL, SIG_DFL);
}

// Real stack exhaustion: recursion with genuine frames. The volatile
// traffic keeps the optimizer from collapsing the recursion, and the
// data-dependent branch keeps -Winfinite-recursion quiet.
__attribute__((noinline)) int ExhaustStack(volatile char* parent) {
  volatile char frame[4096];
  frame[0] = parent == nullptr ? 1 : parent[0];
  if (frame[0] != 0) {
    return frame[0] + ExhaustStack(frame);
  }
  return 0;
}

}  // namespace

void RaiseRealCrashSignal(CrashType type) {
  ResetFatalHandlers();
  switch (type) {
    case CrashType::kNullPointerDereference: {
      volatile int* p = nullptr;
      *p = 1;  // genuine null dereference
      break;
    }
    case CrashType::kSegmentationViolation:
    case CrashType::kUseAfterFree:
    case CrashType::kHeapBufferOverflow:
    case CrashType::kGlobalBufferOverflow:
      // Performing the literal bad access would be undefined behaviour the
      // compiler may legally fold away; what the supervisor observes either
      // way is death by SIGSEGV, so deliver exactly that.
      std::raise(SIGSEGV);
      break;
    case CrashType::kAssertionFailure:
      std::abort();
    case CrashType::kDivideByZero: {
      volatile int zero = 0;
      volatile int out = 1 / zero;
      (void)out;
      std::raise(SIGFPE);  // in case the hardware did not trap the division
      break;
    }
    case CrashType::kStackOverflow: {
      // Cap the exhaustion with an alternate signal stack so any handler a
      // sanitizer reinstates still has room to report instead of
      // double-faulting; under SIG_DFL the guard-page fault kills us.
      static char alt_stack[64 * 1024];
      stack_t ss = {};
      ss.ss_sp = alt_stack;
      ss.ss_size = sizeof(alt_stack);
      sigaltstack(&ss, nullptr);
      ExhaustStack(nullptr);
      std::raise(SIGSEGV);
      break;
    }
  }
  std::abort();  // unreachable under default dispositions; keep [[noreturn]] honest
}

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kOptimize:
      return "optimize";
    case Stage::kExecute:
      return "execute";
  }
  return "?";
}

std::string CrashInfo::Summary() const {
  std::string out = "BUG-";
  out += dbms;
  out += "-";
  out += std::to_string(bug_id);
  out += " [";
  out += CrashTypeName(crash);
  out += "] in ";
  out += function;
  out += " at ";
  out += StageName(stage);
  out += " stage (";
  out += pattern;
  out += "): ";
  out += description;
  return out;
}

void FaultEngine::AddBug(BugSpec spec) {
  spec.function = AsciiUpper(spec.function);
  by_function_[spec.function].push_back(spec);
  all_.push_back(std::move(spec));
  ++total_bugs_;
}

namespace {

CrashInfo MakeCrash(const BugSpec& spec) {
  CrashInfo info;
  info.bug_id = spec.id;
  info.dbms = spec.dbms;
  info.function = spec.function;
  info.crash = spec.crash;
  info.stage = spec.stage;
  info.pattern = spec.pattern;
  info.description = spec.description;
  return info;
}

LogicBugInfo MakeLogicInfo(const LogicBugSpec& spec) {
  LogicBugInfo info;
  info.bug_id = spec.id;
  info.dbms = spec.dbms;
  info.function = spec.function;
  info.effect = spec.effect;
  info.scope = spec.scope;
  info.pattern = spec.pattern;
  info.description = spec.description;
  return info;
}

// The boundary-argument matchers are shared between the crash corpus
// (BugSpec) and the wrong-result corpus (LogicBugSpec): both spec types
// carry the same trigger fields.
template <typename Spec>
bool ArgMatches(const Spec& spec, const Value& v) {
  switch (spec.trigger) {
    case TriggerKind::kArgIsStar:
      return v.is_star();
    case TriggerKind::kArgIsNull:
      return v.is_null();
    case TriggerKind::kArgEmptyString:
      return v.kind() == TypeKind::kString && v.string_value().empty();
    case TriggerKind::kDecimalDigitsAtLeast:
      return v.kind() == TypeKind::kDecimal &&
             v.decimal_value().total_digits() >= spec.threshold;
    case TriggerKind::kDecimalFractionAtLeast:
      return v.kind() == TypeKind::kDecimal &&
             v.decimal_value().fraction_digits() >= spec.threshold;
    case TriggerKind::kIntAtLeast:
      return v.kind() == TypeKind::kInt && v.int_value() >= spec.threshold;
    case TriggerKind::kIntAtMost:
      return v.kind() == TypeKind::kInt && v.int_value() <= spec.threshold;
    case TriggerKind::kStringLengthAtLeast: {
      if (v.kind() == TypeKind::kString) {
        return static_cast<int64_t>(v.string_value().size()) >= spec.threshold;
      }
      if (v.kind() == TypeKind::kBlob) {
        return static_cast<int64_t>(v.blob_value().size()) >= spec.threshold;
      }
      return false;
    }
    case TriggerKind::kJsonDepthAtLeast: {
      if (v.kind() == TypeKind::kString) {
        return ProbeJsonNestingDepth(v.string_value()) >= spec.threshold;
      }
      if (v.kind() == TypeKind::kJson && v.json_value() != nullptr) {
        return v.json_value()->Depth() >= spec.threshold;
      }
      return false;
    }
    case TriggerKind::kArgTypeIs:
      return v.kind() == spec.param_type;
    case TriggerKind::kBlobNotGeometry:
      return v.kind() == TypeKind::kBlob && !GeometryFromBinary(v.blob_value()).ok();
    case TriggerKind::kStringContains:
      return v.kind() == TypeKind::kString &&
             v.string_value().find(spec.param_text) != std::string::npos;
    default:
      return false;
  }
}

template <typename Spec>
bool TriggerMatches(const Spec& spec, const ValueList& args, int call_depth,
                    bool distinct) {
  switch (spec.trigger) {
    case TriggerKind::kAlways:
      return true;
    case TriggerKind::kCallDepthAtLeast:
      return call_depth >= spec.threshold;
    case TriggerKind::kArgCountAtLeast:
      return static_cast<int64_t>(args.size()) >= spec.threshold;
    case TriggerKind::kDistinctFlag:
      return distinct;
    case TriggerKind::kDistinctAndAllArgsString: {
      if (!distinct || args.empty()) {
        return false;
      }
      for (const Value& v : args) {
        if (v.kind() != TypeKind::kString) {
          return false;
        }
      }
      return true;
    }
    case TriggerKind::kCastTargetIs:
      return false;  // cast-layer only
    default:
      break;
  }
  if (spec.arg_index >= 0) {
    if (spec.arg_index >= static_cast<int>(args.size())) {
      return false;
    }
    return ArgMatches(spec, args[static_cast<size_t>(spec.arg_index)]);
  }
  for (const Value& v : args) {
    if (ArgMatches(spec, v)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<CrashInfo> FaultEngine::CheckFunction(std::string_view function,
                                                    const ValueList& args, int call_depth,
                                                    bool distinct, Stage stage) const {
  const auto it = by_function_.find(AsciiUpper(function));
  if (it == by_function_.end()) {
    return std::nullopt;
  }
  for (const BugSpec& spec : it->second) {
    if (spec.stage != stage) {
      continue;
    }
    if (TriggerMatches(spec, args, call_depth, distinct)) {
      return MakeCrash(spec);
    }
  }
  return std::nullopt;
}

std::optional<CrashInfo> FaultEngine::CheckCast(TypeKind target, const Value& input,
                                                Stage stage) const {
  const auto it = by_function_.find("CAST");
  if (it == by_function_.end()) {
    return std::nullopt;
  }
  for (const BugSpec& spec : it->second) {
    if (spec.stage != stage) {
      continue;
    }
    if (spec.trigger == TriggerKind::kCastTargetIs) {
      if (spec.param_type == target &&
          (spec.param_text.empty() ||
           std::string(TypeKindName(input.kind())) == spec.param_text)) {
        return MakeCrash(spec);
      }
      continue;
    }
    if (ArgMatches(spec, input)) {
      return MakeCrash(spec);
    }
  }
  return std::nullopt;
}

std::string_view LogicEffectName(LogicEffect effect) {
  switch (effect) {
    case LogicEffect::kOffByOne:
      return "off_by_one";
    case LogicEffect::kNegate:
      return "negate";
    case LogicEffect::kNullOut:
      return "null_out";
    case LogicEffect::kZeroOut:
      return "zero_out";
    case LogicEffect::kTruncate:
      return "truncate";
  }
  return "?";
}

std::string_view LogicScopeName(LogicScope scope) {
  switch (scope) {
    case LogicScope::kAnyCall:
      return "any_call";
    case LogicScope::kTopLevelCall:
      return "top_level_call";
    case LogicScope::kConstArgs:
      return "const_args";
    case LogicScope::kWherePredicate:
      return "where_predicate";
  }
  return "?";
}

std::string LogicBugInfo::Summary() const {
  std::string out = "LBUG-";
  out += dbms;
  out += "-";
  out += std::to_string(bug_id);
  out += " [";
  out += LogicEffectName(effect);
  out += "/";
  out += LogicScopeName(scope);
  out += "] in ";
  out += function;
  out += " (";
  out += pattern;
  out += "): ";
  out += description;
  return out;
}

Value ApplyLogicEffect(LogicEffect effect, const Value& v) {
  switch (effect) {
    case LogicEffect::kOffByOne:
      switch (v.kind()) {
        case TypeKind::kInt:
          return Value::Int(v.int_value() == INT64_MAX ? INT64_MIN
                                                       : v.int_value() + 1);
        case TypeKind::kDouble:
          return Value::DoubleVal(v.double_value() + 1.0);
        case TypeKind::kBool:
          return Value::Boolean(!v.bool_value());
        case TypeKind::kString:
          return Value::Str(v.string_value() + "?");
        default:
          return Value::Null();
      }
    case LogicEffect::kNegate:
      switch (v.kind()) {
        case TypeKind::kInt:
          return Value::Int(v.int_value() == INT64_MIN ? INT64_MAX
                                                       : -v.int_value());
        case TypeKind::kDouble:
          return Value::DoubleVal(-v.double_value());
        case TypeKind::kBool:
          return Value::Boolean(!v.bool_value());
        default:
          return Value::Null();
      }
    case LogicEffect::kNullOut:
      return Value::Null();
    case LogicEffect::kZeroOut:
      switch (v.kind()) {
        case TypeKind::kInt:
          return Value::Int(0);
        case TypeKind::kDouble:
          return Value::DoubleVal(0.0);
        case TypeKind::kBool:
          return Value::Boolean(false);
        case TypeKind::kString:
          return Value::Str("");
        default:
          return Value::Null();
      }
    case LogicEffect::kTruncate:
      switch (v.kind()) {
        case TypeKind::kString:
          return Value::Str(v.string_value().substr(0, v.string_value().size() / 2));
        case TypeKind::kInt:
          return Value::Int(v.int_value() / 2);
        case TypeKind::kDouble:
          return Value::DoubleVal(static_cast<double>(static_cast<int64_t>(v.double_value())));
        default:
          return Value::Null();
      }
  }
  return Value::Null();
}

void FaultEngine::AddLogicBug(LogicBugSpec spec) {
  spec.function = AsciiUpper(spec.function);
  logic_by_function_[spec.function].push_back(spec);
  all_logic_.push_back(std::move(spec));
}

bool FaultEngine::HasLogicBugs(std::string_view function) const {
  if (logic_by_function_.empty()) {
    return false;
  }
  return logic_by_function_.find(AsciiUpper(function)) != logic_by_function_.end();
}

std::optional<LogicBugInfo> FaultEngine::CheckLogicFunction(
    std::string_view function, const ValueList& args, int call_depth, bool const_args,
    bool in_where) const {
  const auto it = logic_by_function_.find(AsciiUpper(function));
  if (it == logic_by_function_.end()) {
    return std::nullopt;
  }
  for (const LogicBugSpec& spec : it->second) {
    switch (spec.scope) {
      case LogicScope::kAnyCall:
        break;
      case LogicScope::kTopLevelCall:
        if (call_depth != 1) {
          continue;
        }
        break;
      case LogicScope::kConstArgs:
        if (!const_args) {
          continue;
        }
        break;
      case LogicScope::kWherePredicate:
        if (!in_where) {
          continue;
        }
        break;
    }
    if (TriggerMatches(spec, args, call_depth, /*distinct=*/false)) {
      return MakeLogicInfo(spec);
    }
  }
  return std::nullopt;
}

}  // namespace soft
