// ClickHouse dialect: the largest function catalog of the seven (Table 5
// shows SOFT triggering 711 functions there, far more than elsewhere). On
// top of the full builtin set it registers camel-case-style converter
// aliases (TOSTRING, TOINT64, ...) mirroring ClickHouse's to* family. Its 6
// injected bugs reproduce the ClickHouse rows of Table 4, headlined by the
// toDecimalString null-pointer dereference of Listing 1.
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

// Registers a converter alias NAME(x) == CAST(x AS kind).
void AddConverterAlias(FunctionRegistry& registry, const char* name, TypeKind kind,
                       const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kCasting;
  def.min_args = 1;
  def.max_args = 1;
  def.scalar = [kind](FunctionContext& ctx, const ValueList& args) -> Result<Value> {
    return CastValue(args[0], kind, ctx.cast_options());
  };
  def.doc = std::string("ClickHouse-style converter to ") + std::string(TypeKindName(kind));
  def.example = example;
  registry.Register(std::move(def));
}

}  // namespace

std::unique_ptr<Database> MakeClickhouseDialect() {
  EngineConfig config;
  config.name = "clickhouse";
  config.cast_options.strict = false;
  auto db = std::make_unique<Database>(config);

  FunctionRegistry& r = db->registry();
  // The to* converter family (a representative slice of ClickHouse's).
  AddConverterAlias(r, "TOSTRING", TypeKind::kString, "TOSTRING(1.5)");
  AddConverterAlias(r, "TOINT8", TypeKind::kInt, "TOINT8('1')");
  AddConverterAlias(r, "TOINT16", TypeKind::kInt, "TOINT16('1')");
  AddConverterAlias(r, "TOINT32", TypeKind::kInt, "TOINT32('1')");
  AddConverterAlias(r, "TOINT64", TypeKind::kInt, "TOINT64('1')");
  AddConverterAlias(r, "TOUINT8", TypeKind::kInt, "TOUINT8('1')");
  AddConverterAlias(r, "TOUINT16", TypeKind::kInt, "TOUINT16('1')");
  AddConverterAlias(r, "TOUINT32", TypeKind::kInt, "TOUINT32('1')");
  AddConverterAlias(r, "TOUINT64", TypeKind::kInt, "TOUINT64('1')");
  AddConverterAlias(r, "TOFLOAT32", TypeKind::kDouble, "TOFLOAT32('1.5')");
  AddConverterAlias(r, "TOFLOAT64", TypeKind::kDouble, "TOFLOAT64('1.5')");
  AddConverterAlias(r, "TODECIMAL32", TypeKind::kDecimal, "TODECIMAL32('1.5')");
  AddConverterAlias(r, "TODECIMAL64", TypeKind::kDecimal, "TODECIMAL64('1.5')");
  AddConverterAlias(r, "TODECIMAL128", TypeKind::kDecimal, "TODECIMAL128('1.5')");
  AddConverterAlias(r, "TODECIMAL256", TypeKind::kDecimal, "TODECIMAL256('1.5')");
  AddConverterAlias(r, "TODATE", TypeKind::kDate, "TODATE('2024-06-15')");
  AddConverterAlias(r, "TODATETIME", TypeKind::kDateTime,
                    "TODATETIME('2024-06-15 10:00:00')");
  AddConverterAlias(r, "TOBOOL", TypeKind::kBool, "TOBOOL('true')");
  AddConverterAlias(r, "TOJSON", TypeKind::kJson, "TOJSON('[1,2]')");
  AddConverterAlias(r, "TOBLOB", TypeKind::kBlob, "TOBLOB('ab')");

  BugAdder bugs(*db, "clickhouse");
  // --- aggregate (1): NPD (P1.2) ---------------------------------------------
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "SUM(*) binds the star item to a null column pointer"});
  // --- array (1): NPD (P2.3) ----------------------------------------------------
  bugs.Add({.function = "ARRAY_CONCAT",
            .function_type = "array",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "ARRAY_CONCAT takes the column pointer of a JSON document "
                           "argument borrowed from JSON functions"});
  // --- date (1): NPD (P1.2) --------------------------------------------------------
  bugs.Add({.function = "DATE_ADD",
            .function_type = "date",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 100000000000LL,
            .description = "DATE_ADD folds 1e11-day offsets through a null LUT page"});
  // --- string (3): NPD (P1.2), SEGV (P2.3), SEGV (P3.1) ------------------------------
  bugs.Add({.function = "TODECIMALSTRING",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .arg_index = 1,
            .description = "toDecimalString dereferences the precision column for a "
                           "'*' argument (Listing 1; ClickHouse issue #52407)"});
  bugs.Add({.function = "SUBSTR",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDate,
            .description = "SUBSTR slices the packed representation of DATE items "
                           "passed from date functions"});
  bugs.Add({.function = "CONCAT",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .threshold = 500000,
            .description = "CONCAT's SIMD copy reads past the source chunk for "
                           "500 KB operands built by nested REPEATs"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "clickhouse");
  logic.Add({.function = "REVERSE",
             .function_type = "string",
             .effect = LogicEffect::kTruncate,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant arguments send REVERSE through a block copy that "
                            "drops the tail half"});
  logic.Add({.function = "LENGTH",
             .function_type = "string",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level LENGTH counts the terminator byte"});
  logic.Add({.function = "FLOOR",
             .function_type = "math",
             .effect = LogicEffect::kZeroOut,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "FLOOR inside a WHERE predicate collapses to zero"});
  return db;
}

}  // namespace soft
