// MariaDB dialect: MySQL-flavoured with dynamic columns (COLUMN_CREATE /
// COLUMN_JSON) and sequences. 24 injected bugs reproduce its Table 4 rows
// (4 aggregate, 1 condition, 3 date, 6 json, 1 sequence, 5 spatial, 4 string),
// including the paper's Case 5 (JSON_LENGTH over REPEAT('[1,', 100)) and
// Case 6 (ST_ASTEXT(BOUNDARY(INET6_ATON(...)))).
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakeMariadbDialect() {
  EngineConfig config;
  config.name = "mariadb";
  config.cast_options.strict = false;
  auto db = std::make_unique<Database>(config);

  RemoveFunctions(db->registry(),
                  {"ARRAY_LENGTH", "ELEMENT_AT", "ARRAY_CONCAT", "ARRAY_APPEND",
                   "ARRAY_CONTAINS", "ARRAY_SLICE", "ARRAY_REVERSE", "ARRAY_POSITION",
                   "MAP", "MAP_KEYS", "MAP_VALUES", "MAP_EXTRACT", "CARDINALITY",
                   "SPLIT_PART", "TO_NUMBER", "TODECIMALSTRING", "CONTAINS", "INITCAP",
                   "TRANSLATE", "CHR", "XML_VALID", "XML_ROOT", "XML_ELEMENT_COUNT",
                   "JSONB_OBJECT_AGG", "BOOL_AND", "BOOL_OR", "MEDIAN", "STRING_AGG",
                   "DECODE", "NVL", "NVL2", "ADD_MONTHS", "LOG2", "TO_BASE64",
                   "FROM_BASE64", "REGEXP_REPLACE", "SOUNDEX", "TRANSLATE", "ATAN2",
                   "LOG10", "CRC32", "SYS_STAT", "TO_TIMESTAMP", "TO_JSON"});

  BugAdder bugs(*db, "mariadb");
  // --- aggregate (4): NPD/SEGV/SEGV (P1.2 x3), SO (P2.2) ----------------------
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "SUM(*) resolves the star item to a null field pointer"});
  bugs.Add({.function = "STDDEV",
            .function_type = "aggregate",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .threshold = 1000000000000000LL,
            .description = "STDDEV squares 1e15-scale integers into a mis-addressed "
                           "overflow staging slot"});
  bugs.Add({.function = "VARIANCE",
            .function_type = "aggregate",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "VARIANCE parses '' as a number via a NULL end pointer"});
  bugs.Add({.function = "GROUP_CONCAT",
            .function_type = "aggregate",
            .crash = CrashType::kStackOverflow,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDateTime,
            .description = "GROUP_CONCAT recursively re-renders DATETIME items "
                           "unified by a UNION branch"});
  // --- condition (1): NPD (P2.2) ---------------------------------------------
  bugs.Add({.function = "IFNULL",
            .function_type = "condition",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDateTime,
            .description = "IFNULL probes the maybe-null flag of implicitly cast "
                           "DATETIME items before their field is materialized"});
  // --- date (3): NPD (P1.2), NPD (P2.3), GBOF (P3.3) --------------------------
  bugs.Add({.function = "MAKEDATE",
            .function_type = "date",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000000000LL,
            .description = "MAKEDATE normalizes hugely negative day-of-year values "
                           "through a NULL interval cache"});
  bugs.Add({.function = "DATE_FORMAT",
            .function_type = "date",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 1,
            .param_text = "$[",
            .description = "DATE_FORMAT treats a JSON-path format string borrowed "
                           "from JSON functions as a locale handle"});
  bugs.Add({.function = "DATEDIFF",
            .function_type = "date",
            .crash = CrashType::kGlobalBufferOverflow,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kBlob,
            .description = "DATEDIFF unpacks binary arguments into a fixed global "
                           "temporal scratch array"});
  // --- json (6) ----------------------------------------------------------------
  bugs.Add({.function = "JSON_LENGTH",
            .function_type = "json",
            .crash = CrashType::kGlobalBufferOverflow,
            .pattern = "P3.1",
            .trigger = TriggerKind::kJsonDepthAtLeast,
            .arg_index = 0,
            .threshold = 80,
            .description = "JSON_LENGTH tracks nesting in a fixed 80-slot global "
                           "stack (Case 5: REPEAT('[1,', 100))"});
  bugs.Add({.function = "JSON_EXTRACT",
            .function_type = "json",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 5000,
            .description = "JSON_EXTRACT's path automaton overruns its position map "
                           "on multi-kilobyte documents"});
  bugs.Add({.function = "JSON_VALID",
            .function_type = "json",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.4",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 0,
            .param_text = "{{{{{{{{",
            .description = "JSON_VALID's error recovery dereferences a NULL frame "
                           "after eight unmatched '{' openers"});
  bugs.Add({.function = "JSON_OBJECT",
            .function_type = "json",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.4",
            .trigger = TriggerKind::kStringContains,
            .param_text = "[[[[[[[[",
            .description = "JSON_OBJECT asserts that key strings contain no nested "
                           "array openers"});
  bugs.Add({.function = "COLUMN_CREATE",
            .function_type = "json",
            .crash = CrashType::kGlobalBufferOverflow,
            .pattern = "P2.3",
            .trigger = TriggerKind::kDecimalDigitsAtLeast,
            .threshold = 41,
            .description = "dynamic-column packing miscomputes decimal2string length "
                           "past 40 digits (MDEV-8407 analogue)"});
  bugs.Add({.function = "JSON_KEYS",
            .function_type = "json",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "JSON_KEYS casts geometry items to its document handle "
                           "without a type check"});
  // --- sequence (1): NPD (P3.3) --------------------------------------------------
  bugs.Add({.function = "NEXTVAL",
            .function_type = "sequence",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "NEXTVAL looks up the sequence by a JSON document name "
                           "and dereferences the missing schema entry"});
  // --- spatial (5) -----------------------------------------------------------------
  bugs.Add({.function = "ST_ASTEXT",
            .function_type = "spatial",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kBlobNotGeometry,
            .description = "ST_ASTEXT renders undecodable blobs (e.g. INET6_ATON "
                           "output) via a NULL geometry header (Case 6 analogue)"});
  bugs.Add({.function = "BOUNDARY",
            .function_type = "spatial",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kBlobNotGeometry,
            .description = "BOUNDARY walks the ring table of a blob that never "
                           "decoded into a polygon"});
  bugs.Add({.function = "ST_X",
            .function_type = "spatial",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "ST_X reads coordinates from the unvalidated binary "
                           "payload pointer"});
  bugs.Add({.function = "ST_NUMPOINTS",
            .function_type = "spatial",
            .crash = CrashType::kStackOverflow,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDate,
            .description = "ST_NUMPOINTS retries temporal arguments through a "
                           "mutually recursive conversion path"});
  bugs.Add({.function = "ST_LENGTH",
            .function_type = "spatial",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "ST_LENGTH measures a JSON argument's point array using "
                           "the document's member count"});
  // --- string (4) ---------------------------------------------------------------------
  bugs.Add({.function = "FORMAT",
            .function_type = "string",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 32,
            .description = "FORMAT switches to scientific notation past 31 fraction "
                           "digits and writes past the short result "
                           "(MDEV-23415 analogue)"});
  bugs.Add({.function = "SUBSTR",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000000LL,
            .description = "SUBSTR rewinds hugely negative start offsets through a "
                           "NULL charset iterator"});
  bugs.Add({.function = "REPEAT",
            .function_type = "string",
            .crash = CrashType::kStackOverflow,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 100000,
            .description = "REPEAT re-enters its own copy loop for 100 KB subjects "
                           "built by nested REPEATs"});
  bugs.Add({.function = "REVERSE",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "REVERSE swaps bytes of the geometry header instead of a "
                           "string payload"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "mariadb");
  logic.Add({.function = "LOWER",
             .function_type = "string",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant-folded LOWER appends a stray byte from an "
                            "off-by-one copy"});
  logic.Add({.function = "SQRT",
             .function_type = "math",
             .effect = LogicEffect::kZeroOut,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level SQRT zeroes its result when no enclosing call "
                            "consumes it"});
  logic.Add({.function = "SIGN",
             .function_type = "math",
             .effect = LogicEffect::kNegate,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "SIGN evaluated inside a WHERE predicate returns the "
                            "negated sign"});
  return db;
}

}  // namespace soft
