// The seven simulated DBMS dialects of the evaluation (Section 7.2):
// PostgreSQL, MySQL, MariaDB, ClickHouse, MonetDB, DuckDB, Virtuoso.
//
// A dialect is a Database configured with (a) a pruned/extended function
// catalog, (b) type-system strictness (PostgreSQL strict, the rest lenient —
// the paper's explanation for PostgreSQL's low bug count), and (c) its
// injected fault corpus reproducing its Table 4 rows bug-for-bug: the same
// counts per function type, crash type, and boundary-value-generation
// pattern.
#ifndef SRC_DIALECTS_DIALECTS_H_
#define SRC_DIALECTS_DIALECTS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/database.h"

namespace soft {

std::unique_ptr<Database> MakePostgresqlDialect();
std::unique_ptr<Database> MakeMysqlDialect();
std::unique_ptr<Database> MakeMariadbDialect();
std::unique_ptr<Database> MakeClickhouseDialect();
std::unique_ptr<Database> MakeMonetdbDialect();
std::unique_ptr<Database> MakeDuckdbDialect();
std::unique_ptr<Database> MakeVirtuosoDialect();

// Factory by name ("postgresql", "mysql", ...); nullptr for unknown names.
std::unique_ptr<Database> MakeDialect(const std::string& name);

// The seven dialect names in the paper's order.
const std::vector<std::string>& AllDialectNames();

// Expected Table 4 bug count per dialect (PostgreSQL: 1, MySQL: 16, ...).
int ExpectedBugCount(const std::string& dialect);

// Builds a SQL statement that triggers `spec` against `db`, derived from the
// target function's registry example with the boundary argument spliced in.
// Used by the bug-oracle tests, the Table 4 bench, and the bug reporter.
Result<std::string> BuildPocSql(const Database& db, const BugSpec& spec);

// Size of the seeded wrong-result corpus per dialect (3 LogicBugSpecs each;
// ids start at 501).
int ExpectedLogicBugCount(const std::string& dialect);

// Statements that set up the table the WHERE-scope logic PoCs query. Logic
// campaigns run these before arming logic faults, and differential siblings
// replay them so every engine sees the same catalog.
const std::vector<std::string>& LogicOraclePrerequisites();

// Builds a SELECT that reaches `spec`'s scope on `db`: the host function's
// registry example for argument/call scopes, a COUNT over the prerequisite
// table for WHERE-predicate scopes.
Result<std::string> BuildLogicPocSql(const Database& db, const LogicBugSpec& spec);

}  // namespace soft

#endif  // SRC_DIALECTS_DIALECTS_H_
