// MySQL dialect: lenient casts, rich string/date/XML surface, 16 injected
// bugs reproducing the MySQL rows of Table 4 (6 aggregate, 1 date, 1 spatial,
// 2 string, 5 system, 1 xml).
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakeMysqlDialect() {
  EngineConfig config;
  config.name = "mysql";
  config.cast_options.strict = false;
  auto db = std::make_unique<Database>(config);

  RemoveFunctions(db->registry(),
                  {"ARRAY_LENGTH", "ELEMENT_AT", "ARRAY_CONCAT", "ARRAY_APPEND",
                   "ARRAY_CONTAINS", "ARRAY_SLICE", "ARRAY_REVERSE", "ARRAY_POSITION",
                   "MAP", "MAP_KEYS", "MAP_VALUES", "MAP_EXTRACT", "CARDINALITY",
                   "NEXTVAL", "LASTVAL", "SETVAL", "SPLIT_PART", "TO_NUMBER",
                   "TODECIMALSTRING", "CONTAINS", "INITCAP", "TRANSLATE", "CHR",
                   "XML_VALID", "XML_ROOT", "XML_ELEMENT_COUNT", "JSONB_OBJECT_AGG",
                   "BOOL_AND", "BOOL_OR", "MEDIAN", "STRING_AGG", "SYS_STAT",
                   "SPLIT_PART", "DECODE", "NVL", "NVL2", "ADD_MONTHS", "LOG2"});

  BugAdder bugs(*db, "mysql");
  // --- aggregate (6): NPD x4 (P3.3), SEGV (P2.1), GBOF (P1.3) --------------
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "SUM dereferences the numeric payload slot of a geometry "
                           "argument produced by a nested spatial function"});
  bugs.Add({.function = "AVG",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "AVG assumes a decimal item handle for binary arguments "
                           "coming from nested codec functions"});
  bugs.Add({.function = "MAX",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "MAX's comparator fetches a collation handle that is NULL "
                           "for JSON documents returned by nested JSON functions"});
  bugs.Add({.function = "GROUP_CONCAT",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "GROUP_CONCAT stringifies geometry items through an "
                           "uninitialized conversion buffer"});
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDate,
            .description = "SUM over explicitly cast DATE values indexes the numeric "
                           "accumulator array with the temporal type tag"});
  bugs.Add({.function = "AVG",
            .function_type = "aggregate",
            .crash = CrashType::kGlobalBufferOverflow,
            .pattern = "P1.3",
            .trigger = TriggerKind::kDecimalDigitsAtLeast,
            .threshold = 60,
            .description = "AVG writes a 60+-digit exact decimal into a fixed "
                           "global digit buffer (Listing 6 analogue)"});
  // --- date (1): SEGV (P3.3) -----------------------------------------------
  bugs.Add({.function = "DATEDIFF",
            .function_type = "date",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kBlob,
            .description = "DATEDIFF interprets a binary argument from a nested codec "
                           "function as a packed temporal value"});
  // --- spatial (1): UAF (P3.3) ---------------------------------------------
  bugs.Add({.function = "ST_ASTEXT",
            .function_type = "spatial",
            .crash = CrashType::kUseAfterFree,
            .pattern = "P3.3",
            .trigger = TriggerKind::kBlobNotGeometry,
            .description = "ST_ASTEXT frees the decode scratch buffer on malformed "
                           "geometry blobs and then renders from it"});
  // --- string (2): HBOF x2 (P3.2, P3.3) -------------------------------------
  bugs.Add({.function = "REPLACE",
            .function_type = "string",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "REPLACE sizes its output from the JSON handle instead of "
                           "the serialized document"});
  bugs.Add({.function = "LPAD",
            .function_type = "string",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kBlob,
            .description = "LPAD miscounts pad length for binary subjects produced by "
                           "nested codec functions"});
  // --- system (5): NPD x4 (P3.3), HBOF (P3.2) --------------------------------
  bugs.Add({.function = "CHARSET",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "CHARSET reads the charset pointer of geometry items, "
                           "which is never initialized"});
  bugs.Add({.function = "COLLATION",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDate,
            .description = "COLLATION dereferences the collation slot of temporal "
                           "items produced by nested date functions"});
  bugs.Add({.function = "COERCIBILITY",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "COERCIBILITY walks the collation chain of binary items "
                           "whose head pointer is NULL"});
  bugs.Add({.function = "BENCHMARK",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 1,
            .param_type = TypeKind::kJson,
            .description = "BENCHMARK re-evaluates JSON expression items after their "
                           "document arena was released"});
  bugs.Add({.function = "SLEEP",
            .function_type = "system",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDecimal,
            .description = "SLEEP converts exact-decimal durations through an "
                           "undersized stack rendering of the digit string"});
  // --- xml (1): UAF (P3.2) ---------------------------------------------------
  bugs.Add({.function = "UPDATEXML",
            .function_type = "xml",
            .crash = CrashType::kUseAfterFree,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "UPDATEXML keeps a reference into the temporary string of "
                           "a JSON argument after the wrapper frees it"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "mysql");
  logic.Add({.function = "UPPER",
             .function_type = "string",
             .effect = LogicEffect::kTruncate,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant string literals reach UPPER through a half-length "
                            "fast path"});
  logic.Add({.function = "CEIL",
             .function_type = "math",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level CEIL rounds one unit too far when its result is "
                            "projected directly"});
  logic.Add({.function = "ABS",
             .function_type = "math",
             .effect = LogicEffect::kNullOut,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "ABS inside a WHERE predicate loses its value to a "
                            "NULL-typed register"});
  return db;
}

}  // namespace soft
