// DuckDB dialect: full array/map/JSON surface (its Table 4 bugs concentrate
// there), strict casts (DuckDB rejects malformed text), assertion-heavy
// implementation style (AF dominates its crash mix). 21 injected bugs
// reproduce the DuckDB rows of Table 4 (9 array, 1 date, 3 map, 1 json,
// 2 math, 4 string, 1 system).
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakeDuckdbDialect() {
  EngineConfig config;
  config.name = "duckdb";
  config.cast_options.strict = true;
  auto db = std::make_unique<Database>(config);

  RemoveFunctions(db->registry(),
                  {"UPDATEXML", "EXTRACTVALUE", "XML_VALID", "XML_ROOT",
                   "XML_ELEMENT_COUNT", "ST_GEOMFROMTEXT", "ST_ASTEXT", "ST_ASBINARY",
                   "BOUNDARY", "POINT", "ST_X", "ST_Y", "ST_NUMPOINTS", "ST_LENGTH",
                   "ST_DISTANCE", "ST_EQUALS", "ST_ISVALID", "NEXTVAL", "LASTVAL",
                   "SETVAL", "COLUMN_CREATE", "COLUMN_JSON", "INET6_ATON",
                   "INET6_NTOA", "INET_ATON", "INET_NTOA", "ELT", "FIELD",
                   "BENCHMARK", "CHARSET", "COLLATION", "COERCIBILITY", "FOUND_ROWS",
                   "CONTAINS", "CONVERT", "TODECIMALSTRING", "SYS_STAT",
                   "JSONB_OBJECT_AGG", "SOUNDEX", "MAKEDATE", "FROM_DAYS", "TO_DAYS"});

  BugAdder bugs(*db, "duckdb");
  // --- array (9): AF x5, HBOF x3, SO; P1.2 x7, P1.4, P2.2 -----------------------
  bugs.Add({.function = "ELEMENT_AT",
            .function_type = "array",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 1000000000LL,
            .description = "D_ASSERT(index <= list.size()) fires for 1e9 indexes"});
  bugs.Add({.function = "ELEMENT_AT",
            .function_type = "array",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000000LL,
            .description = "negative index wrap-around reads before the list "
                           "entry buffer"});
  bugs.Add({.function = "ARRAY_LENGTH",
            .function_type = "array",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "ARRAY_LENGTH(*) asserts on the star expression class"});
  bugs.Add({.function = "ARRAY_SLICE",
            .function_type = "array",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000,
            .description = "slice begin normalization asserts for hugely negative "
                           "bounds"});
  bugs.Add({.function = "ARRAY_SLICE",
            .function_type = "array",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 2,
            .threshold = 1000000000LL,
            .description = "slice end clamp is skipped for 1e9 bounds and copies "
                           "past the child vector"});
  bugs.Add({.function = "ARRAY_POSITION",
            .function_type = "array",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 1,
            .description = "needle NULL reaches a D_ASSERT(!value.IsNull())"});
  bugs.Add({.function = "ARRAY_CONTAINS",
            .function_type = "array",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 1,
            .description = "empty-string probe hashes one byte before the needle "
                           "buffer"});
  bugs.Add({.function = "ARRAY_CONCAT",
            .function_type = "array",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.4",
            .trigger = TriggerKind::kStringContains,
            .param_text = "[[[[[[[[",
            .description = "list-literal reparse asserts on eight unmatched '[' "
                           "openers"});
  bugs.Add({.function = "CARDINALITY",
            .function_type = "array",
            .crash = CrashType::kStackOverflow,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDateTime,
            .description = "CARDINALITY retries UNION-unified DATETIME items "
                           "through mutually recursive coercion"});
  // --- date (1): SO (P3.1) ---------------------------------------------------------
  bugs.Add({.function = "DATE_FORMAT",
            .function_type = "date",
            .crash = CrashType::kStackOverflow,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 1,
            .threshold = 10000,
            .description = "format-string parser recurses per specifier and "
                           "overflows on 10 KB formats built by REPEAT"});
  // --- map (3): AF, HBOF x2; P1.2 x2, P2.1 --------------------------------------------
  bugs.Add({.function = "MAP",
            .function_type = "map",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 0,
            .description = "MAP(NULL, ...) asserts on the keys vector cardinality"});
  bugs.Add({.function = "MAP_EXTRACT",
            .function_type = "map",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 1,
            .description = "empty-string key probe reads a byte before the key "
                           "heap"});
  bugs.Add({.function = "MAP_KEYS",
            .function_type = "map",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kString,
            .description = "MAP_KEYS over a cast-to-VARCHAR map re-parses the text "
                           "into an undersized entry vector"});
  // --- json (1): AF (P1.2) --------------------------------------------------------------
  bugs.Add({.function = "JSON_EXTRACT",
            .function_type = "json",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 1,
            .description = "empty JSON path asserts in the path tokenizer"});
  // --- math (2): AF, HBOF; P1.2, P2.1 ------------------------------------------------------
  bugs.Add({.function = "POWER",
            .function_type = "math",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 1000000000LL,
            .description = "exponent fast-path asserts exp < 2^30"});
  bugs.Add({.function = "ROUND",
            .function_type = "math",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kString,
            .description = "ROUND over cast-to-VARCHAR numerics renders into a "
                           "buffer sized from the pre-cast width"});
  // --- string (4): AF x2, SEGV x2; P1.2, P1.3, P3.1, P3.3 ------------------------------------
  bugs.Add({.function = "REVERSE",
            .function_type = "string",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "grapheme iterator asserts on zero-length input"});
  bugs.Add({.function = "FORMAT",
            .function_type = "string",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.3",
            .trigger = TriggerKind::kDecimalDigitsAtLeast,
            .threshold = 40,
            .description = "decimal width assertion fires past 39 digits"});
  bugs.Add({.function = "REPLACE",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 100000,
            .description = "subject resize during replacement invalidates the scan "
                           "pointer for 100 KB subjects"});
  bugs.Add({.function = "TRIM",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "TRIM walks the JSON handle of a nested-function "
                           "argument as UTF-8 text"});
  // --- system (1): AF (P2.1) --------------------------------------------------------------------
  bugs.Add({.function = "TYPEOF",
            .function_type = "system",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "TYPEOF asserts its logical-type switch is exhaustive; "
                           "cast-produced BLOB hits the default branch"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "duckdb");
  logic.Add({.function = "LENGTH",
             .function_type = "string",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant string literals reach LENGTH with the quote byte "
                            "still counted"});
  logic.Add({.function = "UPPER",
             .function_type = "string",
             .effect = LogicEffect::kTruncate,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level UPPER emits only the first half of the converted "
                            "buffer"});
  logic.Add({.function = "SIGN",
             .function_type = "math",
             .effect = LogicEffect::kNullOut,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "SIGN inside a WHERE predicate degrades to NULL"});
  return db;
}

}  // namespace soft
