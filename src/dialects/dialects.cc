#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakeDialect(const std::string& name) {
  if (name == "postgresql") {
    return MakePostgresqlDialect();
  }
  if (name == "mysql") {
    return MakeMysqlDialect();
  }
  if (name == "mariadb") {
    return MakeMariadbDialect();
  }
  if (name == "clickhouse") {
    return MakeClickhouseDialect();
  }
  if (name == "monetdb") {
    return MakeMonetdbDialect();
  }
  if (name == "duckdb") {
    return MakeDuckdbDialect();
  }
  if (name == "virtuoso") {
    return MakeVirtuosoDialect();
  }
  return nullptr;
}

const std::vector<std::string>& AllDialectNames() {
  static const std::vector<std::string> kNames = {
      "postgresql", "mysql", "mariadb", "clickhouse", "monetdb", "duckdb", "virtuoso"};
  return kNames;
}

int ExpectedBugCount(const std::string& dialect) {
  if (dialect == "postgresql") {
    return 1;
  }
  if (dialect == "mysql") {
    return 16;
  }
  if (dialect == "mariadb") {
    return 24;
  }
  if (dialect == "clickhouse") {
    return 6;
  }
  if (dialect == "monetdb") {
    return 19;
  }
  if (dialect == "duckdb") {
    return 21;
  }
  if (dialect == "virtuoso") {
    return 45;
  }
  return 0;
}

int ExpectedLogicBugCount(const std::string& dialect) {
  for (const std::string& name : AllDialectNames()) {
    if (dialect == name) {
      return 3;
    }
  }
  return 0;
}

}  // namespace soft
