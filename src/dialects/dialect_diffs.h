// Declared per-dialect difference table for the cross-dialect differential
// oracle (docs/DESIGN.md, "Logic-bug oracles").
//
// All seven dialects share one engine, so the same successful SELECT must
// produce the same rows everywhere — *except* along declared axes: catalog
// pruning (a sibling lacks the function and errors), cast strictness
// (strict dialects reject what lenient ones coerce), each dialect's own
// injected crash corpus, and functions whose value depends on mutable
// session state. Anything outside those axes that still diverges is a
// wrong-result logic bug.
#ifndef SRC_DIALECTS_DIALECT_DIFFS_H_
#define SRC_DIALECTS_DIALECT_DIFFS_H_

#include <string>
#include <vector>

#include "src/engine/database.h"

namespace soft {

// Functions whose result depends on mutable session state (sequences,
// LAST_INSERT_ID). Statements referencing one are excluded from every
// result-set oracle: re-executing or rewriting them legitimately changes
// the answer, so a divergence proves nothing.
const std::vector<std::string>& VolatileFunctions();

// True when `sql` parses to a SELECT that references any of `names`.
bool SqlReferencesFunction(const std::string& sql, const std::vector<std::string>& names);

// True when `sql` is a SELECT whose result sets are comparable across
// re-executions and equivalent rewrites on the SAME dialect: it parses, is a
// SELECT, and references no volatile function.
bool OracleComparable(const std::string& sql);

// Canonical rendering of a result set for oracle comparison: row/column
// counts plus each value's type and display text, in row order. Column
// HEADERS are deliberately excluded — they render the statement text, which
// equivalent rewrites intentionally change.
std::string CanonicalResultKey(const StatementResult& r);

// Differential classification of one statement's outcome on the campaign
// dialect vs a sibling dialect.
enum class DialectDiffClass {
  kIdentical,           // both OK with identical canonical result keys
  kDeclaredDifference,  // outcome differs along a declared axis (either side
                        // errored or crashed: catalog pruning, cast
                        // strictness, or the sibling's own crash corpus)
  kDivergence,          // both OK, different rows — a logic bug on one side
};

std::string_view DialectDiffClassName(DialectDiffClass c);

DialectDiffClass ClassifyDifferential(const StatementResult& main,
                                      const StatementResult& sibling);

}  // namespace soft

#endif  // SRC_DIALECTS_DIALECT_DIFFS_H_
