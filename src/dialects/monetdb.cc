// MonetDB dialect: the smallest catalog of the seven (Table 5: 171 triggered
// functions). Analytics-focused: no XML, no spatial, no arrays/maps, no
// sequences, and a reduced string/date surface. Its 19 injected bugs
// reproduce the MonetDB rows of Table 4 (7 aggregate, 3 condition, 1 math,
// 6 string, 2 system).
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakeMonetdbDialect() {
  EngineConfig config;
  config.name = "monetdb";
  config.cast_options.strict = false;
  auto db = std::make_unique<Database>(config);

  RemoveFunctions(
      db->registry(),
      {"UPDATEXML",    "EXTRACTVALUE",  "XML_VALID",    "XML_ROOT",
       "XML_ELEMENT_COUNT", "ST_GEOMFROMTEXT", "ST_ASTEXT", "ST_ASBINARY",
       "BOUNDARY",     "POINT",         "ST_X",         "ST_Y",
       "ST_NUMPOINTS", "ST_LENGTH",     "ST_DISTANCE",  "ST_EQUALS",
       "ST_ISVALID",   "ARRAY_LENGTH",  "ELEMENT_AT",   "ARRAY_CONCAT",
       "ARRAY_APPEND", "ARRAY_CONTAINS", "ARRAY_SLICE", "ARRAY_REVERSE",
       "ARRAY_POSITION", "MAP",         "MAP_KEYS",     "MAP_VALUES",
       "MAP_EXTRACT",  "CARDINALITY",   "NEXTVAL",      "LASTVAL",
       "SETVAL",       "COLUMN_CREATE", "COLUMN_JSON",  "ELT",
       "FIELD",        "FORMAT",        "SOUNDEX",      "TO_BASE64",
       "FROM_BASE64",  "REGEXP_REPLACE", "REGEXP_LIKE", "INITCAP",
       "TRANSLATE",    "QUOTE",         "SPACE",        "HEX",
       "UNHEX",        "MD5",           "SHA1",         "CRC32",
       "BIT_COUNT",    "INET6_ATON",    "INET6_NTOA",   "INET_ATON",
       "INET_NTOA",    "TODECIMALSTRING", "MAKEDATE",   "FROM_DAYS",
       "TO_DAYS",      "WEEK",          "QUARTER",      "DATE_FORMAT",
       "ADDDATE",      "ADD_MONTHS",    "JSON_OBJECT",  "JSON_ARRAY",
       "JSON_QUOTE",   "JSON_UNQUOTE",  "JSON_MERGE_PRESERVE",
       "JSON_CONTAINS_PATH", "JSON_KEYS", "JSON_DEPTH", "JSONB_OBJECT_AGG",
       "JSON_ARRAYAGG", "BIT_AND",      "BIT_OR",       "BIT_XOR",
       "MEDIAN",       "GREATEST",      "LEAST",        "DECODE",
       "NVL",          "NVL2",          "IF",           "INTERVAL",
       "CONVERT",      "TO_JSON",       "BENCHMARK",    "CHARSET",
       "COLLATION",    "COERCIBILITY",  "FOUND_ROWS",   "CONTAINS",
       "UUID",         "SYS_STAT",      "LOG2",         "ATAN2",
       "RAND",         "STRCMP",        "CHR"});

  BugAdder bugs(*db, "monetdb");
  // --- aggregate (7): NPD x6, SEGV; P1.2, P2.1, P2.2 x2, P2.3 x2, P3.3 ---------
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "SUM(*) aggregates over a null BAT descriptor"});
  bugs.Add({.function = "AVG",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "AVG fetches the numeric tail pointer of explicitly cast "
                           "binary items"});
  bugs.Add({.function = "MIN",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDateTime,
            .description = "MIN's comparator uses an unset ordering function for "
                           "DATETIME items unified by UNION"});
  bugs.Add({.function = "MAX",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDate,
            .description = "MAX's comparator uses an unset ordering function for "
                           "DATE items unified by UNION"});
  bugs.Add({.function = "STDDEV",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kStringContains,
            .param_text = ".",
            .description = "STDDEV parses decimal-pointed string arguments borrowed "
                           "from other functions through a null numeric adapter"});
  bugs.Add({.function = "VARIANCE",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kStringContains,
            .param_text = "$",
            .description = "VARIANCE treats path-shaped string arguments borrowed "
                           "from JSON functions as numeric cursors"});
  bugs.Add({.function = "GROUP_CONCAT",
            .function_type = "aggregate",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "GROUP_CONCAT renders JSON documents from nested JSON "
                           "functions via a stale serializer pointer"});
  // --- condition (3): NPD x2, SEGV; P2.2, P3.2, P3.3 ------------------------------
  bugs.Add({.function = "IFNULL",
            .function_type = "condition",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDateTime,
            .description = "IFNULL tests the nil pattern of UNION-unified DATETIME "
                           "items against a null template"});
  bugs.Add({.function = "NULLIF",
            .function_type = "condition",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "NULLIF compares JSON documents via an unbound equality "
                           "implementation"});
  bugs.Add({.function = "COALESCE",
            .function_type = "condition",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "COALESCE copies binary candidates from nested codec "
                           "functions with the wrong width"});
  // --- math (1): NPD (P2.2) ---------------------------------------------------------
  bugs.Add({.function = "ROUND",
            .function_type = "math",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDateTime,
            .description = "ROUND scales UNION-unified DATETIME items through a "
                           "null decimal context"});
  // --- string (6): NPD x5, HBOF; P1.2, P1.3, P1.4, P2.3 x3 ----------------------------
  bugs.Add({.function = "LPAD",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000,
            .description = "LPAD reserves a negative target length via a null "
                           "allocator result"});
  bugs.Add({.function = "LOCATE",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.3",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 0,
            .param_text = "99999",
            .description = "LOCATE's Boyer-Moore table builder mis-seeds on "
                           "digit-stuffed needles"});
  bugs.Add({.function = "TRIM",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.4",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 0,
            .param_text = "                ",
            .description = "TRIM collapses 16+ repeated spaces through a null "
                           "run-length cursor"});
  bugs.Add({.function = "REPLACE",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 2,
            .param_type = TypeKind::kDate,
            .description = "REPLACE stringifies a DATE replacement borrowed from "
                           "date functions via a null renderer"});
  bugs.Add({.function = "CONCAT",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "CONCAT appends JSON arguments using the document "
                           "pointer as a char buffer"});
  bugs.Add({.function = "SUBSTR",
            .function_type = "string",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P2.3",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 0,
            .param_text = "$[",
            .description = "SUBSTR miscounts multi-byte positions in JSON-path "
                           "subjects borrowed from JSON functions"});
  // --- system (2): SEGV (P1.2), DBZ (P2.3) --------------------------------------------
  bugs.Add({.function = "SLEEP",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 0,
            .description = "SLEEP reads the duration from a nil item without the "
                           "nil check"});
  bugs.Add({.function = "TYPEOF",
            .function_type = "system",
            .crash = CrashType::kDivideByZero,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDecimal,
            .description = "TYPEOF derives the display scale of exact decimals by "
                           "dividing by their zero-initialized precision"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "monetdb");
  logic.Add({.function = "UPPER",
             .function_type = "string",
             .effect = LogicEffect::kNullOut,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant-folded UPPER misses its result slot and yields "
                            "NULL"});
  logic.Add({.function = "ABS",
             .function_type = "math",
             .effect = LogicEffect::kNegate,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level ABS returns the negated magnitude"});
  logic.Add({.function = "CEIL",
             .function_type = "math",
             .effect = LogicEffect::kZeroOut,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "CEIL inside a WHERE predicate reads a zeroed candidate "
                            "register"});
  return db;
}

}  // namespace soft
