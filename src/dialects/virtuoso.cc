// Virtuoso dialect: the buggiest of the seven (45 Table 4 bugs, a third of
// the total), dominated by loosely-typed system/internal functions. On top
// of the full builtin catalog it registers a slice of Virtuoso-style
// internal system functions (VECTOR, AREF, RDF_BOX, SYS_STAT, ...) — the
// surface where 15 of its bugs live, headlined by CONTAINS('x','x',*)
// (Case 2 of the paper).
#include <cstdio>

#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

void RegSystem(FunctionRegistry& r, const char* name, int min_args, int max_args,
               ScalarFunction fn, const char* doc, const char* example,
               bool null_prop = true) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kSystem;
  def.min_args = min_args;
  def.max_args = max_args;
  def.null_propagates = null_prop;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

Result<Value> FnHashint(FunctionContext& ctx, const ValueList& args) {
  const std::string text = args[0].ToDisplayString();
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h = (h ^ c) * 0x100000001b3ull;
  }
  return Value::Int(static_cast<int64_t>(h & 0x7FFFFFFFFFFFFFFFull));
}

Result<Value> FnBlobToString(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() == TypeKind::kBlob) {
    return Value::Str(args[0].blob_value());
  }
  ctx.Cover(1);
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(std::move(s));
}

Result<Value> FnStringToBlob(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::BlobVal(std::move(s));
}

Result<Value> FnVector(FunctionContext& ctx, const ValueList& args) {
  return Value::ArrayVal(args);
}

Result<Value> FnAref(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kArray) {
    ctx.Cover(1);
    return TypeError("AREF requires a vector");
  }
  SOFT_ASSIGN_OR_RETURN(int64_t idx, ctx.ArgInt(args[1]));
  const ValueList& items = args[0].array_items();
  if (idx < 0 || idx >= static_cast<int64_t>(items.size())) {
    ctx.Cover(2);
    return InvalidArgument("AREF index out of bounds");
  }
  return items[static_cast<size_t>(idx)];
}

Result<Value> FnRdfBox(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("rdf_box(" + args[0].ToDisplayString() + ")");
}

Result<Value> FnInternalTypeName(FunctionContext& ctx, const ValueList& args) {
  return Value::Str(std::string("DV_") + std::string(TypeKindName(args[0].kind())));
}

Result<Value> FnRowCount(FunctionContext& ctx, const ValueList& args) {
  return Value::Int(0);
}

Result<Value> FnTxnKill(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t id, ctx.ArgInt(args[0]));
  if (id < 0) {
    ctx.Cover(1);
    return InvalidArgument("invalid transaction id");
  }
  return Value::Int(0);
}

Result<Value> FnSysStat(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string name, ctx.ArgString(args[0]));
  if (name == "st_dbms_ver") {
    ctx.Cover(1);
    return Value::Str("07.20.3240");
  }
  return Value::Int(0);
}

}  // namespace

std::unique_ptr<Database> MakeVirtuosoDialect() {
  EngineConfig config;
  config.name = "virtuoso";
  config.cast_options.strict = false;
  auto db = std::make_unique<Database>(config);

  FunctionRegistry& r = db->registry();
  RegSystem(r, "HASHINT", 1, 1, FnHashint, "Internal hash of any value", "HASHINT('a')",
            false);
  RegSystem(r, "BLOB_TO_STRING", 1, 1, FnBlobToString, "Blob payload as text",
            "BLOB_TO_STRING(x'616263')");
  RegSystem(r, "STRING_TO_BLOB", 1, 1, FnStringToBlob, "Text as blob payload",
            "STRING_TO_BLOB('abc')");
  RegSystem(r, "VECTOR", 0, -1, FnVector, "Internal vector constructor",
            "VECTOR(1, 2, 3)", false);
  RegSystem(r, "AREF", 2, 2, FnAref, "Vector element access (0-based)",
            "AREF(VECTOR(1, 2), 1)");
  RegSystem(r, "RDF_BOX", 1, 1, FnRdfBox, "Wrap a value in an RDF box", "RDF_BOX(1)",
            false);
  RegSystem(r, "INTERNAL_TYPE_NAME", 1, 1, FnInternalTypeName,
            "Internal DV_* type tag of a value", "INTERNAL_TYPE_NAME(1)", false);
  RegSystem(r, "ROW_COUNT", 0, 0, FnRowCount, "Rows affected by the last statement",
            "ROW_COUNT()");
  RegSystem(r, "TXN_KILL", 1, 1, FnTxnKill, "Terminate a transaction by id",
            "TXN_KILL(1)");
  RegSystem(r, "SYS_STAT", 1, 1, FnSysStat, "Read a server statistic",
            "SYS_STAT('st_dbms_ver')");

  BugAdder bugs(*db, "virtuoso");
  // --- aggregate (5): NPD x4, SEGV; P1.2, P3.2, P3.3 x3 -------------------------
  bugs.Add({.function = "SUM",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "SUM(*) fetches a null sqlo column reference"});
  bugs.Add({.function = "AVG",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "AVG unboxes wrapped JSON documents through a null "
                           "numeric box"});
  bugs.Add({.function = "MIN",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "MIN compares geometry boxes via a null collation"});
  bugs.Add({.function = "MAX",
            .function_type = "aggregate",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "MAX compares blob boxes via a null collation"});
  bugs.Add({.function = "GROUP_CONCAT",
            .function_type = "aggregate",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kDate,
            .description = "GROUP_CONCAT renders DATE boxes from nested date "
                           "functions with a string box accessor"});
  // --- casting (2): AF x2; P1.2 x2 ------------------------------------------------
  bugs.Add({.function = "TO_NUMBER",
            .function_type = "casting",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "TO_NUMBER('') asserts a non-empty digit run"});
  bugs.Add({.function = "TO_CHAR",
            .function_type = "casting",
            .crash = CrashType::kAssertionFailure,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "TO_CHAR(*) asserts on the star box tag"});
  // --- condition (3): NPD x2, SEGV; P3.3 x3 -----------------------------------------
  bugs.Add({.function = "IFNULL",
            .function_type = "condition",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kGeometry,
            .description = "IFNULL probes the nil flag of geometry boxes from "
                           "nested spatial functions"});
  bugs.Add({.function = "NULLIF",
            .function_type = "condition",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "NULLIF equates blob boxes via a null comparer"});
  bugs.Add({.function = "GREATEST",
            .function_type = "condition",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "GREATEST orders JSON boxes by their serialized pointer"});
  // --- math (5): NPD x3, SEGV, DBZ; P1.2 x2, P2.1, P2.2, P2.3 --------------------------
  bugs.Add({.function = "SQRT",
            .function_type = "math",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .threshold = -1000000000000000LL,
            .description = "SQRT routes -1e15 through a null complex-result shim"});
  bugs.Add({.function = "LOG",
            .function_type = "math",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "LOG('') numeric-boxes the empty string as a null "
                           "pointer"});
  bugs.Add({.function = "ABS",
            .function_type = "math",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kBlob,
            .description = "ABS unboxes cast-produced blobs through the numeric "
                           "accessor"});
  bugs.Add({.function = "MOD",
            .function_type = "math",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P2.2",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kDateTime,
            .description = "MOD over UNION-unified DATETIME boxes indexes the "
                           "numeric dispatch table out of range"});
  bugs.Add({.function = "DIV",
            .function_type = "math",
            .crash = CrashType::kDivideByZero,
            .pattern = "P2.3",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 1,
            .param_type = TypeKind::kString,
            .description = "DIV coerces borrowed string divisors to 0 and divides"});
  // --- spatial (2): NPD, SEGV; P1.2, P2.1 -----------------------------------------------
  bugs.Add({.function = "ST_ASTEXT",
            .function_type = "spatial",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 0,
            .description = "ST_ASTEXT(NULL) renders the null geometry box"});
  bugs.Add({.function = "ST_GEOMFROMTEXT",
            .function_type = "spatial",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P2.1",
            .trigger = TriggerKind::kArgTypeIs,
            .arg_index = 0,
            .param_type = TypeKind::kBlob,
            .description = "ST_GEOMFROMTEXT scans cast-produced blobs as "
                           "NUL-terminated WKT"});
  // --- string (10): NPD x2, SEGV x6, SO, UAF; P1.2 x5, P2.3, P3.1 x3, P3.2 ----------------
  bugs.Add({.function = "SUBSTR",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 1000000000000LL,
            .description = "SUBSTR adds 1e12 offsets to the subject pointer before "
                           "bounds checks"});
  bugs.Add({.function = "LEFT",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000000000LL,
            .description = "LEFT casts -1e12 lengths to size_t and copies"});
  bugs.Add({.function = "RIGHT",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 1,
            .threshold = 1000000000000LL,
            .description = "RIGHT rewinds 1e12 bytes from the subject tail"});
  bugs.Add({.function = "LPAD",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 2,
            .description = "LPAD uses the NULL pad box as a char buffer"});
  bugs.Add({.function = "RPAD",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 2,
            .description = "RPAD divides by the empty pad's zero length to count "
                           "repetitions and scribbles"});
  bugs.Add({.function = "INSTR",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P2.3",
            .trigger = TriggerKind::kStringContains,
            .arg_index = 1,
            .param_text = "POINT(",
            .description = "INSTR compiles WKT needles borrowed from spatial "
                           "functions as search automata"});
  bugs.Add({.function = "REPEAT",
            .function_type = "string",
            .crash = CrashType::kStackOverflow,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 200000,
            .description = "REPEAT recurses per copied chunk for 200 KB subjects"});
  bugs.Add({.function = "CONCAT",
            .function_type = "string",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .threshold = 500000,
            .description = "CONCAT's length accumulator truncates at 500 KB and "
                           "copies past the result box"});
  bugs.Add({.function = "UPPER",
            .function_type = "string",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .threshold = 1000000,
            .description = "UPPER's wide-char staging allocation is unchecked for "
                           "1 MB subjects"});
  bugs.Add({.function = "LOWER",
            .function_type = "string",
            .crash = CrashType::kUseAfterFree,
            .pattern = "P3.2",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kJson,
            .description = "LOWER retains the serialized buffer of a JSON wrapper "
                           "after the box is freed"});
  // --- xml (3): NPD x3; P1.2 x3 --------------------------------------------------------------
  bugs.Add({.function = "EXTRACTVALUE",
            .function_type = "xml",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 1,
            .description = "empty XPath dereferences a null step list"});
  bugs.Add({.function = "UPDATEXML",
            .function_type = "xml",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 1,
            .description = "NULL XPath box is dereferenced during path compilation"});
  bugs.Add({.function = "XML_VALID",
            .function_type = "xml",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 0,
            .description = "empty document reaches the root-element accessor"});
  // --- system (15): NPD x8, SEGV x6, HBOF; P1.2 x11, P3.1 x3, P3.3 -----------------------------
  bugs.Add({.function = "CONTAINS",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "CONTAINS('x','x',*) treats the star box as a search "
                           "option list (Case 2 of the paper)"});
  bugs.Add({.function = "SLEEP",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 0,
            .threshold = -1000000,
            .description = "negative durations index the timer wheel backwards "
                           "into a null page"});
  bugs.Add({.function = "BENCHMARK",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtLeast,
            .arg_index = 0,
            .threshold = 100000000000LL,
            .description = "1e11 iteration counts overflow the loop bookkeeping "
                           "box"});
  bugs.Add({.function = "TYPEOF",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "TYPEOF(*) reads the tag byte of the null star box"});
  bugs.Add({.function = "CHARSET",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "CHARSET('') probes the charset of a zero-length box"});
  bugs.Add({.function = "COLLATION",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .description = "COLLATION('') dereferences an empty collation chain"});
  bugs.Add({.function = "COERCIBILITY",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .description = "COERCIBILITY(NULL) skips the nil fast path and reads "
                           "the box tag"});
  bugs.Add({.function = "HASHINT",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsStar,
            .description = "HASHINT(*) hashes the star box payload pointer"});
  bugs.Add({.function = "AREF",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kIntAtMost,
            .arg_index = 1,
            .threshold = -1000000000LL,
            .description = "AREF adds -1e9 indexes to the vector base before the "
                           "bounds check"});
  bugs.Add({.function = "SYS_STAT",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgEmptyString,
            .arg_index = 0,
            .description = "empty statistic names walk the stat table with an "
                           "uninitialized cursor"});
  bugs.Add({.function = "RDF_BOX",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P1.2",
            .trigger = TriggerKind::kArgIsNull,
            .arg_index = 0,
            .description = "RDF_BOX(NULL) boxes a null payload pointer"});
  bugs.Add({.function = "BLOB_TO_STRING",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 300000,
            .description = "300 KB payloads overflow the blob page iterator"});
  bugs.Add({.function = "STRING_TO_BLOB",
            .function_type = "system",
            .crash = CrashType::kSegmentationViolation,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 300000,
            .description = "300 KB subjects split across pages with a stale "
                           "continuation pointer"});
  bugs.Add({.function = "INTERNAL_TYPE_NAME",
            .function_type = "system",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P3.1",
            .trigger = TriggerKind::kStringLengthAtLeast,
            .arg_index = 0,
            .threshold = 1000000,
            .description = "type-name rendering copies a 1 MB preview into a "
                           "fixed 128-byte label"});
  bugs.Add({.function = "VECTOR",
            .function_type = "system",
            .crash = CrashType::kNullPointerDereference,
            .pattern = "P3.3",
            .trigger = TriggerKind::kArgTypeIs,
            .param_type = TypeKind::kGeometry,
            .description = "VECTOR deep-copies geometry boxes via a null clone "
                           "hook"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "virtuoso");
  logic.Add({.function = "FLOOR",
             .function_type = "math",
             .effect = LogicEffect::kNegate,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant-folded FLOOR negates its result in the box "
                            "conversion"});
  logic.Add({.function = "REVERSE",
             .function_type = "string",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level REVERSE appends a stray terminator byte"});
  logic.Add({.function = "LENGTH",
             .function_type = "string",
             .effect = LogicEffect::kNegate,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "LENGTH inside a WHERE predicate returns a negated count"});
  return db;
}

}  // namespace soft
