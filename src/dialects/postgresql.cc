// PostgreSQL dialect.
//
// Strict type system (CastOptions::strict): malformed text in casts raises
// errors and implicit string→numeric coercion is refused. The paper
// attributes PostgreSQL's single Table 4 bug to exactly this strictness —
// most boundary casts are rejected before reaching function code. Its one
// injected bug reproduces CVE-2023-5868: JSONB_OBJECT_AGG mishandling
// unknown-type (string-literal) arguments under DISTINCT.
#include "src/dialects/dialect_common.h"
#include "src/dialects/dialects.h"

namespace soft {

std::unique_ptr<Database> MakePostgresqlDialect() {
  EngineConfig config;
  config.name = "postgresql";
  config.cast_options.strict = true;
  auto db = std::make_unique<Database>(config);

  // MySQL-isms and engine extras PostgreSQL does not ship.
  RemoveFunctions(db->registry(),
                  {"ELT", "FIELD", "FORMAT", "INET6_ATON", "INET6_NTOA", "INET_ATON",
                   "INET_NTOA", "COLUMN_CREATE", "COLUMN_JSON", "UPDATEXML",
                   "EXTRACTVALUE", "XML_ROOT", "XML_ELEMENT_COUNT", "TODECIMALSTRING",
                   "MAP", "MAP_KEYS", "MAP_VALUES", "MAP_EXTRACT", "BENCHMARK",
                   "FOUND_ROWS", "CHARSET", "COLLATION", "COERCIBILITY", "CONTAINS",
                   "FROM_DAYS", "TO_DAYS", "MAKEDATE", "LOCATE", "INSTR", "UNHEX",
                   "CONVERT", "IF", "ISNULL", "DECODE"});

  BugAdder bugs(*db, "postgresql");
  bugs.Add({.function = "JSONB_OBJECT_AGG",
            .function_type = "aggregate",
            .crash = CrashType::kHeapBufferOverflow,
            .pattern = "P2.3",
            .trigger = TriggerKind::kDistinctAndAllArgsString,
            .description = "unknown-type literal arguments under DISTINCT are read as "
                           "'\\0'-terminated strings, disclosing adjacent heap memory "
                           "(CVE-2023-5868 analogue)"});

  // Seeded wrong-result corpus (inert until logic faults are enabled):
  // ground truth for the EET / differential logic oracles.
  LogicBugAdder logic(*db, "postgresql");
  logic.Add({.function = "SIGN",
             .function_type = "math",
             .effect = LogicEffect::kOffByOne,
             .scope = LogicScope::kConstArgs,
             .pattern = "L1.1",
             .description = "constant-folded SIGN is computed with a stale "
                            "off-by-one comparison against zero"});
  logic.Add({.function = "LENGTH",
             .function_type = "string",
             .effect = LogicEffect::kTruncate,
             .scope = LogicScope::kTopLevelCall,
             .pattern = "L2.1",
             .description = "top-level LENGTH projection halves the byte count "
                            "when no enclosing call re-checks it"});
  logic.Add({.function = "FLOOR",
             .function_type = "math",
             .effect = LogicEffect::kNegate,
             .scope = LogicScope::kWherePredicate,
             .pattern = "L3.1",
             .description = "FLOOR evaluated inside a WHERE predicate flips "
                            "the sign of its result"});
  return db;
}

}  // namespace soft
