// PoC construction: turns a BugSpec into a concrete SQL statement that
// triggers it, by splicing the boundary argument into the target function's
// registry example. Used by the bug-oracle tests (every injected bug must be
// demonstrably triggerable), the Table 4 bench, and the bug reporter.
#include "src/dialects/dialects.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

// Canonical expression producing a value of `kind` (parse- and
// evaluate-clean in every dialect).
Result<ExprPtr> CanonicalValueExpr(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
      return MakeLiteral(Value::Boolean(true));
    case TypeKind::kInt:
      return MakeLiteral(Value::Int(7));
    case TypeKind::kDouble:
      return MakeLiteral(Value::DoubleVal(1.5));
    case TypeKind::kDecimal: {
      SOFT_ASSIGN_OR_RETURN(Decimal d, Decimal::FromString("1.5"));
      return MakeLiteral(Value::Dec(std::move(d)));
    }
    case TypeKind::kString:
      return MakeLiteral(Value::Str("zz"));
    case TypeKind::kBlob:
      return MakeLiteral(Value::BlobVal(std::string("\x01\x02", 2)));
    case TypeKind::kDate:
      return MakeCast(MakeLiteral(Value::Str("2024-01-01")), TypeKind::kDate);
    case TypeKind::kDateTime:
      return MakeCast(MakeLiteral(Value::Str("2024-01-01 00:00:00")),
                      TypeKind::kDateTime);
    case TypeKind::kJson:
      return MakeCast(MakeLiteral(Value::Str("[1]")), TypeKind::kJson);
    case TypeKind::kGeometry:
      return MakeCast(MakeLiteral(Value::Str("POINT(1 2)")), TypeKind::kGeometry);
    case TypeKind::kInet:
      return MakeCast(MakeLiteral(Value::Str("1.2.3.4")), TypeKind::kInet);
    case TypeKind::kArray: {
      std::vector<ExprPtr> items;
      items.push_back(MakeLiteral(Value::Int(1)));
      return MakeArrayCtor(std::move(items));
    }
    case TypeKind::kRow: {
      std::vector<ExprPtr> fields;
      fields.push_back(MakeLiteral(Value::Int(1)));
      fields.push_back(MakeLiteral(Value::Int(1)));
      return MakeRowCtor(std::move(fields));
    }
    case TypeKind::kMap: {
      std::vector<ExprPtr> keys;
      keys.push_back(MakeLiteral(Value::Str("k")));
      std::vector<ExprPtr> vals;
      vals.push_back(MakeLiteral(Value::Int(1)));
      std::vector<ExprPtr> args;
      args.push_back(MakeArrayCtor(std::move(keys)));
      args.push_back(MakeArrayCtor(std::move(vals)));
      return MakeFunctionCall("MAP", std::move(args));
    }
    default:
      return Unsupported("no canonical value for this type kind");
  }
}

// Expression producing a string of `length` bytes; prefers a nested REPEAT
// (the Pattern 3.1 shape) when the dialect ships it.
ExprPtr LongStringExpr(const Database& db, int64_t length, char fill) {
  if (db.registry().Contains("REPEAT")) {
    std::vector<ExprPtr> args;
    args.push_back(MakeLiteral(Value::Str(std::string(1, fill))));
    args.push_back(MakeLiteral(Value::Int(length)));
    return MakeFunctionCall("REPEAT", std::move(args));
  }
  return MakeLiteral(Value::Str(std::string(static_cast<size_t>(length), fill)));
}

// Builds the boundary-argument expression for a spec's trigger.
Result<ExprPtr> TriggerArgExpr(const Database& db, const BugSpec& spec) {
  switch (spec.trigger) {
    case TriggerKind::kArgIsStar:
      return MakeLiteral(Value::Star());
    case TriggerKind::kArgIsNull:
      return MakeLiteral(Value::Null());
    case TriggerKind::kArgEmptyString:
      return MakeLiteral(Value::Str(""));
    case TriggerKind::kIntAtLeast:
      return MakeLiteral(Value::Int(spec.threshold));
    case TriggerKind::kIntAtMost:
      return MakeLiteral(Value::Int(spec.threshold));
    case TriggerKind::kDecimalDigitsAtLeast:
    case TriggerKind::kDecimalFractionAtLeast: {
      std::string text = "1.";
      text.append(static_cast<size_t>(spec.threshold), '9');
      SOFT_ASSIGN_OR_RETURN(Decimal d, Decimal::FromString(text));
      return MakeLiteral(Value::Dec(std::move(d)));
    }
    case TriggerKind::kStringLengthAtLeast:
      return LongStringExpr(db, spec.threshold, 'a');
    case TriggerKind::kJsonDepthAtLeast:
      return LongStringExpr(db, spec.threshold + 1, '[');
    case TriggerKind::kArgTypeIs:
      return CanonicalValueExpr(spec.param_type);
    case TriggerKind::kBlobNotGeometry:
      // INET6_ATON output when the dialect has it (the Case 6 chain),
      // otherwise a raw blob literal that fails geometry decoding.
      if (db.registry().Contains("INET6_ATON")) {
        std::vector<ExprPtr> args;
        args.push_back(MakeLiteral(Value::Str("255.255.255.255")));
        return MakeFunctionCall("INET6_ATON", std::move(args));
      }
      return MakeLiteral(Value::BlobVal(std::string("\xFF\xFF", 2)));
    case TriggerKind::kStringContains:
      return MakeLiteral(Value::Str(spec.param_text));
    default:
      return Unsupported("trigger kind has no argument-level PoC shape");
  }
}

}  // namespace

Result<std::string> BuildPocSql(const Database& db, const BugSpec& spec) {
  // Parse-stage bugs key on the raw statement text.
  if (spec.function == "PARSER") {
    if (spec.trigger == TriggerKind::kStringContains) {
      return "SELECT '" + spec.param_text + "'";
    }
    if (spec.trigger == TriggerKind::kStringLengthAtLeast) {
      return "SELECT '" + std::string(static_cast<size_t>(spec.threshold), 'a') + "'";
    }
    return Unsupported("unsupported parser-bug trigger");
  }

  const FunctionDef* def = db.registry().Find(spec.function);
  if (def == nullptr) {
    return NotFound("bug host function " + spec.function + " is not in this dialect");
  }
  if (def->example.empty()) {
    return Internal("function " + spec.function + " has no registry example");
  }
  SOFT_ASSIGN_OR_RETURN(ExprPtr call, ParseExpression(def->example));
  if (call->kind != ExprKind::kFunctionCall) {
    return Internal("registry example of " + spec.function + " is not a call");
  }

  switch (spec.trigger) {
    case TriggerKind::kAlways:
      break;  // the example itself triggers
    case TriggerKind::kDistinctFlag:
      call->distinct_arg = true;
      break;
    case TriggerKind::kDistinctAndAllArgsString: {
      call->distinct_arg = true;
      for (ExprPtr& arg : call->args) {
        arg = MakeLiteral(Value::Str("zz"));
      }
      break;
    }
    case TriggerKind::kArgCountAtLeast: {
      while (static_cast<int64_t>(call->args.size()) < spec.threshold) {
        call->args.push_back(call->args.front()->Clone());
      }
      break;
    }
    case TriggerKind::kCastTargetIs:
      return "SELECT CAST('1' AS " + std::string(TypeKindName(spec.param_type)) + ")";
    default: {
      SOFT_ASSIGN_OR_RETURN(ExprPtr boundary, TriggerArgExpr(db, spec));
      const size_t index = spec.arg_index >= 0 ? static_cast<size_t>(spec.arg_index) : 0;
      while (call->args.size() <= index) {
        call->args.push_back(MakeLiteral(Value::Int(1)));
      }
      call->args[index] = std::move(boundary);
    }
  }
  return "SELECT " + call->ToSql();
}

const std::vector<std::string>& LogicOraclePrerequisites() {
  static const std::vector<std::string>* const kPrereqs = new std::vector<std::string>{
      "CREATE TABLE logic_t (a INT, b STRING, c DOUBLE)",
      "INSERT INTO logic_t VALUES (1, 'alpha', 1.5), (2, 'beta', 2.5), "
      "(3, 'gamma', 3.5)",
  };
  return *kPrereqs;
}

Result<std::string> BuildLogicPocSql(const Database& db, const LogicBugSpec& spec) {
  if (db.registry().Find(spec.function) == nullptr) {
    return NotFound("logic bug host function " + spec.function +
                    " is not in this dialect");
  }
  // WHERE-scope bugs need the function inside a predicate over real rows;
  // every prerequisite row satisfies FN(a) >= 1 on a clean engine, so any
  // seeded perturbation moves the COUNT.
  if (spec.scope == LogicScope::kWherePredicate) {
    return "SELECT COUNT(*) FROM logic_t WHERE " + spec.function + "(a) >= 1";
  }
  // Argument/call scopes reuse the crash-PoC splicer: the registry example is
  // a top-level call with constant arguments, which is exactly the shape both
  // kConstArgs and kTopLevelCall key on.
  BugSpec shape;
  shape.function = spec.function;
  shape.trigger = spec.trigger;
  shape.arg_index = spec.arg_index;
  shape.threshold = spec.threshold;
  shape.param_type = spec.param_type;
  shape.param_text = spec.param_text;
  return BuildPocSql(db, shape);
}

}  // namespace soft
