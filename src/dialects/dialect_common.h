// Helpers shared by the dialect definitions. Internal to src/dialects.
#ifndef SRC_DIALECTS_DIALECT_COMMON_H_
#define SRC_DIALECTS_DIALECT_COMMON_H_

#include <initializer_list>
#include <memory>
#include <string>

#include "src/engine/database.h"

namespace soft {

// Removes a list of function names from a dialect's catalog.
inline void RemoveFunctions(FunctionRegistry& registry,
                            std::initializer_list<const char*> names) {
  for (const char* name : names) {
    registry.Remove(name);
  }
}

// Sequential-id bug inserter for one dialect.
class BugAdder {
 public:
  BugAdder(Database& db, std::string dbms) : db_(db), dbms_(std::move(dbms)) {}

  // Adds a spec with the next id; all BugSpec fields except id/dbms are taken
  // from `spec`.
  void Add(BugSpec spec) {
    spec.id = next_id_++;
    spec.dbms = dbms_;
    db_.faults().AddBug(std::move(spec));
  }

  int count() const { return next_id_ - 1; }

 private:
  Database& db_;
  std::string dbms_;
  int next_id_ = 1;
};

// Sequential-id inserter for a dialect's seeded wrong-result corpus. Logic
// bugs number from 501 so ids never collide with the Table 4 crash specs.
class LogicBugAdder {
 public:
  LogicBugAdder(Database& db, std::string dbms) : db_(db), dbms_(std::move(dbms)) {}

  void Add(LogicBugSpec spec) {
    spec.id = next_id_++;
    spec.dbms = dbms_;
    db_.faults().AddLogicBug(std::move(spec));
  }

 private:
  Database& db_;
  std::string dbms_;
  int next_id_ = 501;
};

}  // namespace soft

#endif  // SRC_DIALECTS_DIALECT_COMMON_H_
