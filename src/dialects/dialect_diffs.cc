#include "src/dialects/dialect_diffs.h"

#include <algorithm>

#include "src/sqlparser/parser.h"

namespace soft {

const std::vector<std::string>& VolatileFunctions() {
  static const std::vector<std::string>* const kVolatile = new std::vector<std::string>{
      "NEXTVAL", "LASTVAL", "SETVAL", "LAST_INSERT_ID",
  };
  return *kVolatile;
}

bool SqlReferencesFunction(const std::string& sql, const std::vector<std::string>& names) {
  Result<Statement> parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return false;
  }
  Statement stmt = std::move(parsed).value();
  SelectStmt* sel = stmt.mutable_select();
  if (sel == nullptr) {
    return false;
  }
  std::vector<Expr*> calls;
  sel->CollectFunctionCalls(calls);
  for (const Expr* call : calls) {
    if (std::find(names.begin(), names.end(), call->func_name) != names.end()) {
      return true;
    }
  }
  return false;
}

bool OracleComparable(const std::string& sql) {
  Result<Statement> parsed = ParseStatement(sql);
  if (!parsed.ok() || !parsed->is_select()) {
    return false;
  }
  return !SqlReferencesFunction(sql, VolatileFunctions());
}

std::string CanonicalResultKey(const StatementResult& r) {
  std::string key = std::to_string(r.rows.size());
  key += "x";
  key += std::to_string(r.columns.size());
  for (const ValueList& row : r.rows) {
    key += "\n";
    for (const Value& v : row) {
      key += TypeKindName(v.kind());
      key += ":";
      key += v.ToDisplayString();
      key += "|";
    }
  }
  return key;
}

std::string_view DialectDiffClassName(DialectDiffClass c) {
  switch (c) {
    case DialectDiffClass::kIdentical:
      return "identical";
    case DialectDiffClass::kDeclaredDifference:
      return "declared_difference";
    case DialectDiffClass::kDivergence:
      return "divergence";
  }
  return "?";
}

DialectDiffClass ClassifyDifferential(const StatementResult& main,
                                      const StatementResult& sibling) {
  // Any non-OK outcome on either side is a declared axis: the sibling may
  // lack the function (catalog pruning), reject a coercion (strictness), or
  // hit its own injected crash corpus. Error/crash DETAILS are per-dialect
  // by design, so two failures are never compared further.
  if (!main.ok() || !sibling.ok()) {
    return DialectDiffClass::kDeclaredDifference;
  }
  return CanonicalResultKey(main) == CanonicalResultKey(sibling)
             ? DialectDiffClass::kIdentical
             : DialectDiffClass::kDivergence;
}

}  // namespace soft
