// Branch coverage instrumentation for the SQL-function component.
//
// Tables 5 and 6 of the paper compare testing tools by (a) how many built-in
// SQL functions their generated statements trigger and (b) how many code
// branches of the DBMSs' SQL-function modules they cover. Our engine's
// function implementations report branch hits through this tracker: every
// call to FunctionContext::Cover(id) marks branch (current_function, id).
// Branch ids are placed at the real decision points of the implementations
// (argument-kind dispatch, validation branches, boundary checks), so a tool
// that never constructs boundary arguments genuinely covers fewer branches.
#ifndef SRC_COVERAGE_COVERAGE_H_
#define SRC_COVERAGE_COVERAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace soft {

class CoverageTracker {
 public:
  // Marks branch `branch_id` of `function` as covered and the function as
  // triggered.
  void Hit(const std::string& function, int branch_id);

  // Marks a function as triggered without a branch (entry hit, branch 0).
  void Trigger(const std::string& function) { Hit(function, 0); }

  size_t TriggeredFunctionCount() const { return functions_.size(); }
  size_t CoveredBranchCount() const { return branches_.size(); }

  std::vector<std::string> TriggeredFunctions() const;

  // Per-function covered-branch counts (sorted by function name).
  std::vector<std::pair<std::string, int>> BranchCountsByFunction() const;

  // Merges another tracker's hits into this one (used to union coverage
  // across a campaign's statements, mirroring the paper's query replay).
  void MergeFrom(const CoverageTracker& other);

  void Reset();

  // Raw branch keys ("FUNC#id"), sorted — with RestoreBranchKey this lets a
  // worker child serialize its tracker over the supervisor pipe and the
  // parent rebuild an identical one (src/soft/worker.cc).
  std::vector<std::string> BranchKeys() const;
  void RestoreBranchKey(const std::string& key);

 private:
  std::unordered_set<std::string> functions_;
  // Key: "FUNC#id".
  std::unordered_set<std::string> branches_;
};

}  // namespace soft

#endif  // SRC_COVERAGE_COVERAGE_H_
