#include "src/coverage/coverage.h"

#include <algorithm>
#include <map>

namespace soft {

void CoverageTracker::Hit(const std::string& function, int branch_id) {
  functions_.insert(function);
  branches_.insert(function + "#" + std::to_string(branch_id));
}

std::vector<std::string> CoverageTracker::TriggeredFunctions() const {
  std::vector<std::string> out(functions_.begin(), functions_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, int>> CoverageTracker::BranchCountsByFunction() const {
  std::map<std::string, int> counts;
  for (const std::string& key : branches_) {
    const size_t hash_pos = key.rfind('#');
    counts[key.substr(0, hash_pos)] += 1;
  }
  return {counts.begin(), counts.end()};
}

void CoverageTracker::MergeFrom(const CoverageTracker& other) {
  functions_.insert(other.functions_.begin(), other.functions_.end());
  branches_.insert(other.branches_.begin(), other.branches_.end());
}

void CoverageTracker::Reset() {
  functions_.clear();
  branches_.clear();
}

std::vector<std::string> CoverageTracker::BranchKeys() const {
  std::vector<std::string> out(branches_.begin(), branches_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void CoverageTracker::RestoreBranchKey(const std::string& key) {
  const size_t hash_pos = key.rfind('#');
  if (hash_pos == std::string::npos) {
    return;  // not a key this tracker produced
  }
  functions_.insert(key.substr(0, hash_pos));
  branches_.insert(key);
}

}  // namespace soft
