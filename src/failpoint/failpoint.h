// Failpoint fault injection for the harness's own error paths.
//
// The paper's core finding is that DBMS bugs hide in rarely-exercised
// boundary and error paths — and the same is true of the fuzzing harness
// itself: allocation failures, short or failed writes, torn journals and a
// lost telemetry sink are exactly the paths a long campaign exercises only
// when something is already going wrong. This registry lets tests and chaos
// campaigns (docs/ROBUSTNESS.md, "Failpoints and chaos campaigns") arm those
// paths deterministically and prove the campaign degrades gracefully instead
// of crashing or corrupting state.
//
// Usage at an instrumented site (Status- or Result<T>-returning function):
//
//   Status Database::CreateTable(...) {
//     SOFT_FAILPOINT("catalog.create");   // returns InjectedStatus when fired
//     ...
//   }
//
// or, where the site handles the fault itself (retry loops, degradation):
//
//   if (SOFT_FAILPOINT_HIT("io.eintr")) { /* simulate EINTR */ }
//
// Modes (armed via Arm or the --chaos spec syntax, see ArmFromSpec):
//
//   off          never fires
//   error        fires on every evaluation
//   prob:P       fires with probability P per evaluation (deterministic
//                generator, reseedable via SetProbabilitySeed)
//   after:N[:M]  passes the first N evaluations, then fires (at most M
//                times when M is given, forever otherwise)
//   oom[:N]      throws std::bad_alloc ([after N passes]); the engine's
//                statement pipeline catches it and surfaces
//                kResourceExhausted
//
// Zero overhead when disabled: with -DSOFT_FAILPOINTS=OFF every macro folds
// to nothing and the API below collapses to inline no-op stubs, so no object
// in the tree references a registry symbol (CI proves it with an nm guard,
// mirroring the telemetry guard). With failpoints compiled in but none
// armed, each site costs one relaxed atomic load.
//
// Determinism: every mode is a pure function of the site's evaluation
// counter (and the reseedable probability stream) — never of wall clock or
// address-space layout. Counters are process-global, so after-N firing in a
// *threaded* sharded campaign depends on shard interleaving; the chaos
// oracle therefore demands bit-identical campaign results only for sites
// whose faults are retried or absorbed (SiteClass kIoRetry / kDegrade),
// which hold regardless of which thread drew the injected failure.
#ifndef SRC_FAILPOINT_FAILPOINT_H_
#define SRC_FAILPOINT_FAILPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {
namespace failpoint {

enum class Mode {
  kOff = 0,
  kError,        // fire every evaluation
  kProbability,  // fire with probability p
  kAfterN,       // pass N evaluations, then fire (optionally at most M times)
  kOomThrow,     // throw std::bad_alloc instead of returning an error
};

inline std::string_view ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kError:
      return "error";
    case Mode::kProbability:
      return "prob";
    case Mode::kAfterN:
      return "after";
    case Mode::kOomThrow:
      return "oom";
  }
  return "unknown";
}

// What kind of failure a site injects — drives both the Status code the
// SOFT_FAILPOINT macro returns and the chaos enumerator's oracle for the
// site (src/soft/chaos.h).
enum class SiteClass {
  // Statement-pipeline site: the fault surfaces as kResourceExhausted on the
  // statement, which campaigns already classify (false positive / SQL
  // error). Oracle: campaign completes cleanly and is run-to-run
  // deterministic under the same armed spec.
  kEngine,
  // Transient I/O site inside a retry loop (EINTR, short write): the site
  // absorbs the fault. Oracle: campaign results and artifacts bit-identical
  // to the uninjected run.
  kIoRetry,
  // Persistent I/O site (open/write/fsync/rename of an artifact file): the
  // fault surfaces as kIoError naming the path, and no partial artifact is
  // left behind. Oracle: the caller reports the error; retrying after
  // disarm produces the identical artifact.
  kIoError,
  // Telemetry-sink site: the campaign continues without the sink and
  // records CampaignResult::journal_degraded. Oracle: bug set and counters
  // bit-identical to the uninjected run; journal_degraded set.
  kDegrade,
};

inline std::string_view SiteClassName(SiteClass site_class) {
  switch (site_class) {
    case SiteClass::kEngine:
      return "engine";
    case SiteClass::kIoRetry:
      return "io-retry";
    case SiteClass::kIoError:
      return "io-error";
    case SiteClass::kDegrade:
      return "degrade";
  }
  return "unknown";
}

struct SiteInfo {
  std::string_view name;
  SiteClass site_class;
  std::string_view where;  // instrumented location (docs/ROBUSTNESS.md table)
};

// Central inventory of every instrumented site. ChaosEnumerator iterates
// this table; Arm/ArmFromSpec reject names that are not in it, so the table
// cannot silently drift from the instrumentation (tests/failpoint_test.cc
// cross-checks the macro call sites against it).
inline constexpr std::array<SiteInfo, 27> kInventory = {{
    {"parse.enter", SiteClass::kEngine, "ParseStatement entry (src/sqlparser/parser.cc)"},
    {"parse.expr", SiteClass::kEngine, "expression parser (src/sqlparser/parser.cc)"},
    {"optimize.enter", SiteClass::kEngine, "OptimizeStatement entry (src/engine/optimizer.cc)"},
    {"optimize.expr", SiteClass::kEngine, "optimizer expression walk (src/engine/optimizer.cc)"},
    {"eval.enter", SiteClass::kEngine, "Evaluator::Eval entry (src/engine/evaluator.cc)"},
    {"eval.function", SiteClass::kEngine, "function-call evaluation (src/engine/evaluator.cc)"},
    {"eval.subquery", SiteClass::kEngine, "scalar subquery evaluation (src/engine/evaluator.cc)"},
    {"exec.select", SiteClass::kEngine, "RunSelect entry (src/engine/select_executor.cc)"},
    {"catalog.create", SiteClass::kEngine, "Database::CreateTable (src/engine/database.cc)"},
    {"catalog.drop", SiteClass::kEngine, "Database::DropTable (src/engine/database.cc)"},
    {"catalog.insert", SiteClass::kEngine, "Database::Insert (src/engine/database.cc)"},
    {"campaign.checkpoint_sink", SiteClass::kDegrade,
     "campaign checkpoint emission (src/soft/soft_fuzzer.cc, src/baselines)"},
    {"journal.checkpoint_write", SiteClass::kDegrade,
     "WriteCheckpointRecord (src/telemetry/journal.cc)"},
    {"io.eintr", SiteClass::kIoRetry, "RetryingWriter::WriteAll (src/util/io.cc)"},
    {"io.short_write", SiteClass::kIoRetry, "RetryingWriter::WriteAll (src/util/io.cc)"},
    {"io.open", SiteClass::kIoError, "WriteFileAtomic open (src/util/io.cc)"},
    {"io.write", SiteClass::kIoError, "WriteFileAtomic write (src/util/io.cc)"},
    {"io.fsync", SiteClass::kIoError, "WriteFileAtomic fsync (src/util/io.cc)"},
    {"io.rename", SiteClass::kIoError, "WriteFileAtomic rename (src/util/io.cc)"},
    {"worker.fork", SiteClass::kIoRetry, "worker fork (src/soft/worker.cc)"},
    {"worker.pipe_write", SiteClass::kIoRetry, "worker pipe line write (src/soft/worker.cc)"},
    {"worker.pipe_read", SiteClass::kIoRetry, "supervisor pipe read (src/soft/worker.cc)"},
    // Fleet sites are kIoRetry: the coordinator absorbs each fault through
    // reconnect / lease-reclaim / work-stealing, and the merged campaign
    // stays bit-identical. Their oracles live in the fleet's own enumerator
    // (soft::fleet::RunFleetChaosEnumeration) because the core chaos library
    // cannot depend on the fleet library; RunChaosEnumeration reports them
    // as delegated.
    {"fleet.accept", SiteClass::kIoRetry, "coordinator accept (src/fleet/coordinator.cc)"},
    {"fleet.lease_grant", SiteClass::kIoRetry, "lease GRANT send (src/fleet/coordinator.cc)"},
    {"fleet.heartbeat_rx", SiteClass::kIoRetry, "heartbeat receive (src/fleet/coordinator.cc)"},
    {"fleet.result_rx", SiteClass::kIoRetry, "unit result receive (src/fleet/coordinator.cc)"},
    {"fleet.worker_spawn", SiteClass::kIoRetry, "worker spawn (src/fleet/coordinator.cc)"},
}};

// Inventory lookup; nullptr for unknown names. Header-inline so it exists in
// every build configuration without referencing the registry library.
inline const SiteInfo* FindSite(std::string_view name) {
  for (const SiteInfo& site : kInventory) {
    if (site.name == name) {
      return &site;
    }
  }
  return nullptr;
}

// True when the registry is compiled in (-DSOFT_FAILPOINTS=ON, the default).
#ifdef SOFT_FAILPOINTS_ENABLED
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

struct SiteStats {
  uint64_t evaluations = 0;  // times the armed site was evaluated
  uint64_t fires = 0;        // times it injected a fault
};

#ifdef SOFT_FAILPOINTS_ENABLED

// True when at least one failpoint is armed (one relaxed atomic load — the
// whole per-site cost of an idle registry).
bool AnyArmed();

// Evaluates the armed configuration for `name`; true means the site must
// inject its fault now. Throws std::bad_alloc when the site is armed in
// kOomThrow mode and elects to fire. Unarmed/unknown names never fire.
// Thread-safe; the evaluation counter orders concurrent calls arbitrarily
// (see the determinism note above).
bool Evaluate(std::string_view name);

// Arms `name` (resetting its counters). `skip` = evaluations to pass before
// the site becomes eligible; `fire_limit` = maximum fires (-1 unlimited);
// `probability` only read in kProbability mode. Mode kOff disarms. Fails on
// names missing from kInventory and on probabilities outside [0, 1].
Status Arm(std::string_view name, Mode mode, double probability = 0.0,
           uint64_t skip = 0, int64_t fire_limit = -1);

// Arms a comma-separated chaos spec: "name=mode[:a[:b]]{,name=...}", e.g.
//   --chaos=eval.enter=after:50,io.short_write=after:0:3
//   --chaos=journal.checkpoint_write=error
//   --chaos=eval.function=prob:0.01
// Fails (arming nothing further) on the first malformed entry.
Status ArmFromSpec(std::string_view spec);

// Disarm one site / every site. DisarmAll also resets the probability
// stream so consecutive chaos runs are reproducible.
void Disarm(std::string_view name);
void DisarmAll();

// Reseeds the deterministic generator behind prob:P sites (default seed is
// fixed, so runs are reproducible without calling this).
void SetProbabilitySeed(uint64_t seed);

// Counters for an armed site (zeroes for unarmed/unknown names).
SiteStats Stats(std::string_view name);

// The Status the SOFT_FAILPOINT macro returns for a fired site, derived
// from the site's class: kEngine → kResourceExhausted, the I/O classes →
// kIoError. Deterministic (the message names only the site).
Status InjectedStatus(std::string_view name);

#else  // !SOFT_FAILPOINTS_ENABLED — the API folds to inline no-op stubs so
       // nothing in the tree references a registry symbol (nm-guarded in CI).

inline bool AnyArmed() { return false; }
inline bool Evaluate(std::string_view) { return false; }
inline Status Arm(std::string_view, Mode, double = 0.0, uint64_t = 0, int64_t = -1) {
  return Unsupported("failpoints compiled out (-DSOFT_FAILPOINTS=OFF)");
}
inline Status ArmFromSpec(std::string_view) {
  return Unsupported("failpoints compiled out (-DSOFT_FAILPOINTS=OFF)");
}
inline void Disarm(std::string_view) {}
inline void DisarmAll() {}
inline void SetProbabilitySeed(uint64_t) {}
inline SiteStats Stats(std::string_view) { return {}; }
inline Status InjectedStatus(std::string_view) { return OkStatus(); }

#endif  // SOFT_FAILPOINTS_ENABLED

// RAII arm/disarm for tests: arms in the constructor, disarms that site on
// destruction. No-op (status() reports Unsupported) when compiled out.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, Mode mode, double probability = 0.0,
                  uint64_t skip = 0, int64_t fire_limit = -1)
      : name_(name), status_(Arm(name, mode, probability, skip, fire_limit)) {}
  ~ScopedFailpoint() { Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const Status& status() const { return status_; }

 private:
  std::string name_;
  Status status_;
};

}  // namespace failpoint
}  // namespace soft

// Site macros. SOFT_FAILPOINT returns InjectedStatus out of the enclosing
// Status-/Result<T>-returning function when the site fires; SOFT_FAILPOINT_HIT
// is the bare boolean for sites that absorb the fault themselves.
#ifdef SOFT_FAILPOINTS_ENABLED

#define SOFT_FAILPOINT_HIT(name) \
  (::soft::failpoint::AnyArmed() && ::soft::failpoint::Evaluate(name))

#define SOFT_FAILPOINT(name)                          \
  do {                                                \
    if (SOFT_FAILPOINT_HIT(name)) {                   \
      return ::soft::failpoint::InjectedStatus(name); \
    }                                                 \
  } while (false)

#else

#define SOFT_FAILPOINT_HIT(name) (false)
#define SOFT_FAILPOINT(name) \
  do {                       \
  } while (false)

#endif  // SOFT_FAILPOINTS_ENABLED

#endif  // SRC_FAILPOINT_FAILPOINT_H_
