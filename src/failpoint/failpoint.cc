#include "src/failpoint/failpoint.h"

#ifdef SOFT_FAILPOINTS_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <vector>

namespace soft {
namespace failpoint {

namespace {

// Local split (keeps empty fields) so this library has no link dependency:
// Status construction is header-inline, so soft_failpoint can sit below
// soft_util, whose io.cc instruments failpoint sites.
std::vector<std::string> SplitSpec(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

struct SiteState {
  Mode mode = Mode::kOff;
  double probability = 0.0;
  uint64_t skip = 0;        // evaluations to pass before becoming eligible
  int64_t fire_limit = -1;  // max fires, -1 = unlimited
  SiteStats stats;
};

constexpr uint64_t kDefaultProbabilitySeed = 0x5af7f01d2026ULL;

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;  // guarded by mu
  uint64_t prob_state = kDefaultProbabilitySeed;        // guarded by mu
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives exit hooks
  return *registry;
}

// Count of armed sites; the fast path at every instrumented site is a single
// relaxed load of this counter being zero.
std::atomic<int> g_armed_count{0};

// splitmix64 — same deterministic stream generator family the campaign RNG
// fingerprints use; no platform dependence, reseedable for reproducibility.
uint64_t NextProbDraw(Registry& registry) {
  registry.prob_state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = registry.prob_state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

bool Evaluate(std::string_view name) {
  Registry& registry = GetRegistry();
  bool throw_oom = false;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.sites.find(name);
    if (it == registry.sites.end()) {
      return false;
    }
    SiteState& state = it->second;
    uint64_t ordinal = state.stats.evaluations++;
    if (ordinal < state.skip) {
      return false;
    }
    if (state.fire_limit >= 0 &&
        state.stats.fires >= static_cast<uint64_t>(state.fire_limit)) {
      return false;
    }
    switch (state.mode) {
      case Mode::kOff:
        break;
      case Mode::kError:
      case Mode::kAfterN:
        fired = true;
        break;
      case Mode::kOomThrow:
        fired = true;
        throw_oom = true;
        break;
      case Mode::kProbability: {
        // Top 53 bits → uniform double in [0, 1).
        double draw =
            static_cast<double>(NextProbDraw(registry) >> 11) * 0x1.0p-53;
        fired = draw < state.probability;
        break;
      }
    }
    if (fired) {
      ++state.stats.fires;
    }
  }
  if (throw_oom) {
    throw std::bad_alloc();
  }
  return fired;
}

Status Arm(std::string_view name, Mode mode, double probability, uint64_t skip,
           int64_t fire_limit) {
  const SiteInfo* site = FindSite(name);
  if (site == nullptr) {
    return InvalidArgument("unknown failpoint '" + std::string(name) +
                           "' (not in failpoint::kInventory)");
  }
  if (mode == Mode::kProbability && !(probability >= 0.0 && probability <= 1.0)) {
    return InvalidArgument("failpoint '" + std::string(name) +
                           "': probability must be in [0, 1]");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (mode == Mode::kOff) {
    if (it != registry.sites.end()) {
      registry.sites.erase(it);
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
    return OkStatus();
  }
  if (it == registry.sites.end()) {
    it = registry.sites.emplace(std::string(name), SiteState{}).first;
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = SiteState{mode, probability, skip, fire_limit, SiteStats{}};
  return OkStatus();
}

namespace {

// One "name=mode[:a[:b]]" entry of a chaos spec.
Status ArmOneSpec(std::string_view entry) {
  size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return InvalidArgument("chaos spec entry '" + std::string(entry) +
                           "' is not name=mode[:a[:b]]");
  }
  std::string_view name = entry.substr(0, eq);
  std::string_view mode_spec = entry.substr(eq + 1);
  std::vector<std::string> parts = SplitSpec(mode_spec, ':');
  if (parts.empty() || parts[0].empty()) {
    return InvalidArgument("chaos spec entry '" + std::string(entry) +
                           "' has an empty mode");
  }
  const std::string& mode_name = parts[0];
  auto parse_u64 = [&](const std::string& text, uint64_t* out) -> bool {
    if (text.empty()) return false;
    uint64_t value = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return true;
  };
  auto bad = [&](const char* why) {
    return InvalidArgument("chaos spec entry '" + std::string(entry) + "': " +
                           why);
  };
  if (mode_name == "off") {
    if (parts.size() != 1) return bad("off takes no arguments");
    return Arm(name, Mode::kOff);
  }
  if (mode_name == "error") {
    if (parts.size() != 1) return bad("error takes no arguments");
    return Arm(name, Mode::kError);
  }
  if (mode_name == "prob") {
    if (parts.size() != 2) return bad("prob takes exactly one argument (prob:P)");
    char* end = nullptr;
    double p = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0') {
      return bad("prob argument is not a number");
    }
    return Arm(name, Mode::kProbability, p);
  }
  if (mode_name == "after") {
    if (parts.size() != 2 && parts.size() != 3) {
      return bad("after takes one or two arguments (after:N[:M])");
    }
    uint64_t skip = 0;
    if (!parse_u64(parts[1], &skip)) return bad("after:N is not a number");
    int64_t fire_limit = -1;
    if (parts.size() == 3) {
      uint64_t limit = 0;
      if (!parse_u64(parts[2], &limit)) return bad("after:N:M is not a number");
      fire_limit = static_cast<int64_t>(limit);
    }
    return Arm(name, Mode::kAfterN, 0.0, skip, fire_limit);
  }
  if (mode_name == "oom") {
    if (parts.size() != 1 && parts.size() != 2) {
      return bad("oom takes at most one argument (oom[:N])");
    }
    uint64_t skip = 0;
    if (parts.size() == 2 && !parse_u64(parts[1], &skip)) {
      return bad("oom:N is not a number");
    }
    return Arm(name, Mode::kOomThrow, 0.0, skip);
  }
  return bad("unknown mode (expected off|error|prob:P|after:N[:M]|oom[:N])");
}

}  // namespace

Status ArmFromSpec(std::string_view spec) {
  if (spec.empty()) {
    return InvalidArgument("empty chaos spec");
  }
  for (const std::string& entry : SplitSpec(spec, ',')) {
    if (entry.empty()) {
      continue;
    }
    SOFT_RETURN_IF_ERROR(ArmOneSpec(entry));
  }
  return OkStatus();
}

void Disarm(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it != registry.sites.end()) {
    registry.sites.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed_count.fetch_sub(static_cast<int>(registry.sites.size()),
                          std::memory_order_relaxed);
  registry.sites.clear();
  registry.prob_state = kDefaultProbabilitySeed;
}

void SetProbabilitySeed(uint64_t seed) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.prob_state = seed;
}

SiteStats Stats(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.sites.find(name);
  if (it == registry.sites.end()) {
    return SiteStats{};
  }
  return it->second.stats;
}

Status InjectedStatus(std::string_view name) {
  const SiteInfo* site = FindSite(name);
  std::string message = "injected fault at failpoint '" + std::string(name) + "'";
  if (site == nullptr || site->site_class == SiteClass::kEngine) {
    return ResourceExhausted(std::move(message));
  }
  return IoError(std::move(message));
}

}  // namespace failpoint
}  // namespace soft

#endif  // SOFT_FAILPOINTS_ENABLED
