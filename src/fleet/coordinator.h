// Fleet coordinator: lease-based campaign distribution over a Unix-domain
// socket (docs/ROBUSTNESS.md).
//
// RunFleetCampaign promotes one SOFT campaign into a coordinator process
// that partitions the case order into `units` fixed work units (shards of a
// ShardMode::kPartitionCases plan — the unit count, not the worker count,
// defines the partition), leases them to worker processes speaking the
// src/fleet/worker_client.h line protocol, and merges the returned unit
// results with the deterministic shard merge. Consequences, all by
// construction:
//
//   * the merged outcome digest is bit-identical to `--shards=units` at any
//     worker count, and the bug-inventory digest (DigestBugInventory) is
//     bit-identical to the plain serial campaign;
//   * a worker crash loses nothing: its leases expire (missed heartbeats)
//     or are reclaimed on disconnect, surviving workers steal the units,
//     and the re-executed unit produces the identical result;
//   * the coordinator journals every lease transition (NDJSON `lease`,
//     `worker_death`, `fleet_finish` events — docs/OBSERVABILITY.md) and
//     spools completed unit results crash-atomically, so `resume = true`
//     after a coordinator kill -9 re-admits spooled units whose recomputed
//     digest matches the journal and re-runs only the rest.
//
// Degrade ladder when the worker pool collapses (respawn budget exhausted,
// or workers == 0 and nothing attached within the lease deadline): the
// coordinator runs the remaining units in-process via ExecuteShardPlan —
// the campaign always completes, merely slower.
//
// A read-only STATUS request on the same socket streams an NDJSON snapshot
// (campaign counters, per-pattern telemetry of merged-so-far units,
// worker/lease state, recent journal events) and closes.
#ifndef SRC_FLEET_COORDINATOR_H_
#define SRC_FLEET_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/soft/campaign.h"
#include "src/soft/chaos.h"
#include "src/util/status.h"

namespace soft {
namespace fleet {

inline constexpr int kDefaultUnits = 8;

struct FleetOptions {
  std::string socket_path;
  // Local worker processes to fork (0 = serve external attach workers only;
  // the campaign degrades to local execution if none attach in time).
  int workers = 2;
  // Work units the campaign is partitioned into (0 → kDefaultUnits). The
  // unit count — not the worker count — defines the case partition, so the
  // merged result is invariant under the worker count.
  int units = 0;
  // Worker heartbeat cadence in executed cases (becomes the unit campaign's
  // checkpoint_every).
  int heartbeat_every = 200;
  // Lease deadline: a leased unit whose worker misses heartbeats for this
  // long is reclaimed and re-granted (work stealing).
  int lease_deadline_ms = 10000;
  // Worker deaths the coordinator will answer with a respawn (bounded
  // exponential backoff) before giving up on the pool.
  int max_worker_respawns = 4;
  int backoff_initial_ms = 5;
  int backoff_max_ms = 200;
  // NDJSON journal the coordinator streams lease state to (empty = none;
  // resume requires one). docs/OBSERVABILITY.md documents the events.
  std::string journal_path;
  // Spool directory for completed unit results (wire blocks, written
  // crash-atomically). Empty defaults to journal_path + ".units" when a
  // journal is configured, else no spool (resume then re-runs everything).
  std::string spool_dir;
  // Resume a coordinator killed mid-campaign from journal_path: spooled
  // units whose digest matches the journaled lease record are re-admitted,
  // the rest re-run. The merged result is bit-identical to an uninterrupted
  // run either way.
  bool resume = false;

  // --- Test hooks (tests/fleet_test.cc): the first spawned worker gets the
  // corresponding worker_client chaos knob, ordinal = the value.
  int test_kill_worker_at_unit = -1;
  int test_hang_worker_at_unit = -1;
};

struct FleetStats {
  int units = 0;
  int workers_spawned = 0;
  int worker_deaths = 0;
  int leases_granted = 0;
  int leases_reclaimed = 0;
  int leases_stolen = 0;
  int heartbeats = 0;
  int units_completed = 0;     // accepted unit results (any executor)
  int units_run_locally = 0;   // executed in-process on the degrade path
  int units_resumed = 0;       // re-admitted from the spool on resume
  int units_spool_diverged = 0;  // spool digest mismatches (re-run instead)
  bool degraded_to_local = false;
};

struct FleetOutcome {
  CampaignResult result;
  FleetStats stats;
};

// Runs one fleet campaign: SOFT against MakeDialect(`dialect`), coordinator
// in-process, workers forked (plus any external attachers). `options` is the
// campaign spec shipped to workers inside GRANT lines; its checkpoint_sink /
// checkpoint_every are ignored (heartbeats ride that mechanism) and
// crash_realism must be kSimulated — fleet workers are already process
// isolation. Blocks until the merged campaign completes.
Result<FleetOutcome> RunFleetCampaign(const std::string& dialect,
                                      const CampaignOptions& options,
                                      const FleetOptions& fleet);

// What a fleet --resume needs from the interrupted coordinator's journal.
struct FleetResumeSpec {
  std::string dialect;
  uint64_t seed = 0;
  int budget = 0;
  int units = 0;
  bool finished = false;
  // unit → journaled unit-result digest, from lease complete/resume events
  // (last record wins). Only spooled results matching these digests are
  // re-admitted.
  std::map<int, uint64_t> completed;
};

// Parses a fleet journal into a resume spec. Unlike LoadResumeSpec this
// accepts multi-shard (units > 1) journals — fleet units checkpoint into
// the spool, not the journal's checkpoint stream.
Result<FleetResumeSpec> LoadFleetResumeSpec(const std::string& journal_path);

// Chaos oracle for the five fleet.* failpoint sites (delegated to here by
// soft::RunChaosEnumeration — soft_core cannot link this library). Each site
// is armed to fire once during a small real socket campaign; the oracle is
// that the injected fault is absorbed by the lease/steal/respawn ladder and
// the merged digest stays bit-identical to the uninjected `--shards=units`
// reference. Exposed as `find_bugs --chaos=fleet`.
ChaosReport RunFleetChaosEnumeration(const std::string& dialect, int budget);

// Status client: connects to a serving coordinator, sends STATUS, and
// returns the NDJSON payload (one event per line). Fails when nothing is
// listening.
Result<std::string> QueryFleetStatus(const std::string& socket_path);

}  // namespace fleet
}  // namespace soft

#endif  // SRC_FLEET_COORDINATOR_H_
