#include "src/fleet/coordinator.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/failpoint/failpoint.h"
#include "src/fleet/lease.h"
#include "src/fleet/worker_client.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/soft_fuzzer.h"
#include "src/soft/wire.h"
#include "src/telemetry/journal.h"
#include "src/util/io.h"

namespace soft {
namespace fleet {
namespace {

constexpr int kJournalRing = 16;  // recent journal lines kept for STATUS

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string JoinOracles(const std::vector<std::string>& oracles) {
  std::string joined;
  for (const std::string& name : oracles) {
    if (!joined.empty()) {
      joined += ',';
    }
    joined += name;
  }
  return joined;
}

// The unit campaign options a GRANT line describes — built identically by
// the coordinator's degrade-to-local path and by RunFleetWorker's grant
// parser, so a unit executes bit-identically wherever it lands. Note the
// GRANT vocabulary is the determinism-relevant subset of CampaignOptions
// (seed, budget, partition, stop rule, watchdog deadline, oracles, trace
// sampling); checkpoint sinks are transport-local and fuel/row limits are
// not shipped.
ShardPlan UnitPlan(const CampaignOptions& base, int unit, int units,
                   int heartbeat_every) {
  ShardPlan plan;
  plan.shard = unit;
  plan.options.seed = base.seed;
  plan.options.max_statements = base.max_statements;
  plan.options.shard_index = unit;
  plan.options.shard_count = units;
  plan.options.stop_when_all_bugs_found = base.stop_when_all_bugs_found;
  plan.options.statement_limits.deadline_ms = base.statement_limits.deadline_ms;
  plan.options.trace_sample = base.trace_sample;
  plan.options.logic_oracles = base.logic_oracles;
  plan.options.checkpoint_every = heartbeat_every;
  return plan;
}

std::string EncodeGrant(const CampaignOptions& base, const std::string& dialect,
                        int unit, int units, int heartbeat_every,
                        uint64_t campaign_base_ns) {
  std::string line = "GRANT " + std::to_string(unit) + " " + std::to_string(units) +
                     " " + std::to_string(base.seed) + " " +
                     std::to_string(base.max_statements) + " " +
                     wire::HexEncode(dialect) + " " +
                     std::to_string(base.stop_when_all_bugs_found ? 1 : 0) + " " +
                     std::to_string(base.statement_limits.deadline_ms) + " " +
                     std::to_string(base.trace_sample) + " " +
                     std::to_string(heartbeat_every) + " " +
                     std::to_string(campaign_base_ns) + " " +
                     wire::HexEncode(JoinOracles(base.logic_oracles));
  return line + "\n";
}

// Serializes a completed unit's result block for the spool (the same wire
// records the socket carries, '\n'-framed).
std::string SpoolEncode(const ShardResult& outcome) {
  std::string out;
  wire::WriteResultBlock(
      [&out](const std::string& record) {
        out += record;
        out += '\n';
        return true;
      },
      outcome.result, outcome.coverage);
  return out;
}

bool SpoolDecode(const std::string& content, ShardResult& outcome) {
  wire::ResultBlock block;
  size_t start = 0;
  while (start < content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      break;  // torn tail — the atomic writer makes this unreachable, but
              // a hand-damaged spool must not parse as complete
    }
    if (!wire::ConsumeResultLine(content.substr(start, nl - start), block)) {
      return false;
    }
    start = nl + 1;
  }
  if (!block.complete) {
    return false;
  }
  outcome.result = std::move(block.result);
  outcome.coverage = std::move(block.coverage);
  return true;
}

std::string SpoolPath(const std::string& spool_dir, int unit) {
  return spool_dir + "/unit_" + std::to_string(unit) + ".wire";
}

// One connected peer: a worker (after HELLO), a status client, or a socket
// we have not classified yet.
struct Conn {
  int fd = -1;
  int worker = -1;  // assigned at HELLO; -1 until then
  int64_t pid = 0;
  bool waiting = false;        // REQ received, no unit was pending
  int collecting_unit = -1;    // UNIT received, result block in flight
  wire::ResultBlock block;
  wire::LineBuffer lines;
  int units_completed = 0;
  bool dead = false;
};

class Coordinator {
 public:
  Coordinator(const std::string& dialect, const CampaignOptions& options,
              const FleetOptions& fleet)
      : dialect_(dialect), options_(options), fleet_(fleet) {}

  Result<FleetOutcome> Run();

 private:
  // --- journal --------------------------------------------------------------
  void JournalEmit(const std::string& line) {
    ring_.push_back(line);
    while (ring_.size() > kJournalRing) {
      ring_.pop_front();
    }
    if (journal_.is_open()) {
      journal_ << line;
      journal_.flush();
    }
  }
  void JournalLease(const std::string& action, int unit, int worker, int cases,
                    uint64_t digest) {
    telemetry::JournalLeaseEvent event;
    event.action = action;
    event.unit = unit;
    event.worker = worker;
    event.cases = cases;
    event.unit_digest = digest;
    std::ostringstream line;
    telemetry::WriteLeaseEvent(line, event);
    JournalEmit(line.str());
  }
  void JournalWorkerDeath(const Conn& conn, const std::string& reason) {
    telemetry::JournalWorkerDeath event;
    event.worker = conn.worker;
    event.pid = conn.pid;
    event.units_completed = conn.units_completed;
    event.reason = reason;
    std::ostringstream line;
    telemetry::WriteWorkerDeathEvent(line, event);
    JournalEmit(line.str());
    ++stats_.worker_deaths;
  }

  // --- workers --------------------------------------------------------------
  void SpawnWorker() {
    // fleet.worker_spawn (chaos): the spawned worker SIGKILLs itself at its
    // first unit's grant acknowledgement — the injected fault the
    // lease-reclaim + work-stealing ladder must absorb.
    const bool chaos_kill = SOFT_FAILPOINT_HIT("fleet.worker_spawn");
    FleetWorkerOptions w;
    w.socket_path = fleet_.socket_path;
    w.backoff_initial_ms = fleet_.backoff_initial_ms;
    w.backoff_max_ms = fleet_.backoff_max_ms;
    if (chaos_kill) {
      w.kill9_at_unit = 0;
    }
    if (stats_.workers_spawned == 0) {
      if (fleet_.test_kill_worker_at_unit >= 0) {
        w.kill9_at_unit = fleet_.test_kill_worker_at_unit;
      }
      if (fleet_.test_hang_worker_at_unit >= 0) {
        w.hang_at_unit = fleet_.test_hang_worker_at_unit;
      }
    }
    ++stats_.workers_spawned;
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(listen_fd_);
      for (const Conn& conn : conns_) {
        if (conn.fd >= 0) {
          ::close(conn.fd);
        }
      }
      ::_exit(RunFleetWorker(w));
    }
    if (pid > 0) {
      children_.insert(pid);
    }
  }

  void ReapChildren() {
    for (auto it = children_.begin(); it != children_.end();) {
      int wstatus = 0;
      if (::waitpid(*it, &wstatus, WNOHANG) == *it) {
        it = children_.erase(it);
      } else {
        ++it;
      }
    }
  }

  int WorkerConnCount() const {
    int n = 0;
    for (const Conn& conn : conns_) {
      n += (!conn.dead && conn.worker >= 0) ? 1 : 0;
    }
    return n;
  }

  // --- lease/grant ----------------------------------------------------------
  void TryGrant(Conn& conn) {
    if (conn.worker < 0 || conn.dead) {
      return;
    }
    const uint64_t now = telemetry::MonotonicNowNs();
    const int unit = table_->Grant(conn.worker, now, lease_ns_);
    if (unit < 0) {
      conn.waiting = !table_->AllDone();
      return;
    }
    conn.waiting = false;
    const bool stolen = table_->Snapshot()[unit].reclaimed;
    JournalLease(stolen ? "steal" : "grant", unit, conn.worker, 0, 0);
    // fleet.lease_grant (chaos): the grant send fails — the connection drops,
    // the fresh lease is reclaimed immediately, and the worker reconnects.
    if (SOFT_FAILPOINT_HIT("fleet.lease_grant")) {
      DropConn(conn, "lease_grant fault injected");
      return;
    }
    io::RetryingWriter writer(conn.fd);
    if (!writer
             .WriteAll(EncodeGrant(options_, dialect_, unit, units_,
                                   fleet_.heartbeat_every, campaign_base_ns_))
             .ok()) {
      DropConn(conn, "grant write failed");
    }
  }

  void GrantWaiting() {
    for (Conn& conn : conns_) {
      if (!conn.dead && conn.waiting) {
        TryGrant(conn);
      }
    }
  }

  void DropConn(Conn& conn, const std::string& reason) {
    if (conn.dead) {
      return;
    }
    conn.dead = true;
    ::close(conn.fd);
    conn.fd = -1;
    if (conn.worker >= 0) {
      JournalWorkerDeath(conn, reason);
      for (const int unit : table_->ReclaimWorker(conn.worker)) {
        JournalLease("reclaim", unit, conn.worker, 0, 0);
      }
    }
  }

  // --- result intake --------------------------------------------------------
  void AcceptUnit(Conn& conn) {
    const int unit = conn.collecting_unit;
    conn.collecting_unit = -1;
    ShardResult outcome;
    outcome.result = std::move(conn.block.result);
    outcome.coverage = std::move(conn.block.coverage);
    conn.block = wire::ResultBlock();
    if (!table_->Complete(unit, conn.worker)) {
      return;  // stale lease (unit was reclaimed and completed elsewhere)
    }
    ++conn.units_completed;
    CommitUnit(unit, conn.worker, std::move(outcome));
  }

  void CommitUnit(int unit, int worker, ShardResult outcome) {
    const uint64_t digest = DigestCampaignResult(outcome.result);
    const int cases = outcome.result.statements_executed;
    if (!spool_dir_.empty()) {
      // Spool before journal: the `complete` record is the commit point a
      // resume trusts, so the bytes it vouches for must already be durable.
      static_cast<void>(io::WriteFileAtomic(SpoolPath(spool_dir_, unit),
                                            SpoolEncode(outcome)));
    }
    JournalLease("complete", unit, worker, cases, digest);
    results_[unit] = std::move(outcome);
    ++stats_.units_completed;
  }

  // --- per-line protocol dispatch -------------------------------------------
  void ProcessLine(Conn& conn, const std::string& line) {
    if (conn.collecting_unit >= 0) {
      if (!wire::ConsumeResultLine(line, conn.block)) {
        DropConn(conn, "malformed result block");
        return;
      }
      if (conn.block.complete) {
        AcceptUnit(conn);
      }
      return;
    }
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "HELLO") {
      int64_t pid = 0;
      in >> pid;
      conn.worker = next_worker_++;
      conn.pid = pid;
    } else if (tag == "REQ") {
      if (conn.worker < 0) {
        DropConn(conn, "REQ before HELLO");
        return;
      }
      TryGrant(conn);
      if (!conn.dead && table_->AllDone()) {
        FinishConn(conn);
      }
    } else if (tag == "HB") {
      int unit = 0, cases = 0;
      in >> unit >> cases;
      // fleet.heartbeat_rx (chaos): the heartbeat is lost in transit — the
      // lease deadline is simply not refreshed this round.
      if (SOFT_FAILPOINT_HIT("fleet.heartbeat_rx")) {
        return;
      }
      const uint64_t now = telemetry::MonotonicNowNs();
      table_->Heartbeat(unit, conn.worker, cases, now, lease_ns_);
    } else if (tag == "UNIT") {
      int unit = 0;
      in >> unit;
      // fleet.result_rx (chaos): the connection dies at the result header —
      // the finished unit is lost with it, reclaimed, and re-run.
      if (SOFT_FAILPOINT_HIT("fleet.result_rx")) {
        DropConn(conn, "result_rx fault injected");
        return;
      }
      conn.collecting_unit = unit;
      conn.block = wire::ResultBlock();
    } else if (tag == "STATUS") {
      SendStatus(conn);
      conn.dead = true;
      ::close(conn.fd);
      conn.fd = -1;
    } else {
      DropConn(conn, "unknown protocol line");
    }
  }

  void FinishConn(Conn& conn) {
    io::RetryingWriter writer(conn.fd);
    static_cast<void>(writer.WriteAll("FIN\n"));
    conn.dead = true;
    ::close(conn.fd);
    conn.fd = -1;
  }

  // --- status endpoint ------------------------------------------------------
  void SendStatus(Conn& conn) {
    std::string out;
    out += "{\"event\":\"fleet_status\",\"dialect\":\"" + EscapeJson(dialect_) +
           "\",\"units\":" + std::to_string(units_) +
           ",\"pending\":" + std::to_string(table_->pending()) +
           ",\"leased\":" + std::to_string(table_->leased()) +
           ",\"done\":" + std::to_string(table_->done()) +
           ",\"workers_live\":" + std::to_string(WorkerConnCount()) +
           ",\"workers_spawned\":" + std::to_string(stats_.workers_spawned) +
           ",\"worker_deaths\":" + std::to_string(stats_.worker_deaths) +
           ",\"leases_granted\":" + std::to_string(table_->counters().granted) +
           ",\"leases_reclaimed\":" + std::to_string(table_->counters().reclaimed) +
           ",\"leases_stolen\":" + std::to_string(table_->counters().stolen) +
           ",\"heartbeats\":" + std::to_string(table_->counters().heartbeats) +
           ",\"units_completed\":" + std::to_string(stats_.units_completed) +
           ",\"units_run_locally\":" + std::to_string(stats_.units_run_locally) +
           ",\"units_resumed\":" + std::to_string(stats_.units_resumed) + "}\n";
    for (const Conn& worker : conns_) {
      if (worker.dead || worker.worker < 0) {
        continue;
      }
      out += "{\"event\":\"fleet_worker\",\"worker\":" + std::to_string(worker.worker) +
             ",\"pid\":" + std::to_string(worker.pid) +
             ",\"units_completed\":" + std::to_string(worker.units_completed) +
             ",\"collecting\":" + std::to_string(worker.collecting_unit) + "}\n";
    }
    for (const LeaseView& view : table_->Snapshot()) {
      const char* state = view.state == UnitState::kPending  ? "pending"
                          : view.state == UnitState::kLeased ? "leased"
                                                             : "done";
      out += "{\"event\":\"fleet_unit\",\"unit\":" + std::to_string(view.unit) +
             ",\"state\":\"" + state +
             "\",\"worker\":" + std::to_string(view.worker) +
             ",\"cases\":" + std::to_string(view.cases) +
             ",\"reclaimed\":" + (view.reclaimed ? std::string("true") : "false") +
             "}\n";
    }
    // Per-pattern telemetry of the units merged so far (deterministic sums;
    // empty under -DSOFT_TELEMETRY=OFF).
    std::map<std::string, telemetry::PatternCounters> patterns;
    for (const std::optional<ShardResult>& outcome : results_) {
      if (!outcome.has_value()) {
        continue;
      }
      for (const auto& [pattern, counters] : outcome->result.telemetry.patterns) {
        telemetry::PatternCounters& sum = patterns[pattern];
        sum.generated += counters.generated;
        sum.executed += counters.executed;
        sum.crashes += counters.crashes;
        sum.bugs_deduped += counters.bugs_deduped;
        sum.sql_errors += counters.sql_errors;
        sum.false_positives += counters.false_positives;
        sum.timeouts += counters.timeouts;
        sum.logic_checks += counters.logic_checks;
        sum.logic_bugs += counters.logic_bugs;
      }
    }
    for (const auto& [pattern, counters] : patterns) {
      out += "{\"event\":\"fleet_pattern\",\"pattern\":\"" + EscapeJson(pattern) +
             "\",\"executed\":" + std::to_string(counters.executed) +
             ",\"crashes\":" + std::to_string(counters.crashes) +
             ",\"bugs_deduped\":" + std::to_string(counters.bugs_deduped) +
             ",\"logic_checks\":" + std::to_string(counters.logic_checks) +
             ",\"logic_bugs\":" + std::to_string(counters.logic_bugs) + "}\n";
    }
    for (const std::string& line : ring_) {
      std::string stripped = line;
      while (!stripped.empty() && stripped.back() == '\n') {
        stripped.pop_back();
      }
      out += "{\"event\":\"fleet_recent\",\"line\":\"" + EscapeJson(stripped) + "\"}\n";
    }
    out += "{\"event\":\"fleet_status_end\"}\n";
    io::RetryingWriter writer(conn.fd);
    static_cast<void>(writer.WriteAll(out));
  }

  // --- degrade ladder -------------------------------------------------------
  void RunRemainingLocally() {
    stats_.degraded_to_local = true;
    JournalEmit("{\"event\":\"lease\",\"action\":\"local\",\"unit\":-1,"
                "\"worker\":-1,\"cases\":0,\"unit_digest\":0}\n");
    for (const LeaseView& view : table_->Snapshot()) {
      if (view.state == UnitState::kDone) {
        continue;
      }
      const ShardPlan plan =
          UnitPlan(options_, view.unit, units_, fleet_.heartbeat_every);
      ShardResult outcome = ExecuteShardPlan(
          [] { return std::unique_ptr<Fuzzer>(new SoftFuzzer()); },
          [this] { return MakeDialect(dialect_); }, plan, WorkerOptions{},
          campaign_base_ns_);
      table_->ForceComplete(view.unit, -1);
      ++stats_.units_run_locally;
      CommitUnit(view.unit, -1, std::move(outcome));
    }
  }

  // --- resume ---------------------------------------------------------------
  Status AdmitSpooledUnits() {
    SOFT_ASSIGN_OR_RETURN(FleetResumeSpec spec,
                          LoadFleetResumeSpec(fleet_.journal_path));
    if (spec.dialect != dialect_ || spec.seed != options_.seed ||
        spec.budget != options_.max_statements || spec.units != units_) {
      return InvalidArgument(
          "fleet resume rejected: journal campaign (" + spec.dialect + ", seed " +
          std::to_string(spec.seed) + ", budget " + std::to_string(spec.budget) +
          ", units " + std::to_string(spec.units) +
          ") does not match this invocation");
    }
    for (const auto& [unit, digest] : spec.completed) {
      if (unit < 0 || unit >= units_) {
        continue;
      }
      std::ifstream in(SpoolPath(spool_dir_, unit), std::ios::binary);
      std::ostringstream content;
      content << in.rdbuf();
      ShardResult outcome;
      if (!in || !SpoolDecode(content.str(), outcome) ||
          DigestCampaignResult(outcome.result) != digest) {
        ++stats_.units_spool_diverged;
        continue;  // distrust the spool; the unit re-runs deterministically
      }
      table_->ForceComplete(unit, -1);
      results_[unit] = std::move(outcome);
      ++stats_.units_completed;
      ++stats_.units_resumed;
    }
    return OkStatus();
  }

  const std::string dialect_;
  const CampaignOptions options_;
  const FleetOptions fleet_;
  int units_ = 0;
  uint64_t lease_ns_ = 0;
  uint64_t campaign_base_ns_ = 0;
  std::string spool_dir_;
  std::ofstream journal_;
  std::deque<std::string> ring_;
  std::optional<LeaseTable> table_;
  std::vector<std::optional<ShardResult>> results_;
  std::vector<Conn> conns_;
  std::set<pid_t> children_;
  int listen_fd_ = -1;
  int next_worker_ = 0;
  FleetStats stats_;
};

Result<FleetOutcome> Coordinator::Run() {
  if (MakeDialect(dialect_) == nullptr) {
    return InvalidArgument("unknown dialect '" + dialect_ + "'");
  }
  if (options_.crash_realism != CrashRealism::kSimulated) {
    return InvalidArgument(
        "fleet campaigns run simulated crash realization (workers are already "
        "process isolation); drop --crash-mode=real");
  }
  if (fleet_.socket_path.empty()) {
    return InvalidArgument("fleet: socket_path is required");
  }
  sockaddr_un addr;
  if (fleet_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("fleet: socket path too long: " + fleet_.socket_path);
  }
  if (fleet_.resume && fleet_.journal_path.empty()) {
    return InvalidArgument("fleet: resume needs a journal_path");
  }

  io::IgnoreSigpipe();

  units_ = fleet_.units > 0 ? fleet_.units : kDefaultUnits;
  lease_ns_ = static_cast<uint64_t>(std::max(fleet_.lease_deadline_ms, 1)) * 1000000ull;
  spool_dir_ = fleet_.spool_dir;
  if (spool_dir_.empty() && !fleet_.journal_path.empty()) {
    spool_dir_ = fleet_.journal_path + ".units";
  }
  if (!spool_dir_.empty()) {
    ::mkdir(spool_dir_.c_str(), 0755);
  }
  stats_.units = units_;
  table_.emplace(units_);
  results_.resize(units_);

  if (fleet_.resume) {
    if (Status admitted = AdmitSpooledUnits(); !admitted.ok()) {
      return admitted;
    }
  }

  if (!fleet_.journal_path.empty()) {
    journal_.open(fleet_.journal_path,
                  fleet_.resume ? std::ios::app : std::ios::trunc);
    if (!journal_) {
      return IoError("fleet: cannot open journal '" + fleet_.journal_path + "'");
    }
  }
  if (journal_.is_open() && !fleet_.resume) {
    std::ostringstream header;
    telemetry::WriteCampaignStart(header, options_, "SOFT", dialect_, units_);
    JournalEmit(header.str());
  }
  if (fleet_.resume) {
    int resumed_cases = 0;
    for (const std::optional<ShardResult>& outcome : results_) {
      resumed_cases += outcome.has_value() ? outcome->result.statements_executed : 0;
    }
    std::ostringstream marker;
    telemetry::WriteResumeMarker(marker, resumed_cases);
    JournalEmit(marker.str());
    for (const LeaseView& view : table_->Snapshot()) {
      if (view.state == UnitState::kDone) {
        JournalLease("resume", view.unit, -1, 0,
                     DigestCampaignResult(results_[view.unit]->result));
      }
    }
  }

  campaign_base_ns_ = telemetry::MonotonicNowNs();

  // --- listener --------------------------------------------------------------
  ::unlink(fleet_.socket_path.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError("fleet: socket() failed");
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, fleet_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    return IoError("fleet: cannot bind/listen on '" + fleet_.socket_path + "'");
  }

  for (int i = 0; i < fleet_.workers && !table_->AllDone(); ++i) {
    SpawnWorker();
  }

  int respawns_used = 0;
  int spawn_backoff_ms = fleet_.backoff_initial_ms;
  uint64_t next_spawn_ns = 0;
  uint64_t pool_empty_since = 0;

  while (!table_->AllDone()) {
    ReapChildren();
    const uint64_t now = telemetry::MonotonicNowNs();

    // Expired leases: reclaim, and SIGKILL a hung local worker that still
    // holds a live connection (it stopped heartbeating; it will not recover).
    const std::vector<LeaseView> before = table_->Snapshot();
    for (const int unit : table_->ReclaimExpired(now)) {
      const int holder = before[unit].worker;
      JournalLease("reclaim", unit, holder, before[unit].cases, 0);
      for (Conn& conn : conns_) {
        if (!conn.dead && conn.worker == holder) {
          if (conn.pid > 0 && children_.count(static_cast<pid_t>(conn.pid)) > 0) {
            ::kill(static_cast<pid_t>(conn.pid), SIGKILL);
          }
          DropConn(conn, "lease expired");
        }
      }
    }

    // Pool maintenance: respawn dead local workers with bounded exponential
    // backoff; once the respawn budget is spent (or workers == 0 and nothing
    // attached) and the pool stays empty past the lease deadline, degrade to
    // local execution — the campaign always completes.
    const bool pool_empty = children_.empty() && WorkerConnCount() == 0;
    const bool can_respawn =
        fleet_.workers > 0 && respawns_used < fleet_.max_worker_respawns;
    if (static_cast<int>(children_.size()) < fleet_.workers && can_respawn) {
      if (next_spawn_ns == 0) {
        next_spawn_ns = now + static_cast<uint64_t>(spawn_backoff_ms) * 1000000ull;
      } else if (now >= next_spawn_ns) {
        SpawnWorker();
        ++respawns_used;
        spawn_backoff_ms = std::min(spawn_backoff_ms * 2, fleet_.backoff_max_ms);
        next_spawn_ns = 0;
      }
    } else {
      next_spawn_ns = 0;
      if (static_cast<int>(children_.size()) >= fleet_.workers && fleet_.workers > 0) {
        spawn_backoff_ms = fleet_.backoff_initial_ms;
      }
    }
    if (pool_empty && !can_respawn) {
      if (pool_empty_since == 0) {
        pool_empty_since = now;
      } else if (now - pool_empty_since >= lease_ns_) {
        RunRemainingLocally();
        break;
      }
    } else {
      pool_empty_since = 0;
    }

    // Poll: listener + live connections, bounded by the nearest timer.
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    // Indices, not pointers: the accept branch below push_backs into conns_,
    // which may reallocate.
    std::vector<size_t> polled;
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (!conns_[i].dead) {
        fds.push_back({conns_[i].fd, POLLIN, 0});
        polled.push_back(i);
      }
    }
    int timeout_ms = 100;
    const uint64_t deadline = table_->NextDeadlineNs();
    if (deadline > now) {
      timeout_ms = std::min<int>(timeout_ms,
                                 static_cast<int>((deadline - now) / 1000000ull) + 1);
    }
    if (next_spawn_ns > now) {
      timeout_ms = std::min<int>(
          timeout_ms, static_cast<int>((next_spawn_ns - now) / 1000000ull) + 1);
    }
    const int ready = ::poll(fds.data(), fds.size(), std::max(timeout_ms, 1));
    if (ready < 0 && errno != EINTR) {
      break;
    }

    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // fleet.accept (chaos): the freshly accepted connection dies before
        // its first byte — the worker reconnects with backoff.
        if (SOFT_FAILPOINT_HIT("fleet.accept")) {
          ::close(fd);
        } else {
          Conn conn;
          conn.fd = fd;
          conns_.push_back(std::move(conn));
        }
      }
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
        continue;
      }
      Conn& conn = conns_[polled[i]];
      if (conn.dead) {
        continue;
      }
      char chunk[65536];
      const int64_t n = io::ReadRetrying(conn.fd, chunk, sizeof(chunk));
      if (n <= 0) {
        DropConn(conn, "eof");
        continue;
      }
      conn.lines.Append(chunk, static_cast<size_t>(n));
      std::string line;
      while (!conn.dead && conn.lines.Next(line)) {
        ProcessLine(conn, line);
      }
    }

    GrantWaiting();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& conn) { return conn.dead; }),
                 conns_.end());
  }

  // --- shutdown --------------------------------------------------------------
  for (Conn& conn : conns_) {
    if (!conn.dead) {
      FinishConn(conn);
    }
  }
  ::close(listen_fd_);
  ::unlink(fleet_.socket_path.c_str());
  ReapChildren();
  for (const pid_t pid : children_) {
    ::kill(pid, SIGKILL);
  }
  for (const pid_t pid : children_) {
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
  }
  children_.clear();

  const LeaseCounters& counters = table_->counters();
  stats_.leases_granted = counters.granted;
  stats_.leases_reclaimed = counters.reclaimed;
  stats_.leases_stolen = counters.stolen;
  stats_.heartbeats = counters.heartbeats;

  std::vector<ShardResult> outcomes;
  outcomes.reserve(units_);
  for (std::optional<ShardResult>& outcome : results_) {
    if (!outcome.has_value()) {
      return Internal("fleet: campaign finished with an unexecuted unit");
    }
    outcomes.push_back(std::move(*outcome));
  }
  FleetOutcome fleet_outcome;
  fleet_outcome.result = MergeShardResults(std::move(outcomes));
  fleet_outcome.stats = stats_;

  if (journal_.is_open()) {
    telemetry::JournalFleetFinish fin;
    fin.units = stats_.units;
    fin.workers_spawned = stats_.workers_spawned;
    fin.worker_deaths = stats_.worker_deaths;
    fin.leases_granted = stats_.leases_granted;
    fin.leases_reclaimed = stats_.leases_reclaimed;
    fin.leases_stolen = stats_.leases_stolen;
    fin.heartbeats = stats_.heartbeats;
    fin.units_completed = stats_.units_completed;
    fin.units_run_locally = stats_.units_run_locally;
    fin.units_resumed = stats_.units_resumed;
    fin.units_spool_diverged = stats_.units_spool_diverged;
    fin.degraded_to_local = stats_.degraded_to_local;
    std::ostringstream tail;
    telemetry::WriteFleetFinishEvent(tail, fin);
    telemetry::WriteCampaignTail(
        tail, fleet_outcome.result,
        telemetry::MonotonicNowNs() - campaign_base_ns_);
    JournalEmit(tail.str());
  }
  return fleet_outcome;
}

}  // namespace

Result<FleetOutcome> RunFleetCampaign(const std::string& dialect,
                                      const CampaignOptions& options,
                                      const FleetOptions& fleet) {
  Coordinator coordinator(dialect, options, fleet);
  return coordinator.Run();
}

Result<FleetResumeSpec> LoadFleetResumeSpec(const std::string& journal_path) {
  SOFT_ASSIGN_OR_RETURN(telemetry::JournalReplay replay,
                        telemetry::ReplayJournalFile(journal_path));
  if (replay.tool != "SOFT") {
    return InvalidArgument("fleet resume only replays SOFT journals (journal tool: '" +
                           replay.tool + "')");
  }
  FleetResumeSpec spec;
  spec.dialect = replay.dialect;
  spec.seed = replay.seed;
  spec.budget = replay.budget;
  spec.units = replay.shards;
  spec.finished = replay.finished;
  for (const telemetry::JournalLeaseEvent& event : replay.lease_events) {
    if (event.action == "complete" || event.action == "resume") {
      spec.completed[event.unit] = event.unit_digest;
    }
  }
  return spec;
}

Result<std::string> QueryFleetStatus(const std::string& socket_path) {
  io::IgnoreSigpipe();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError("socket() failed");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return IoError("no fleet coordinator listening on '" + socket_path + "'");
  }
  io::RetryingWriter writer(fd);
  if (!writer.WriteAll("STATUS\n").ok()) {
    ::close(fd);
    return IoError("status request failed");
  }
  std::string payload;
  char chunk[4096];
  for (;;) {
    const int64_t n = io::ReadRetrying(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    payload.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return payload;
}

ChaosReport RunFleetChaosEnumeration(const std::string& dialect, int budget) {
  ChaosReport report;
  report.compiled_in = failpoint::kCompiledIn;
  report.dialect = dialect;
  report.budget = budget > 0 ? budget : 400;
  if (!report.compiled_in) {
    return report;
  }
  CampaignOptions options;
  options.seed = 20260807;
  options.max_statements = report.budget;
  const int units = 4;
  failpoint::DisarmAll();
  const CampaignResult reference = RunShardedSoftCampaign(dialect, options, units);
  const uint64_t reference_digest = DigestCampaignResult(reference);

  int site_index = 0;
  for (const failpoint::SiteInfo& site : failpoint::kInventory) {
    if (std::string_view(site.name).rfind("fleet.", 0) != 0) {
      continue;
    }
    ChaosSiteOutcome outcome;
    outcome.failpoint = std::string(site.name);
    outcome.site_class = std::string(failpoint::SiteClassName(site.site_class));
    outcome.spec = outcome.failpoint + "=after:0:1";
    outcome.ran = true;

    FleetOptions fleet;
    fleet.socket_path = "/tmp/soft_flc_" +
                        std::to_string(static_cast<long>(::getpid())) + "_" +
                        std::to_string(site_index++) + ".sock";
    fleet.workers = 2;
    fleet.units = units;
    fleet.heartbeat_every = 50;
    fleet.lease_deadline_ms = 2000;

    failpoint::DisarmAll();
    if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
      outcome.detail = "arm failed: " + armed.ToString();
      report.outcomes.push_back(outcome);
      continue;
    }
    const Result<FleetOutcome> injected = RunFleetCampaign(dialect, options, fleet);
    failpoint::DisarmAll();
    if (!injected.ok()) {
      outcome.detail = "fleet campaign failed: " + injected.status().ToString();
      report.outcomes.push_back(outcome);
      continue;
    }
    if (DigestCampaignResult(injected->result) != reference_digest) {
      outcome.detail = "merged digest diverged from the uninjected sharded reference";
      report.outcomes.push_back(outcome);
      continue;
    }
    if (outcome.failpoint == "fleet.worker_spawn" &&
        injected->stats.worker_deaths == 0) {
      outcome.detail = "chaos-killed worker never died (injection lost?)";
      report.outcomes.push_back(outcome);
      continue;
    }
    outcome.ok = true;
    outcome.detail =
        "fault absorbed by the lease/steal/respawn ladder; digest bit-identical (" +
        std::to_string(injected->stats.worker_deaths) + " worker death(s), " +
        std::to_string(injected->stats.leases_reclaimed) + " lease(s) reclaimed)";
    report.outcomes.push_back(outcome);
  }
  failpoint::DisarmAll();
  return report;
}

}  // namespace fleet
}  // namespace soft
