// Fleet worker: the client half of the coordinator's Unix-domain-socket
// protocol (docs/ROBUSTNESS.md).
//
// A worker connects, introduces itself, and loops requesting work units:
//
//   worker → coord   HELLO <pid>
//   worker → coord   REQ
//   coord  → worker  GRANT <unit> <units> <seed> <budget> <dialect-hex>
//                          <stop_all> <timeout_ms> <trace_sample>
//                          <heartbeat_every> <campaign_base_ns> <oracles-hex>
//            ... or  FIN                      (campaign done — exit 0)
//   worker → coord   HB <unit> <cases>        (every heartbeat_every cases,
//                                              piggybacked on the campaign's
//                                              checkpoint sink; one HB with
//                                              cases=0 acknowledges the grant)
//   worker → coord   UNIT <unit>
//                    <wire result block>      (RES..END, src/soft/wire.h)
//   worker → coord   REQ                      (loop)
//
// A GRANT line is a complete unit spec, so an external worker
// (`find_bugs --fleet=attach`) needs nothing but the socket path. The unit
// executes as one case-partition shard via ExecuteShardPlan: shard_index =
// unit, shard_count = units, base seed, full budget — exactly the plan a
// `--shards=units` campaign would run, which is what makes the coordinator's
// merge bit-identical to a sharded (and, for the bug inventory, the serial)
// run at any worker count.
//
// On socket loss the worker abandons any in-flight unit (the coordinator
// reclaims its lease) and reconnects with bounded exponential backoff as a
// fresh worker; when the coordinator is gone for good the attempts run out
// and the worker exits nonzero.
#ifndef SRC_FLEET_WORKER_CLIENT_H_
#define SRC_FLEET_WORKER_CLIENT_H_

#include <string>

namespace soft {
namespace fleet {

struct FleetWorkerOptions {
  std::string socket_path;
  // Bounded exponential backoff for connect/reconnect attempts.
  int connect_attempts = 40;
  int backoff_initial_ms = 5;
  int backoff_max_ms = 200;

  // --- Test/chaos hooks (the coordinator's failpoint-driven worker chaos
  // and tests/fleet_test.cc). Ordinals count the units this worker process
  // has started, 0-based across reconnects.
  int kill9_at_unit = -1;  // SIGKILL self at the first heartbeat of unit ordinal N
  int hang_at_unit = -1;   // stop heartbeating at unit ordinal N (lease expires)
};

// Runs the worker loop until FIN (returns 0), connect/reconnect attempts
// run out (returns 3), or a malformed grant arrives (returns 1). Installs
// io::IgnoreSigpipe so a dying coordinator surfaces as clean write errors.
int RunFleetWorker(const FleetWorkerOptions& options);

}  // namespace fleet
}  // namespace soft

#endif  // SRC_FLEET_WORKER_CLIENT_H_
