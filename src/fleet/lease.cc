#include "src/fleet/lease.h"

#include <cstddef>

using std::size_t;

namespace soft {
namespace fleet {

LeaseTable::LeaseTable(int units) : slots_(units > 0 ? units : 0) {}

int LeaseTable::Grant(int worker, uint64_t now_ns, uint64_t lease_ns) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state != UnitState::kPending) {
      continue;
    }
    slot.state = UnitState::kLeased;
    slot.worker = worker;
    slot.deadline_ns = now_ns + lease_ns;
    ++counters_.granted;
    if (slot.reclaimed) {
      ++counters_.stolen;
    }
    return static_cast<int>(i);
  }
  return -1;
}

bool LeaseTable::Heartbeat(int unit, int worker, int cases, uint64_t now_ns,
                           uint64_t lease_ns) {
  if (unit < 0 || unit >= static_cast<int>(slots_.size())) {
    return false;
  }
  Slot& slot = slots_[unit];
  if (slot.state != UnitState::kLeased || slot.worker != worker) {
    return false;
  }
  slot.cases = cases;
  slot.deadline_ns = now_ns + lease_ns;
  ++counters_.heartbeats;
  return true;
}

bool LeaseTable::Complete(int unit, int worker) {
  if (unit < 0 || unit >= static_cast<int>(slots_.size())) {
    return false;
  }
  Slot& slot = slots_[unit];
  if (slot.state != UnitState::kLeased || slot.worker != worker) {
    return false;
  }
  slot.state = UnitState::kDone;
  ++counters_.completed;
  ++done_;
  return true;
}

void LeaseTable::ForceComplete(int unit, int worker) {
  if (unit < 0 || unit >= static_cast<int>(slots_.size())) {
    return;
  }
  Slot& slot = slots_[unit];
  if (slot.state == UnitState::kDone) {
    return;
  }
  slot.state = UnitState::kDone;
  slot.worker = worker;
  ++counters_.completed;
  ++done_;
}

std::vector<int> LeaseTable::ReclaimExpired(uint64_t now_ns) {
  std::vector<int> reclaimed;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state == UnitState::kLeased && slot.deadline_ns <= now_ns) {
      slot.state = UnitState::kPending;
      slot.worker = -1;
      slot.reclaimed = true;
      ++counters_.reclaimed;
      reclaimed.push_back(static_cast<int>(i));
    }
  }
  return reclaimed;
}

std::vector<int> LeaseTable::ReclaimWorker(int worker) {
  std::vector<int> reclaimed;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.state == UnitState::kLeased && slot.worker == worker) {
      slot.state = UnitState::kPending;
      slot.worker = -1;
      slot.reclaimed = true;
      ++counters_.reclaimed;
      reclaimed.push_back(static_cast<int>(i));
    }
  }
  return reclaimed;
}

uint64_t LeaseTable::NextDeadlineNs() const {
  uint64_t next = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == UnitState::kLeased &&
        (next == 0 || slot.deadline_ns < next)) {
      next = slot.deadline_ns;
    }
  }
  return next;
}

int LeaseTable::pending() const {
  int n = 0;
  for (const Slot& slot : slots_) {
    n += slot.state == UnitState::kPending ? 1 : 0;
  }
  return n;
}

int LeaseTable::leased() const {
  int n = 0;
  for (const Slot& slot : slots_) {
    n += slot.state == UnitState::kLeased ? 1 : 0;
  }
  return n;
}

std::vector<LeaseView> LeaseTable::Snapshot() const {
  std::vector<LeaseView> views;
  views.reserve(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    LeaseView view;
    view.unit = static_cast<int>(i);
    view.state = slot.state;
    view.worker = slot.worker;
    view.cases = slot.cases;
    view.deadline_ns = slot.deadline_ns;
    view.reclaimed = slot.reclaimed;
    views.push_back(view);
  }
  return views;
}

}  // namespace fleet
}  // namespace soft
