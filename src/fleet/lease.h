// Lease table: the fleet coordinator's unit-of-work state machine
// (docs/ROBUSTNESS.md).
//
// A fleet campaign is partitioned into `units` case-partition shards
// (ShardMode::kPartitionCases with a fixed unit count, independent of the
// worker count), and each unit moves through
//
//     pending ──Grant──▶ leased ──Complete──▶ done
//        ▲                  │
//        └──ReclaimExpired──┘  (missed heartbeats / worker death)
//           ReclaimWorker
//
// A lease carries a deadline; Heartbeat pushes it forward. A unit granted
// after it was reclaimed at least once counts as *stolen* — the surviving
// worker picked up a dead peer's work. All transitions are driven by
// explicit `now_ns` arguments (no clock reads inside), so the tests walk
// the state machine with a fake clock and the coordinator stays
// deterministic per poll iteration.
#ifndef SRC_FLEET_LEASE_H_
#define SRC_FLEET_LEASE_H_

#include <cstdint>
#include <vector>

namespace soft {
namespace fleet {

enum class UnitState { kPending, kLeased, kDone };

// One unit's row in the status endpoint / tests' view of the table.
struct LeaseView {
  int unit = 0;
  UnitState state = UnitState::kPending;
  int worker = -1;          // holder (leased) or completer (done); -1 none
  int cases = 0;            // last heartbeat progress
  uint64_t deadline_ns = 0; // lease expiry (leased only)
  bool reclaimed = false;   // was reclaimed at least once
};

struct LeaseCounters {
  int granted = 0;
  int reclaimed = 0;
  int stolen = 0;     // grants of previously-reclaimed units
  int heartbeats = 0; // accepted (non-stale) heartbeats
  int completed = 0;
};

class LeaseTable {
 public:
  explicit LeaseTable(int units);

  // Leases the lowest pending unit to `worker` until now + lease_ns.
  // Returns the unit index, or -1 when nothing is pending.
  int Grant(int worker, uint64_t now_ns, uint64_t lease_ns);

  // Refreshes the lease deadline and progress. False (and no refresh) when
  // `worker` no longer holds `unit` — the stale-heartbeat case after a
  // reclaim+steal.
  bool Heartbeat(int unit, int worker, int cases, uint64_t now_ns, uint64_t lease_ns);

  // Marks the unit done. False when stale: `worker` does not hold the lease
  // (it was reclaimed and possibly re-granted) or the unit is already done —
  // the caller then discards the duplicate result.
  bool Complete(int unit, int worker);

  // Marks the unit done regardless of lease state (resume admission of a
  // spooled result, coordinator-local execution).
  void ForceComplete(int unit, int worker);

  // Returns every leased unit whose deadline passed; they are back in
  // pending (flagged reclaimed) when this returns.
  std::vector<int> ReclaimExpired(uint64_t now_ns);

  // Returns every unit leased to `worker`, all back in pending — the
  // worker-death path.
  std::vector<int> ReclaimWorker(int worker);

  // Earliest lease deadline across leased units; 0 when none are leased.
  uint64_t NextDeadlineNs() const;

  bool AllDone() const { return done_ == static_cast<int>(slots_.size()); }
  int units() const { return static_cast<int>(slots_.size()); }
  int pending() const;
  int leased() const;
  int done() const { return done_; }
  const LeaseCounters& counters() const { return counters_; }
  std::vector<LeaseView> Snapshot() const;

 private:
  struct Slot {
    UnitState state = UnitState::kPending;
    int worker = -1;
    int cases = 0;
    uint64_t deadline_ns = 0;
    bool reclaimed = false;
  };
  std::vector<Slot> slots_;
  LeaseCounters counters_;
  int done_ = 0;
};

}  // namespace fleet
}  // namespace soft

#endif  // SRC_FLEET_LEASE_H_
