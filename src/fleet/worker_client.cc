#include "src/fleet/worker_client.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/dialects/dialects.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/soft_fuzzer.h"
#include "src/soft/wire.h"
#include "src/util/io.h"

namespace soft {
namespace fleet {
namespace {

void SleepMs(int ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  nanosleep(&ts, nullptr);
}

// Connects to the coordinator socket with bounded exponential backoff.
// Returns -1 when the attempts run out (coordinator gone for good).
int ConnectWithBackoff(const FleetWorkerOptions& options) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return -1;
  }
  std::strncpy(addr.sun_path, options.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  int backoff = options.backoff_initial_ms;
  for (int attempt = 0; attempt < options.connect_attempts; ++attempt) {
    if (attempt != 0) {
      SleepMs(backoff);
      backoff = std::min(backoff * 2, options.backoff_max_ms);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
  }
  return -1;
}

// The unit spec a GRANT line carries — everything needed to run the unit as
// one case-partition shard, self-contained so external workers can attach.
struct Grant {
  int unit = 0;
  int units = 1;
  uint64_t seed = 0;
  int budget = 0;
  std::string dialect;
  bool stop_all = false;
  int timeout_ms = 0;
  int trace_sample = 0;
  int heartbeat_every = 0;
  uint64_t campaign_base_ns = 0;
  std::vector<std::string> oracles;
};

bool ParseGrant(const std::string& line, Grant& grant) {
  std::istringstream in(line);
  std::string tag, dialect_hex, oracles_hex;
  uint64_t stop_all = 0;
  if (!(in >> tag >> grant.unit >> grant.units >> grant.seed >> grant.budget >>
        dialect_hex >> stop_all >> grant.timeout_ms >> grant.trace_sample >>
        grant.heartbeat_every >> grant.campaign_base_ns >> oracles_hex)) {
    return false;
  }
  grant.dialect = wire::HexDecode(dialect_hex);
  grant.stop_all = stop_all != 0;
  const std::string oracles = wire::HexDecode(oracles_hex);
  size_t start = 0;
  while (start < oracles.size()) {
    const size_t comma = oracles.find(',', start);
    const size_t end = comma == std::string::npos ? oracles.size() : comma;
    if (end > start) {
      grant.oracles.push_back(oracles.substr(start, end - start));
    }
    start = end + 1;
  }
  return grant.units > 0 && grant.unit >= 0 && grant.unit < grant.units;
}

}  // namespace

int RunFleetWorker(const FleetWorkerOptions& options) {
  // A dying coordinator must surface as clean EPIPE write errors, never as
  // SIGPIPE process death — the reconnect ladder depends on it.
  io::IgnoreSigpipe();

  int units_started = 0;
  // The cycle bound keeps a worker from reconnect-looping forever against a
  // coordinator that accepts and immediately drops (e.g. chaos-armed).
  for (int cycle = 0; cycle < options.connect_attempts; ++cycle) {
    const int fd = ConnectWithBackoff(options);
    if (fd < 0) {
      return 3;
    }
    io::RetryingWriter writer(fd);
    wire::LineBuffer lines;
    bool conn_ok =
        writer.WriteAll("HELLO " + std::to_string(::getpid()) + "\n").ok() &&
        writer.WriteAll("REQ\n").ok();

    while (conn_ok) {
      // Pull the next control line (GRANT or FIN).
      std::string line;
      while (!lines.Next(line)) {
        char chunk[4096];
        const int64_t n = io::ReadRetrying(fd, chunk, sizeof(chunk));
        if (n <= 0) {
          conn_ok = false;
          break;
        }
        lines.Append(chunk, static_cast<size_t>(n));
      }
      if (!conn_ok) {
        break;
      }
      if (line.rfind("FIN", 0) == 0) {
        ::close(fd);
        return 0;
      }
      Grant grant;
      if (!ParseGrant(line, grant)) {
        ::close(fd);
        return 1;
      }

      const int ordinal = units_started++;
      const bool kill9_here = options.kill9_at_unit == ordinal;
      const bool hang_here = options.hang_at_unit == ordinal;

      ShardPlan plan;
      plan.shard = grant.unit;
      plan.options.seed = grant.seed;
      plan.options.max_statements = grant.budget;
      plan.options.shard_index = grant.unit;
      plan.options.shard_count = grant.units;
      plan.options.stop_when_all_bugs_found = grant.stop_all;
      plan.options.statement_limits.deadline_ms = grant.timeout_ms;
      plan.options.trace_sample = grant.trace_sample;
      plan.options.logic_oracles = grant.oracles;
      plan.options.checkpoint_every = grant.heartbeat_every;
      // Heartbeats ride the campaign's checkpoint cadence. A failed send
      // marks the sink dead; the campaign continues (journal_degraded) but
      // its result can never be delivered over the dead socket anyway — the
      // coordinator reclaims the lease and the unit reruns elsewhere.
      plan.options.checkpoint_sink = [&](const CampaignCheckpoint& cp) {
        if (kill9_here) {
          ::kill(::getpid(), SIGKILL);
        }
        if (hang_here) {
          // Stop heartbeating: the lease expires and the coordinator
          // SIGKILLs this pid. Sleep rather than spin.
          for (;;) {
            SleepMs(1000);
          }
        }
        return writer
            .WriteAll("HB " + std::to_string(grant.unit) + " " +
                      std::to_string(cp.cases_completed) + "\n")
            .ok();
      };
      // Acknowledge the grant so a hung unit is distinguishable from a
      // never-started one; also the hook point for the chaos kill.
      CampaignCheckpoint ack;
      if (!plan.options.checkpoint_sink(ack)) {
        conn_ok = false;
        break;
      }

      const std::string dialect = grant.dialect;
      ShardResult outcome = ExecuteShardPlan(
          [] { return std::unique_ptr<Fuzzer>(new SoftFuzzer()); },
          [dialect] { return MakeDialect(dialect); }, plan, WorkerOptions{},
          grant.campaign_base_ns);

      conn_ok = writer.WriteAll("UNIT " + std::to_string(grant.unit) + "\n").ok() &&
                wire::WriteResultBlock(
                    [&writer](const std::string& record) {
                      return writer.WriteAll(record + "\n").ok();
                    },
                    outcome.result, outcome.coverage) &&
                writer.WriteAll("REQ\n").ok();
    }
    ::close(fd);
    // Socket lost mid-campaign: reconnect as a fresh worker; any in-flight
    // unit was abandoned and will be reclaimed + re-granted (work stealing).
  }
  return 3;
}

}  // namespace fleet
}  // namespace soft
