// Shared helpers for the baseline fuzzers. Internal to src/baselines.
#ifndef SRC_BASELINES_BASELINE_UTIL_H_
#define SRC_BASELINES_BASELINE_UTIL_H_

#include <set>
#include <string>

#include "src/failpoint/failpoint.h"
#include "src/soft/campaign.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace soft {

// Executes one statement and folds the outcome into the campaign result.
// Telemetry: the baselines generate statements on the fly, so `found_by`
// (the tool name) is the counter key and generated == executed.
// `dedup_digest` is the running FNV digest of found bug ids (campaign.h),
// carried into checkpoint records.
inline void ExecuteAndRecord(Database& db, const std::string& sql,
                             const std::string& found_by, CampaignResult& result,
                             std::set<int>& found_ids, uint64_t& dedup_digest) {
  ++result.statements_executed;
  telemetry::CountGenerated(found_by, 1);
  telemetry::CountExecuted(found_by);
  trace::FlightBeginStatement(result.statements_executed, found_by, sql);
  trace::BeginStatement(result.statements_executed, found_by);
  const StatementResult r = db.Execute(sql);
  if (r.crashed()) {
    ++result.crashes_observed;
    telemetry::CountCrash(found_by);
    trace::AnnotateStatement("bug_id", std::to_string(r.crash->bug_id));
    if (found_ids.insert(r.crash->bug_id).second) {
      telemetry::CountBugDeduped(found_by);
      dedup_digest = DedupDigestStep(dedup_digest, r.crash->bug_id);
      trace::AnnotateStatement("first_witness", "1");
      FoundBug bug;
      bug.crash = *r.crash;
      bug.poc_sql = sql;
      bug.found_by = found_by;
      bug.statements_until_found = result.statements_executed;
      bug.found_wall_ns = static_cast<int64_t>(telemetry::WallSinceCollectorStartNs());
      bug.wall_recorded = telemetry::CollectorInstalled();
      result.unique_bugs.push_back(std::move(bug));
    }
    trace::EndStatement("crash");
    trace::FlightEndStatement("crash");
    return;
  }
  if (r.status.code() == StatusCode::kTimeout) {
    ++result.watchdog_timeouts;
    telemetry::CountTimeout(found_by);
    trace::EndStatement("timeout");
    trace::FlightEndStatement("timeout");
    return;
  }
  if (r.status.code() == StatusCode::kResourceExhausted) {
    ++result.false_positives;
    telemetry::CountFalsePositive(found_by);
    trace::EndStatement("resource_exhausted");
    trace::FlightEndStatement("resource_exhausted");
    return;
  }
  if (!r.ok()) {
    ++result.sql_errors;
    telemetry::CountSqlError(found_by);
    trace::EndStatement("sql_error");
    trace::FlightEndStatement("sql_error");
    return;
  }
  trace::EndStatement("ok");
  trace::FlightEndStatement("ok");
}

// Installs the span tracer and flight recorder for a baseline campaign —
// the counterpart of the install block at the top of SoftFuzzer::Run.
// Declare one of these right after the ScopedCollector in a baseline's Run.
struct ScopedBaselineRecorders {
  trace::ScopedStatementTracer tracer;
  trace::ScopedFlightRecorder flight;

  ScopedBaselineRecorders(CampaignResult& result, const CampaignOptions& options)
      : tracer(options.trace_sample > 0 ? &result.trace : nullptr, result.dialect,
               options.shard_index, options.trace_sample),
        flight(options.crash_realism == CrashRealism::kReal) {}
};

// Campaign-start housekeeping shared by the baseline Run()s: applies the
// watchdog budgets to the campaign database. Baselines checkpoint through
// MaybeCheckpointBaseline below.
inline void ApplyCampaignLimits(Database& db, const CampaignOptions& options) {
  db.set_statement_limits(options.statement_limits);
}

// Emits a checkpoint when the cadence divides the statement count. The
// baselines draw from a live RNG, so the fingerprint is taken from it. A
// failed sink (or the campaign.checkpoint_sink failpoint) latches
// result.journal_degraded and the campaign continues without checkpoints —
// same graceful degradation as the SOFT loop.
inline void MaybeCheckpointBaseline(const CampaignOptions& options,
                                    CampaignResult& result, const Rng& rng,
                                    uint64_t dedup_digest) {
  if (options.checkpoint_every <= 0 || !options.checkpoint_sink ||
      result.journal_degraded ||
      result.statements_executed % options.checkpoint_every != 0) {
    return;
  }
  const bool sink_ok =
      !SOFT_FAILPOINT_HIT("campaign.checkpoint_sink") &&
      options.checkpoint_sink(
          MakeCheckpoint(options, result, rng.StateFingerprint(), dedup_digest));
  if (!sink_ok) {
    result.journal_degraded = true;
  }
}

// Benign literal generators shared by the baselines: small integers, short
// alphabetic strings, exponent-tagged doubles (so the parser types them as
// DOUBLE, not exact DECIMAL — matching how the real tools bind parameters).
inline std::string BenignInt(Rng& rng) { return std::to_string(rng.NextBelow(10)); }

inline std::string BenignDouble(Rng& rng) {
  return std::to_string(rng.NextBelow(10)) + "." + std::to_string(rng.NextBelow(10)) +
         "e0";
}

inline std::string BenignString(Rng& rng) {
  return "'" + rng.NextIdentifier(1 + rng.NextBelow(8)) + "'";
}

}  // namespace soft

#endif  // SRC_BASELINES_BASELINE_UTIL_H_
