// Baseline DBMS testing tools (Section 7.5): faithful-in-spirit
// reimplementations of the three comparison systems.
//
//   RandSmith   — SQLsmith-like: grammar-random, type-directed expression
//                 generation over the full catalog, benign mid-range
//                 literals, nested expressions and query clutter.
//   PqsGen      — SQLancer-PQS-like: builds tables with random rows, picks a
//                 pivot row, synthesizes predicates that must match it, and
//                 checks containment (a logic oracle). Supports only a small
//                 hand-modeled function pool, mirroring SQLancer's per-
//                 function Java models.
//   MutSquirrel — SQUIRREL-like: mutates seed queries from the regression
//                 suite (literal replacement, same-category function swaps,
//                 clause addition), preserving validity.
//
// The paper's structural claim — tools that generate random literals and
// clause-heavy statements rarely construct boundary function arguments — is
// preserved: these generators produce the same classes of queries the real
// tools do (small integers, short alphabetic strings, type-correct calls).
#ifndef SRC_BASELINES_BASELINES_H_
#define SRC_BASELINES_BASELINES_H_

#include "src/soft/campaign.h"

namespace soft {

class RandSmith : public Fuzzer {
 public:
  std::string name() const override { return "SQLsmith*"; }
  CampaignResult Run(Database& db, const CampaignOptions& options) override;
};

class PqsGen : public Fuzzer {
 public:
  std::string name() const override { return "SQLancer*"; }
  CampaignResult Run(Database& db, const CampaignOptions& options) override;
};

class MutSquirrel : public Fuzzer {
 public:
  std::string name() const override { return "SQUIRREL*"; }
  CampaignResult Run(Database& db, const CampaignOptions& options) override;
};

}  // namespace soft

#endif  // SRC_BASELINES_BASELINES_H_
