#include "src/baselines/comparison.h"

#include "src/dialects/dialects.h"

namespace soft {

std::vector<std::unique_ptr<Fuzzer>> MakeAllTools() {
  std::vector<std::unique_ptr<Fuzzer>> tools;
  tools.push_back(std::make_unique<MutSquirrel>());
  tools.push_back(std::make_unique<PqsGen>());
  tools.push_back(std::make_unique<RandSmith>());
  tools.push_back(std::make_unique<SoftFuzzer>());
  return tools;
}

bool ToolSupportsDialect(const std::string& tool, const std::string& dialect) {
  if (tool == "SOFT") {
    return true;
  }
  if (tool == "SQUIRREL*") {
    return dialect == "postgresql" || dialect == "mysql" || dialect == "mariadb";
  }
  if (tool == "SQLancer*") {
    return dialect == "postgresql" || dialect == "mysql" || dialect == "mariadb" ||
           dialect == "clickhouse";
  }
  if (tool == "SQLsmith*") {
    return dialect == "postgresql" || dialect == "monetdb";
  }
  return false;
}

std::vector<ToolRun> RunAllTools(const std::string& dialect, int budget, uint64_t seed) {
  std::vector<ToolRun> out;
  for (const std::unique_ptr<Fuzzer>& tool : MakeAllTools()) {
    std::unique_ptr<Database> db = MakeDialect(dialect);
    CampaignOptions options;
    options.seed = seed;
    options.max_statements = budget;
    ToolRun run;
    run.tool = tool->name();
    run.result = tool->Run(*db, options);
    out.push_back(std::move(run));
  }
  return out;
}

}  // namespace soft
