#include "src/baselines/comparison.h"

#include "src/dialects/dialects.h"
#include "src/soft/parallel_runner.h"

namespace soft {

std::vector<std::unique_ptr<Fuzzer>> MakeAllTools() {
  std::vector<std::unique_ptr<Fuzzer>> tools;
  tools.push_back(std::make_unique<MutSquirrel>());
  tools.push_back(std::make_unique<PqsGen>());
  tools.push_back(std::make_unique<RandSmith>());
  tools.push_back(std::make_unique<SoftFuzzer>());
  return tools;
}

std::unique_ptr<Fuzzer> MakeTool(const std::string& tool) {
  if (tool == "SQUIRREL*") {
    return std::make_unique<MutSquirrel>();
  }
  if (tool == "SQLancer*") {
    return std::make_unique<PqsGen>();
  }
  if (tool == "SQLsmith*") {
    return std::make_unique<RandSmith>();
  }
  if (tool == "SOFT") {
    return std::make_unique<SoftFuzzer>();
  }
  return nullptr;
}

bool ToolSupportsDialect(const std::string& tool, const std::string& dialect) {
  if (tool == "SOFT") {
    return true;
  }
  if (tool == "SQUIRREL*") {
    return dialect == "postgresql" || dialect == "mysql" || dialect == "mariadb";
  }
  if (tool == "SQLancer*") {
    return dialect == "postgresql" || dialect == "mysql" || dialect == "mariadb" ||
           dialect == "clickhouse";
  }
  if (tool == "SQLsmith*") {
    return dialect == "postgresql" || dialect == "monetdb";
  }
  return false;
}

std::vector<ToolRun> RunAllTools(const std::string& dialect, int budget, uint64_t seed,
                                 int shards) {
  std::vector<ToolRun> out;
  CampaignOptions options;
  options.seed = seed;
  options.max_statements = budget;
  for (const std::unique_ptr<Fuzzer>& tool : MakeAllTools()) {
    const std::string name = tool->name();
    ToolRun run;
    run.tool = name;
    if (shards <= 1) {
      std::unique_ptr<Database> db = MakeDialect(dialect);
      run.result = tool->Run(*db, options);
    } else {
      // Budget split for every tool, SOFT included: the comparison must keep
      // all tools under the same shard plan (identical per-shard budgets),
      // and the baselines have no shared case pool to partition.
      run.result = RunShardedCampaign([&name] { return MakeTool(name); }, dialect,
                                      options, shards, ShardMode::kSplitBudget);
    }
    out.push_back(std::move(run));
  }
  return out;
}

}  // namespace soft
