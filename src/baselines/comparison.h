// Comparison harness: runs SOFT and the three baselines under identical
// statement budgets against fresh instances of a dialect — the machinery
// behind Tables 5 and 6 and the Section 7.5 bug-count comparison.
#ifndef SRC_BASELINES_COMPARISON_H_
#define SRC_BASELINES_COMPARISON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/soft/soft_fuzzer.h"

namespace soft {

struct ToolRun {
  std::string tool;
  CampaignResult result;
};

// One fresh dialect instance per tool (the paper restarts each DBMS per
// tool), identical budget and seed. `shards` > 1 splits each tool's budget
// across that many threads via soft::ParallelCampaignRunner (every tool gets
// the same shard plan; see src/soft/parallel_runner.h); shards == 1 keeps
// the serial behaviour bit-for-bit.
std::vector<ToolRun> RunAllTools(const std::string& dialect, int budget,
                                 uint64_t seed = 1, int shards = 1);

// The tools in the paper's column order: SQUIRREL*, SQLancer*, SQLsmith*,
// SOFT.
std::vector<std::unique_ptr<Fuzzer>> MakeAllTools();

// Factory by paper column name ("SQUIRREL*", "SQLancer*", "SQLsmith*",
// "SOFT"); nullptr for unknown names. Used to build per-shard fuzzer
// instances for sharded comparison runs.
std::unique_ptr<Fuzzer> MakeTool(const std::string& tool);

// Which baselines "support" which dialect, mirroring Table 5's dashes
// (SQUIRREL: PostgreSQL/MySQL/MariaDB; SQLsmith: PostgreSQL/MonetDB;
// SQLancer: PostgreSQL/MySQL/MariaDB/ClickHouse). SOFT supports all seven.
bool ToolSupportsDialect(const std::string& tool, const std::string& dialect);

}  // namespace soft

#endif  // SRC_BASELINES_COMPARISON_H_
