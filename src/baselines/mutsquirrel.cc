// MutSquirrel: SQUIRREL-like IR mutation of seed queries.
//
// SQUIRREL lifts seed queries into an IR and applies validity-preserving
// mutations. We reproduce the three mutation classes that matter for
// function testing: benign literal replacement, same-category/same-arity
// function swaps (skipping '*' arguments — swapping COUNT(*) into SUM(*)
// would be invalid SQL, which SQUIRREL's validity analysis prevents), and
// clause addition.
#include "src/baselines/baselines.h"

#include <set>

#include "src/baselines/baseline_util.h"
#include "src/soft/seeds.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

void ReplaceLiterals(Expr& e, Rng& rng) {
  if (e.kind == ExprKind::kLiteral) {
    switch (e.literal.kind()) {
      case TypeKind::kInt:
        e.literal = Value::Int(static_cast<int64_t>(rng.NextBelow(10)));
        break;
      case TypeKind::kDouble:
      case TypeKind::kDecimal:
        e.literal = Value::DoubleVal(static_cast<double>(rng.NextBelow(100)) / 10.0);
        break;
      case TypeKind::kString:
        if (rng.NextBool(0.6)) {
          e.literal = Value::Str(rng.NextIdentifier(1 + rng.NextBelow(6)));
        }
        break;
      default:
        break;
    }
    return;
  }
  for (ExprPtr& a : e.args) {
    ReplaceLiterals(*a, rng);
  }
}

bool HasStarArg(const Expr& call) {
  for (const ExprPtr& a : call.args) {
    if (a->kind == ExprKind::kLiteral && a->literal.is_star()) {
      return true;
    }
  }
  return false;
}

void SwapFunctions(SelectStmt& sel, Rng& rng, const FunctionRegistry& registry,
                   const std::set<std::string>& seed_vocabulary) {
  std::vector<Expr*> calls;
  sel.CollectFunctionCalls(calls);
  if (calls.empty()) {
    return;
  }
  Expr* victim = calls[rng.NextBelow(calls.size())];
  const FunctionDef* current = registry.Find(victim->func_name);
  if (current == nullptr || HasStarArg(*victim)) {
    return;
  }
  // Candidates: same category, arity-compatible, and — like SQUIRREL's IR
  // recombination — drawn from the functions the seed corpus already uses,
  // not the whole catalog.
  std::vector<const FunctionDef*> candidates;
  const int argc = static_cast<int>(victim->args.size());
  for (const std::string& name : seed_vocabulary) {
    const FunctionDef* def = registry.Find(name);
    if (def != nullptr && def->type == current->type &&
        def->is_aggregate == current->is_aggregate && def->min_args <= argc &&
        (def->max_args < 0 || def->max_args >= argc) && def->name != current->name) {
      candidates.push_back(def);
    }
  }
  if (!candidates.empty()) {
    victim->func_name = candidates[rng.NextBelow(candidates.size())]->name;
  }
}

}  // namespace

CampaignResult MutSquirrel::Run(Database& db, const CampaignOptions& options) {
  CampaignResult result;
  result.tool = name();
  result.dialect = db.config().name;
  const telemetry::ScopedCollector telem(&result.telemetry);
  const ScopedBaselineRecorders recorders(result, options);
  Rng rng(options.seed ^ 0x535155ull);
  std::set<int> found_ids;
  uint64_t dedup_digest = kDedupDigestSeed;
  ApplyCampaignLimits(db, options);

  const std::vector<std::string> suite = SeedSuiteFor(db.config().name);
  // Parse the SELECT seeds once; run DDL/DML seeds as prerequisites. Record
  // the seed function vocabulary for swap mutations.
  std::vector<std::unique_ptr<SelectStmt>> seeds;
  std::set<std::string> seed_vocabulary;
  for (const std::string& line : suite) {
    Result<Statement> parsed = ParseStatement(line);
    if (!parsed.ok()) {
      continue;
    }
    if (parsed->is_select()) {
      std::vector<Expr*> calls;
      parsed->mutable_select()->CollectFunctionCalls(calls);
      for (const Expr* call : calls) {
        seed_vocabulary.insert(call->func_name);
      }
      seeds.push_back(parsed->mutable_select()->Clone());
    } else {
      db.Execute(line);
    }
  }
  if (seeds.empty()) {
    return result;
  }

  while (result.statements_executed < options.max_statements) {
    const std::unique_ptr<SelectStmt>& seed = seeds[rng.NextBelow(seeds.size())];
    std::unique_ptr<SelectStmt> mutant = seed->Clone();

    // Literal replacement (always) + optional function swap + clause add.
    for (SelectItem& item : mutant->items) {
      ReplaceLiterals(*item.expr, rng);
    }
    if (rng.NextBool(0.5)) {
      SwapFunctions(*mutant, rng, db.registry(), seed_vocabulary);
    }
    if (rng.NextBool(0.3) && mutant->limit == std::nullopt) {
      mutant->limit = static_cast<int64_t>(1 + rng.NextBelow(5));
    }
    ExecuteAndRecord(db, mutant->ToSql(), name(), result, found_ids, dedup_digest);
    MaybeCheckpointBaseline(options, result, rng, dedup_digest);
  }

  result.functions_triggered = db.coverage().TriggeredFunctionCount();
  result.branches_covered = db.coverage().CoveredBranchCount();
  return result;
}

}  // namespace soft
