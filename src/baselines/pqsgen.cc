// PqsGen: SQLancer-like pivoted query synthesis.
//
// PQS builds random tables, picks a pivot row, synthesizes predicates that
// are true for the pivot, and checks the pivot appears in the result — a
// logic oracle. SQLancer supports only functions it has hand-written Java
// models for; we mirror that with a small fixed pool, and generate its
// trademark random literals (including NULLs in condition functions).
#include "src/baselines/baselines.h"

#include <set>

#include "src/baselines/baseline_util.h"

namespace soft {
namespace {

// The hand-modeled function pool (only entries the dialect ships are used).
constexpr const char* kModeledFunctions[] = {
    "ABS",  "LENGTH", "UPPER",    "LOWER", "SUBSTR", "ROUND", "FLOOR",
    "CEIL", "MOD",    "CONCAT",   "REVERSE", "TRIM", "MIN",   "MAX",
    "SUM",  "COUNT",  "AVG",      "IFNULL", "COALESCE", "NULLIF", "INSTR",
    "LEFT", "RIGHT",  "SIN",      "COS",
};

}  // namespace

CampaignResult PqsGen::Run(Database& db, const CampaignOptions& options) {
  CampaignResult result;
  result.tool = name();
  result.dialect = db.config().name;
  const telemetry::ScopedCollector telem(&result.telemetry);
  const ScopedBaselineRecorders recorders(result, options);
  Rng rng(options.seed ^ 0x505153ull);
  std::set<int> found_ids;
  uint64_t dedup_digest = kDedupDigestSeed;
  ApplyCampaignLimits(db, options);

  db.Execute("DROP TABLE IF EXISTS t_pqs");
  db.Execute("CREATE TABLE t_pqs (a INT, b STRING, c DOUBLE)");
  // Random rows; remember one as the pivot.
  int64_t pivot_a = 0;
  std::string pivot_b;
  for (int i = 0; i < 5; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBelow(10));
    const std::string b = rng.NextIdentifier(3);
    db.Execute("INSERT INTO t_pqs VALUES (" + std::to_string(a) + ", '" + b + "', " +
               BenignDouble(rng) + ")");
    if (i == 2) {
      pivot_a = a;
      pivot_b = b;
    }
  }

  std::vector<std::string> pool;
  for (const char* fn : kModeledFunctions) {
    if (db.registry().Contains(fn)) {
      pool.push_back(fn);
    }
  }

  while (result.statements_executed < options.max_statements) {
    const std::string& fn = pool[rng.NextBelow(pool.size())];
    std::string call;
    std::string rhs;
    const int shape = static_cast<int>(rng.NextBelow(4));
    switch (shape) {
      case 0:  // numeric predicate on the pivot's a column
        call = fn + "(a)";
        rhs = fn + "(" + std::to_string(pivot_a) + ")";
        break;
      case 1:  // string predicate on the pivot's b column
        call = fn + "(b)";
        rhs = fn + "('" + pivot_b + "')";
        break;
      case 2:  // literal-only invocation (SQLancer expression generator)
        call = fn + "(" + (rng.NextBool() ? BenignInt(rng) : BenignString(rng)) + ")";
        rhs.clear();
        break;
      default:  // NULL-heavy condition shapes
        call = fn + "(" + (rng.NextBool(0.3) ? "NULL" : BenignInt(rng)) + ", " +
               BenignInt(rng) + ")";
        rhs.clear();
        break;
    }
    std::string sql;
    if (!rhs.empty()) {
      sql = "SELECT a, b FROM t_pqs WHERE " + call + " = " + rhs;
    } else {
      sql = "SELECT " + call;
    }
    ExecuteAndRecord(db, sql, name(), result, found_ids, dedup_digest);
    MaybeCheckpointBaseline(options, result, rng, dedup_digest);
    // The pivot-containment logic oracle itself finds no crash bugs by
    // construction; crash detection above is what counts here.
  }

  result.functions_triggered = db.coverage().TriggeredFunctionCount();
  result.branches_covered = db.coverage().CoveredBranchCount();
  return result;
}

}  // namespace soft
