// RandSmith: SQLsmith-like grammar-random generation.
//
// SQLsmith introspects the catalog and emits type-correct random queries
// with nested expressions and clause clutter. We reproduce that shape by
// deriving each function's argument template from its registry example
// (catalog introspection) and re-randomizing the leaf literals with benign
// mid-range values — the real tool's literals are similarly unremarkable,
// which is exactly why it misses boundary-argument bugs (Section 7.5).
#include "src/baselines/baselines.h"

#include <set>

#include "src/baselines/baseline_util.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

// Re-randomizes the leaf literals of an expression tree in place.
void RandomizeLiterals(Expr& e, Rng& rng) {
  if (e.kind == ExprKind::kLiteral) {
    switch (e.literal.kind()) {
      case TypeKind::kInt:
        e.literal = Value::Int(static_cast<int64_t>(rng.NextBelow(10)));
        break;
      case TypeKind::kDouble:
      case TypeKind::kDecimal:
        e.literal = Value::DoubleVal(static_cast<double>(rng.NextBelow(100)) / 10.0);
        break;
      case TypeKind::kString:
        e.literal = Value::Str(rng.NextIdentifier(1 + rng.NextBelow(8)));
        break;
      default:
        break;  // dates, blobs, stars kept as the template has them
    }
    return;
  }
  for (ExprPtr& a : e.args) {
    RandomizeLiterals(*a, rng);
  }
}

// Occasionally deepens an expression: wraps a string-valued leaf in a string
// function or a numeric leaf in a math function (SQLsmith nests heavily).
void MaybeNest(Expr& e, Rng& rng, const FunctionRegistry& registry, int depth) {
  if (depth > 2) {
    return;
  }
  for (ExprPtr& a : e.args) {
    if (a->kind == ExprKind::kLiteral && rng.NextBool(0.2)) {
      if (a->literal.kind() == TypeKind::kString && registry.Contains("UPPER")) {
        std::vector<ExprPtr> args;
        args.push_back(std::move(a));
        a = MakeFunctionCall("UPPER", std::move(args));
      } else if (a->literal.kind() == TypeKind::kInt && registry.Contains("ABS")) {
        std::vector<ExprPtr> args;
        args.push_back(std::move(a));
        a = MakeFunctionCall("ABS", std::move(args));
      }
    } else {
      MaybeNest(*a, rng, registry, depth + 1);
    }
  }
}

}  // namespace

CampaignResult RandSmith::Run(Database& db, const CampaignOptions& options) {
  CampaignResult result;
  result.tool = name();
  result.dialect = db.config().name;
  const telemetry::ScopedCollector telem(&result.telemetry);
  const ScopedBaselineRecorders recorders(result, options);
  Rng rng(options.seed ^ 0x536d697468ull);
  std::set<int> found_ids;
  uint64_t dedup_digest = kDedupDigestSeed;
  ApplyCampaignLimits(db, options);

  // Its own scratch table for FROM-clause clutter.
  db.Execute("CREATE TABLE t_rs (x INT, s STRING)");
  db.Execute("INSERT INTO t_rs VALUES (1, 'aa'), (2, 'bb'), (3, 'cc')");

  // Catalog introspection: argument templates from registry examples.
  // SQLsmith's typed expression generator only reaches functions whose
  // signatures it can satisfy from its scalar type universe — approximate
  // that by keeping templates whose arguments are all plain scalar literals
  // (no nested constructors, no temporal/array/blob literals).
  std::vector<const FunctionDef*> catalog;
  for (const FunctionDef* def : db.registry().All()) {
    if (def->example.empty()) {
      continue;
    }
    Result<ExprPtr> tmpl = ParseExpression(def->example);
    if (!tmpl.ok() || (*tmpl)->kind != ExprKind::kFunctionCall) {
      continue;
    }
    bool simple = true;
    for (const ExprPtr& arg : (*tmpl)->args) {
      if (arg->kind != ExprKind::kLiteral) {
        simple = false;
        break;
      }
      const TypeKind kind = arg->literal.kind();
      if (kind != TypeKind::kInt && kind != TypeKind::kDouble &&
          kind != TypeKind::kDecimal && kind != TypeKind::kString &&
          kind != TypeKind::kStar) {
        simple = false;
        break;
      }
    }
    if (simple) {
      catalog.push_back(def);
    }
  }
  if (catalog.empty()) {
    return result;
  }

  while (result.statements_executed < options.max_statements) {
    const FunctionDef* def = catalog[rng.NextBelow(catalog.size())];
    Result<ExprPtr> tmpl = ParseExpression(def->example);
    if (!tmpl.ok()) {
      continue;
    }
    ExprPtr expr = std::move(tmpl).value();
    RandomizeLiterals(*expr, rng);
    MaybeNest(*expr, rng, db.registry(), 0);

    std::string sql = "SELECT " + expr->ToSql();
    // Clause clutter in the SQLsmith style.
    if (rng.NextBool(0.3)) {
      sql += ", x FROM t_rs WHERE x > " + BenignInt(rng);
      if (rng.NextBool(0.5)) {
        sql += " ORDER BY x";
      }
      if (rng.NextBool(0.5)) {
        sql += " LIMIT " + std::to_string(1 + rng.NextBelow(3));
      }
    }
    ExecuteAndRecord(db, sql, name(), result, found_ids, dedup_digest);
    MaybeCheckpointBaseline(options, result, rng, dedup_digest);
  }

  result.functions_triggered = db.coverage().TriggeredFunctionCount();
  result.branches_covered = db.coverage().CoveredBranchCount();
  return result;
}

}  // namespace soft
