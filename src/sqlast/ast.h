// Abstract syntax for the SQL subset the engine executes.
//
// The AST is deliberately mutation-friendly: SOFT's pattern engine works by
// cloning statements and rewriting function-call argument subtrees (Patterns
// 1.2–3.3), so nodes are unique_ptr-owned trees with deep Clone() and a
// renderer that turns any tree back into SQL text. Every generated test case
// round-trips through text so the parser is exercised on every execution,
// matching the paper's parse→optimize→execute crash attribution.
#ifndef SRC_SQLAST_AST_H_
#define SRC_SQLAST_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/sqlvalue/type.h"
#include "src/sqlvalue/value.h"

namespace soft {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct SelectStmt;

enum class ExprKind {
  kLiteral,       // constant Value (includes NULL and '*')
  kColumnRef,     // bare identifier
  kFunctionCall,  // NAME(args...), optionally DISTINCT
  kCast,          // CAST(x AS T) or x::T
  kBinaryOp,      // x <op> y
  kUnaryOp,       // <op> x
  kRowCtor,       // ROW(a, b, ...)
  kArrayCtor,     // ARRAY[a, b, ...]
  kSubquery,      // scalar subquery (SELECT ...)
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string column_name;

  // kFunctionCall
  std::string func_name;  // stored upper-case
  bool distinct_arg = false;

  // kCast
  TypeKind cast_type = TypeKind::kString;
  std::string cast_type_text;  // original spelling, e.g. "Decimal256(45)"

  // kBinaryOp / kUnaryOp
  std::string op;

  // Children: function args, cast operand (args[0]), binary operands
  // (args[0], args[1]), unary operand (args[0]), row/array elements.
  std::vector<ExprPtr> args;

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  ExprPtr Clone() const;

  // Renders this expression as SQL text.
  std::string ToSql() const;

  // Number of function-call nodes in this subtree (Finding 3 accounting).
  int CountFunctionCalls() const;

  // Collects mutable pointers to every function-call node (pre-order).
  void CollectFunctionCalls(std::vector<Expr*>& out);
};

// --- Expression factories -------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args, bool distinct = false);
ExprPtr MakeCast(ExprPtr operand, TypeKind type, std::string type_text = "");
ExprPtr MakeBinaryOp(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnaryOp(std::string op, ExprPtr operand);
ExprPtr MakeRowCtor(std::vector<ExprPtr> fields);
ExprPtr MakeArrayCtor(std::vector<ExprPtr> items);
ExprPtr MakeSubquery(std::unique_ptr<SelectStmt> select);

// --- Statements -------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when none

  SelectItem() = default;
  SelectItem(ExprPtr e, std::string a) : expr(std::move(e)), alias(std::move(a)) {}
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;

  // FROM: either a named table or a derived table (subquery + alias).
  std::string from_table;  // empty when absent
  std::unique_ptr<SelectStmt> from_subquery;
  std::string from_alias;

  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  // UNION chain; when set, this statement is the left branch.
  std::unique_ptr<SelectStmt> union_next;
  bool union_all = false;

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToSql() const;
  int CountFunctionCalls() const;
  void CollectFunctionCalls(std::vector<Expr*>& out);
};

struct ColumnDef {
  std::string name;
  TypeKind type = TypeKind::kString;
  std::string type_text;
  bool not_null = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  std::string ToSql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          // empty → positional
  std::vector<std::vector<ExprPtr>> rows;    // VALUES rows
  std::string ToSql() const;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
  std::string ToSql() const;
};

struct Statement {
  std::variant<std::unique_ptr<SelectStmt>, CreateTableStmt, InsertStmt, DropTableStmt> node;

  bool is_select() const {
    return std::holds_alternative<std::unique_ptr<SelectStmt>>(node);
  }
  const SelectStmt* select() const {
    return is_select() ? std::get<std::unique_ptr<SelectStmt>>(node).get() : nullptr;
  }
  SelectStmt* mutable_select() {
    return is_select() ? std::get<std::unique_ptr<SelectStmt>>(node).get() : nullptr;
  }

  std::string ToSql() const;
};

}  // namespace soft

#endif  // SRC_SQLAST_AST_H_
