#include "src/sqlast/ast.h"

#include "src/util/str_util.h"

namespace soft {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->column_name = column_name;
  out->func_name = func_name;
  out->distinct_arg = distinct_arg;
  out->cast_type = cast_type;
  out->cast_type_text = cast_type_text;
  out->op = op;
  out->args.reserve(args.size());
  for (const ExprPtr& a : args) {
    out->args.push_back(a->Clone());
  }
  if (subquery != nullptr) {
    out->subquery = subquery->Clone();
  }
  return out;
}

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return column_name;
    case ExprKind::kFunctionCall: {
      std::string out = func_name;
      out.push_back('(');
      if (distinct_arg) {
        out += "DISTINCT ";
      }
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += args[i]->ToSql();
      }
      out.push_back(')');
      return out;
    }
    case ExprKind::kCast: {
      std::string type_text =
          cast_type_text.empty() ? std::string(TypeKindName(cast_type)) : cast_type_text;
      return "CAST(" + args[0]->ToSql() + " AS " + type_text + ")";
    }
    case ExprKind::kBinaryOp:
      return "(" + args[0]->ToSql() + " " + op + " " + args[1]->ToSql() + ")";
    case ExprKind::kUnaryOp:
      if (op == "IS NULL" || op == "IS NOT NULL") {
        return "(" + args[0]->ToSql() + " " + op + ")";
      }
      return "(" + op + (op == "NOT" ? " " : "") + args[0]->ToSql() + ")";
    case ExprKind::kRowCtor: {
      std::string out = "ROW(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += args[i]->ToSql();
      }
      out.push_back(')');
      return out;
    }
    case ExprKind::kArrayCtor: {
      std::string out = "ARRAY[";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += args[i]->ToSql();
      }
      out.push_back(']');
      return out;
    }
    case ExprKind::kSubquery:
      return "(" + subquery->ToSql() + ")";
  }
  return "?";
}

int Expr::CountFunctionCalls() const {
  int count = kind == ExprKind::kFunctionCall ? 1 : 0;
  for (const ExprPtr& a : args) {
    count += a->CountFunctionCalls();
  }
  if (subquery != nullptr) {
    count += subquery->CountFunctionCalls();
  }
  return count;
}

void Expr::CollectFunctionCalls(std::vector<Expr*>& out) {
  if (kind == ExprKind::kFunctionCall) {
    out.push_back(this);
  }
  for (ExprPtr& a : args) {
    a->CollectFunctionCalls(out);
  }
  if (subquery != nullptr) {
    subquery->CollectFunctionCalls(out);
  }
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->func_name = AsciiUpper(name);
  e->args = std::move(args);
  e->distinct_arg = distinct;
  return e;
}

ExprPtr MakeCast(ExprPtr operand, TypeKind type, std::string type_text) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_type = type;
  e->cast_type_text = std::move(type_text);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinaryOp(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinaryOp;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnaryOp(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnaryOp;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeRowCtor(std::vector<ExprPtr> fields) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRowCtor;
  e->args = std::move(fields);
  return e;
}

ExprPtr MakeArrayCtor(std::vector<ExprPtr> items) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArrayCtor;
  e->args = std::move(items);
  return e;
}

ExprPtr MakeSubquery(std::unique_ptr<SelectStmt> select) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kSubquery;
  e->subquery = std::move(select);
  return e;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const SelectItem& item : items) {
    out->items.emplace_back(item.expr->Clone(), item.alias);
  }
  out->from_table = from_table;
  if (from_subquery != nullptr) {
    out->from_subquery = from_subquery->Clone();
  }
  out->from_alias = from_alias;
  if (where != nullptr) {
    out->where = where->Clone();
  }
  for (const ExprPtr& g : group_by) {
    out->group_by.push_back(g->Clone());
  }
  if (having != nullptr) {
    out->having = having->Clone();
  }
  for (const OrderItem& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  if (union_next != nullptr) {
    out->union_next = union_next->Clone();
  }
  out->union_all = union_all;
  return out;
}

std::string SelectStmt::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) {
    out += "DISTINCT ";
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += items[i].expr->ToSql();
    if (!items[i].alias.empty()) {
      out += " AS " + items[i].alias;
    }
  }
  if (!from_table.empty()) {
    out += " FROM " + from_table;
  } else if (from_subquery != nullptr) {
    out += " FROM (" + from_subquery->ToSql() + ")";
    if (!from_alias.empty()) {
      out += " " + from_alias;
    }
  }
  if (where != nullptr) {
    out += " WHERE " + where->ToSql();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += group_by[i]->ToSql();
    }
  }
  if (having != nullptr) {
    out += " HAVING " + having->ToSql();
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += order_by[i].expr->ToSql();
      if (!order_by[i].ascending) {
        out += " DESC";
      }
    }
  }
  if (limit.has_value()) {
    out += " LIMIT " + std::to_string(*limit);
  }
  if (union_next != nullptr) {
    out += union_all ? " UNION ALL " : " UNION ";
    out += union_next->ToSql();
  }
  return out;
}

int SelectStmt::CountFunctionCalls() const {
  int count = 0;
  for (const SelectItem& item : items) {
    count += item.expr->CountFunctionCalls();
  }
  if (from_subquery != nullptr) {
    count += from_subquery->CountFunctionCalls();
  }
  if (where != nullptr) {
    count += where->CountFunctionCalls();
  }
  for (const ExprPtr& g : group_by) {
    count += g->CountFunctionCalls();
  }
  if (having != nullptr) {
    count += having->CountFunctionCalls();
  }
  for (const OrderItem& o : order_by) {
    count += o.expr->CountFunctionCalls();
  }
  if (union_next != nullptr) {
    count += union_next->CountFunctionCalls();
  }
  return count;
}

void SelectStmt::CollectFunctionCalls(std::vector<Expr*>& out) {
  for (SelectItem& item : items) {
    item.expr->CollectFunctionCalls(out);
  }
  if (from_subquery != nullptr) {
    from_subquery->CollectFunctionCalls(out);
  }
  if (where != nullptr) {
    where->CollectFunctionCalls(out);
  }
  for (ExprPtr& g : group_by) {
    g->CollectFunctionCalls(out);
  }
  if (having != nullptr) {
    having->CollectFunctionCalls(out);
  }
  for (OrderItem& o : order_by) {
    o.expr->CollectFunctionCalls(out);
  }
  if (union_next != nullptr) {
    union_next->CollectFunctionCalls(out);
  }
}

std::string CreateTableStmt::ToSql() const {
  std::string out = "CREATE TABLE " + table + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += columns[i].name + " ";
    out += columns[i].type_text.empty() ? std::string(TypeKindName(columns[i].type))
                                        : columns[i].type_text;
    if (columns[i].not_null) {
      out += " NOT NULL";
    }
  }
  out += ")";
  return out;
}

std::string InsertStmt::ToSql() const {
  std::string out = "INSERT INTO " + table;
  if (!columns.empty()) {
    out += " (";
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += columns[i];
    }
    out += ")";
  }
  out += " VALUES ";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) {
      out += ", ";
    }
    out += "(";
    for (size_t i = 0; i < rows[r].size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += rows[r][i]->ToSql();
    }
    out += ")";
  }
  return out;
}

std::string DropTableStmt::ToSql() const {
  return std::string("DROP TABLE ") + (if_exists ? "IF EXISTS " : "") + table;
}

std::string Statement::ToSql() const {
  struct Visitor {
    std::string operator()(const std::unique_ptr<SelectStmt>& s) const { return s->ToSql(); }
    std::string operator()(const CreateTableStmt& s) const { return s.ToSql(); }
    std::string operator()(const InsertStmt& s) const { return s.ToSql(); }
    std::string operator()(const DropTableStmt& s) const { return s.ToSql(); }
  };
  return std::visit(Visitor{}, node);
}

}  // namespace soft
