#include "src/util/io.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <mutex>
#include <string>

#include "src/failpoint/failpoint.h"

namespace soft {
namespace io {

namespace {

void BackoffSleep(uint64_t delay_us) {
  if (delay_us > 0) {
    ::usleep(static_cast<useconds_t>(delay_us));
  }
}

std::string ErrnoText(int err) {
  return std::string(::strerror(err));
}

}  // namespace

Status RetryingWriter::WriteAll(std::string_view data) {
  size_t offset = 0;
  int attempts = 0;
  uint64_t delay_us = policy_.backoff_initial_us;
  while (offset < data.size()) {
    size_t chunk = data.size() - offset;
    // io.short_write: deliver only the first byte of the chunk — the retry
    // loop must finish the record invisibly (SiteClass kIoRetry).
    if (chunk > 1 && SOFT_FAILPOINT_HIT("io.short_write")) {
      chunk = 1;
    }
    ssize_t n;
    if (SOFT_FAILPOINT_HIT("io.eintr")) {
      n = -1;
      errno = EINTR;
    } else {
      n = ::write(fd_, data.data() + offset, chunk);
    }
    if (n > 0) {
      offset += static_cast<size_t>(n);
      attempts = 0;  // progress resets the exhaustion bound
      delay_us = policy_.backoff_initial_us;
      continue;
    }
    int err = (n < 0) ? errno : 0;
    if (n < 0 && err == EPIPE) {
      // Reader gone (requires IgnoreSigpipe(), or the default disposition
      // would have killed this process before errno was ever seen). Not a
      // transient: the peer will not come back, so fail cleanly now.
      return IoError("write(fd=" + std::to_string(fd_) +
                     ") failed: peer closed (" + ErrnoText(err) + ")");
    }
    if (n < 0 && err != EINTR && err != EAGAIN && err != EWOULDBLOCK) {
      return IoError("write(fd=" + std::to_string(fd_) +
                     ") failed: " + ErrnoText(err));
    }
    if (++attempts >= policy_.max_attempts) {
      return IoError("write(fd=" + std::to_string(fd_) + ") made no progress after " +
                     std::to_string(attempts) + " attempts (" +
                     (n < 0 ? ErrnoText(err) : std::string("zero-length write")) +
                     ")");
    }
    BackoffSleep(delay_us);
    delay_us = delay_us * 2 < policy_.backoff_max_us ? delay_us * 2
                                                     : policy_.backoff_max_us;
  }
  return OkStatus();
}

Status RetryingWriter::WriteLine(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return WriteAll(framed);
}

void IgnoreSigpipe() {
  // Forked children inherit both the disposition and the fired once_flag,
  // so calling this again after fork is a free no-op.
  static std::once_flag guard;
  std::call_once(guard, [] { ::signal(SIGPIPE, SIG_IGN); });
}

int64_t ReadRetrying(int fd, char* buf, uint64_t count) {
  while (true) {
    ssize_t n;
    if (SOFT_FAILPOINT_HIT("worker.pipe_read")) {
      n = -1;
      errno = EINTR;
    } else {
      n = ::read(fd, buf, count);
    }
    if (n >= 0) {
      return static_cast<int64_t>(n);
    }
    if (errno != EINTR) {
      return -1;
    }
  }
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  auto fail = [&](int fd, const std::string& stage, const std::string& detail) {
    if (fd >= 0) {
      ::close(fd);
    }
    ::unlink(tmp_path.c_str());
    return IoError(stage + " failed for '" + path + "': " + detail);
  };

  int fd;
  if (SOFT_FAILPOINT_HIT("io.open")) {
    fd = -1;
    errno = EMFILE;
  } else {
    fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  if (fd < 0) {
    return fail(-1, "open", ErrnoText(errno) + " (tmp file '" + tmp_path + "')");
  }

  if (SOFT_FAILPOINT_HIT("io.write")) {
    return fail(fd, "write", "injected fault at failpoint 'io.write'");
  }
  RetryingWriter writer(fd);
  Status write_status = writer.WriteAll(contents);
  if (!write_status.ok()) {
    return fail(fd, "write", write_status.message());
  }

  bool fsync_failed;
  if (SOFT_FAILPOINT_HIT("io.fsync")) {
    fsync_failed = true;
    errno = EIO;
  } else {
    fsync_failed = ::fsync(fd) != 0;
  }
  if (fsync_failed) {
    return fail(fd, "fsync", ErrnoText(errno));
  }
  if (::close(fd) != 0) {
    return fail(-1, "close", ErrnoText(errno));
  }

  // io.rename skips the real rename so the destination stays untouched —
  // the atomicity contract under test is exactly "error ⇒ old contents".
  bool rename_failed;
  if (SOFT_FAILPOINT_HIT("io.rename")) {
    rename_failed = true;
    errno = EXDEV;
  } else {
    rename_failed = ::rename(tmp_path.c_str(), path.c_str()) != 0;
  }
  if (rename_failed) {
    return fail(-1, "rename", ErrnoText(errno) + " (tmp file '" + tmp_path + "')");
  }
  return OkStatus();
}

}  // namespace io
}  // namespace soft
