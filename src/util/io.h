// Crash-atomic artifact I/O for the harness.
//
// Two failure families killed campaign artifacts before this layer existed
// (see docs/ROBUSTNESS.md, "Failpoints and chaos campaigns"):
//
//  * transient fd-level failures — EINTR, EAGAIN, short writes — which the
//    worker pipe loop (src/soft/worker.cc) used to half-handle and every
//    other writer ignored; RetryingWriter absorbs them with bounded
//    exponential backoff and turns exhaustion into kIoError;
//  * torn artifact files — a journal or PoC file that dies mid-write looks
//    complete to the caller; WriteFileAtomic writes tmp + fsync + rename so
//    the destination path either holds the previous contents or the full
//    new contents, never a prefix.
//
// Both layers are instrumented with failpoints (io.eintr / io.short_write /
// io.open / io.write / io.fsync / io.rename) so chaos campaigns can prove
// the retry path is invisible and the error path is clean and atomic.
#ifndef SRC_UTIL_IO_H_
#define SRC_UTIL_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {
namespace io {

// Bounded exponential backoff for transient fd-level failures. Attempts
// reset whenever a write makes progress, so the bound is on *consecutive*
// fruitless attempts, not on total syscalls for a large buffer.
struct RetryPolicy {
  int max_attempts = 8;
  uint64_t backoff_initial_us = 100;
  uint64_t backoff_max_us = 50000;
};

// Writes whole buffers to a file descriptor, retrying EINTR / EAGAIN /
// zero-progress writes under the policy. Replaces the hand-rolled partial
// write loop the worker pipe protocol used (and which gave up on the first
// EINTR).
class RetryingWriter {
 public:
  explicit RetryingWriter(int fd, RetryPolicy policy = RetryPolicy())
      : fd_(fd), policy_(policy) {}

  // Writes all of `data`, or returns kIoError after the policy is exhausted.
  Status WriteAll(std::string_view data);

  // WriteAll(line + '\n') — the NDJSON / pipe-protocol framing invariant:
  // the terminating newline is the last byte of a record, so a record
  // missing it is by definition torn (see ReplayJournal's torn-tail rule).
  Status WriteLine(std::string_view line);

  int fd() const { return fd_; }

 private:
  int fd_;
  RetryPolicy policy_;
};

// read(2) that retries EINTR (failpoint io.eintr aside, a real EINTR from a
// supervisor's SIGCHLD must not be misread as end-of-stream). Returns the
// read count, 0 at end-of-stream, -1 with errno set on a real error.
int64_t ReadRetrying(int fd, char* buf, uint64_t count);

// Ignores SIGPIPE for the calling process (idempotent, call_once-guarded).
// Every process that writes pipe/socket frames to a peer that can die —
// forked campaign workers, the fleet coordinator and its workers — must
// call this before its first frame: with SIGPIPE at SIG_DFL, a peer
// vanishing mid-frame kills the writer outright; with it ignored, the
// write fails with EPIPE, which RetryingWriter surfaces as a clean
// kIoError the supervision/degradation paths already handle.
void IgnoreSigpipe();

// Atomically replaces `path` with `contents`: writes `path`.tmp.<pid>,
// fsyncs, closes, renames over `path`. On any failure the tmp file is
// unlinked and `path` is untouched; the Status names the path and stage.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace io
}  // namespace soft

#endif  // SRC_UTIL_IO_H_
