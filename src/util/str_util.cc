#include "src/util/str_util.h"

#include <algorithm>
#include <cctype>

namespace soft {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(s);
  }
  std::string out;
  size_t pos = 0;
  for (;;) {
    const size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') {
      out += "''";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\'');
  return out;
}

int DecimalDigitCount(uint64_t v) {
  int digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

}  // namespace soft
