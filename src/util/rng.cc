#include "src/util/rng.h"

#include <cassert>

namespace soft {
namespace {

// splitmix64 for seeding.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr char kPrintable[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-.";
constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
constexpr char kAlnum[] = "abcdefghijklmnopqrstuvwxyz0123456789";

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& st : state_) {
    st = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo via rejection sampling.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextString(size_t length) {
  std::string out;
  out.reserve(length);
  const size_t n = sizeof(kPrintable) - 1;
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kPrintable[NextBelow(n)]);
  }
  return out;
}

uint64_t Rng::StateFingerprint() const {
  // FNV-1a over the four state words; mixing order matters, collisions don't
  // (the fingerprint only has to distinguish "same point in the stream" from
  // "diverged").
  uint64_t h = 0xCBF29CE484222325ull;
  for (const uint64_t st : state_) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (st >> shift) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  }
  return h;
}

uint64_t SeedForShard(uint64_t base_seed, int shard) {
  if (shard == 0) {
    return base_seed;
  }
  uint64_t x = base_seed ^ (0xD1B54A32D192ED03ull * static_cast<uint64_t>(shard));
  return SplitMix64(x);
}

std::string Rng::NextIdentifier(size_t length) {
  std::string out;
  if (length == 0) {
    return out;
  }
  out.reserve(length);
  out.push_back(kLetters[NextBelow(sizeof(kLetters) - 1)]);
  for (size_t i = 1; i < length; ++i) {
    out.push_back(kAlnum[NextBelow(sizeof(kAlnum) - 1)]);
  }
  return out;
}

}  // namespace soft
