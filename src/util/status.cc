#include "src/util/status.h"

namespace soft {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCrash:
      return "CRASH";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace soft
