// Small string helpers shared across the library.
#ifndef SRC_UTIL_STR_UTIL_H_
#define SRC_UTIL_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace soft {

// ASCII-only case transforms (SQL identifiers / keywords are ASCII).
std::string AsciiLower(std::string_view s);
std::string AsciiUpper(std::string_view s);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Split on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Trim ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// Replace all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to);

// Escape a string for embedding in a single-quoted SQL literal ('' doubling).
std::string SqlQuote(std::string_view s);

// Number of decimal digits in the textual representation of a non-negative
// integer (0 has one digit).
int DecimalDigitCount(uint64_t v);

}  // namespace soft

#endif  // SRC_UTIL_STR_UTIL_H_
