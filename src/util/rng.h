// Deterministic PRNG used by all fuzzers (SOFT and the baselines).
//
// Campaign reproducibility matters: every comparative experiment in the paper
// is rerun here with fixed seeds, so the generators must be deterministic and
// not depend on libstdc++'s unspecified distributions. We use xoshiro256**
// plus explicit bounded-draw helpers.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace soft {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Raw 64-bit draw.
  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli draw with probability p.
  bool NextBool(double p = 0.5);

  // Uniform choice from a non-empty vector.
  template <typename T>
  const T& Choose(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  // Random ASCII string of the given length from a printable alphabet.
  std::string NextString(size_t length);

  // Random identifier-looking token (letters + digits, starts with a letter).
  std::string NextIdentifier(size_t length);

  // Non-destructive digest of the generator state (the journal's "RNG
  // cursor"): two identical campaigns have identical fingerprints at the
  // same statement index, so checkpoint/resume can verify a replay really
  // retraced the interrupted run. Does not advance the stream.
  uint64_t StateFingerprint() const;

 private:
  uint64_t state_[4];
};

// Derives the campaign seed for shard `shard` of a sharded run. Shard 0
// keeps the base seed, so a 1-shard campaign is bit-identical to the serial
// campaign it replaces; later shards get splitmix64-decorrelated streams
// that depend only on (base_seed, shard), never on thread scheduling.
uint64_t SeedForShard(uint64_t base_seed, int shard);

}  // namespace soft

#endif  // SRC_UTIL_RNG_H_
