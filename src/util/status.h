// Status / Result<T> error handling for the SOFT reproduction.
//
// The core library does not use exceptions: every fallible operation returns
// either a Status or a Result<T>. Simulated DBMS crashes (injected faults)
// travel through the same channel, tagged with StatusCode::kCrash so the
// execution harness can distinguish "query raised an SQL error" from
// "query crashed the server".
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace soft {

// Broad classification of failures. kCrash is special: it models a
// memory-safety fault in the simulated DBMS (see src/fault).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // SQL error: bad argument value/type for a function.
  kParseError,        // statement failed to parse.
  kTypeError,         // cast / type resolution failure.
  kNotFound,          // unknown function, table, or column.
  kUnsupported,       // feature not available in this dialect.
  kResourceExhausted, // engine-enforced memory/length limit (false-positive source).
  kTimeout,           // statement watchdog: wall-clock deadline exceeded.
  kInternal,          // harness bug, not a DBMS behaviour.
  kIoError,           // harness artifact I/O failure (journal, PoC, bench JSON).
  kCrash,             // simulated memory-safety crash (carries crash metadata).
};

std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True when the failure models a simulated DBMS crash.
  bool is_crash() const { return code_ == StatusCode::kCrash; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Timeout(std::string msg) {
  return Status(StatusCode::kTimeout, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status CrashStatus(std::string msg) {
  return Status(StatusCode::kCrash, std::move(msg));
}

// Result<T>: value or Status. Minimal StatusOr-style wrapper.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) { // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(var_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(var_);
  }

 private:
  std::variant<T, Status> var_;
};

// Propagate errors out of the enclosing function.
#define SOFT_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::soft::Status _soft_status = (expr);   \
    if (!_soft_status.ok()) {               \
      return _soft_status;                  \
    }                                       \
  } while (false)

#define SOFT_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) {                                  \
    return var.status();                            \
  }                                                 \
  lhs = std::move(var).value()

#define SOFT_CONCAT_INNER(a, b) a##b
#define SOFT_CONCAT(a, b) SOFT_CONCAT_INNER(a, b)

// Usage: SOFT_ASSIGN_OR_RETURN(Value v, EvalExpr(e));
#define SOFT_ASSIGN_OR_RETURN(lhs, rexpr) \
  SOFT_ASSIGN_OR_RETURN_IMPL(SOFT_CONCAT(_soft_result_, __LINE__), lhs, rexpr)

}  // namespace soft

#endif  // SRC_UTIL_STATUS_H_
