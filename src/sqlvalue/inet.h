// IPv4 / IPv6 address values.
//
// INET6_ATON('255.255.255.255') producing a binary blob that is then fed to a
// spatial function is the exact chain of MariaDB Case 6 in the paper; the
// engine therefore needs a real inet codec whose binary form can flow into
// blob-typed arguments.
#ifndef SRC_SQLVALUE_INET_H_
#define SRC_SQLVALUE_INET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {

struct InetAddr {
  // IPv4 addresses are stored IPv4-mapped (::ffff:a.b.c.d) with is_v4 = true.
  std::array<uint8_t, 16> bytes{};
  bool is_v4 = false;

  bool operator==(const InetAddr&) const = default;
};

// Parses dotted-quad IPv4 or colon-hex IPv6 (with '::' compression).
Result<InetAddr> ParseInet(std::string_view text);

std::string FormatInet(const InetAddr& addr);

// Binary form as used by INET6_ATON: 4 bytes for v4, 16 bytes for v6.
std::string InetToBinary(const InetAddr& addr);
Result<InetAddr> InetFromBinary(std::string_view bytes);

}  // namespace soft

#endif  // SRC_SQLVALUE_INET_H_
