// Arbitrary-digit fixed-point decimal.
//
// Digit-count boundaries in decimal handling are one of the paper's dominant
// bug sources (MDEV-8407: decimal2string breaks past 40 digits; the MySQL AVG
// global buffer overflow with a ~65-digit literal). This class is the engine's
// internal decimal representation; it stores every significant digit
// explicitly so the fault corpus can express "digits ≥ N" trigger predicates
// against real values, not approximations.
//
// Representation: value = (negative ? -1 : 1) * digits * 10^-scale where
// `digits` is a most-significant-first ASCII digit string with no redundant
// leading zeros (except enough to cover the fractional part).
#ifndef SRC_SQLVALUE_DECIMAL_H_
#define SRC_SQLVALUE_DECIMAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {

class Decimal {
 public:
  // Maximum total significant digits accepted from SQL text. Mirrors MySQL's
  // 65-digit precision cap; parsing longer literals is still permitted (the
  // whole point is to exercise past-the-cap behaviour) up to a hard safety
  // limit, after which FromString reports kResourceExhausted.
  static constexpr int kMaxPrecision = 65;
  static constexpr int kHardDigitLimit = 100000;

  Decimal() : negative_(false), digits_("0"), scale_(0) {}

  static Decimal FromInt64(int64_t v);
  // Converts via the shortest round-trip representation of the double.
  static Result<Decimal> FromDouble(double v);
  // Parses [+-]?digits[.digits] (optionally with exponent, e.g. 1e-32).
  static Result<Decimal> FromString(std::string_view s);

  bool negative() const { return negative_ && !IsZero(); }
  int scale() const { return scale_; }
  // Total significant digits (including fractional digits, excluding sign/dot).
  int total_digits() const { return static_cast<int>(digits_.size()); }
  int integer_digits() const { return static_cast<int>(digits_.size()) - scale_; }
  int fraction_digits() const { return scale_; }

  bool IsZero() const;

  // Plain decimal text, e.g. "-12.340". Never scientific notation.
  std::string ToString() const;
  // Scientific notation, e.g. "1.234e-2" — what MariaDB's String::set_real
  // falls back to past 31 digits (the MDEV-23415 trigger shape).
  std::string ToScientificString() const;

  double ToDouble() const;
  // Fails with kInvalidArgument when the truncated integer part does not fit
  // in int64.
  Result<int64_t> ToInt64() const;

  Decimal Negated() const;
  // Round (half away from zero) to `new_scale` fractional digits.
  Decimal Rounded(int new_scale) const;

  static Decimal Add(const Decimal& a, const Decimal& b);
  static Decimal Sub(const Decimal& a, const Decimal& b);
  static Decimal Mul(const Decimal& a, const Decimal& b);
  // Fixed-scale long division; fails on division by zero.
  static Result<Decimal> Div(const Decimal& a, const Decimal& b, int result_scale = 16);

  // Three-way compare: -1, 0, +1.
  static int Compare(const Decimal& a, const Decimal& b);

  bool operator==(const Decimal& other) const { return Compare(*this, other) == 0; }

 private:
  Decimal(bool negative, std::string digits, int scale)
      : negative_(negative), digits_(std::move(digits)), scale_(scale) {
    Normalize();
  }

  // Strips redundant leading zeros and canonicalizes zero.
  void Normalize();

  // Unsigned digit-string helpers (aligned to a common scale by the callers).
  static std::string AddMagnitude(const std::string& a, const std::string& b);
  // Requires |a| >= |b|.
  static std::string SubMagnitude(const std::string& a, const std::string& b);
  static int CompareMagnitude(const std::string& a, const std::string& b);

  bool negative_;
  std::string digits_;
  int scale_;
};

}  // namespace soft

#endif  // SRC_SQLVALUE_DECIMAL_H_
