#include "src/sqlvalue/value.h"

#include <cmath>
#include <cstdio>

#include "src/util/str_util.h"

namespace soft {

TypeKind Value::kind() const {
  struct Visitor {
    TypeKind operator()(const std::monostate&) const { return TypeKind::kNull; }
    TypeKind operator()(const bool&) const { return TypeKind::kBool; }
    TypeKind operator()(const int64_t&) const { return TypeKind::kInt; }
    TypeKind operator()(const double&) const { return TypeKind::kDouble; }
    TypeKind operator()(const Decimal&) const { return TypeKind::kDecimal; }
    TypeKind operator()(const std::string&) const { return TypeKind::kString; }
    TypeKind operator()(const Blob&) const { return TypeKind::kBlob; }
    TypeKind operator()(const Date&) const { return TypeKind::kDate; }
    TypeKind operator()(const DateTime&) const { return TypeKind::kDateTime; }
    TypeKind operator()(const JsonPtr&) const { return TypeKind::kJson; }
    TypeKind operator()(const ArrayBox&) const { return TypeKind::kArray; }
    TypeKind operator()(const RowBox&) const { return TypeKind::kRow; }
    TypeKind operator()(const MapEntriesPtr&) const { return TypeKind::kMap; }
    TypeKind operator()(const InetAddr&) const { return TypeKind::kInet; }
    TypeKind operator()(const GeometryPtr&) const { return TypeKind::kGeometry; }
    TypeKind operator()(const StarTag&) const { return TypeKind::kStar; }
  };
  return std::visit(Visitor{}, data_);
}

const ValueList& Value::array_items() const { return *std::get<ArrayBox>(data_).items; }
const ValueList& Value::row_fields() const { return *std::get<RowBox>(data_).fields; }

Result<double> Value::AsDouble() const {
  switch (kind()) {
    case TypeKind::kBool:
      return bool_value() ? 1.0 : 0.0;
    case TypeKind::kInt:
      return static_cast<double>(int_value());
    case TypeKind::kDouble:
      return double_value();
    case TypeKind::kDecimal:
      return decimal_value().ToDouble();
    default:
      return TypeError("value is not numeric");
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (kind()) {
    case TypeKind::kBool:
      return static_cast<int64_t>(bool_value() ? 1 : 0);
    case TypeKind::kInt:
      return int_value();
    case TypeKind::kDouble: {
      const double d = double_value();
      if (std::isnan(d) || d >= 9.3e18 || d <= -9.3e18) {
        return InvalidArgument("DOUBLE out of INT range");
      }
      return static_cast<int64_t>(d);
    }
    case TypeKind::kDecimal:
      return decimal_value().ToInt64();
    default:
      return TypeError("value is not numeric");
  }
}

Result<Decimal> Value::AsDecimal() const {
  switch (kind()) {
    case TypeKind::kBool:
      return Decimal::FromInt64(bool_value() ? 1 : 0);
    case TypeKind::kInt:
      return Decimal::FromInt64(int_value());
    case TypeKind::kDouble:
      return Decimal::FromDouble(double_value());
    case TypeKind::kDecimal:
      return decimal_value();
    default:
      return TypeError("value is not numeric");
  }
}

namespace {

std::string DoubleToText(double d) {
  if (std::isnan(d)) {
    return "nan";
  }
  if (std::isinf(d)) {
    return d > 0 ? "inf" : "-inf";
  }
  if (d == 0) {
    return "0";  // canonical: no "-0"
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to shortest round-trip-ish: try shorter precision first.
  for (int prec = 1; prec <= 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) {
      return probe;
    }
  }
  return buf;
}

std::string BlobToHex(const std::string& bytes) {
  std::string out = "x'";
  static const char* kHex = "0123456789ABCDEF";
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  out.push_back('\'');
  return out;
}

}  // namespace

std::string Value::ToDisplayString() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case TypeKind::kInt:
      return std::to_string(int_value());
    case TypeKind::kDouble:
      return DoubleToText(double_value());
    case TypeKind::kDecimal:
      return decimal_value().ToString();
    case TypeKind::kString:
      return string_value();
    case TypeKind::kBlob:
      return BlobToHex(blob_value());
    case TypeKind::kDate:
      return FormatDate(date_value());
    case TypeKind::kDateTime:
      return FormatDateTime(datetime_value());
    case TypeKind::kJson:
      return json_value() != nullptr ? json_value()->Serialize() : "null";
    case TypeKind::kArray: {
      std::string out = "[";
      const ValueList& items = array_items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += items[i].ToDisplayString();
      }
      out += "]";
      return out;
    }
    case TypeKind::kRow: {
      std::string out = "ROW(";
      const ValueList& fields = row_fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += fields[i].ToDisplayString();
      }
      out += ")";
      return out;
    }
    case TypeKind::kMap: {
      std::string out = "{";
      const MapEntries& entries = map_entries();
      for (size_t i = 0; i < entries.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += entries[i].first.ToDisplayString();
        out += "=";
        out += entries[i].second.ToDisplayString();
      }
      out += "}";
      return out;
    }
    case TypeKind::kInet:
      return FormatInet(inet_value());
    case TypeKind::kGeometry:
      return GeometryToWkt(geometry_value());
    case TypeKind::kStar:
      return "*";
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kDecimal:
      return ToDisplayString();
    case TypeKind::kString:
      return SqlQuote(string_value());
    case TypeKind::kBlob:
      return BlobToHex(blob_value());
    case TypeKind::kDate:
      return "DATE " + SqlQuote(FormatDate(date_value()));
    case TypeKind::kDateTime:
      return "TIMESTAMP " + SqlQuote(FormatDateTime(datetime_value()));
    case TypeKind::kJson:
      return "CAST(" + SqlQuote(ToDisplayString()) + " AS JSON)";
    case TypeKind::kArray: {
      std::string out = "ARRAY[";
      const ValueList& items = array_items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += items[i].ToSqlLiteral();
      }
      out += "]";
      return out;
    }
    case TypeKind::kRow: {
      std::string out = "ROW(";
      const ValueList& fields = row_fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += fields[i].ToSqlLiteral();
      }
      out += ")";
      return out;
    }
    case TypeKind::kMap:
    case TypeKind::kInet:
    case TypeKind::kGeometry:
      return "CAST(" + SqlQuote(ToDisplayString()) + " AS " +
             std::string(TypeKindName(kind())) + ")";
    case TypeKind::kStar:
      return "*";
  }
  return "NULL";
}

Result<int> Value::Compare(const Value& a, const Value& b) {
  const TypeKind ka = a.kind();
  const TypeKind kb = b.kind();
  if (ka == TypeKind::kNull || kb == TypeKind::kNull) {
    if (ka == kb) {
      return 0;
    }
    return ka == TypeKind::kNull ? -1 : 1;
  }
  // Numeric cross-type comparison via decimal (exact) or double.
  if (IsNumericType(ka) && IsNumericType(kb)) {
    if (ka == TypeKind::kDouble || kb == TypeKind::kDouble) {
      SOFT_ASSIGN_OR_RETURN(double da, a.AsDouble());
      SOFT_ASSIGN_OR_RETURN(double db, b.AsDouble());
      if (da < db) {
        return -1;
      }
      return da > db ? 1 : 0;
    }
    SOFT_ASSIGN_OR_RETURN(Decimal da, a.AsDecimal());
    SOFT_ASSIGN_OR_RETURN(Decimal db, b.AsDecimal());
    return Decimal::Compare(da, db);
  }
  if (ka != kb) {
    return TypeError(std::string("cannot compare ") + std::string(TypeKindName(ka)) +
                     " with " + std::string(TypeKindName(kb)));
  }
  if (!IsComparableType(ka)) {
    return TypeError(std::string(TypeKindName(ka)) + " values are not comparable");
  }
  switch (ka) {
    case TypeKind::kBool: {
      const int va = a.bool_value() ? 1 : 0;
      const int vb = b.bool_value() ? 1 : 0;
      return va - vb;
    }
    case TypeKind::kString: {
      const int c = a.string_value().compare(b.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeKind::kBlob: {
      const int c = a.blob_value().compare(b.blob_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeKind::kDate: {
      const int64_t d = DateDiffDays(a.date_value(), b.date_value());
      return d < 0 ? -1 : (d > 0 ? 1 : 0);
    }
    case TypeKind::kDateTime: {
      const DateTime& x = a.datetime_value();
      const DateTime& y = b.datetime_value();
      const int64_t d = DateDiffDays(x.date, y.date);
      if (d != 0) {
        return d < 0 ? -1 : 1;
      }
      const int64_t sx = x.hour * 3600 + x.minute * 60 + x.second;
      const int64_t sy = y.hour * 3600 + y.minute * 60 + y.second;
      return sx < sy ? -1 : (sx > sy ? 1 : 0);
    }
    default:
      return TypeError("unsupported comparison");
  }
}

bool Value::Equals(const Value& other) const {
  const TypeKind ka = kind();
  const TypeKind kb = other.kind();
  if (ka == TypeKind::kNull || kb == TypeKind::kNull) {
    return ka == kb;
  }
  if (ka == TypeKind::kStar || kb == TypeKind::kStar) {
    return ka == kb;
  }
  // Structural equality for composite kinds.
  if (ka == TypeKind::kArray && kb == TypeKind::kArray) {
    const ValueList& x = array_items();
    const ValueList& y = other.array_items();
    if (x.size() != y.size()) {
      return false;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (!x[i].Equals(y[i])) {
        return false;
      }
    }
    return true;
  }
  if (ka == TypeKind::kRow && kb == TypeKind::kRow) {
    const ValueList& x = row_fields();
    const ValueList& y = other.row_fields();
    if (x.size() != y.size()) {
      return false;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (!x[i].Equals(y[i])) {
        return false;
      }
    }
    return true;
  }
  if (ka == TypeKind::kMap && kb == TypeKind::kMap) {
    const MapEntries& x = map_entries();
    const MapEntries& y = other.map_entries();
    if (x.size() != y.size()) {
      return false;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (!x[i].first.Equals(y[i].first) || !x[i].second.Equals(y[i].second)) {
        return false;
      }
    }
    return true;
  }
  if (ka == TypeKind::kJson && kb == TypeKind::kJson) {
    return ToDisplayString() == other.ToDisplayString();
  }
  if (ka == TypeKind::kGeometry && kb == TypeKind::kGeometry) {
    return geometry_value() == other.geometry_value();
  }
  if (ka == TypeKind::kInet && kb == TypeKind::kInet) {
    return inet_value() == other.inet_value();
  }
  const Result<int> cmp = Compare(*this, other);
  return cmp.ok() && *cmp == 0;
}

size_t Value::PayloadSize() const {
  switch (kind()) {
    case TypeKind::kString:
      return string_value().size();
    case TypeKind::kBlob:
      return blob_value().size();
    case TypeKind::kJson:
      return json_value() != nullptr ? json_value()->Serialize().size() : 0;
    case TypeKind::kDecimal:
      return static_cast<size_t>(decimal_value().total_digits());
    case TypeKind::kArray:
      return array_items().size();
    case TypeKind::kRow:
      return row_fields().size();
    case TypeKind::kMap:
      return map_entries().size();
    case TypeKind::kGeometry:
      return geometry_value().points.size();
    default:
      return 0;
  }
}

}  // namespace soft
