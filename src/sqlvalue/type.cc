#include "src/sqlvalue/type.h"

#include "src/util/str_util.h"

namespace soft {

std::string_view TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOL";
    case TypeKind::kInt:
      return "INT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kDecimal:
      return "DECIMAL";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kBlob:
      return "BLOB";
    case TypeKind::kDate:
      return "DATE";
    case TypeKind::kDateTime:
      return "DATETIME";
    case TypeKind::kJson:
      return "JSON";
    case TypeKind::kArray:
      return "ARRAY";
    case TypeKind::kRow:
      return "ROW";
    case TypeKind::kMap:
      return "MAP";
    case TypeKind::kInet:
      return "INET";
    case TypeKind::kGeometry:
      return "GEOMETRY";
    case TypeKind::kStar:
      return "STAR";
  }
  return "UNKNOWN";
}

std::optional<TypeKind> ParseTypeName(std::string_view name) {
  // Strip parenthesized parameters: DECIMAL(10,2) → DECIMAL.
  const size_t paren = name.find('(');
  std::string base = AsciiUpper(TrimWhitespace(
      paren == std::string_view::npos ? name : name.substr(0, paren)));

  if (base == "INT" || base == "INTEGER" || base == "BIGINT" || base == "SMALLINT" ||
      base == "TINYINT" || base == "SIGNED" || base == "UNSIGNED" || base == "INT64" ||
      base == "INT32" || base == "SERIAL") {
    return TypeKind::kInt;
  }
  if (base == "DOUBLE" || base == "DOUBLE PRECISION" || base == "FLOAT" || base == "REAL" ||
      base == "FLOAT64" || base == "FLOAT32") {
    return TypeKind::kDouble;
  }
  if (base == "DECIMAL" || base == "NUMERIC" || base == "DEC" || base == "NUMBER" ||
      base == "DECIMAL256" || base == "DECIMAL128") {
    return TypeKind::kDecimal;
  }
  if (base == "STRING" || base == "VARCHAR" || base == "TEXT" || base == "CHAR" ||
      base == "CHARACTER" || base == "NVARCHAR" || base == "CLOB") {
    return TypeKind::kString;
  }
  if (base == "BLOB" || base == "BYTEA" || base == "BINARY" || base == "VARBINARY" ||
      base == "BYTES") {
    return TypeKind::kBlob;
  }
  if (base == "BOOL" || base == "BOOLEAN") {
    return TypeKind::kBool;
  }
  if (base == "DATE") {
    return TypeKind::kDate;
  }
  if (base == "DATETIME" || base == "TIMESTAMP") {
    return TypeKind::kDateTime;
  }
  if (base == "JSON" || base == "JSONB") {
    return TypeKind::kJson;
  }
  if (base == "ARRAY") {
    return TypeKind::kArray;
  }
  if (base == "ROW") {
    return TypeKind::kRow;
  }
  if (base == "MAP") {
    return TypeKind::kMap;
  }
  if (base == "INET" || base == "INET6") {
    return TypeKind::kInet;
  }
  if (base == "GEOMETRY") {
    return TypeKind::kGeometry;
  }
  return std::nullopt;
}

bool IsNumericType(TypeKind kind) {
  return kind == TypeKind::kInt || kind == TypeKind::kDouble || kind == TypeKind::kDecimal;
}

bool IsComparableType(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kDecimal:
    case TypeKind::kString:
    case TypeKind::kBlob:
    case TypeKind::kDate:
    case TypeKind::kDateTime:
      return true;
    default:
      return false;
  }
}

}  // namespace soft
