#include "src/sqlvalue/geometry.h"

#include <cstring>
#include <cstdio>

#include "src/util/str_util.h"

namespace soft {
namespace {

std::string_view KindName(GeometryKind kind) {
  switch (kind) {
    case GeometryKind::kPoint:
      return "POINT";
    case GeometryKind::kLineString:
      return "LINESTRING";
    case GeometryKind::kPolygon:
      return "POLYGON";
  }
  return "GEOMETRY";
}

void AppendCoord(double v, std::string& out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

}  // namespace

std::string GeometryToWkt(const Geometry& g) {
  std::string out(KindName(g.kind));
  out.push_back('(');
  const bool polygon = g.kind == GeometryKind::kPolygon;
  if (polygon) {
    out.push_back('(');
  }
  for (size_t i = 0; i < g.points.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendCoord(g.points[i].x, out);
    out.push_back(' ');
    AppendCoord(g.points[i].y, out);
  }
  if (polygon) {
    out.push_back(')');
  }
  out.push_back(')');
  return out;
}

Result<Geometry> ParseWkt(std::string_view text) {
  const std::string_view trimmed = TrimWhitespace(text);
  const size_t paren = trimmed.find('(');
  if (paren == std::string_view::npos) {
    return InvalidArgument("malformed WKT: missing '('");
  }
  const std::string head = AsciiUpper(TrimWhitespace(trimmed.substr(0, paren)));
  Geometry g;
  if (head == "POINT") {
    g.kind = GeometryKind::kPoint;
  } else if (head == "LINESTRING") {
    g.kind = GeometryKind::kLineString;
  } else if (head == "POLYGON") {
    g.kind = GeometryKind::kPolygon;
  } else {
    return InvalidArgument("unsupported WKT geometry type");
  }
  std::string body(trimmed.substr(paren));
  // Strip all parentheses; coordinates remain comma-separated.
  std::string flat;
  for (char c : body) {
    if (c != '(' && c != ')') {
      flat.push_back(c);
    }
  }
  for (const std::string& pair : Split(flat, ',')) {
    const std::string_view pv = TrimWhitespace(pair);
    if (pv.empty()) {
      continue;
    }
    GeoPoint p;
    char* end = nullptr;
    const std::string ps(pv);
    p.x = std::strtod(ps.c_str(), &end);
    if (end == ps.c_str()) {
      return InvalidArgument("malformed WKT coordinate");
    }
    p.y = std::strtod(end, nullptr);
    g.points.push_back(p);
  }
  if (g.points.empty()) {
    return InvalidArgument("WKT geometry has no coordinates");
  }
  if (g.kind == GeometryKind::kPoint && g.points.size() != 1) {
    return InvalidArgument("POINT must have exactly one coordinate pair");
  }
  if (g.kind == GeometryKind::kLineString && g.points.size() < 2) {
    return InvalidArgument("LINESTRING needs at least two points");
  }
  if (g.kind == GeometryKind::kPolygon && g.points.size() < 4) {
    return InvalidArgument("POLYGON ring needs at least four points");
  }
  return g;
}

std::string GeometryToBinary(const Geometry& g) {
  std::string out;
  out.push_back(static_cast<char>(g.kind));
  const uint32_t count = static_cast<uint32_t>(g.points.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((count >> (8 * i)) & 0xFF));
  }
  for (const GeoPoint& p : g.points) {
    char buf[16];
    std::memcpy(buf, &p.x, 8);
    std::memcpy(buf + 8, &p.y, 8);
    out.append(buf, 16);
  }
  return out;
}

Result<Geometry> GeometryFromBinary(std::string_view bytes) {
  if (bytes.size() < 5) {
    return InvalidArgument("geometry binary too short");
  }
  const uint8_t kind_byte = static_cast<uint8_t>(bytes[0]);
  if (kind_byte < 1 || kind_byte > 3) {
    return InvalidArgument("unknown geometry kind byte");
  }
  uint32_t count = 0;
  for (int i = 0; i < 4; ++i) {
    count |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[1 + i])) << (8 * i);
  }
  if (bytes.size() != 5 + static_cast<size_t>(count) * 16) {
    return InvalidArgument("geometry binary length mismatch");
  }
  Geometry g;
  g.kind = static_cast<GeometryKind>(kind_byte);
  g.points.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(&g.points[i].x, bytes.data() + 5 + i * 16, 8);
    std::memcpy(&g.points[i].y, bytes.data() + 5 + i * 16 + 8, 8);
  }
  if (g.kind == GeometryKind::kPoint && g.points.size() != 1) {
    return InvalidArgument("corrupt POINT geometry");
  }
  return g;
}

Result<Geometry> GeometryBoundary(const Geometry& g) {
  switch (g.kind) {
    case GeometryKind::kPoint:
      return InvalidArgument("a POINT has an empty boundary");
    case GeometryKind::kLineString: {
      Geometry out;
      out.kind = GeometryKind::kLineString;
      out.points = {g.points.front(), g.points.back()};
      return out;
    }
    case GeometryKind::kPolygon: {
      Geometry out;
      out.kind = GeometryKind::kLineString;
      out.points = g.points;
      return out;
    }
  }
  return InvalidArgument("unknown geometry kind");
}

}  // namespace soft
