#include "src/sqlvalue/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace soft {

JsonPtr JsonValue::MakeNull() {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kNull;
  return v;
}

JsonPtr JsonValue::MakeBool(bool b) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kBool;
  v->data_ = b;
  return v;
}

JsonPtr JsonValue::MakeNumber(double n) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kNumber;
  v->data_ = n;
  return v;
}

JsonPtr JsonValue::MakeString(std::string s) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kString;
  v->data_ = std::move(s);
  return v;
}

JsonPtr JsonValue::MakeArray(Array items) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kArray;
  v->data_ = std::move(items);
  return v;
}

JsonPtr JsonValue::MakeObject(Object members) {
  auto v = std::make_shared<JsonValue>();
  v->kind_ = JsonKind::kObject;
  v->data_ = std::move(members);
  return v;
}

int JsonValue::Depth() const {
  switch (kind_) {
    case JsonKind::kArray: {
      int best = 0;
      for (const auto& item : array_items()) {
        best = std::max(best, item->Depth());
      }
      return best + 1;
    }
    case JsonKind::kObject: {
      int best = 0;
      for (const auto& [key, val] : object_members()) {
        best = std::max(best, val->Depth());
      }
      return best + 1;
    }
    default:
      return 1;
  }
}

namespace {

void EscapeJsonString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void SerializeTo(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonKind::kNull:
      out += "null";
      break;
    case JsonKind::kBool:
      out += v.bool_value() ? "true" : "false";
      break;
    case JsonKind::kNumber: {
      const double n = v.number_value();
      if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 1e15) {
        out += std::to_string(static_cast<long long>(n));
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", n);
        out += buf;
      }
      break;
    }
    case JsonKind::kString:
      EscapeJsonString(v.string_value(), out);
      break;
    case JsonKind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : v.array_items()) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        SerializeTo(*item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonKind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.object_members()) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        EscapeJsonString(key, out);
        out.push_back(':');
        SerializeTo(*val, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  JsonParser(std::string_view text, int max_depth) : text_(text), max_depth_(max_depth) {}

  Result<JsonParseResult> Parse() {
    SkipWhitespace();
    SOFT_ASSIGN_OR_RETURN(JsonPtr root, ParseValue(1));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgument("trailing characters after JSON document");
    }
    JsonParseResult out;
    out.value = std::move(root);
    out.max_depth = deepest_;
    return out;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonPtr> ParseValue(int depth) {
    deepest_ = std::max(deepest_, depth);
    if (depth > max_depth_) {
      return ResourceExhausted("JSON nesting depth limit exceeded");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return InvalidArgument("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        SOFT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::MakeBool(true);
        }
        return InvalidArgument("malformed JSON literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::MakeBool(false);
        }
        return InvalidArgument("malformed JSON literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue::MakeNull();
        }
        return InvalidArgument("malformed JSON literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonPtr> ParseArray(int depth) {
    ++pos_;  // consume '['
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue::MakeArray(std::move(items));
    }
    for (;;) {
      SOFT_ASSIGN_OR_RETURN(JsonPtr item, ParseValue(depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) {
        return JsonValue::MakeArray(std::move(items));
      }
      if (!Consume(',')) {
        return InvalidArgument("expected ',' or ']' in JSON array");
      }
    }
  }

  Result<JsonPtr> ParseObject(int depth) {
    ++pos_;  // consume '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue::MakeObject(std::move(members));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return InvalidArgument("expected string key in JSON object");
      }
      SOFT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return InvalidArgument("expected ':' in JSON object");
      }
      SOFT_ASSIGN_OR_RETURN(JsonPtr val, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(val));
      SkipWhitespace();
      if (Consume('}')) {
        return JsonValue::MakeObject(std::move(members));
      }
      if (!Consume(',')) {
        return InvalidArgument("expected ',' or '}' in JSON object");
      }
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return InvalidArgument("truncated \\u escape in JSON string");
            }
            unsigned code = 0;
            auto [p, ec] = std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4,
                                           code, 16);
            if (ec != std::errc() || p != text_.data() + pos_ + 4) {
              return InvalidArgument("malformed \\u escape in JSON string");
            }
            pos_ += 4;
            // Encode as UTF-8 (BMP only; surrogates passed through raw).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return InvalidArgument("invalid escape in JSON string");
        }
      } else {
        out.push_back(c);
      }
    }
    return InvalidArgument("unterminated JSON string");
  }

  Result<JsonPtr> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgument("malformed JSON value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double n = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return InvalidArgument("malformed JSON number");
    }
    return JsonValue::MakeNumber(n);
  }

  std::string_view text_;
  int max_depth_;
  size_t pos_ = 0;
  int deepest_ = 0;
};

Result<JsonParseResult> ParseJson(std::string_view text, int max_depth) {
  JsonParser parser(text, max_depth);
  return parser.Parse();
}

int ProbeJsonNestingDepth(std::string_view text) {
  int depth = 0;
  int best = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '[':
      case '{':
        ++depth;
        best = std::max(best, depth);
        break;
      case ']':
      case '}':
        if (depth > 0) {
          --depth;
        }
        break;
      default:
        break;
    }
  }
  return best;
}

Result<JsonPtr> EvalJsonPath(const JsonPtr& root, std::string_view path) {
  if (path.empty() || path[0] != '$') {
    return InvalidArgument("JSON path must start with '$'");
  }
  JsonPtr cur = root;
  size_t pos = 1;
  while (pos < path.size()) {
    if (cur == nullptr) {
      return JsonPtr();
    }
    if (path[pos] == '.') {
      ++pos;
      const size_t start = pos;
      while (pos < path.size() && path[pos] != '.' && path[pos] != '[') {
        ++pos;
      }
      const std::string key(path.substr(start, pos - start));
      if (key.empty()) {
        return InvalidArgument("empty member name in JSON path");
      }
      if (cur->kind() != JsonKind::kObject) {
        return JsonPtr();
      }
      JsonPtr next;
      for (const auto& [k, v] : cur->object_members()) {
        if (k == key) {
          next = v;
          break;
        }
      }
      cur = next;
    } else if (path[pos] == '[') {
      const size_t close = path.find(']', pos);
      if (close == std::string_view::npos) {
        return InvalidArgument("unterminated index in JSON path");
      }
      const std::string_view idx_text = path.substr(pos + 1, close - pos - 1);
      size_t idx = 0;
      auto [p, ec] = std::from_chars(idx_text.data(), idx_text.data() + idx_text.size(), idx);
      if (ec != std::errc() || p != idx_text.data() + idx_text.size()) {
        return InvalidArgument("malformed index in JSON path");
      }
      pos = close + 1;
      if (cur->kind() != JsonKind::kArray || idx >= cur->array_items().size()) {
        cur = JsonPtr();
      } else {
        cur = cur->array_items()[idx];
      }
    } else {
      return InvalidArgument("malformed JSON path");
    }
  }
  return cur;
}

}  // namespace soft
