// The engine's runtime value: a tagged union over every SQL type kind.
//
// Values are cheap to copy: recursive payloads (JSON, ARRAY, ROW, MAP,
// GEOMETRY) are held behind shared_ptr. The STAR kind models the literal '*'
// argument (SELECT COUNT(*) / the Virtuoso CONTAINS(x, x, *) crash input);
// most functions must reject it, and the ones that don't are bug surface.
#ifndef SRC_SQLVALUE_VALUE_H_
#define SRC_SQLVALUE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/sqlvalue/datetime.h"
#include "src/sqlvalue/decimal.h"
#include "src/sqlvalue/geometry.h"
#include "src/sqlvalue/inet.h"
#include "src/sqlvalue/json.h"
#include "src/sqlvalue/type.h"
#include "src/util/status.h"

namespace soft {

class Value;
using ValueList = std::vector<Value>;
using ValueListPtr = std::shared_ptr<const ValueList>;
using MapEntries = std::vector<std::pair<Value, Value>>;
using MapEntriesPtr = std::shared_ptr<const MapEntries>;
using GeometryPtr = std::shared_ptr<const Geometry>;

// Wrapper so BLOB and STRING are distinct variant alternatives.
struct Blob {
  std::string bytes;
  bool operator==(const Blob&) const = default;
};

struct StarTag {
  bool operator==(const StarTag&) const = default;
};

class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL

  static Value Null() { return Value(); }
  static Value Boolean(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value DoubleVal(double v) { return Value(Payload(v)); }
  static Value Dec(Decimal d) { return Value(Payload(std::move(d))); }
  static Value Str(std::string s) { return Value(Payload(std::move(s))); }
  static Value BlobVal(std::string bytes) { return Value(Payload(Blob{std::move(bytes)})); }
  static Value DateVal(Date d) { return Value(Payload(d)); }
  static Value DateTimeVal(DateTime dt) { return Value(Payload(dt)); }
  static Value JsonVal(JsonPtr doc) { return Value(Payload(std::move(doc))); }
  static Value ArrayVal(ValueList items) {
    return Value(Payload(ArrayBox{std::make_shared<const ValueList>(std::move(items))}));
  }
  static Value RowVal(ValueList fields) {
    return Value(Payload(RowBox{std::make_shared<const ValueList>(std::move(fields))}));
  }
  static Value MapVal(MapEntries entries) {
    return Value(Payload(std::make_shared<const MapEntries>(std::move(entries))));
  }
  static Value InetVal(InetAddr addr) { return Value(Payload(addr)); }
  static Value GeoVal(Geometry g) {
    return Value(Payload(std::make_shared<const Geometry>(std::move(g))));
  }
  static Value Star() { return Value(Payload(StarTag{})); }

  TypeKind kind() const;

  bool is_null() const { return kind() == TypeKind::kNull; }
  bool is_star() const { return kind() == TypeKind::kStar; }
  bool is_numeric() const { return IsNumericType(kind()); }

  // Typed accessors; only valid when kind() matches.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const Decimal& decimal_value() const { return std::get<Decimal>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  const std::string& blob_value() const { return std::get<Blob>(data_).bytes; }
  const Date& date_value() const { return std::get<Date>(data_); }
  const DateTime& datetime_value() const { return std::get<DateTime>(data_); }
  const JsonPtr& json_value() const { return std::get<JsonPtr>(data_); }
  const ValueList& array_items() const;
  const ValueList& row_fields() const;
  const MapEntries& map_entries() const { return *std::get<MapEntriesPtr>(data_); }
  const InetAddr& inet_value() const { return std::get<InetAddr>(data_); }
  const Geometry& geometry_value() const { return *std::get<GeometryPtr>(data_); }

  // Numeric widening used by math/aggregate functions. Fails on non-numerics.
  Result<double> AsDouble() const;
  Result<int64_t> AsInt64() const;
  Result<Decimal> AsDecimal() const;

  // Human-readable text used in result sets (NULL → "NULL").
  std::string ToDisplayString() const;
  // SQL literal text that parses back to (approximately) this value; used by
  // the fuzzers when splicing concrete values into generated statements.
  std::string ToSqlLiteral() const;

  // Total order over comparable kinds. Errors with kTypeError when kinds are
  // not mutually comparable (e.g. ROW vs ROW — the MDEV-14596 class). NULLs
  // sort first and compare equal to each other.
  static Result<int> Compare(const Value& a, const Value& b);

  // Structural equality (used by tests and GROUP BY keys). NULL == NULL here.
  bool Equals(const Value& other) const;

  // Byte length of the textual/binary payload; 0 for scalars without one.
  size_t PayloadSize() const;

 private:
  struct ArrayBox {
    ValueListPtr items;
  };
  struct RowBox {
    ValueListPtr fields;
  };
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, Decimal, std::string, Blob, Date,
                   DateTime, JsonPtr, ArrayBox, RowBox, MapEntriesPtr, InetAddr, GeometryPtr,
                   StarTag>;

  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

}  // namespace soft

#endif  // SRC_SQLVALUE_VALUE_H_
