// SQL type kinds supported by the simulated engine.
//
// The set is the union of types exercised by the paper's bug corpus: numeric
// types (including arbitrary-digit DECIMAL, the source of many digit-count
// boundary bugs), strings/blobs, dates, JSON, arrays/rows (MDEV-14596-style
// comparability bugs), INET6 blobs and geometry (the MariaDB spatial chain),
// plus the special STAR argument ('*') that crashed Virtuoso's CONTAINS.
#ifndef SRC_SQLVALUE_TYPE_H_
#define SRC_SQLVALUE_TYPE_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {

enum class TypeKind {
  kNull = 0,
  kBool,
  kInt,       // 64-bit signed integer.
  kDouble,    // IEEE double.
  kDecimal,   // arbitrary-digit fixed-point (src/sqlvalue/decimal.h).
  kString,    // variable-length character string.
  kBlob,      // raw byte string.
  kDate,      // calendar date.
  kDateTime,  // date + time-of-day.
  kJson,      // parsed JSON document.
  kArray,     // ordered collection of values.
  kRow,       // anonymous record, e.g. ROW(1, 2).
  kMap,       // key/value pairs (DuckDB-style MAP).
  kInet,      // IPv4/IPv6 address (16-byte binary form).
  kGeometry,  // spatial value (point / linestring / polygon).
  kStar,      // the literal '*' argument.
};

constexpr int kNumTypeKinds = static_cast<int>(TypeKind::kStar) + 1;

// Canonical display name, e.g. "DECIMAL".
std::string_view TypeKindName(TypeKind kind);

// Parses a SQL type name as written in CAST(x AS <name>). Accepts common
// aliases across the seven dialects (INTEGER/BIGINT/SIGNED → INT, VARCHAR/
// TEXT/CHAR → STRING, REAL/FLOAT → DOUBLE, NUMERIC → DECIMAL, ...).
// Parenthesized parameters such as DECIMAL(10,2) or VARCHAR(255) are accepted
// and the parameters returned via the optional out-arguments.
std::optional<TypeKind> ParseTypeName(std::string_view name);

// True for INT / DOUBLE / DECIMAL.
bool IsNumericType(TypeKind kind);

// True for types with a natural total order usable by comparison operators.
// ROW and MAP are deliberately not comparable (the MDEV-14596 bug class).
bool IsComparableType(TypeKind kind);

}  // namespace soft

#endif  // SRC_SQLVALUE_TYPE_H_
