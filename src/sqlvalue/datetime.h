// Calendar dates and timestamps.
//
// Date boundaries (year 0/9999, month 0, day 0, leap days) feed the paper's
// date-function bug class. Internally dates convert to a day number so the
// arithmetic functions (DATE_ADD, DATEDIFF, ...) are exact.
#ifndef SRC_SQLVALUE_DATETIME_H_
#define SRC_SQLVALUE_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace soft {

struct Date {
  int32_t year = 1970;   // [0, 9999] accepted from SQL text
  int32_t month = 1;     // [1, 12]
  int32_t day = 1;       // [1, days-in-month]

  bool operator==(const Date&) const = default;
};

struct DateTime {
  Date date;
  int32_t hour = 0;
  int32_t minute = 0;
  int32_t second = 0;

  bool operator==(const DateTime&) const = default;
};

// True when the Y/M/D triple denotes a real calendar date in [0, 9999].
bool IsValidDate(const Date& d);

// Proleptic-Gregorian day number (days since 0000-03-01 based encoding);
// only meaningful for valid dates.
int64_t DateToDayNumber(const Date& d);
Result<Date> DayNumberToDate(int64_t days);

// 'YYYY-MM-DD' (also accepts 'YYYY/MM/DD').
Result<Date> ParseDate(std::string_view text);
// 'YYYY-MM-DD[ HH:MM:SS]'.
Result<DateTime> ParseDateTime(std::string_view text);

std::string FormatDate(const Date& d);
std::string FormatDateTime(const DateTime& dt);

// Adds days (may be negative). Fails if the result leaves [0, 9999].
Result<Date> AddDays(const Date& d, int64_t days);
// Adds months with end-of-month clamping (MySQL semantics).
Result<Date> AddMonths(const Date& d, int64_t months);

int64_t DateDiffDays(const Date& a, const Date& b);

// 1 = Sunday ... 7 = Saturday (ODBC DAYOFWEEK convention).
int DayOfWeek(const Date& d);
int DayOfYear(const Date& d);
bool IsLeapYear(int32_t year);
int DaysInMonth(int32_t year, int32_t month);

}  // namespace soft

#endif  // SRC_SQLVALUE_DATETIME_H_
