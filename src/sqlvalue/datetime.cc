#include "src/sqlvalue/datetime.h"

#include <charconv>

namespace soft {
namespace {

constexpr int kMonthDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

Result<int> ParseIntField(std::string_view s) {
  int v = 0;
  if (s.empty()) {
    return InvalidArgument("empty date field");
  }
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    return InvalidArgument("malformed date field");
  }
  return v;
}

}  // namespace

bool IsLeapYear(int32_t year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int32_t year, int32_t month) {
  if (month < 1 || month > 12) {
    return 0;
  }
  if (month == 2 && IsLeapYear(year)) {
    return 29;
  }
  return kMonthDays[month - 1];
}

bool IsValidDate(const Date& d) {
  if (d.year < 0 || d.year > 9999 || d.month < 1 || d.month > 12) {
    return false;
  }
  return d.day >= 1 && d.day <= DaysInMonth(d.year, d.month);
}

int64_t DateToDayNumber(const Date& d) {
  // Howard Hinnant's days_from_civil algorithm.
  int64_t y = d.year;
  const int64_t m = d.month;
  const int64_t day = d.day;
  y -= m <= 2 ? 1 : 0;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;  // days since 1970-01-01
}

Result<Date> DayNumberToDate(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t day = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  const int64_t year = y + (m <= 2 ? 1 : 0);
  if (year < 0 || year > 9999) {
    return InvalidArgument("date out of supported range");
  }
  Date d;
  d.year = static_cast<int32_t>(year);
  d.month = static_cast<int32_t>(m);
  d.day = static_cast<int32_t>(day);
  return d;
}

Result<Date> ParseDate(std::string_view text) {
  // Accept YYYY-MM-DD or YYYY/MM/DD.
  char sep = '-';
  if (text.find('/') != std::string_view::npos) {
    sep = '/';
  }
  const size_t s1 = text.find(sep);
  if (s1 == std::string_view::npos) {
    return InvalidArgument("malformed DATE literal");
  }
  const size_t s2 = text.find(sep, s1 + 1);
  if (s2 == std::string_view::npos) {
    return InvalidArgument("malformed DATE literal");
  }
  Date d;
  SOFT_ASSIGN_OR_RETURN(d.year, ParseIntField(text.substr(0, s1)));
  SOFT_ASSIGN_OR_RETURN(d.month, ParseIntField(text.substr(s1 + 1, s2 - s1 - 1)));
  SOFT_ASSIGN_OR_RETURN(d.day, ParseIntField(text.substr(s2 + 1)));
  if (!IsValidDate(d)) {
    return InvalidArgument("invalid DATE value");
  }
  return d;
}

Result<DateTime> ParseDateTime(std::string_view text) {
  const size_t space = text.find_first_of(" T");
  DateTime dt;
  if (space == std::string_view::npos) {
    SOFT_ASSIGN_OR_RETURN(dt.date, ParseDate(text));
    return dt;
  }
  SOFT_ASSIGN_OR_RETURN(dt.date, ParseDate(text.substr(0, space)));
  const std::string_view time = text.substr(space + 1);
  const size_t c1 = time.find(':');
  const size_t c2 = c1 == std::string_view::npos ? std::string_view::npos
                                                 : time.find(':', c1 + 1);
  if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
    return InvalidArgument("malformed DATETIME literal");
  }
  SOFT_ASSIGN_OR_RETURN(dt.hour, ParseIntField(time.substr(0, c1)));
  SOFT_ASSIGN_OR_RETURN(dt.minute, ParseIntField(time.substr(c1 + 1, c2 - c1 - 1)));
  SOFT_ASSIGN_OR_RETURN(dt.second, ParseIntField(time.substr(c2 + 1)));
  if (dt.hour < 0 || dt.hour > 23 || dt.minute < 0 || dt.minute > 59 || dt.second < 0 ||
      dt.second > 59) {
    return InvalidArgument("invalid time of day");
  }
  return dt;
}

std::string FormatDate(const Date& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::string FormatDateTime(const DateTime& dt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", dt.date.year,
                dt.date.month, dt.date.day, dt.hour, dt.minute, dt.second);
  return buf;
}

Result<Date> AddDays(const Date& d, int64_t days) {
  return DayNumberToDate(DateToDayNumber(d) + days);
}

Result<Date> AddMonths(const Date& d, int64_t months) {
  int64_t total = static_cast<int64_t>(d.year) * 12 + (d.month - 1) + months;
  const int64_t year = total >= 0 ? total / 12 : -((-total + 11) / 12);
  const int64_t month = total - year * 12 + 1;
  if (year < 0 || year > 9999) {
    return InvalidArgument("date out of supported range");
  }
  Date out;
  out.year = static_cast<int32_t>(year);
  out.month = static_cast<int32_t>(month);
  out.day = d.day;
  const int dim = DaysInMonth(out.year, out.month);
  if (out.day > dim) {
    out.day = dim;  // end-of-month clamp
  }
  return out;
}

int64_t DateDiffDays(const Date& a, const Date& b) {
  return DateToDayNumber(a) - DateToDayNumber(b);
}

int DayOfWeek(const Date& d) {
  // 1970-01-01 was a Thursday; ODBC: 1=Sunday.
  const int64_t days = DateToDayNumber(d);
  const int64_t dow = ((days % 7) + 7 + 4) % 7;  // 0=Sunday
  return static_cast<int>(dow) + 1;
}

int DayOfYear(const Date& d) {
  Date jan1{d.year, 1, 1};
  return static_cast<int>(DateDiffDays(d, jan1)) + 1;
}

}  // namespace soft
