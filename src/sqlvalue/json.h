// Minimal JSON document model with explicit nesting-depth accounting.
//
// JSON nesting depth is a first-class boundary in the paper (CVE-2015-5289:
// REPEAT('[', 1000)::json overflows PostgreSQL's recursive array parser; the
// DuckDB REPEAT('[{"a":', 100000) UNION stack overflow). The parser here is
// iterative-depth-checked: it records the maximum nesting depth it reached and
// fails with kResourceExhausted past a configurable limit, so dialects can
// model both "checked" and "unchecked" recursion behaviour.
#ifndef SRC_SQLVALUE_JSON_H_
#define SRC_SQLVALUE_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace soft {

class JsonValue;
using JsonPtr = std::shared_ptr<const JsonValue>;

enum class JsonKind { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  using Array = std::vector<JsonPtr>;
  using Object = std::vector<std::pair<std::string, JsonPtr>>;

  static JsonPtr MakeNull();
  static JsonPtr MakeBool(bool b);
  static JsonPtr MakeNumber(double n);
  static JsonPtr MakeString(std::string s);
  static JsonPtr MakeArray(Array items);
  static JsonPtr MakeObject(Object members);

  JsonKind kind() const { return kind_; }
  bool bool_value() const { return std::get<bool>(data_); }
  double number_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  const Array& array_items() const { return std::get<Array>(data_); }
  const Object& object_members() const { return std::get<Object>(data_); }

  // Maximum nesting depth of this subtree (scalar = 1).
  int Depth() const;

  // Serializes to compact JSON text.
  std::string Serialize() const;

 private:
  friend class JsonParser;
  JsonKind kind_ = JsonKind::kNull;
  std::variant<std::monostate, bool, double, std::string, Array, Object> data_;
};

struct JsonParseResult {
  JsonPtr value;
  int max_depth = 0;  // deepest nesting encountered while parsing
};

// Parses JSON text. `max_depth` bounds recursion; exceeding it yields
// kResourceExhausted (the patched-DBMS behaviour for CVE-2015-5289).
Result<JsonParseResult> ParseJson(std::string_view text, int max_depth = 512);

// Counts the nesting depth a parse *would* reach without building the tree —
// cheap structural probe used by fault predicates on syntactically invalid
// inputs too (counts unmatched opening brackets).
int ProbeJsonNestingDepth(std::string_view text);

// Evaluates a subset of JSON path expressions: $, .key, [index]. Returns
// nullptr JsonPtr when the path does not resolve.
Result<JsonPtr> EvalJsonPath(const JsonPtr& root, std::string_view path);

}  // namespace soft

#endif  // SRC_SQLVALUE_JSON_H_
