#include "src/sqlvalue/cast.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "src/util/str_util.h"

namespace soft {
namespace {

// Lenient numeric prefix parse (MySQL semantics): "12abc" → 12, "abc" → 0.
int64_t LenientParseInt(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  bool neg = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    neg = s[i] == '-';
    ++i;
  }
  int64_t v = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
    const int digit = s[i] - '0';
    if (v > (INT64_MAX - digit) / 10) {
      v = INT64_MAX;  // saturate
      break;
    }
    v = v * 10 + digit;
    ++i;
  }
  return neg ? -v : v;
}

double LenientParseDouble(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

Result<Value> CastToInt(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kBool:
      return Value::Int(v.bool_value() ? 1 : 0);
    case TypeKind::kInt:
      return v;
    case TypeKind::kDouble: {
      const double d = v.double_value();
      if (std::isnan(d) || d >= 9.3e18 || d <= -9.3e18) {
        return InvalidArgument("DOUBLE out of INT range");
      }
      return Value::Int(static_cast<int64_t>(d));
    }
    case TypeKind::kDecimal: {
      SOFT_ASSIGN_OR_RETURN(int64_t out, v.decimal_value().ToInt64());
      return Value::Int(out);
    }
    case TypeKind::kString: {
      if (opt.strict) {
        const Result<Decimal> dec = Decimal::FromString(v.string_value());
        if (!dec.ok()) {
          return TypeError("invalid input syntax for INT: '" + v.string_value() + "'");
        }
        SOFT_ASSIGN_OR_RETURN(int64_t out, dec->ToInt64());
        return Value::Int(out);
      }
      return Value::Int(LenientParseInt(v.string_value()));
    }
    case TypeKind::kDate: {
      const Date& d = v.date_value();
      return Value::Int(static_cast<int64_t>(d.year) * 10000 + d.month * 100 + d.day);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to INT");
  }
}

Result<Value> CastToDouble(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kDecimal: {
      SOFT_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value::DoubleVal(d);
    }
    case TypeKind::kString: {
      if (opt.strict) {
        char* end = nullptr;
        const std::string& s = v.string_value();
        const double d = std::strtod(s.c_str(), &end);
        if (end != s.c_str() + s.size() || s.empty()) {
          return TypeError("invalid input syntax for DOUBLE: '" + s + "'");
        }
        return Value::DoubleVal(d);
      }
      return Value::DoubleVal(LenientParseDouble(v.string_value()));
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to DOUBLE");
  }
}

Result<Value> CastToDecimal(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kBool:
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kDecimal: {
      SOFT_ASSIGN_OR_RETURN(Decimal d, v.AsDecimal());
      return Value::Dec(std::move(d));
    }
    case TypeKind::kString: {
      const Result<Decimal> d = Decimal::FromString(v.string_value());
      if (!d.ok()) {
        if (opt.strict || d.status().code() == StatusCode::kResourceExhausted) {
          return d.status();
        }
        return Value::Dec(Decimal());  // lenient: 0
      }
      return Value::Dec(*d);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to DECIMAL");
  }
}

Result<Value> CastToString(const Value& v, const CastOptions& opt) {
  if (v.kind() == TypeKind::kBlob) {
    return Value::Str(v.blob_value());
  }
  std::string text = v.ToDisplayString();
  if (text.size() > opt.max_string_len) {
    return ResourceExhausted("string cast result exceeds engine limit");
  }
  return Value::Str(std::move(text));
}

Result<Value> CastToBlob(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kString:
      return Value::BlobVal(v.string_value());
    case TypeKind::kBlob:
      return v;
    case TypeKind::kInet:
      return Value::BlobVal(InetToBinary(v.inet_value()));
    case TypeKind::kGeometry:
      return Value::BlobVal(GeometryToBinary(v.geometry_value()));
    case TypeKind::kInt:
    case TypeKind::kDouble:
    case TypeKind::kDecimal:
      return Value::BlobVal(v.ToDisplayString());
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to BLOB");
  }
}

Result<Value> CastToBool(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kBool:
      return v;
    case TypeKind::kInt:
      return Value::Boolean(v.int_value() != 0);
    case TypeKind::kDouble:
      return Value::Boolean(v.double_value() != 0.0);
    case TypeKind::kDecimal:
      return Value::Boolean(!v.decimal_value().IsZero());
    case TypeKind::kString: {
      const std::string s = AsciiLower(std::string(TrimWhitespace(v.string_value())));
      if (s == "true" || s == "t" || s == "1" || s == "yes" || s == "on") {
        return Value::Boolean(true);
      }
      if (s == "false" || s == "f" || s == "0" || s == "no" || s == "off") {
        return Value::Boolean(false);
      }
      if (opt.strict) {
        return TypeError("invalid input syntax for BOOL: '" + v.string_value() + "'");
      }
      return Value::Boolean(LenientParseInt(v.string_value()) != 0);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to BOOL");
  }
}

Result<Value> CastToDate(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kDate:
      return v;
    case TypeKind::kDateTime:
      return Value::DateVal(v.datetime_value().date);
    case TypeKind::kString: {
      const Result<Date> d = ParseDate(v.string_value());
      if (!d.ok()) {
        if (opt.strict) {
          return d.status();
        }
        return Value::Null();  // MySQL-style: invalid date → NULL (+warning)
      }
      return Value::DateVal(*d);
    }
    case TypeKind::kInt: {
      // yyyymmdd integer form.
      const int64_t n = v.int_value();
      Date d;
      d.year = static_cast<int32_t>(n / 10000);
      d.month = static_cast<int32_t>((n / 100) % 100);
      d.day = static_cast<int32_t>(n % 100);
      if (!IsValidDate(d)) {
        if (opt.strict) {
          return TypeError("integer does not encode a valid DATE");
        }
        return Value::Null();
      }
      return Value::DateVal(d);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to DATE");
  }
}

Result<Value> CastToDateTime(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kDateTime:
      return v;
    case TypeKind::kDate: {
      DateTime dt;
      dt.date = v.date_value();
      return Value::DateTimeVal(dt);
    }
    case TypeKind::kString: {
      const Result<DateTime> dt = ParseDateTime(v.string_value());
      if (!dt.ok()) {
        if (opt.strict) {
          return dt.status();
        }
        return Value::Null();
      }
      return Value::DateTimeVal(*dt);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to DATETIME");
  }
}

Result<Value> CastToJson(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kJson:
      return v;
    case TypeKind::kString: {
      SOFT_ASSIGN_OR_RETURN(JsonParseResult parsed,
                            ParseJson(v.string_value(), opt.json_depth_limit));
      return Value::JsonVal(parsed.value);
    }
    case TypeKind::kBool:
      return Value::JsonVal(JsonValue::MakeBool(v.bool_value()));
    case TypeKind::kInt:
      return Value::JsonVal(JsonValue::MakeNumber(static_cast<double>(v.int_value())));
    case TypeKind::kDouble:
      return Value::JsonVal(JsonValue::MakeNumber(v.double_value()));
    case TypeKind::kDecimal:
      return Value::JsonVal(JsonValue::MakeNumber(v.decimal_value().ToDouble()));
    case TypeKind::kArray: {
      JsonValue::Array items;
      for (const Value& item : v.array_items()) {
        SOFT_ASSIGN_OR_RETURN(Value j, CastToJson(item, opt));
        items.push_back(j.is_null() ? JsonValue::MakeNull() : j.json_value());
      }
      return Value::JsonVal(JsonValue::MakeArray(std::move(items)));
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to JSON");
  }
}

Result<Value> CastToInet(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kInet:
      return v;
    case TypeKind::kString: {
      SOFT_ASSIGN_OR_RETURN(InetAddr addr, ParseInet(v.string_value()));
      return Value::InetVal(addr);
    }
    case TypeKind::kBlob: {
      SOFT_ASSIGN_OR_RETURN(InetAddr addr, InetFromBinary(v.blob_value()));
      return Value::InetVal(addr);
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to INET");
  }
}

Result<Value> CastToGeometry(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kGeometry:
      return v;
    case TypeKind::kString: {
      SOFT_ASSIGN_OR_RETURN(Geometry g, ParseWkt(v.string_value()));
      return Value::GeoVal(std::move(g));
    }
    case TypeKind::kBlob: {
      SOFT_ASSIGN_OR_RETURN(Geometry g, GeometryFromBinary(v.blob_value()));
      return Value::GeoVal(std::move(g));
    }
    default:
      return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                       " to GEOMETRY");
  }
}

Result<Value> CastToArray(const Value& v, const CastOptions& opt) {
  switch (v.kind()) {
    case TypeKind::kArray:
      return v;
    case TypeKind::kJson: {
      const JsonPtr& j = v.json_value();
      if (j == nullptr || j->kind() != JsonKind::kArray) {
        return TypeError("JSON value is not an array");
      }
      ValueList items;
      for (const JsonPtr& item : j->array_items()) {
        switch (item->kind()) {
          case JsonKind::kNull:
            items.push_back(Value::Null());
            break;
          case JsonKind::kBool:
            items.push_back(Value::Boolean(item->bool_value()));
            break;
          case JsonKind::kNumber:
            items.push_back(Value::DoubleVal(item->number_value()));
            break;
          case JsonKind::kString:
            items.push_back(Value::Str(item->string_value()));
            break;
          default:
            items.push_back(Value::JsonVal(item));
        }
      }
      return Value::ArrayVal(std::move(items));
    }
    default:
      if (opt.strict) {
        return TypeError(std::string("cannot cast ") + std::string(TypeKindName(v.kind())) +
                         " to ARRAY");
      }
      return Value::ArrayVal({v});  // lenient: singleton wrap
  }
}

}  // namespace

Result<Value> CastValue(const Value& v, TypeKind target, const CastOptions& options) {
  if (v.is_null()) {
    return Value::Null();
  }
  if (v.is_star() && target != TypeKind::kStar) {
    return TypeError("'*' is not a castable value");
  }
  switch (target) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool:
      return CastToBool(v, options);
    case TypeKind::kInt:
      return CastToInt(v, options);
    case TypeKind::kDouble:
      return CastToDouble(v, options);
    case TypeKind::kDecimal:
      return CastToDecimal(v, options);
    case TypeKind::kString:
      return CastToString(v, options);
    case TypeKind::kBlob:
      return CastToBlob(v, options);
    case TypeKind::kDate:
      return CastToDate(v, options);
    case TypeKind::kDateTime:
      return CastToDateTime(v, options);
    case TypeKind::kJson:
      return CastToJson(v, options);
    case TypeKind::kArray:
      return CastToArray(v, options);
    case TypeKind::kRow:
      if (v.kind() == TypeKind::kRow) {
        return v;
      }
      return TypeError("cannot cast to ROW");
    case TypeKind::kMap:
      if (v.kind() == TypeKind::kMap) {
        return v;
      }
      return TypeError("cannot cast to MAP");
    case TypeKind::kInet:
      return CastToInet(v, options);
    case TypeKind::kGeometry:
      return CastToGeometry(v, options);
    case TypeKind::kStar:
      return TypeError("'*' is not a cast target");
  }
  return Internal("unhandled cast target");
}

Result<Value> CoerceValue(const Value& v, TypeKind target, const CastOptions& options) {
  if (v.is_null() || v.kind() == target) {
    return v;
  }
  if (options.strict && v.kind() == TypeKind::kString && IsNumericType(target)) {
    // PostgreSQL refuses implicit text → numeric coercion.
    return TypeError("implicit cast from STRING to numeric is not allowed");
  }
  return CastValue(v, target, options);
}

Result<TypeKind> CommonSuperType(TypeKind a, TypeKind b) {
  if (a == b) {
    return a;
  }
  if (a == TypeKind::kNull) {
    return b;
  }
  if (b == TypeKind::kNull) {
    return a;
  }
  if (IsNumericType(a) && IsNumericType(b)) {
    if (a == TypeKind::kDouble || b == TypeKind::kDouble) {
      return TypeKind::kDouble;
    }
    if (a == TypeKind::kDecimal || b == TypeKind::kDecimal) {
      return TypeKind::kDecimal;
    }
    return TypeKind::kInt;
  }
  if ((a == TypeKind::kDate && b == TypeKind::kDateTime) ||
      (a == TypeKind::kDateTime && b == TypeKind::kDate)) {
    return TypeKind::kDateTime;
  }
  // Everything has a textual rendering; STRING is the last-resort supertype,
  // except composite kinds which unify only with themselves.
  const auto composite = [](TypeKind k) {
    return k == TypeKind::kArray || k == TypeKind::kRow || k == TypeKind::kMap;
  };
  if (composite(a) || composite(b)) {
    return TypeError(std::string("UNION types ") + std::string(TypeKindName(a)) + " and " +
                     std::string(TypeKindName(b)) + " cannot be matched");
  }
  return TypeKind::kString;
}

}  // namespace soft
