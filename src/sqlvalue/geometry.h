// Minimal spatial type: points, linestrings, polygons.
//
// Supports the paper's spatial bug chain (ST_ASTEXT(BOUNDARY(...)) on a blob
// produced by INET6_ATON). Geometries serialize to a simple WKB-like binary
// layout, so arbitrary blobs can be *interpreted* as geometry — exactly the
// confusion the MariaDB Case 6 bug exploits.
#ifndef SRC_SQLVALUE_GEOMETRY_H_
#define SRC_SQLVALUE_GEOMETRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace soft {

enum class GeometryKind : uint8_t { kPoint = 1, kLineString = 2, kPolygon = 3 };

struct GeoPoint {
  double x = 0;
  double y = 0;
  bool operator==(const GeoPoint&) const = default;
};

struct Geometry {
  GeometryKind kind = GeometryKind::kPoint;
  // kPoint: points.size() == 1. kLineString: >= 2. kPolygon: ring, first point
  // repeated last.
  std::vector<GeoPoint> points;

  bool operator==(const Geometry&) const = default;
};

// Well-known-text rendering, e.g. "POINT(1 2)".
std::string GeometryToWkt(const Geometry& g);

// Parses the WKT subset emitted by GeometryToWkt.
Result<Geometry> ParseWkt(std::string_view text);

// Binary layout: [kind:u8][count:u32 LE][count * (f64 x, f64 y)].
std::string GeometryToBinary(const Geometry& g);

// Decodes the binary layout; rejects truncated or inconsistent buffers. A
// 4- or 16-byte inet blob is *not* valid geometry — dialects that skip this
// check are where the injected Case-6 bug lives.
Result<Geometry> GeometryFromBinary(std::string_view bytes);

// Topological boundary: linestring → its two endpoints (multipoint rendered
// as a linestring here), polygon → its ring; point → empty geometry error.
Result<Geometry> GeometryBoundary(const Geometry& g);

}  // namespace soft

#endif  // SRC_SQLVALUE_GEOMETRY_H_
