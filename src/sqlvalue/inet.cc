#include "src/sqlvalue/inet.h"

#include <charconv>
#include <cstdio>
#include <vector>

#include "src/util/str_util.h"

namespace soft {
namespace {

Result<InetAddr> ParseV4(std::string_view text) {
  const std::vector<std::string> parts = Split(text, '.');
  if (parts.size() != 4) {
    return InvalidArgument("malformed IPv4 address");
  }
  InetAddr out;
  out.is_v4 = true;
  out.bytes[10] = 0xFF;
  out.bytes[11] = 0xFF;
  for (size_t i = 0; i < 4; ++i) {
    unsigned v = 0;
    const std::string& p = parts[i];
    if (p.empty() || p.size() > 3) {
      return InvalidArgument("malformed IPv4 octet");
    }
    auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), v);
    if (ec != std::errc() || ptr != p.data() + p.size() || v > 255) {
      return InvalidArgument("malformed IPv4 octet");
    }
    out.bytes[12 + i] = static_cast<uint8_t>(v);
  }
  return out;
}

Result<InetAddr> ParseV6(std::string_view text) {
  // Split on "::" once; each side is a list of 16-bit groups.
  std::vector<uint16_t> head;
  std::vector<uint16_t> tail;
  bool has_gap = false;

  auto parse_groups = [](std::string_view chunk,
                         std::vector<uint16_t>& out) -> Status {
    if (chunk.empty()) {
      return OkStatus();
    }
    for (const std::string& g : Split(chunk, ':')) {
      if (g.empty() || g.size() > 4) {
        return InvalidArgument("malformed IPv6 group");
      }
      unsigned v = 0;
      auto [p, ec] = std::from_chars(g.data(), g.data() + g.size(), v, 16);
      if (ec != std::errc() || p != g.data() + g.size()) {
        return InvalidArgument("malformed IPv6 group");
      }
      out.push_back(static_cast<uint16_t>(v));
    }
    return OkStatus();
  };

  const size_t gap = text.find("::");
  if (gap != std::string_view::npos) {
    has_gap = true;
    SOFT_RETURN_IF_ERROR(parse_groups(text.substr(0, gap), head));
    SOFT_RETURN_IF_ERROR(parse_groups(text.substr(gap + 2), tail));
  } else {
    SOFT_RETURN_IF_ERROR(parse_groups(text, head));
  }

  const size_t total = head.size() + tail.size();
  if ((has_gap && total >= 8) || (!has_gap && total != 8)) {
    return InvalidArgument("wrong number of IPv6 groups");
  }

  InetAddr out;
  size_t idx = 0;
  for (uint16_t g : head) {
    out.bytes[idx++] = static_cast<uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<uint8_t>(g & 0xFF);
  }
  idx = 16 - tail.size() * 2;
  for (uint16_t g : tail) {
    out.bytes[idx++] = static_cast<uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<uint8_t>(g & 0xFF);
  }
  return out;
}

}  // namespace

Result<InetAddr> ParseInet(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    return ParseV6(text);
  }
  return ParseV4(text);
}

std::string FormatInet(const InetAddr& addr) {
  char buf[64];
  if (addr.is_v4) {
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", addr.bytes[12], addr.bytes[13],
                  addr.bytes[14], addr.bytes[15]);
    return buf;
  }
  std::string out;
  for (int i = 0; i < 8; ++i) {
    const unsigned g = (static_cast<unsigned>(addr.bytes[i * 2]) << 8) | addr.bytes[i * 2 + 1];
    std::snprintf(buf, sizeof(buf), "%x", g);
    if (i > 0) {
      out.push_back(':');
    }
    out += buf;
  }
  return out;
}

std::string InetToBinary(const InetAddr& addr) {
  if (addr.is_v4) {
    return std::string(reinterpret_cast<const char*>(addr.bytes.data()) + 12, 4);
  }
  return std::string(reinterpret_cast<const char*>(addr.bytes.data()), 16);
}

Result<InetAddr> InetFromBinary(std::string_view bytes) {
  InetAddr out;
  if (bytes.size() == 4) {
    out.is_v4 = true;
    out.bytes[10] = 0xFF;
    out.bytes[11] = 0xFF;
    for (size_t i = 0; i < 4; ++i) {
      out.bytes[12 + i] = static_cast<uint8_t>(bytes[i]);
    }
    return out;
  }
  if (bytes.size() == 16) {
    for (size_t i = 0; i < 16; ++i) {
      out.bytes[i] = static_cast<uint8_t>(bytes[i]);
    }
    return out;
  }
  return InvalidArgument("inet binary form must be 4 or 16 bytes");
}

}  // namespace soft
