// The cast matrix: conversion between all SQL type kinds.
//
// Type casting is one of the paper's three boundary-value sources (23.3% of
// the studied bugs). The matrix is centralized here so that (a) every dialect
// routes explicit CAST, '::' casts, and implicit UNION/argument coercions
// through one audited code path, and (b) the fault engine can hook the
// cast boundary itself (bugs "of the type system rather than the functions",
// Section 5.2).
#ifndef SRC_SQLVALUE_CAST_H_
#define SRC_SQLVALUE_CAST_H_

#include "src/sqlvalue/value.h"

namespace soft {

struct CastOptions {
  // Strict mode (PostgreSQL-style): malformed text → error. Lenient mode
  // (MySQL-style): malformed text converts to a zero-ish value. The paper
  // attributes PostgreSQL's low bug count to exactly this strictness.
  bool strict = false;
  // Depth limit applied when parsing JSON during a cast.
  int json_depth_limit = 512;
  // Maximum string length a cast may produce before the engine refuses
  // (resource-limit guard; exceeding it is a kResourceExhausted, the paper's
  // false-positive class).
  size_t max_string_len = 64u << 20;
};

// Converts `v` to `target`. NULL converts to NULL for every target.
Result<Value> CastValue(const Value& v, TypeKind target, const CastOptions& options = {});

// Implicit coercion used by UNION column unification and by function argument
// binding. Slightly more permissive than CastValue in lenient mode and
// slightly less in strict mode (string → numeric implicit coercion is refused
// when strict).
Result<Value> CoerceValue(const Value& v, TypeKind target, const CastOptions& options = {});

// The common supertype two UNION branches unify to, if any.
Result<TypeKind> CommonSuperType(TypeKind a, TypeKind b);

}  // namespace soft

#endif  // SRC_SQLVALUE_CAST_H_
