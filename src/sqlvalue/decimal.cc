#include "src/sqlvalue/decimal.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace soft {
namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Decimal::Normalize() {
  if (scale_ < 0) {
    // Negative scale means trailing integer zeros were implied; materialize.
    digits_.append(static_cast<size_t>(-scale_), '0');
    scale_ = 0;
  }
  // Ensure the digit string covers the fractional part plus at least one
  // integer digit (so 1e-3 renders "0.001", not ".001").
  if (static_cast<int>(digits_.size()) <= scale_) {
    digits_.insert(0, static_cast<size_t>(scale_) + 1 - digits_.size(), '0');
  }
  // Strip leading zeros of the integer part (keep digits for the fraction).
  size_t strip = 0;
  while (strip + 1 < digits_.size() &&
         static_cast<int>(digits_.size() - strip) > scale_ + 1 && digits_[strip] == '0') {
    ++strip;
  }
  // One more: allow integer part "0.xxx" to be a single zero digit... the loop
  // above already keeps integer part length >= 1.
  if (strip > 0) {
    digits_.erase(0, strip);
  }
  if (IsZero()) {
    negative_ = false;
  }
}

bool Decimal::IsZero() const {
  return digits_.find_first_not_of('0') == std::string::npos;
}

Decimal Decimal::FromInt64(int64_t v) {
  if (v == 0) {
    return Decimal();
  }
  const bool neg = v < 0;
  // Careful with INT64_MIN.
  uint64_t mag = neg ? (~static_cast<uint64_t>(v) + 1) : static_cast<uint64_t>(v);
  std::string digits;
  while (mag > 0) {
    digits.push_back(static_cast<char>('0' + mag % 10));
    mag /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return Decimal(neg, std::move(digits), 0);
}

Result<Decimal> Decimal::FromDouble(double v) {
  if (std::isnan(v) || std::isinf(v)) {
    return InvalidArgument("cannot convert non-finite double to DECIMAL");
  }
  char buf[64];
  // %.17g round-trips doubles; parse the result as decimal text.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return FromString(buf);
}

Result<Decimal> Decimal::FromString(std::string_view s) {
  // Trim surrounding whitespace.
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  if (s.empty()) {
    return InvalidArgument("empty DECIMAL literal");
  }
  bool neg = false;
  if (s.front() == '+' || s.front() == '-') {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  // Optional exponent suffix.
  int exponent = 0;
  const size_t epos = s.find_first_of("eE");
  if (epos != std::string_view::npos) {
    std::string_view exp_text = s.substr(epos + 1);
    s = s.substr(0, epos);
    bool exp_neg = false;
    if (!exp_text.empty() && (exp_text.front() == '+' || exp_text.front() == '-')) {
      exp_neg = exp_text.front() == '-';
      exp_text.remove_prefix(1);
    }
    if (!AllDigits(exp_text) || exp_text.size() > 6) {
      return InvalidArgument("malformed DECIMAL exponent");
    }
    int mag = 0;
    std::from_chars(exp_text.data(), exp_text.data() + exp_text.size(), mag);
    exponent = exp_neg ? -mag : mag;
  }

  const size_t dot = s.find('.');
  std::string int_part(dot == std::string_view::npos ? s : s.substr(0, dot));
  std::string frac_part(dot == std::string_view::npos ? std::string_view() : s.substr(dot + 1));
  if (int_part.empty() && frac_part.empty()) {
    return InvalidArgument("malformed DECIMAL literal");
  }
  if (int_part.empty()) {
    int_part = "0";
  }
  if ((!AllDigits(int_part)) || (!frac_part.empty() && !AllDigits(frac_part))) {
    return InvalidArgument("malformed DECIMAL literal");
  }
  if (int_part.size() + frac_part.size() > static_cast<size_t>(kHardDigitLimit)) {
    return ResourceExhausted("DECIMAL literal exceeds hard digit limit");
  }

  std::string digits = int_part + frac_part;
  int scale = static_cast<int>(frac_part.size());
  // Apply the exponent by shifting the scale.
  scale -= exponent;
  if (scale < 0) {
    digits.append(static_cast<size_t>(-scale), '0');
    scale = 0;
  }
  if (scale > kHardDigitLimit) {
    return ResourceExhausted("DECIMAL scale exceeds hard digit limit");
  }
  return Decimal(neg, std::move(digits), scale);
}

std::string Decimal::ToString() const {
  std::string out;
  if (negative()) {
    out.push_back('-');
  }
  const int int_len = integer_digits();
  out.append(digits_, 0, static_cast<size_t>(int_len));
  if (scale_ > 0) {
    out.push_back('.');
    out.append(digits_, static_cast<size_t>(int_len), static_cast<size_t>(scale_));
  }
  return out;
}

std::string Decimal::ToScientificString() const {
  if (IsZero()) {
    return "0e0";
  }
  // Find the first significant digit; exponent counts from there.
  const size_t first = digits_.find_first_not_of('0');
  const int int_len = integer_digits();
  // Position value of the first significant digit: 10^(int_len - 1 - first).
  const int exp = int_len - 1 - static_cast<int>(first);
  std::string mantissa;
  mantissa.push_back(digits_[first]);
  std::string rest = digits_.substr(first + 1);
  // Strip trailing zeros from the mantissa remainder.
  const size_t last = rest.find_last_not_of('0');
  rest = (last == std::string::npos) ? std::string() : rest.substr(0, last + 1);
  if (!rest.empty()) {
    mantissa.push_back('.');
    mantissa += rest;
  }
  std::string out;
  if (negative()) {
    out.push_back('-');
  }
  out += mantissa;
  out.push_back('e');
  out += std::to_string(exp);
  return out;
}

double Decimal::ToDouble() const {
  // Parse a bounded prefix (doubles cannot hold more than ~17 digits anyway);
  // keep the exponent exact via the scale.
  const std::string text = ToString();
  return std::strtod(text.c_str(), nullptr);
}

Result<int64_t> Decimal::ToInt64() const {
  const int int_len = integer_digits();
  std::string_view int_digits(digits_.data(), static_cast<size_t>(int_len));
  // Strip leading zeros for the magnitude check.
  const size_t first = int_digits.find_first_not_of('0');
  if (first == std::string_view::npos) {
    return static_cast<int64_t>(0);
  }
  int_digits.remove_prefix(first);
  if (int_digits.size() > 19) {
    return InvalidArgument("DECIMAL out of INT range");
  }
  uint64_t mag = 0;
  for (char c : int_digits) {
    mag = mag * 10 + static_cast<uint64_t>(c - '0');
  }
  if (negative()) {
    if (mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1) {
      return InvalidArgument("DECIMAL out of INT range");
    }
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return InvalidArgument("DECIMAL out of INT range");
  }
  return static_cast<int64_t>(mag);
}

Decimal Decimal::Negated() const {
  Decimal out = *this;
  if (!out.IsZero()) {
    out.negative_ = !out.negative_;
  }
  return out;
}

Decimal Decimal::Rounded(int new_scale) const {
  if (new_scale < 0) {
    new_scale = 0;
  }
  if (new_scale >= scale_) {
    // Extend with zeros.
    Decimal out = *this;
    out.digits_.append(static_cast<size_t>(new_scale - scale_), '0');
    out.scale_ = new_scale;
    return out;
  }
  const int drop = scale_ - new_scale;
  std::string kept = digits_.substr(0, digits_.size() - static_cast<size_t>(drop));
  const char next = digits_[digits_.size() - static_cast<size_t>(drop)];
  if (kept.empty()) {
    kept = "0";
  }
  if (next >= '5') {
    // Increment the kept magnitude by one unit.
    kept = AddMagnitude(kept, "1");
  }
  return Decimal(negative_, std::move(kept), new_scale);
}

int Decimal::CompareMagnitude(const std::string& a, const std::string& b) {
  // Compare as integers: strip leading zeros first.
  const size_t fa = std::min(a.find_first_not_of('0'), a.size());
  const size_t fb = std::min(b.find_first_not_of('0'), b.size());
  const size_t la = a.size() - fa;
  const size_t lb = b.size() - fb;
  if (la != lb) {
    return la < lb ? -1 : 1;
  }
  const int c = a.compare(fa, la, b, fb, lb);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::string Decimal::AddMagnitude(const std::string& a, const std::string& b) {
  std::string out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  int carry = 0;
  auto ia = a.rbegin();
  auto ib = b.rbegin();
  while (ia != a.rend() || ib != b.rend() || carry != 0) {
    int sum = carry;
    if (ia != a.rend()) {
      sum += *ia - '0';
      ++ia;
    }
    if (ib != b.rend()) {
      sum += *ib - '0';
      ++ib;
    }
    out.push_back(static_cast<char>('0' + sum % 10));
    carry = sum / 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Decimal::SubMagnitude(const std::string& a, const std::string& b) {
  assert(CompareMagnitude(a, b) >= 0);
  std::string out;
  out.reserve(a.size());
  int borrow = 0;
  auto ia = a.rbegin();
  auto ib = b.rbegin();
  while (ia != a.rend()) {
    int diff = (*ia - '0') - borrow;
    if (ib != b.rend()) {
      diff -= *ib - '0';
      ++ib;
    }
    if (diff < 0) {
      diff += 10;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<char>('0' + diff));
    ++ia;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

// Aligns two decimals to a common scale, returning padded digit strings.
void AlignScales(const Decimal& a, const Decimal& b, std::string& da, std::string& db,
                 int& scale, const std::string& a_digits, int a_scale,
                 const std::string& b_digits, int b_scale) {
  scale = std::max(a_scale, b_scale);
  da = a_digits;
  da.append(static_cast<size_t>(scale - a_scale), '0');
  db = b_digits;
  db.append(static_cast<size_t>(scale - b_scale), '0');
  (void)a;
  (void)b;
}

}  // namespace

Decimal Decimal::Add(const Decimal& a, const Decimal& b) {
  std::string da;
  std::string db;
  int scale = 0;
  AlignScales(a, b, da, db, scale, a.digits_, a.scale_, b.digits_, b.scale_);
  if (a.negative() == b.negative()) {
    return Decimal(a.negative(), AddMagnitude(da, db), scale);
  }
  const int cmp = CompareMagnitude(da, db);
  if (cmp == 0) {
    return Decimal(false, std::string(static_cast<size_t>(scale) + 1, '0'), scale);
  }
  if (cmp > 0) {
    return Decimal(a.negative(), SubMagnitude(da, db), scale);
  }
  return Decimal(b.negative(), SubMagnitude(db, da), scale);
}

Decimal Decimal::Sub(const Decimal& a, const Decimal& b) { return Add(a, b.Negated()); }

Decimal Decimal::Mul(const Decimal& a, const Decimal& b) {
  if (a.IsZero() || b.IsZero()) {
    return Decimal();
  }
  // Schoolbook multiplication over digit vectors.
  const std::string& x = a.digits_;
  const std::string& y = b.digits_;
  std::vector<int> acc(x.size() + y.size(), 0);
  for (size_t i = x.size(); i-- > 0;) {
    for (size_t j = y.size(); j-- > 0;) {
      acc[i + j + 1] += (x[i] - '0') * (y[j] - '0');
    }
  }
  for (size_t k = acc.size(); k-- > 1;) {
    acc[k - 1] += acc[k] / 10;
    acc[k] %= 10;
  }
  std::string digits;
  digits.reserve(acc.size());
  for (int d : acc) {
    digits.push_back(static_cast<char>('0' + d));
  }
  return Decimal(a.negative() != b.negative(), std::move(digits), a.scale_ + b.scale_);
}

Result<Decimal> Decimal::Div(const Decimal& a, const Decimal& b, int result_scale) {
  if (b.IsZero()) {
    return InvalidArgument("division by zero");
  }
  if (a.IsZero()) {
    return Decimal();
  }
  if (result_scale < 0) {
    result_scale = 0;
  }
  // Long division on magnitudes: compute floor(A * 10^k / B) where the
  // operands are scaled integers.
  std::string dividend = a.digits_;
  dividend.append(static_cast<size_t>(result_scale + b.scale_), '0');
  const std::string& divisor = b.digits_;

  std::string quotient;
  std::string remainder;
  quotient.reserve(dividend.size());
  for (char c : dividend) {
    remainder.push_back(c);
    // Strip leading zeros in remainder for compare speed.
    const size_t nz = remainder.find_first_not_of('0');
    if (nz == std::string::npos) {
      remainder = "0";
    } else if (nz > 0) {
      remainder.erase(0, nz);
    }
    int q = 0;
    while (CompareMagnitude(remainder, divisor) >= 0) {
      remainder = SubMagnitude(
          std::string(std::max(remainder.size(), divisor.size()) - remainder.size(), '0') +
              remainder,
          std::string(std::max(remainder.size(), divisor.size()) - divisor.size(), '0') +
              divisor);
      const size_t rnz = remainder.find_first_not_of('0');
      remainder = (rnz == std::string::npos) ? "0" : remainder.substr(rnz);
      ++q;
    }
    quotient.push_back(static_cast<char>('0' + q));
  }
  // quotient currently has scale (result_scale + a.scale_).
  Decimal out(a.negative() != b.negative(), std::move(quotient), result_scale + a.scale_);
  return out.Rounded(result_scale);
}

int Decimal::Compare(const Decimal& a, const Decimal& b) {
  const bool an = a.negative();
  const bool bn = b.negative();
  if (an != bn) {
    return an ? -1 : 1;
  }
  std::string da;
  std::string db;
  int scale = 0;
  AlignScales(a, b, da, db, scale, a.digits_, a.scale_, b.digits_, b.scale_);
  const int mag = CompareMagnitude(da, db);
  return an ? -mag : mag;
}

}  // namespace soft
