#include "src/sqlparser/lexer.h"

#include <cctype>

#include "src/util/str_util.h"

namespace soft {

bool Token::IsKeyword(std::string_view keyword) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, keyword);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](TokenKind kind, std::string text, size_t offset) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = offset;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') {
        ++i;
      }
      continue;
    }
    // Block comments.
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      const size_t close = sql.find("*/", i + 2);
      if (close == std::string_view::npos) {
        return ParseError("unterminated block comment");
      }
      i = close + 2;
      continue;
    }
    // Hex blob literal x'AB'.
    if ((c == 'x' || c == 'X') && i + 1 < n && sql[i + 1] == '\'') {
      const size_t start = i;
      size_t j = i + 2;
      std::string bytes;
      std::string hex;
      while (j < n && sql[j] != '\'') {
        hex.push_back(sql[j]);
        ++j;
      }
      if (j >= n) {
        return ParseError("unterminated hex literal");
      }
      if (hex.size() % 2 != 0) {
        return ParseError("odd-length hex literal");
      }
      for (size_t k = 0; k < hex.size(); k += 2) {
        auto nibble = [](char h) -> int {
          if (h >= '0' && h <= '9') {
            return h - '0';
          }
          if (h >= 'a' && h <= 'f') {
            return h - 'a' + 10;
          }
          if (h >= 'A' && h <= 'F') {
            return h - 'A' + 10;
          }
          return -1;
        };
        const int hi = nibble(hex[k]);
        const int lo = nibble(hex[k + 1]);
        if (hi < 0 || lo < 0) {
          return ParseError("invalid hex digit in blob literal");
        }
        bytes.push_back(static_cast<char>((hi << 4) | lo));
      }
      push(TokenKind::kBlobHex, std::move(bytes), start);
      i = j + 1;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(sql[i])) {
        ++i;
      }
      push(TokenKind::kIdent, std::string(sql.substr(start, i - start)), start);
      continue;
    }
    // Number: digits, optional fraction/exponent; also ".5" form.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])) != 0)) {
      const size_t start = i;
      bool seen_dot = false;
      bool seen_exp = false;
      while (i < n) {
        const char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          ++i;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !seen_exp && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) != 0 ||
                    ((sql[i + 1] == '+' || sql[i + 1] == '-') && i + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(sql[i + 2])) != 0))) {
          seen_exp = true;
          i += (sql[i + 1] == '+' || sql[i + 1] == '-') ? 2 : 1;
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, std::string(sql.substr(start, i - start)), start);
      continue;
    }
    // String literal with '' escaping.
    if (c == '\'') {
      const size_t start = i;
      ++i;
      std::string content;
      for (;;) {
        if (i >= n) {
          return ParseError("unterminated string literal");
        }
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            content.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        content.push_back(sql[i]);
        ++i;
      }
      push(TokenKind::kString, std::move(content), start);
      continue;
    }
    // Multi-char operators first.
    auto try_op = [&](std::string_view symbol) {
      if (sql.substr(i, symbol.size()) == symbol) {
        push(TokenKind::kOp, std::string(symbol), i);
        i += symbol.size();
        return true;
      }
      return false;
    };
    if (try_op("::") || try_op("||") || try_op("<=") || try_op(">=") || try_op("<>") ||
        try_op("!=")) {
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case ';':
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
      case '=':
      case '<':
      case '>':
      case '[':
      case ']':
      case '.':
        push(TokenKind::kOp, std::string(1, c), i);
        ++i;
        break;
      default:
        return ParseError("unexpected character '" + std::string(1, c) + "' at offset " +
                          std::to_string(i));
    }
  }
  push(TokenKind::kEnd, "", n);
  return out;
}

}  // namespace soft
