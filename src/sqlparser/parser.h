// Recursive-descent parser for the engine's SQL subset.
//
// Supported statements: SELECT (projection list with aliases, FROM table or
// derived table, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, UNION [ALL]),
// CREATE TABLE, INSERT ... VALUES, DROP TABLE [IF EXISTS].
//
// Supported expressions: literals (integers, exact decimals, doubles,
// strings, hex blobs, NULL, TRUE/FALSE, '*', DATE/TIMESTAMP 'text'),
// column references, function calls (with aggregate DISTINCT), CAST(x AS T)
// and PostgreSQL 'x'::T casts, ROW(...), ARRAY[...], scalar subqueries,
// arithmetic / comparison / boolean operators, || concatenation, IS [NOT]
// NULL.
#ifndef SRC_SQLPARSER_PARSER_H_
#define SRC_SQLPARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "src/sqlast/ast.h"
#include "src/util/status.h"

namespace soft {

// Parses a single statement (trailing ';' optional).
Result<Statement> ParseStatement(std::string_view sql);

// Parses a ';'-separated script.
Result<std::vector<Statement>> ParseScript(std::string_view sql);

// Parses a standalone expression (used by tests and the pattern engine).
Result<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace soft

#endif  // SRC_SQLPARSER_PARSER_H_
