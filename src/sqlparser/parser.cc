#include "src/sqlparser/parser.h"

#include <charconv>

#include "src/failpoint/failpoint.h"
#include "src/sqlparser/lexer.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

// Maximum recursion budget the parser accepts; beyond this it reports a
// parse-stage resource error (a real parser would risk a stack overflow —
// one of the injected parse-stage bug classes keys on this depth). The
// budget is shared between expression nesting (one unit per precedence
// level, threaded as the `depth` parameter) and SELECT nesting (charged to
// the member counter `depth_used_` below, so it survives the `ParseExpr(0)`
// resets at clause boundaries — parenthesized selects, subqueries, and
// UNION chains all recurse through ParseSelect).
constexpr int kMaxParseDepth = 4000;

// One SELECT level costs this much of the shared budget: descending into a
// subquery stacks the full precedence chain plus the select-clause
// machinery — many real stack frames — where one parenthesized expression
// level costs roughly one frame per precedence step.
constexpr int kSelectDepthCost = 16;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseSingleStatement() {
    SOFT_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInternal());
    ConsumeOp(";");
    if (!AtEnd()) {
      return ParseError("unexpected trailing tokens after statement");
    }
    return stmt;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (ConsumeOp(";")) {
        continue;
      }
      SOFT_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInternal());
      out.push_back(std::move(stmt));
      if (!AtEnd() && !ConsumeOp(";")) {
        return ParseError("expected ';' between statements");
      }
    }
    return out;
  }

  Result<ExprPtr> ParseSingleExpression() {
    SOFT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(0));
    if (!AtEnd()) {
      return ParseError("unexpected trailing tokens after expression");
    }
    return e;
  }

 private:
  // Charges a fixed slice of the recursion budget for the lifetime of one
  // recursive call (ParseSelect); the caller checks the limit first.
  class DepthGuard {
   public:
    DepthGuard(Parser& parser, int cost) : parser_(parser), cost_(cost) {
      parser_.depth_used_ += cost_;
    }
    ~DepthGuard() { parser_.depth_used_ -= cost_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
    int cost_;
  };

  const Token& Peek(size_t ahead = 0) const {
    const size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool ConsumeOp(std::string_view symbol) {
    if (Peek().IsOp(symbol)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectOp(std::string_view symbol) {
    if (!ConsumeOp(symbol)) {
      return ParseError("expected '" + std::string(symbol) + "' near '" + Peek().text + "'");
    }
    return OkStatus();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return ParseError("expected " + std::string(kw) + " near '" + Peek().text + "'");
    }
    return OkStatus();
  }

  Result<Statement> ParseStatementInternal() {
    SOFT_FAILPOINT("parse.enter");
    if (Peek().IsKeyword("SELECT") || Peek().IsOp("(")) {
      SOFT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect());
      Statement stmt;
      stmt.node = std::move(sel);
      return stmt;
    }
    if (Peek().IsKeyword("CREATE")) {
      return ParseCreateTable();
    }
    if (Peek().IsKeyword("INSERT")) {
      return ParseInsert();
    }
    if (Peek().IsKeyword("DROP")) {
      return ParseDropTable();
    }
    return ParseError("unsupported statement starting with '" + Peek().text + "'");
  }

  // ---- SELECT --------------------------------------------------------------

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    if (depth_used_ + kSelectDepthCost > kMaxParseDepth) {
      return ResourceExhausted("statement nesting too deep for parser");
    }
    const DepthGuard guard(*this, kSelectDepthCost);
    // Parenthesized select branch: ( SELECT ... )
    if (Peek().IsOp("(")) {
      Advance();
      SOFT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> inner, ParseSelect());
      SOFT_RETURN_IF_ERROR(ExpectOp(")"));
      SOFT_RETURN_IF_ERROR(MaybeParseUnion(*inner));
      return inner;
    }
    SOFT_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto sel = std::make_unique<SelectStmt>();
    if (ConsumeKeyword("DISTINCT")) {
      sel->distinct = true;
    } else {
      ConsumeKeyword("ALL");
    }

    // Projection list.
    for (;;) {
      SOFT_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr(0));
      std::string alias;
      if (ConsumeKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdent) {
          return ParseError("expected alias after AS");
        }
        alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdent && !IsClauseKeyword(Peek())) {
        alias = Advance().text;
      }
      sel->items.emplace_back(std::move(item), std::move(alias));
      if (!ConsumeOp(",")) {
        break;
      }
    }

    if (ConsumeKeyword("FROM")) {
      if (Peek().IsOp("(")) {
        Advance();
        SOFT_ASSIGN_OR_RETURN(sel->from_subquery, ParseSelect());
        SOFT_RETURN_IF_ERROR(ExpectOp(")"));
        ConsumeKeyword("AS");
        if (Peek().kind == TokenKind::kIdent && !IsClauseKeyword(Peek())) {
          sel->from_alias = Advance().text;
        }
      } else {
        if (Peek().kind != TokenKind::kIdent) {
          return ParseError("expected table name after FROM");
        }
        sel->from_table = Advance().text;
        ConsumeKeyword("AS");
        if (Peek().kind == TokenKind::kIdent && !IsClauseKeyword(Peek())) {
          Advance();  // table alias accepted and ignored
        }
      }
    }

    if (ConsumeKeyword("WHERE")) {
      SOFT_ASSIGN_OR_RETURN(sel->where, ParseExpr(0));
    }
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      SOFT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        SOFT_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr(0));
        sel->group_by.push_back(std::move(g));
        if (!ConsumeOp(",")) {
          break;
        }
      }
    }
    if (ConsumeKeyword("HAVING")) {
      SOFT_ASSIGN_OR_RETURN(sel->having, ParseExpr(0));
    }
    if (Peek().IsKeyword("ORDER")) {
      Advance();
      SOFT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        OrderItem item;
        SOFT_ASSIGN_OR_RETURN(item.expr, ParseExpr(0));
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!ConsumeOp(",")) {
          break;
        }
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kNumber) {
        return ParseError("expected number after LIMIT");
      }
      int64_t lim = 0;
      const std::string& text = Advance().text;
      std::from_chars(text.data(), text.data() + text.size(), lim);
      sel->limit = lim;
    }

    SOFT_RETURN_IF_ERROR(MaybeParseUnion(*sel));
    return sel;
  }

  Status MaybeParseUnion(SelectStmt& sel) {
    if (ConsumeKeyword("UNION")) {
      sel.union_all = ConsumeKeyword("ALL");
      SOFT_ASSIGN_OR_RETURN(sel.union_next, ParseSelect());
    }
    return OkStatus();
  }

  static bool IsClauseKeyword(const Token& t) {
    static constexpr std::string_view kClauses[] = {
        "FROM",  "WHERE", "GROUP", "HAVING", "ORDER",  "LIMIT",
        "UNION", "AS",    "ASC",   "DESC",   "VALUES", "ALL",
    };
    for (std::string_view kw : kClauses) {
      if (t.IsKeyword(kw)) {
        return true;
      }
    }
    return false;
  }

  // ---- CREATE TABLE / INSERT / DROP ---------------------------------------

  Result<Statement> ParseCreateTable() {
    Advance();  // CREATE
    SOFT_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (ConsumeKeyword("IF")) {
      SOFT_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      SOFT_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    }
    CreateTableStmt create;
    if (Peek().kind != TokenKind::kIdent) {
      return ParseError("expected table name");
    }
    create.table = Advance().text;
    SOFT_RETURN_IF_ERROR(ExpectOp("("));
    for (;;) {
      ColumnDef col;
      if (Peek().kind != TokenKind::kIdent) {
        return ParseError("expected column name");
      }
      col.name = Advance().text;
      SOFT_ASSIGN_OR_RETURN(col.type_text, ParseTypeText());
      const std::optional<TypeKind> kind = ParseTypeName(col.type_text);
      if (!kind.has_value()) {
        return ParseError("unknown column type '" + col.type_text + "'");
      }
      col.type = *kind;
      if (ConsumeKeyword("NOT")) {
        SOFT_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        col.not_null = true;
      } else if (ConsumeKeyword("NULL")) {
        // nullable, default
      }
      if (ConsumeKeyword("PRIMARY")) {
        SOFT_RETURN_IF_ERROR(ExpectKeyword("KEY"));
      }
      create.columns.push_back(std::move(col));
      if (!ConsumeOp(",")) {
        break;
      }
    }
    SOFT_RETURN_IF_ERROR(ExpectOp(")"));
    Statement stmt;
    stmt.node = std::move(create);
    return stmt;
  }

  // Reads a type name with optional (n[,m]) suffix, returning the raw text.
  Result<std::string> ParseTypeText() {
    if (Peek().kind != TokenKind::kIdent) {
      return ParseError("expected type name");
    }
    std::string text = Advance().text;
    // Two-word types: DOUBLE PRECISION.
    if (EqualsIgnoreCase(text, "DOUBLE") && Peek().IsKeyword("PRECISION")) {
      Advance();
    }
    if (Peek().IsOp("(")) {
      Advance();
      text.push_back('(');
      bool first = true;
      while (!Peek().IsOp(")")) {
        if (Peek().kind == TokenKind::kEnd) {
          return ParseError("unterminated type parameters");
        }
        if (!first) {
          text.push_back(',');
        }
        first = false;
        if (Peek().kind != TokenKind::kNumber) {
          return ParseError("expected numeric type parameter");
        }
        text += Advance().text;
        if (!ConsumeOp(",")) {
          break;
        }
      }
      SOFT_RETURN_IF_ERROR(ExpectOp(")"));
      text.push_back(')');
    }
    return text;
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    SOFT_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt insert;
    if (Peek().kind != TokenKind::kIdent) {
      return ParseError("expected table name");
    }
    insert.table = Advance().text;
    if (Peek().IsOp("(")) {
      Advance();
      for (;;) {
        if (Peek().kind != TokenKind::kIdent) {
          return ParseError("expected column name in INSERT list");
        }
        insert.columns.push_back(Advance().text);
        if (!ConsumeOp(",")) {
          break;
        }
      }
      SOFT_RETURN_IF_ERROR(ExpectOp(")"));
    }
    SOFT_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    for (;;) {
      SOFT_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<ExprPtr> row;
      for (;;) {
        SOFT_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr(0));
        row.push_back(std::move(v));
        if (!ConsumeOp(",")) {
          break;
        }
      }
      SOFT_RETURN_IF_ERROR(ExpectOp(")"));
      insert.rows.push_back(std::move(row));
      if (!ConsumeOp(",")) {
        break;
      }
    }
    Statement stmt;
    stmt.node = std::move(insert);
    return stmt;
  }

  Result<Statement> ParseDropTable() {
    Advance();  // DROP
    SOFT_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStmt drop;
    if (ConsumeKeyword("IF")) {
      SOFT_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      drop.if_exists = true;
    }
    if (Peek().kind != TokenKind::kIdent) {
      return ParseError("expected table name");
    }
    drop.table = Advance().text;
    Statement stmt;
    stmt.node = std::move(drop);
    return stmt;
  }

  // ---- Expressions ---------------------------------------------------------
  //
  // Precedence (low → high): OR, AND, NOT, comparison/IS, additive(+ - ||),
  // multiplicative(* / %), unary(- +), postfix '::', primary.

  Result<ExprPtr> ParseExpr(int depth) {
    SOFT_FAILPOINT("parse.expr");
    if (depth_used_ + depth > kMaxParseDepth) {
      return ResourceExhausted("expression nesting too deep for parser");
    }
    return ParseOr(depth);
  }

  Result<ExprPtr> ParseOr(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(depth + 1));
    while (Peek().IsKeyword("OR")) {
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(depth + 1));
      lhs = MakeBinaryOp("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot(depth + 1));
    while (Peek().IsKeyword("AND")) {
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot(depth + 1));
      lhs = MakeBinaryOp("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot(int depth) {
    if (ConsumeKeyword("NOT")) {
      SOFT_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot(depth + 1));
      return MakeUnaryOp("NOT", std::move(operand));
    }
    return ParseComparison(depth);
  }

  Result<ExprPtr> ParseComparison(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive(depth + 1));
    for (;;) {
      if (Peek().IsKeyword("IS")) {
        Advance();
        const bool negated = ConsumeKeyword("NOT");
        SOFT_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        lhs = MakeUnaryOp(negated ? "IS NOT NULL" : "IS NULL", std::move(lhs));
        continue;
      }
      std::string op;
      for (std::string_view candidate : {"<=", ">=", "<>", "!=", "=", "<", ">"}) {
        if (Peek().IsOp(candidate)) {
          op = candidate;
          break;
        }
      }
      if (Peek().IsKeyword("LIKE")) {
        op = "LIKE";
      }
      if (op.empty()) {
        return lhs;
      }
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive(depth + 1));
      lhs = MakeBinaryOp(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseAdditive(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative(depth + 1));
    for (;;) {
      std::string op;
      if (Peek().IsOp("+")) {
        op = "+";
      } else if (Peek().IsOp("-")) {
        op = "-";
      } else if (Peek().IsOp("||")) {
        op = "||";
      } else {
        return lhs;
      }
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(depth + 1));
      lhs = MakeBinaryOp(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(depth + 1));
    for (;;) {
      std::string op;
      if (Peek().IsOp("*")) {
        op = "*";
      } else if (Peek().IsOp("/")) {
        op = "/";
      } else if (Peek().IsOp("%")) {
        op = "%";
      } else {
        return lhs;
      }
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(depth + 1));
      lhs = MakeBinaryOp(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary(int depth) {
    if (Peek().IsOp("-")) {
      Advance();
      SOFT_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary(depth + 1));
      // Fold negation into numeric literals so "-0.99999" is one literal.
      if (operand->kind == ExprKind::kLiteral && operand->literal.is_numeric()) {
        const Value& v = operand->literal;
        switch (v.kind()) {
          case TypeKind::kInt:
            return MakeLiteral(Value::Int(-v.int_value()));
          case TypeKind::kDouble:
            return MakeLiteral(Value::DoubleVal(-v.double_value()));
          case TypeKind::kDecimal:
            return MakeLiteral(Value::Dec(v.decimal_value().Negated()));
          default:
            break;
        }
      }
      return MakeUnaryOp("-", std::move(operand));
    }
    if (Peek().IsOp("+")) {
      Advance();
      return ParseUnary(depth + 1);
    }
    return ParsePostfix(depth);
  }

  Result<ExprPtr> ParsePostfix(int depth) {
    SOFT_ASSIGN_OR_RETURN(ExprPtr base, ParsePrimary(depth + 1));
    while (Peek().IsOp("::")) {
      Advance();
      SOFT_ASSIGN_OR_RETURN(std::string type_text, ParseTypeText());
      const std::optional<TypeKind> kind = ParseTypeName(type_text);
      if (!kind.has_value()) {
        return ParseError("unknown cast type '" + type_text + "'");
      }
      base = MakeCast(std::move(base), *kind, std::move(type_text));
    }
    return base;
  }

  Result<ExprPtr> ParsePrimary(int depth) {
    if (depth_used_ + depth > kMaxParseDepth) {
      return ResourceExhausted("expression nesting too deep for parser");
    }
    const Token& t = Peek();

    if (t.kind == TokenKind::kNumber) {
      Advance();
      return NumberLiteral(t.text);
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return MakeLiteral(Value::Str(t.text));
    }
    if (t.kind == TokenKind::kBlobHex) {
      Advance();
      return MakeLiteral(Value::BlobVal(t.text));
    }
    if (t.IsOp("*")) {
      Advance();
      return MakeLiteral(Value::Star());
    }
    if (t.IsOp("(")) {
      Advance();
      if (Peek().IsKeyword("SELECT")) {
        SOFT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelect());
        SOFT_RETURN_IF_ERROR(ExpectOp(")"));
        return MakeSubquery(std::move(sub));
      }
      SOFT_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr(depth + 1));
      SOFT_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      // Keyword-ish literals and constructors.
      if (t.IsKeyword("NULL")) {
        Advance();
        return MakeLiteral(Value::Null());
      }
      if (t.IsKeyword("TRUE")) {
        Advance();
        return MakeLiteral(Value::Boolean(true));
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return MakeLiteral(Value::Boolean(false));
      }
      if (t.IsKeyword("DATE") && Peek(1).kind == TokenKind::kString) {
        Advance();
        const std::string text = Advance().text;
        SOFT_ASSIGN_OR_RETURN(Date d, ParseDate(text));
        return MakeLiteral(Value::DateVal(d));
      }
      if ((t.IsKeyword("TIMESTAMP") || t.IsKeyword("DATETIME")) &&
          Peek(1).kind == TokenKind::kString) {
        Advance();
        const std::string text = Advance().text;
        SOFT_ASSIGN_OR_RETURN(DateTime dt, ParseDateTime(text));
        return MakeLiteral(Value::DateTimeVal(dt));
      }
      if (t.IsKeyword("CAST") && Peek(1).IsOp("(")) {
        Advance();
        Advance();
        SOFT_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr(depth + 1));
        SOFT_RETURN_IF_ERROR(ExpectKeyword("AS"));
        SOFT_ASSIGN_OR_RETURN(std::string type_text, ParseTypeText());
        const std::optional<TypeKind> kind = ParseTypeName(type_text);
        if (!kind.has_value()) {
          return ParseError("unknown cast type '" + type_text + "'");
        }
        SOFT_RETURN_IF_ERROR(ExpectOp(")"));
        return MakeCast(std::move(operand), *kind, std::move(type_text));
      }
      if (t.IsKeyword("ROW") && Peek(1).IsOp("(")) {
        Advance();
        Advance();
        std::vector<ExprPtr> fields;
        if (!Peek().IsOp(")")) {
          for (;;) {
            SOFT_ASSIGN_OR_RETURN(ExprPtr f, ParseExpr(depth + 1));
            fields.push_back(std::move(f));
            if (!ConsumeOp(",")) {
              break;
            }
          }
        }
        SOFT_RETURN_IF_ERROR(ExpectOp(")"));
        return MakeRowCtor(std::move(fields));
      }
      if (t.IsKeyword("ARRAY") && Peek(1).IsOp("[")) {
        Advance();
        Advance();
        std::vector<ExprPtr> elements;
        if (!Peek().IsOp("]")) {
          for (;;) {
            SOFT_ASSIGN_OR_RETURN(ExprPtr el, ParseExpr(depth + 1));
            elements.push_back(std::move(el));
            if (!ConsumeOp(",")) {
              break;
            }
          }
        }
        SOFT_RETURN_IF_ERROR(ExpectOp("]"));
        return MakeArrayCtor(std::move(elements));
      }
      // Function call?
      if (Peek(1).IsOp("(")) {
        const std::string name = Advance().text;
        Advance();  // '('
        bool distinct = false;
        std::vector<ExprPtr> args;
        if (ConsumeKeyword("DISTINCT")) {
          distinct = true;
        }
        if (!Peek().IsOp(")")) {
          for (;;) {
            SOFT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr(depth + 1));
            args.push_back(std::move(a));
            if (!ConsumeOp(",")) {
              break;
            }
          }
        }
        SOFT_RETURN_IF_ERROR(ExpectOp(")"));
        return MakeFunctionCall(name, std::move(args), distinct);
      }
      // Bare column reference (qualified names collapse to the last part).
      std::string name = Advance().text;
      while (Peek().IsOp(".") && Peek(1).kind == TokenKind::kIdent) {
        Advance();
        name = Advance().text;
      }
      return MakeColumnRef(std::move(name));
    }
    return ParseError("unexpected token '" + t.text + "' in expression");
  }

  // Classifies numeric literal text: plain small integer → INT, exact decimal
  // (or oversized integer) → DECIMAL, exponent form → DOUBLE.
  static Result<ExprPtr> NumberLiteral(const std::string& text) {
    const bool has_dot = text.find('.') != std::string::npos;
    const bool has_exp =
        text.find('e') != std::string::npos || text.find('E') != std::string::npos;
    if (has_exp) {
      return MakeLiteral(Value::DoubleVal(std::strtod(text.c_str(), nullptr)));
    }
    if (!has_dot) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc() && p == text.data() + text.size()) {
        return MakeLiteral(Value::Int(v));
      }
      // Too large for int64 → exact DECIMAL (the AVG(1.2999…) bug class needs
      // the digits preserved).
    }
    SOFT_ASSIGN_OR_RETURN(Decimal d, Decimal::FromString(text));
    return MakeLiteral(Value::Dec(std::move(d)));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // Recursion budget consumed by in-flight ParseSelect frames (see
  // kSelectDepthCost); added to the expression `depth` at every limit check.
  int depth_used_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  SOFT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSingleStatement();
}

Result<std::vector<Statement>> ParseScript(std::string_view sql) {
  SOFT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

Result<ExprPtr> ParseExpression(std::string_view sql) {
  SOFT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSingleExpression();
}

}  // namespace soft
