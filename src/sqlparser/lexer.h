// SQL tokenizer.
//
// Produces the token stream for the recursive-descent parser. The lexer keeps
// raw number text (long decimal literals must stay exact — they are Pattern
// 1.1 boundary values) and understands '' escaping inside string literals,
// x'AB' hex blobs, and the '::' cast operator.
#ifndef SRC_SQLPARSER_LEXER_H_
#define SRC_SQLPARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace soft {

enum class TokenKind {
  kIdent,    // identifier or keyword (case preserved in text)
  kNumber,   // numeric literal, raw text
  kString,   // string literal, unescaped content
  kBlobHex,  // x'...' literal, decoded bytes
  kOp,       // operator/punctuation, text holds the symbol
  kEnd,      // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset in the source (for error messages)

  bool IsOp(std::string_view symbol) const {
    return kind == TokenKind::kOp && text == symbol;
  }
  // Case-insensitive keyword check.
  bool IsKeyword(std::string_view keyword) const;
};

// Tokenizes the whole input. Fails on unterminated strings or stray bytes.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace soft

#endif  // SRC_SQLPARSER_LEXER_H_
