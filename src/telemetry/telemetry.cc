// Recording hooks: the thread-local collector and the process-global named
// histograms. Compiled only when SOFT_TELEMETRY=ON (the default); the OFF
// configuration gets the inline no-ops from telemetry.h and this file is
// excluded from the build, so any stray hook reference would fail to link.
#include "src/telemetry/telemetry.h"

#ifdef SOFT_TELEMETRY_ENABLED

#include <atomic>
#include <mutex>

namespace soft {
namespace telemetry {

namespace {

std::atomic<bool> g_runtime_enabled{true};

// The calling thread's active collector. One campaign == one collector; the
// parallel runner's shard threads each install their own, so recording is
// contention-free on the statement path.
thread_local CampaignTelemetry* t_sink = nullptr;
thread_local uint64_t t_start_ns = 0;

std::mutex& NamedMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::map<std::string, LatencyHistogram>& NamedHistogramsLocked() {
  static std::map<std::string, LatencyHistogram>* histograms =
      new std::map<std::string, LatencyHistogram>;
  return *histograms;
}

}  // namespace

bool RuntimeEnabled() { return g_runtime_enabled.load(std::memory_order_relaxed); }

void SetRuntimeEnabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

bool CollectorInstalled() { return t_sink != nullptr; }

ScopedCollector::ScopedCollector(CampaignTelemetry* sink)
    : previous_sink_(t_sink),
      previous_start_ns_(t_start_ns),
      installed_(sink != nullptr && RuntimeEnabled()) {
  if (installed_) {
    t_sink = sink;
    t_start_ns = MonotonicNowNs();
  }
}

ScopedCollector::~ScopedCollector() {
  if (installed_) {
    t_sink = previous_sink_;
    t_start_ns = previous_start_ns_;
  }
}

uint64_t WallSinceCollectorStartNs() {
  return t_sink == nullptr ? 0 : MonotonicNowNs() - t_start_ns;
}

void RecordStageLatency(Stage stage, uint64_t ns) {
  if (t_sink != nullptr) {
    t_sink->stage_latency[static_cast<size_t>(stage)].Record(ns);
  }
}

void CountGenerated(const std::string& pattern, uint64_t n) {
  if (t_sink != nullptr) {
    t_sink->patterns[pattern].generated += n;
  }
}

void CountExecuted(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].executed;
  }
}

void CountCrash(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].crashes;
  }
}

void CountBugDeduped(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].bugs_deduped;
  }
}

void CountSqlError(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].sql_errors;
  }
}

void CountFalsePositive(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].false_positives;
  }
}

void CountTimeout(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].timeouts;
  }
}

void CountLogicCheck(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].logic_checks;
  }
}

void CountLogicBug(const std::string& pattern) {
  if (t_sink != nullptr) {
    ++t_sink->patterns[pattern].logic_bugs;
  }
}

void RecordNamedLatency(std::string_view name, uint64_t ns) {
  if (!RuntimeEnabled()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(NamedMutex());
  NamedHistogramsLocked()[std::string(name)].Record(ns);
}

std::map<std::string, LatencyHistogram> NamedLatencySnapshot() {
  const std::lock_guard<std::mutex> lock(NamedMutex());
  return NamedHistogramsLocked();
}

}  // namespace telemetry
}  // namespace soft

#endif  // SOFT_TELEMETRY_ENABLED
