#include "src/telemetry/trace.h"

#include <array>

#include "src/failpoint/failpoint.h"
#include "src/telemetry/telemetry.h"

namespace soft {
namespace trace {

// ---------------------------------------------------------------------------
// Always-compiled data-model helpers.
// ---------------------------------------------------------------------------

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCampaign:
      return "campaign";
    case SpanKind::kShard:
      return "shard";
    case SpanKind::kWorkerRun:
      return "worker-run";
    case SpanKind::kStatement:
      return "statement";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kOptimize:
      return "optimize";
    case SpanKind::kExecute:
      return "execute";
  }
  return "unknown";
}

SpanKind StageSpanKind(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return SpanKind::kParse;
    case Stage::kOptimize:
      return SpanKind::kOptimize;
    case Stage::kExecute:
      return SpanKind::kExecute;
  }
  return SpanKind::kExecute;
}

namespace {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

uint64_t FnvMix(uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvMixInt(uint64_t h, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t SpanId(std::string_view dialect, int shard, SpanKind kind, int ordinal) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, dialect);
  h = FnvMixInt(h, static_cast<uint64_t>(static_cast<int64_t>(shard)));
  h = FnvMixInt(h, static_cast<uint64_t>(kind));
  h = FnvMixInt(h, static_cast<uint64_t>(static_cast<int64_t>(ordinal)));
  // Reserve 0 as "no parent".
  return h == 0 ? 1 : h;
}

// ---------------------------------------------------------------------------
// Recording hooks (thread-local, SOFT_TELEMETRY builds only).
// ---------------------------------------------------------------------------

#ifdef SOFT_TELEMETRY_ENABLED

namespace {

struct TracerState {
  TraceData* sink = nullptr;
  std::string dialect;
  int shard = 0;
  int sample_every = 1;
  uint64_t base_ns = 0;  // MonotonicNowNs() at install — spans are relative
  bool open = false;
  int statement_index = 0;             // ordinal of the open statement
  TraceSpan current;                   // open statement span
  std::vector<TraceSpan> stage_spans;  // children of the open statement
  uint64_t fires_before = 0;           // failpoint fire total at Begin
};

thread_local TracerState* t_tracer = nullptr;

struct FlightState {
  std::array<FlightEntry, kFlightRingCapacity> ring;
  size_t next = 0;   // slot the next Begin writes
  size_t count = 0;  // entries populated (≤ capacity)

  FlightEntry* Current() {
    if (count == 0) {
      return nullptr;
    }
    return &ring[(next + kFlightRingCapacity - 1) % kFlightRingCapacity];
  }
};

thread_local FlightState* t_flight = nullptr;

// Sum of fires across the inventory — cheap enough for the armed-chaos case
// only (22 registry lookups); never touched when nothing is armed.
uint64_t TotalFailpointFires() {
  uint64_t total = 0;
  for (const failpoint::SiteInfo& site : failpoint::kInventory) {
    total += failpoint::Stats(site.name).fires;
  }
  return total;
}

}  // namespace

ScopedStatementTracer::ScopedStatementTracer(TraceData* sink, std::string dialect,
                                             int shard, int sample_every) {
  if (sink == nullptr) {
    return;
  }
  auto* state = new TracerState;
  state->sink = sink;
  state->dialect = std::move(dialect);
  state->shard = shard;
  state->sample_every = sample_every < 1 ? 1 : sample_every;
  state->base_ns = telemetry::MonotonicNowNs();
  t_tracer = state;
}

ScopedStatementTracer::~ScopedStatementTracer() {
  delete t_tracer;
  t_tracer = nullptr;
}

bool StatementOpen() { return t_tracer != nullptr && t_tracer->open; }

void BeginStatement(int statement_index, std::string_view pattern) {
  TracerState* state = t_tracer;
  if (state == nullptr) {
    return;
  }
  // Sample 1st, (1+N)th, ... so a campaign always traces its first statement.
  if ((statement_index - 1) % state->sample_every != 0) {
    state->open = false;
    return;
  }
  state->open = true;
  state->statement_index = statement_index;
  state->stage_spans.clear();
  state->current = TraceSpan{};
  state->current.id =
      SpanId(state->dialect, state->shard, SpanKind::kStatement, statement_index);
  state->current.kind = SpanKind::kStatement;
  state->current.shard = state->shard;
  state->current.start_ns = telemetry::MonotonicNowNs() - state->base_ns;
  state->current.args.emplace_back("index", std::to_string(statement_index));
  state->current.args.emplace_back("pattern", std::string(pattern));
  state->fires_before =
      failpoint::AnyArmed() ? TotalFailpointFires() : uint64_t{0};
}

void AnnotateStatement(std::string_view key, std::string value) {
  TracerState* state = t_tracer;
  if (state == nullptr || !state->open) {
    return;
  }
  state->current.args.emplace_back(std::string(key), std::move(value));
}

void EndStatement(std::string_view outcome) {
  TracerState* state = t_tracer;
  if (state == nullptr || !state->open) {
    return;
  }
  state->open = false;
  state->current.dur_ns =
      telemetry::MonotonicNowNs() - state->base_ns - state->current.start_ns;
  state->current.args.emplace_back("outcome", std::string(outcome));
  if (failpoint::AnyArmed()) {
    const uint64_t delta = TotalFailpointFires() - state->fires_before;
    if (delta > 0) {
      state->current.args.emplace_back("failpoint_fires", std::to_string(delta));
    }
  }
  // Statement span first, then its stage children — a deterministic order
  // regardless of stage count (parse errors have one child, full pipelines
  // three).
  state->sink->spans.push_back(state->current);
  for (TraceSpan& stage : state->stage_spans) {
    state->sink->spans.push_back(std::move(stage));
  }
  state->stage_spans.clear();
}

void RecordStageSpan(Stage stage, uint64_t start_abs_ns, uint64_t dur_ns) {
  TracerState* state = t_tracer;
  if (state == nullptr || !state->open) {
    return;
  }
  TraceSpan span;
  // Stage ordinal folds the stage into the statement ordinal so IDs stay
  // unique across the whole shard: statement i, stage s → i*4+s+1.
  span.id = SpanId(state->dialect, state->shard, StageSpanKind(stage),
                   state->statement_index * 4 + static_cast<int>(stage) + 1);
  span.parent_id = state->current.id;
  span.kind = StageSpanKind(stage);
  span.shard = state->shard;
  span.start_ns = start_abs_ns - state->base_ns;
  span.dur_ns = dur_ns;
  state->stage_spans.push_back(std::move(span));
}

ScopedOracleExecution::ScopedOracleExecution() {
  TracerState* state = t_tracer;
  if (state != nullptr && state->open) {
    was_open_ = true;
    state->open = false;
  }
}

ScopedOracleExecution::~ScopedOracleExecution() {
  TracerState* state = t_tracer;
  if (was_open_ && state != nullptr) {
    state->open = true;
  }
}

ScopedFlightRecorder::ScopedFlightRecorder(bool enabled) {
  if (enabled) {
    t_flight = new FlightState;
  }
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  delete t_flight;
  t_flight = nullptr;
}

bool FlightInstalled() { return t_flight != nullptr; }

void FlightBeginStatement(int statement_index, std::string_view pattern,
                          std::string_view sql) {
  FlightState* state = t_flight;
  if (state == nullptr) {
    return;
  }
  FlightEntry& slot = state->ring[state->next];
  slot.statement_index = statement_index;
  slot.pattern.assign(pattern);
  slot.sql.assign(sql);
  slot.stage_reached = "parse";  // deepest stage entered so far
  slot.outcome = "in-flight";
  state->next = (state->next + 1) % kFlightRingCapacity;
  if (state->count < kFlightRingCapacity) {
    ++state->count;
  }
}

void FlightNoteStage(Stage stage) {
  FlightState* state = t_flight;
  if (state == nullptr) {
    return;
  }
  if (FlightEntry* current = state->Current()) {
    current->stage_reached = StageName(stage);
  }
}

void FlightEndStatement(std::string_view outcome) {
  FlightState* state = t_flight;
  if (state == nullptr) {
    return;
  }
  if (FlightEntry* current = state->Current()) {
    current->outcome.assign(outcome);
  }
}

std::vector<FlightEntry> FlightSnapshot() {
  FlightState* state = t_flight;
  std::vector<FlightEntry> out;
  if (state == nullptr || state->count == 0) {
    return out;
  }
  out.reserve(state->count);
  const size_t oldest =
      (state->next + kFlightRingCapacity - state->count) % kFlightRingCapacity;
  for (size_t i = 0; i < state->count; ++i) {
    out.push_back(state->ring[(oldest + i) % kFlightRingCapacity]);
  }
  return out;
}

#endif  // SOFT_TELEMETRY_ENABLED

}  // namespace trace
}  // namespace soft
