// NDJSON journal writing/replay and the telemetry JSON serialization. This
// translation unit is compiled in every configuration (it has no campaign
// runtime cost); only the recording hooks in telemetry.cc are gated by
// SOFT_TELEMETRY.
#include "src/telemetry/journal.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/failpoint/failpoint.h"
#include "src/telemetry/telemetry.h"
#include "src/util/io.h"

namespace soft {
namespace telemetry {

uint64_t MonotonicNowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendHistogramJson(std::string& out, const LatencyHistogram& h) {
  out += "{\"samples\":" + std::to_string(h.samples);
  out += ",\"total_ns\":" + std::to_string(h.total_ns);
  out += ",\"max_ns\":" + std::to_string(h.max_ns);
  out += ",\"buckets\":[";
  for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    if (i != 0) {
      out += ',';
    }
    out += std::to_string(h.buckets[i]);
  }
  out += "]}";
}

// --- Minimal parser for the journal's own flat JSON lines -----------------
//
// Handles exactly what WriteCampaignJournal emits: one flat object per line,
// string values with \-escapes, integer/double number values. Not a general
// JSON parser.

// Locates the value of `key` in `line` starting after the "key": prefix.
// Returns npos when absent.
size_t ValueStart(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) {
    return std::string::npos;
  }
  size_t pos = at + needle.size();
  while (pos < line.size() && line[pos] == ' ') {
    ++pos;
  }
  return pos;
}

bool ExtractString(const std::string& line, const std::string& key, std::string& out) {
  size_t pos = ValueStart(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  ++pos;
  out.clear();
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      ++pos;
      switch (line[pos]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        default:
          out += line[pos];
      }
    } else {
      out += line[pos];
    }
    ++pos;
  }
  return pos < line.size();
}

bool ExtractNumberToken(const std::string& line, const std::string& key,
                        std::string& out) {
  const size_t pos = ValueStart(line, key);
  if (pos == std::string::npos) {
    return false;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  out = line.substr(pos, end - pos);
  return !out.empty();
}

bool ExtractInt(const std::string& line, const std::string& key, int64_t& out) {
  std::string token;
  if (!ExtractNumberToken(line, key, token)) {
    return false;
  }
  out = std::strtoll(token.c_str(), nullptr, 10);
  return true;
}

bool ExtractUint(const std::string& line, const std::string& key, uint64_t& out) {
  std::string token;
  if (!ExtractNumberToken(line, key, token)) {
    return false;
  }
  out = std::strtoull(token.c_str(), nullptr, 10);
  return true;
}

bool ExtractDouble(const std::string& line, const std::string& key, double& out) {
  std::string token;
  if (!ExtractNumberToken(line, key, token)) {
    return false;
  }
  out = std::strtod(token.c_str(), nullptr);
  return true;
}

bool ExtractBool(const std::string& line, const std::string& key, bool& out) {
  std::string token;
  if (!ExtractNumberToken(line, key, token)) {
    return false;
  }
  out = (token == "true" || token == "1");
  return true;
}

// Parses the crash_flight event's "entries":[{...},...] array — the one
// place the journal nests objects, so the flat extractors cannot be applied
// to the whole line. Each entry object is located with a string-aware brace
// scan (the sql text may contain braces), then field-extracted flat.
bool ParseFlightEntries(const std::string& line,
                        std::vector<trace::FlightEntry>& out) {
  const std::string needle = "\"entries\":[";
  const size_t at = line.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  size_t pos = at + needle.size();
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ',' || line[pos] == ' ')) {
      ++pos;
    }
    if (pos >= line.size()) {
      return false;
    }
    if (line[pos] == ']') {
      return true;
    }
    if (line[pos] != '{') {
      return false;
    }
    size_t end = pos;
    int depth = 0;
    bool in_string = false;
    for (; end < line.size(); ++end) {
      const char c = line[end];
      if (in_string) {
        if (c == '\\') {
          ++end;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++end;
          break;
        }
      }
    }
    if (depth != 0) {
      return false;
    }
    const std::string obj = line.substr(pos, end - pos);
    trace::FlightEntry entry;
    int64_t index = 0;
    if (!ExtractInt(obj, "index", index) ||
        !ExtractString(obj, "pattern", entry.pattern) ||
        !ExtractString(obj, "stage", entry.stage_reached) ||
        !ExtractString(obj, "outcome", entry.outcome) ||
        !ExtractString(obj, "sql", entry.sql)) {
      return false;
    }
    entry.statement_index = static_cast<int>(index);
    out.push_back(std::move(entry));
    pos = end;
  }
  return false;  // unterminated array
}

}  // namespace

std::string CampaignTelemetry::ToJson() const {
  std::string out = "{\"stages\":{";
  for (size_t i = 0; i < kStageCount; ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\"";
    out += kStageKeys[i];
    out += "\":";
    AppendHistogramJson(out, stage_latency[i]);
  }
  out += "},\"patterns\":{";
  bool first = true;
  for (const auto& [pattern, counters] : patterns) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "\"" + EscapeJson(pattern) + "\":{";
    out += "\"generated\":" + std::to_string(counters.generated);
    out += ",\"executed\":" + std::to_string(counters.executed);
    out += ",\"crashes\":" + std::to_string(counters.crashes);
    out += ",\"bugs_deduped\":" + std::to_string(counters.bugs_deduped);
    out += ",\"sql_errors\":" + std::to_string(counters.sql_errors);
    out += ",\"false_positives\":" + std::to_string(counters.false_positives);
    out += ",\"timeouts\":" + std::to_string(counters.timeouts);
    out += ",\"logic_checks\":" + std::to_string(counters.logic_checks);
    out += ",\"logic_bugs\":" + std::to_string(counters.logic_bugs);
    out += "}";
  }
  out += "}}";
  return out;
}

void WriteCampaignStart(std::ostream& out, const CampaignOptions& options,
                        const std::string& tool, const std::string& dialect,
                        int shards) {
  out << "{\"event\":\"campaign_start\",\"tool\":\"" << EscapeJson(tool)
      << "\",\"dialect\":\"" << EscapeJson(dialect)
      << "\",\"seed\":" << options.seed << ",\"budget\":" << options.max_statements
      << ",\"shards\":" << shards << "}\n";
}

void WriteCheckpointRecord(std::ostream& out, const CampaignCheckpoint& checkpoint) {
  // journal.checkpoint_write: the stream goes bad exactly as a full disk
  // would make it — sinks that check stream state (find_bugs) then latch
  // journal degradation and the campaign continues without checkpoints.
  if (SOFT_FAILPOINT_HIT("journal.checkpoint_write")) {
    out.setstate(std::ios_base::badbit);
    return;
  }
  out << "{\"event\":\"checkpoint\",\"every\":" << checkpoint.every
      << ",\"shard\":" << checkpoint.shard
      << ",\"cases_completed\":" << checkpoint.cases_completed
      << ",\"sql_errors\":" << checkpoint.sql_errors
      << ",\"crashes_observed\":" << checkpoint.crashes_observed
      << ",\"false_positives\":" << checkpoint.false_positives
      << ",\"watchdog_timeouts\":" << checkpoint.watchdog_timeouts
      << ",\"unique_bugs\":" << checkpoint.unique_bugs
      << ",\"rng_fingerprint\":" << checkpoint.rng_fingerprint
      << ",\"dedup_digest\":" << checkpoint.dedup_digest << "}\n";
}

void WriteResumeMarker(std::ostream& out, int from_cases) {
  out << "{\"event\":\"campaign_resume\",\"from_cases\":" << from_cases << "}\n";
}

void WriteChaosMarker(std::ostream& out, const std::string& spec) {
  out << "{\"event\":\"chaos\",\"spec\":\"" << EscapeJson(spec) << "\"}\n";
}

void WriteLeaseEvent(std::ostream& out, const JournalLeaseEvent& event) {
  out << "{\"event\":\"lease\",\"action\":\"" << EscapeJson(event.action)
      << "\",\"unit\":" << event.unit << ",\"worker\":" << event.worker
      << ",\"cases\":" << event.cases << ",\"unit_digest\":" << event.unit_digest
      << "}\n";
}

void WriteWorkerDeathEvent(std::ostream& out, const JournalWorkerDeath& event) {
  out << "{\"event\":\"worker_death\",\"worker\":" << event.worker
      << ",\"pid\":" << event.pid
      << ",\"units_completed\":" << event.units_completed << ",\"reason\":\""
      << EscapeJson(event.reason) << "\"}\n";
}

void WriteFleetFinishEvent(std::ostream& out, const JournalFleetFinish& event) {
  out << "{\"event\":\"fleet_finish\",\"units\":" << event.units
      << ",\"workers_spawned\":" << event.workers_spawned
      << ",\"worker_deaths\":" << event.worker_deaths
      << ",\"leases_granted\":" << event.leases_granted
      << ",\"leases_reclaimed\":" << event.leases_reclaimed
      << ",\"leases_stolen\":" << event.leases_stolen
      << ",\"heartbeats\":" << event.heartbeats
      << ",\"units_completed\":" << event.units_completed
      << ",\"units_run_locally\":" << event.units_run_locally
      << ",\"units_resumed\":" << event.units_resumed
      << ",\"units_spool_diverged\":" << event.units_spool_diverged
      << ",\"degraded_to_local\":" << (event.degraded_to_local ? 1 : 0) << "}\n";
}

void WriteCampaignTail(std::ostream& out, const CampaignResult& result,
                       uint64_t wall_ns) {
  for (size_t i = 0; i < result.shard_statements.size(); ++i) {
    out << "{\"event\":\"shard_merge\",\"shard\":" << i
        << ",\"statements\":" << result.shard_statements[i] << "}\n";
  }
  for (const FoundBug& bug : result.unique_bugs) {
    out << "{\"event\":\"first_witness\",\"bug_id\":" << bug.crash.bug_id
        << ",\"pattern\":\"" << EscapeJson(bug.found_by)
        << "\",\"statement_index\":" << bug.statements_until_found
        << ",\"shard\":" << bug.shard << ",\"wall_ms\":"
        << FormatMs(static_cast<uint64_t>(bug.found_wall_ns))
        << ",\"recorded\":" << (bug.wall_recorded ? "true" : "false") << "}\n";
  }
  for (const FoundLogicBug& bug : result.logic_bugs) {
    out << "{\"event\":\"logic_bug\",\"bug_id\":" << bug.info.bug_id
        << ",\"oracle\":\"" << EscapeJson(bug.oracle) << "\",\"function\":\""
        << EscapeJson(bug.info.function) << "\",\"effect\":\""
        << LogicEffectName(bug.info.effect) << "\",\"scope\":\""
        << LogicScopeName(bug.info.scope) << "\",\"case_index\":" << bug.case_index
        << ",\"statement_index\":" << bug.statements_until_found
        << ",\"shard\":" << bug.shard << ",\"poc\":\"" << EscapeJson(bug.poc_sql)
        << "\",\"witness\":\"" << EscapeJson(bug.witness) << "\"}\n";
  }
  for (const trace::CrashFlightRecord& flight : result.crash_flights) {
    // Top-level fields precede "entries" so the flat extractors find them
    // first on replay (the entry objects reuse none of these keys anyway).
    out << "{\"event\":\"crash_flight\",\"shard\":" << flight.shard
        << ",\"worker_run\":" << flight.worker_run
        << ",\"announced\":" << (flight.announced ? "true" : "false")
        << ",\"bug_id\":" << flight.bug_id
        << ",\"last_checkpoint_cases\":" << flight.last_checkpoint_cases
        << ",\"entries\":[";
    for (size_t i = 0; i < flight.entries.size(); ++i) {
      const trace::FlightEntry& entry = flight.entries[i];
      if (i != 0) {
        out << ',';
      }
      out << "{\"index\":" << entry.statement_index << ",\"pattern\":\""
          << EscapeJson(entry.pattern) << "\",\"stage\":\""
          << EscapeJson(entry.stage_reached) << "\",\"outcome\":\""
          << EscapeJson(entry.outcome) << "\",\"sql\":\"" << EscapeJson(entry.sql)
          << "\"}";
    }
    out << "]}\n";
  }
  out << "{\"event\":\"campaign_finish\",\"statements\":" << result.statements_executed
      << ",\"sql_errors\":" << result.sql_errors
      << ",\"crashes_observed\":" << result.crashes_observed
      << ",\"false_positives\":" << result.false_positives
      << ",\"watchdog_timeouts\":" << result.watchdog_timeouts
      << ",\"unique_bugs\":" << result.unique_bugs.size()
      << ",\"logic_checks\":" << result.logic_checks
      << ",\"logic_divergences\":" << result.logic_divergences
      << ",\"logic_false_positives\":" << result.logic_false_positives
      << ",\"logic_bugs\":" << result.logic_bugs.size()
      << ",\"functions_triggered\":" << result.functions_triggered
      << ",\"branches_covered\":" << result.branches_covered
      << ",\"journal_degraded\":" << (result.journal_degraded ? 1 : 0)
      << ",\"wall_ms\":" << FormatMs(wall_ns) << "}\n";
}

void WriteCampaignJournal(std::ostream& out, const CampaignOptions& options,
                          const CampaignResult& result, uint64_t wall_ns) {
  WriteCampaignStart(out, options, result.tool, result.dialect, result.shards);
  WriteCampaignTail(out, result, wall_ns);
}

std::set<int> JournalReplay::BugIds() const {
  std::set<int> ids;
  for (const JournalWitness& witness : witnesses) {
    ids.insert(witness.bug_id);
  }
  return ids;
}

std::set<int> JournalReplay::LogicBugIds() const {
  std::set<int> ids;
  for (const JournalLogicBug& bug : logic_bugs) {
    ids.insert(bug.bug_id);
  }
  return ids;
}

Result<JournalReplay> ReplayJournal(std::istream& in) {
  JournalReplay replay;
  bool started = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Torn-tail rule: every writer emits the terminating '\n' as the last
    // byte of a record, so a final line that hits EOF without one is a
    // record the producer died inside (the kill -9 case). It is dropped —
    // the journal replays up to the last intact record — and flagged so
    // --resume knows the file was truncated. A '\n'-terminated line that
    // fails to parse is still a hard error: that is corruption, not tearing.
    if (in.eof()) {
      if (!line.empty()) {
        replay.torn_tail = true;
      }
      break;
    }
    if (line.empty()) {
      continue;
    }
    std::string event;
    if (!ExtractString(line, "event", event)) {
      return InvalidArgument("journal line " + std::to_string(line_no) +
                             ": missing \"event\" field");
    }
    if (event == "campaign_start") {
      int64_t budget = 0, shards = 0;
      if (!ExtractString(line, "tool", replay.tool) ||
          !ExtractString(line, "dialect", replay.dialect) ||
          !ExtractUint(line, "seed", replay.seed) ||
          !ExtractInt(line, "budget", budget) || !ExtractInt(line, "shards", shards)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed campaign_start");
      }
      replay.budget = static_cast<int>(budget);
      replay.shards = static_cast<int>(shards);
      started = true;
    } else if (event == "shard_merge") {
      int64_t statements = 0;
      if (!ExtractInt(line, "statements", statements)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed shard_merge");
      }
      replay.shard_statements.push_back(static_cast<int>(statements));
    } else if (event == "first_witness") {
      JournalWitness witness;
      int64_t bug_id = 0, statement_index = 0, shard = 0;
      if (!ExtractInt(line, "bug_id", bug_id) ||
          !ExtractString(line, "pattern", witness.pattern) ||
          !ExtractInt(line, "statement_index", statement_index) ||
          !ExtractInt(line, "shard", shard) ||
          !ExtractDouble(line, "wall_ms", witness.wall_ms)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed first_witness");
      }
      witness.bug_id = static_cast<int>(bug_id);
      witness.statement_index = static_cast<int>(statement_index);
      witness.shard = static_cast<int>(shard);
      // Absent in journals written before the recorded flag existed: fall
      // back to the old (ambiguous) inference — nonzero wall means recorded.
      if (!ExtractBool(line, "recorded", witness.recorded)) {
        witness.recorded = witness.wall_ms != 0.0;
      }
      replay.witnesses.push_back(std::move(witness));
    } else if (event == "logic_bug") {
      JournalLogicBug bug;
      int64_t bug_id = 0, case_index = 0, statement_index = 0, shard = 0;
      if (!ExtractInt(line, "bug_id", bug_id) ||
          !ExtractString(line, "oracle", bug.oracle) ||
          !ExtractString(line, "function", bug.function) ||
          !ExtractString(line, "effect", bug.effect) ||
          !ExtractString(line, "scope", bug.scope) ||
          !ExtractInt(line, "case_index", case_index) ||
          !ExtractInt(line, "statement_index", statement_index) ||
          !ExtractInt(line, "shard", shard) ||
          !ExtractString(line, "poc", bug.poc) ||
          !ExtractString(line, "witness", bug.witness)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed logic_bug");
      }
      bug.bug_id = static_cast<int>(bug_id);
      bug.case_index = static_cast<int>(case_index);
      bug.statement_index = static_cast<int>(statement_index);
      bug.shard = static_cast<int>(shard);
      replay.logic_bugs.push_back(std::move(bug));
    } else if (event == "crash_flight") {
      trace::CrashFlightRecord flight;
      int64_t shard = 0, worker_run = 0, bug_id = 0, last_cases = 0;
      if (!ExtractInt(line, "shard", shard) ||
          !ExtractInt(line, "worker_run", worker_run) ||
          !ExtractBool(line, "announced", flight.announced) ||
          !ExtractInt(line, "bug_id", bug_id) ||
          !ExtractInt(line, "last_checkpoint_cases", last_cases) ||
          !ParseFlightEntries(line, flight.entries)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed crash_flight");
      }
      flight.shard = static_cast<int>(shard);
      flight.worker_run = static_cast<int>(worker_run);
      flight.bug_id = static_cast<int>(bug_id);
      flight.last_checkpoint_cases = static_cast<int>(last_cases);
      replay.crash_flights.push_back(std::move(flight));
    } else if (event == "checkpoint") {
      CampaignCheckpoint cp;
      int64_t every = 0, shard = 0, cases = 0, sql_errors = 0, crashes = 0, fps = 0,
              timeouts = 0, bugs = 0;
      if (!ExtractInt(line, "every", every) || !ExtractInt(line, "shard", shard) ||
          !ExtractInt(line, "cases_completed", cases) ||
          !ExtractInt(line, "sql_errors", sql_errors) ||
          !ExtractInt(line, "crashes_observed", crashes) ||
          !ExtractInt(line, "false_positives", fps) ||
          !ExtractInt(line, "watchdog_timeouts", timeouts) ||
          !ExtractInt(line, "unique_bugs", bugs) ||
          !ExtractUint(line, "rng_fingerprint", cp.rng_fingerprint) ||
          !ExtractUint(line, "dedup_digest", cp.dedup_digest)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed checkpoint");
      }
      cp.every = static_cast<int>(every);
      cp.shard = static_cast<int>(shard);
      cp.cases_completed = static_cast<int>(cases);
      cp.sql_errors = static_cast<int>(sql_errors);
      cp.crashes_observed = static_cast<int>(crashes);
      cp.false_positives = static_cast<int>(fps);
      cp.watchdog_timeouts = static_cast<int>(timeouts);
      cp.unique_bugs = static_cast<int>(bugs);
      replay.checkpoints.push_back(cp);
    } else if (event == "lease") {
      JournalLeaseEvent lease;
      int64_t unit = 0, worker = 0, cases = 0;
      if (!ExtractString(line, "action", lease.action) ||
          !ExtractInt(line, "unit", unit) || !ExtractInt(line, "worker", worker) ||
          !ExtractInt(line, "cases", cases) ||
          !ExtractUint(line, "unit_digest", lease.unit_digest)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed lease");
      }
      lease.unit = static_cast<int>(unit);
      lease.worker = static_cast<int>(worker);
      lease.cases = static_cast<int>(cases);
      replay.lease_events.push_back(std::move(lease));
    } else if (event == "worker_death") {
      JournalWorkerDeath death;
      int64_t worker = 0, units_completed = 0;
      if (!ExtractInt(line, "worker", worker) || !ExtractInt(line, "pid", death.pid) ||
          !ExtractInt(line, "units_completed", units_completed) ||
          !ExtractString(line, "reason", death.reason)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed worker_death");
      }
      death.worker = static_cast<int>(worker);
      death.units_completed = static_cast<int>(units_completed);
      replay.worker_deaths.push_back(std::move(death));
    } else if (event == "fleet_finish") {
      JournalFleetFinish& fin = replay.fleet;
      int64_t v[11] = {};
      bool degraded = false;
      if (!ExtractInt(line, "units", v[0]) ||
          !ExtractInt(line, "workers_spawned", v[1]) ||
          !ExtractInt(line, "worker_deaths", v[2]) ||
          !ExtractInt(line, "leases_granted", v[3]) ||
          !ExtractInt(line, "leases_reclaimed", v[4]) ||
          !ExtractInt(line, "leases_stolen", v[5]) ||
          !ExtractInt(line, "heartbeats", v[6]) ||
          !ExtractInt(line, "units_completed", v[7]) ||
          !ExtractInt(line, "units_run_locally", v[8]) ||
          !ExtractInt(line, "units_resumed", v[9]) ||
          !ExtractInt(line, "units_spool_diverged", v[10]) ||
          !ExtractBool(line, "degraded_to_local", degraded)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed fleet_finish");
      }
      fin.units = static_cast<int>(v[0]);
      fin.workers_spawned = static_cast<int>(v[1]);
      fin.worker_deaths = static_cast<int>(v[2]);
      fin.leases_granted = static_cast<int>(v[3]);
      fin.leases_reclaimed = static_cast<int>(v[4]);
      fin.leases_stolen = static_cast<int>(v[5]);
      fin.heartbeats = static_cast<int>(v[6]);
      fin.units_completed = static_cast<int>(v[7]);
      fin.units_run_locally = static_cast<int>(v[8]);
      fin.units_resumed = static_cast<int>(v[9]);
      fin.units_spool_diverged = static_cast<int>(v[10]);
      fin.degraded_to_local = degraded;
      replay.fleet_finished = true;
    } else if (event == "campaign_resume") {
      int64_t from_cases = 0;
      if (!ExtractInt(line, "from_cases", from_cases)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed campaign_resume");
      }
      ++replay.resume_markers;
    } else if (event == "chaos") {
      std::string spec;
      if (!ExtractString(line, "spec", spec)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed chaos marker");
      }
      replay.chaos_specs.push_back(std::move(spec));
    } else if (event == "campaign_finish") {
      int64_t statements = 0;
      if (!ExtractInt(line, "statements", statements) ||
          !ExtractUint(line, "functions_triggered", replay.functions_triggered) ||
          !ExtractUint(line, "branches_covered", replay.branches_covered) ||
          !ExtractDouble(line, "wall_ms", replay.wall_ms)) {
        return InvalidArgument("journal line " + std::to_string(line_no) +
                               ": malformed campaign_finish");
      }
      // Optional in journals written before the statement watchdog existed.
      int64_t timeouts = 0;
      if (ExtractInt(line, "watchdog_timeouts", timeouts)) {
        replay.watchdog_timeouts = static_cast<int>(timeouts);
      }
      // Optional in journals written before sink degradation was recorded.
      int64_t degraded = 0;
      if (ExtractInt(line, "journal_degraded", degraded)) {
        replay.journal_degraded = degraded != 0;
      }
      // Optional in journals written before the wrong-result oracles existed.
      int64_t logic = 0;
      if (ExtractInt(line, "logic_checks", logic)) {
        replay.logic_checks = static_cast<int>(logic);
      }
      if (ExtractInt(line, "logic_divergences", logic)) {
        replay.logic_divergences = static_cast<int>(logic);
      }
      if (ExtractInt(line, "logic_false_positives", logic)) {
        replay.logic_false_positives = static_cast<int>(logic);
      }
      replay.statements_executed = static_cast<int>(statements);
      replay.finished = true;
    } else {
      return InvalidArgument("journal line " + std::to_string(line_no) +
                             ": unknown event '" + event + "'");
    }
  }
  if (!started) {
    return InvalidArgument("journal has no campaign_start event");
  }
  return replay;
}

Status WriteCampaignJournalFile(const std::string& path, const CampaignOptions& options,
                                const CampaignResult& result, uint64_t wall_ns) {
  // Serialize in memory, then write tmp+fsync+rename: the journal path
  // either keeps its previous contents or gets the complete new stream —
  // never a silent prefix (the pre-existing bug: write errors after a
  // successful open were never checked).
  std::ostringstream out;
  WriteCampaignJournal(out, options, result, wall_ns);
  if (!out) {
    return IoError("serializing journal for '" + path + "' failed");
  }
  return io::WriteFileAtomic(path, out.str());
}

Result<JournalReplay> ReplayJournalFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return InvalidArgument("cannot open journal file '" + path + "'");
  }
  return ReplayJournal(in);
}

// --- Chrome trace-event export ---------------------------------------------

namespace {

// Microseconds with nanosecond precision: Chrome's ts/dur unit is µs, and
// three decimals keep the exported numbers exact (ns / 1000, remainder as
// the fraction), so parent/child nesting survives the unit conversion.
std::string FormatTraceUs(uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string FormatSpanId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(id));
  return buf;
}

// Timeline process for a span: campaign root on pid 0, shard i on pid i+1 —
// each (pid, tid 0) lane then holds a properly nested interval tree, which
// is what tools/check_trace_json.py asserts.
int TracePid(const trace::TraceSpan& span) {
  return span.kind == trace::SpanKind::kCampaign ? 0 : span.shard + 1;
}

void AppendProcessName(std::string& out, int pid, const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"ts\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         EscapeJson(name) + "\"}}";
}

}  // namespace

Status WriteChromeTraceFile(const std::string& path, const CampaignResult& result) {
  std::string out = "{\"traceEvents\":[";
  AppendProcessName(out, 0,
                    "campaign " + result.tool + "/" + result.dialect);
  const int shards = std::max(result.shards, 1);
  for (int shard = 0; shard < shards; ++shard) {
    out += ',';
    AppendProcessName(out, shard + 1, "shard " + std::to_string(shard));
  }
  for (const trace::TraceSpan& span : result.trace.spans) {
    out += ",{\"ph\":\"X\",\"pid\":" + std::to_string(TracePid(span)) +
           ",\"tid\":0,\"ts\":" + FormatTraceUs(span.start_ns) +
           ",\"dur\":" + FormatTraceUs(span.dur_ns) + ",\"name\":\"" +
           std::string(trace::SpanKindName(span.kind)) + "\",\"cat\":\"" +
           std::string(trace::SpanKindName(span.kind)) +
           "\",\"args\":{\"span_id\":\"" + FormatSpanId(span.id) + "\"";
    if (span.parent_id != 0) {
      out += ",\"parent_id\":\"" + FormatSpanId(span.parent_id) + "\"";
    }
    for (const auto& [key, value] : span.args) {
      out += ",\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return io::WriteFileAtomic(path, out);
}

}  // namespace telemetry
}  // namespace soft
