// Campaign observability: stage-latency histograms and per-pattern counters.
//
// The paper's Finding 1 attributes function bugs to processing stages and
// Section 7 compares fuzzers by per-pattern yield over a statement budget;
// this layer makes both trajectories inspectable without perturbing the
// campaigns themselves. Three parts:
//
//   * Data model (always compiled, methods inline): LatencyHistogram with
//     fixed power-of-two microsecond buckets, PatternCounters, and
//     CampaignTelemetry — the per-campaign snapshot that rides along in
//     CampaignResult and merges deterministically across shards.
//   * Recording hooks (compiled only under SOFT_TELEMETRY_ENABLED, i.e. the
//     default -DSOFT_TELEMETRY=ON build): a thread-local collector installed
//     by each fuzzer's Run for the duration of a campaign. The engine's
//     stage pipeline and the campaign loops call the Record*/Count* hooks;
//     with no collector installed — or with SetRuntimeEnabled(false) — every
//     hook is a pointer check. With -DSOFT_TELEMETRY=OFF the hooks are
//     inline no-ops and the engine/fuzzer objects reference no collector
//     symbol at all (the link proves it: src/telemetry/telemetry.cc is not
//     compiled in that configuration).
//   * The NDJSON journal (src/telemetry/journal.h) serializing a campaign's
//     event stream for offline bug-vs-budget replotting.
//
// Determinism contract: telemetry is strictly observational. Campaign
// results (bug sets, coverage, statement totals) are bit-identical with the
// layer on or off, and a merged CampaignTelemetry is the shard-index-ordered
// sum of its shard snapshots — pure data, never thread scheduling
// (tests/telemetry_test.cc).
#ifndef SRC_TELEMETRY_TELEMETRY_H_
#define SRC_TELEMETRY_TELEMETRY_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/fault/fault.h"
#include "src/telemetry/trace.h"

namespace soft {
namespace telemetry {

// Monotonic wall clock in nanoseconds (always a real clock, in every build
// configuration — benches use it directly). Defined in journal.cc.
uint64_t MonotonicNowNs();

// ---------------------------------------------------------------------------
// Data model (always available; all methods inline so that objects built
// with -DSOFT_TELEMETRY=OFF carry no references into this library).
// ---------------------------------------------------------------------------

// Fixed-bucket latency histogram. Bucket bounds are powers of two in
// microseconds:
//   bucket 0       [0, 1 µs)
//   bucket i(1-14) [2^(i-1) µs, 2^i µs)
//   bucket 15      [16384 µs, ∞)
// The fixed layout makes shard merging a per-bucket sum and keeps the
// record path branch-light (one bit-scan, no allocation).
struct LatencyHistogram {
  static constexpr size_t kBucketCount = 16;

  std::array<uint64_t, kBucketCount> buckets{};
  uint64_t samples = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;

  static size_t BucketFor(uint64_t ns) {
    const uint64_t us = ns / 1000;
    if (us == 0) {
      return 0;
    }
    size_t width = 0;
    for (uint64_t v = us; v != 0; v >>= 1) {
      ++width;
    }
    return std::min(width, kBucketCount - 1);
  }

  // Inclusive lower bound of a bucket in microseconds (bucket 0 starts at 0).
  static uint64_t BucketLowerBoundUs(size_t bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  }

  void Record(uint64_t ns) {
    ++buckets[BucketFor(ns)];
    ++samples;
    total_ns += ns;
    max_ns = std::max(max_ns, ns);
  }

  void MergeFrom(const LatencyHistogram& other) {
    for (size_t i = 0; i < kBucketCount; ++i) {
      buckets[i] += other.buckets[i];
    }
    samples += other.samples;
    total_ns += other.total_ns;
    max_ns = std::max(max_ns, other.max_ns);
  }

  double MeanUs() const {
    return samples == 0 ? 0.0 : static_cast<double>(total_ns) / 1000.0 /
                                    static_cast<double>(samples);
  }

  bool operator==(const LatencyHistogram&) const = default;
};

// Per-pattern (P1.1–P3.3 for SOFT, tool name for the baselines, "seed" for
// the corpus-replay prefix) campaign counters. All counts are statement
// events except `generated`, which counts cases placed into the generation
// pool (in partition-sharded runs every shard generates the full pool, so
// the merged `generated` is K× the serial pool — real redundant work, worth
// seeing).
struct PatternCounters {
  uint64_t generated = 0;
  uint64_t executed = 0;
  uint64_t crashes = 0;          // crash events incl. duplicates
  uint64_t bugs_deduped = 0;     // first witnesses (unique bugs)
  uint64_t sql_errors = 0;
  uint64_t false_positives = 0;  // resource-limit kills
  uint64_t timeouts = 0;         // statement-watchdog deadline kills (kTimeout)
  uint64_t logic_checks = 0;     // in-scope logic-oracle examinations
  uint64_t logic_bugs = 0;       // attributed wrong-result divergences

  void MergeFrom(const PatternCounters& other) {
    generated += other.generated;
    executed += other.executed;
    crashes += other.crashes;
    bugs_deduped += other.bugs_deduped;
    sql_errors += other.sql_errors;
    false_positives += other.false_positives;
    timeouts += other.timeouts;
    logic_checks += other.logic_checks;
    logic_bugs += other.logic_bugs;
  }

  bool operator==(const PatternCounters&) const = default;
};

inline constexpr size_t kStageCount = 3;  // parse, optimize, execute

// Stage key strings in Stage enum order — also the JSON field names.
inline constexpr std::array<std::string_view, kStageCount> kStageKeys = {
    "parse", "optimize", "execute"};

// One campaign's telemetry snapshot. Lives inside CampaignResult; a sharded
// run carries the merged snapshot plus the per-shard snapshots it was summed
// from (shard index order).
struct CampaignTelemetry {
  // Indexed by static_cast<size_t>(Stage). Each stage histogram counts only
  // statements that *entered* that stage (a parse error contributes one
  // parse sample and nothing downstream), so stage sample counts decrease
  // monotonically along the pipeline.
  std::array<LatencyHistogram, kStageCount> stage_latency;

  // Deterministically ordered (std::map) so merge and JSON output are
  // reproducible.
  std::map<std::string, PatternCounters> patterns;

  bool empty() const {
    if (!patterns.empty()) {
      return false;
    }
    for (const LatencyHistogram& h : stage_latency) {
      if (h.samples != 0) {
        return false;
      }
    }
    return true;
  }

  void MergeFrom(const CampaignTelemetry& other) {
    for (size_t i = 0; i < kStageCount; ++i) {
      stage_latency[i].MergeFrom(other.stage_latency[i]);
    }
    for (const auto& [pattern, counters] : other.patterns) {
      patterns[pattern].MergeFrom(counters);
    }
  }

  const LatencyHistogram& ForStage(Stage stage) const {
    return stage_latency[static_cast<size_t>(stage)];
  }

  // Compact JSON object (schema documented in docs/OBSERVABILITY.md).
  std::string ToJson() const;

  bool operator==(const CampaignTelemetry&) const = default;
};

// ---------------------------------------------------------------------------
// Recording hooks. Real under SOFT_TELEMETRY_ENABLED, inline no-ops
// otherwise. Every hook routes to the calling thread's installed collector;
// without one (or with the runtime switch off) it does nothing.
// ---------------------------------------------------------------------------

#ifdef SOFT_TELEMETRY_ENABLED

// Process-wide runtime kill switch (atomic; default on). Turning it off
// makes ScopedCollector install nothing, so campaigns record nothing —
// used to prove results are identical with recording on vs. off.
bool RuntimeEnabled();
void SetRuntimeEnabled(bool enabled);

// True when the calling thread has an active collector.
bool CollectorInstalled();

// Installs `sink` as the calling thread's collector for the scope lifetime
// (restores the previous collector on destruction, so scopes nest; the
// innermost wins). Also timestamps the campaign start for
// WallSinceCollectorStartNs(). A null sink, or RuntimeEnabled() == false,
// installs nothing.
class ScopedCollector {
 public:
  explicit ScopedCollector(CampaignTelemetry* sink);
  ~ScopedCollector();
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  CampaignTelemetry* previous_sink_;
  uint64_t previous_start_ns_;
  bool installed_;
};

// Nanoseconds since the innermost collector was installed; 0 without one.
// Used to stamp FoundBug::found_wall_ns (observational only — never part of
// the determinism contract).
uint64_t WallSinceCollectorStartNs();

// Stage-latency and per-pattern recording. `n`-ary CountGenerated exists so
// generation can aggregate locally and record once per pattern.
void RecordStageLatency(Stage stage, uint64_t ns);
void CountGenerated(const std::string& pattern, uint64_t n);
void CountExecuted(const std::string& pattern);
void CountCrash(const std::string& pattern);
void CountBugDeduped(const std::string& pattern);
void CountSqlError(const std::string& pattern);
void CountFalsePositive(const std::string& pattern);
void CountTimeout(const std::string& pattern);
void CountLogicCheck(const std::string& pattern);
void CountLogicBug(const std::string& pattern);

// Process-global named histograms for one-off timings that outlive any
// campaign (e.g. the study-corpus build, bench harness phases). Guarded by
// a mutex; fine for coarse events, not for per-statement paths.
void RecordNamedLatency(std::string_view name, uint64_t ns);
std::map<std::string, LatencyHistogram> NamedLatencySnapshot();

#else  // !SOFT_TELEMETRY_ENABLED — the whole hook surface folds to nothing.

inline bool RuntimeEnabled() { return false; }
inline void SetRuntimeEnabled(bool) {}
inline bool CollectorInstalled() { return false; }

class ScopedCollector {
 public:
  explicit ScopedCollector(CampaignTelemetry*) {}
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
};

inline uint64_t WallSinceCollectorStartNs() { return 0; }
inline void RecordStageLatency(Stage, uint64_t) {}
inline void CountGenerated(const std::string&, uint64_t) {}
inline void CountExecuted(const std::string&) {}
inline void CountCrash(const std::string&) {}
inline void CountBugDeduped(const std::string&) {}
inline void CountSqlError(const std::string&) {}
inline void CountFalsePositive(const std::string&) {}
inline void CountTimeout(const std::string&) {}
inline void CountLogicCheck(const std::string&) {}
inline void CountLogicBug(const std::string&) {}
inline void RecordNamedLatency(std::string_view, uint64_t) {}
inline std::map<std::string, LatencyHistogram> NamedLatencySnapshot() { return {}; }

#endif  // SOFT_TELEMETRY_ENABLED

// RAII stage timer used by the engine pipeline. The clock is read only when
// a collector is installed or a sampled statement span is open, so the
// disabled/idle cost is a couple of thread-local pointer checks per stage.
// Also the flight recorder's stage marker: entering a stage advances the
// in-flight statement's deepest-stage-reached note (src/telemetry/trace.h).
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Stage stage)
      : stage_(stage),
        start_ns_(CollectorInstalled() || trace::StatementOpen() ? MonotonicNowNs()
                                                                 : 0) {
    trace::FlightNoteStage(stage);
  }
  ~ScopedStageTimer() {
    if (start_ns_ != 0) {
      const uint64_t dur_ns = MonotonicNowNs() - start_ns_;
      RecordStageLatency(stage_, dur_ns);
      trace::RecordStageSpan(stage_, start_ns_, dur_ns);
    }
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Stage stage_;
  uint64_t start_ns_;
};

// Wall-clock stopwatch over MonotonicNowNs — the one timing code path for
// benches and corpus builds (replaces ad-hoc std::chrono snippets). Works in
// every build configuration.
struct WallTimer {
  uint64_t start_ns = MonotonicNowNs();
  uint64_t ElapsedNs() const { return MonotonicNowNs() - start_ns; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }
};

}  // namespace telemetry
}  // namespace soft

#endif  // SRC_TELEMETRY_TELEMETRY_H_
