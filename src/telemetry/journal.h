// NDJSON campaign journal: one JSON object per line, serializing a
// campaign's event stream so bug-discovery-vs-budget curves can be replotted
// offline (docs/OBSERVABILITY.md documents the schema with worked examples).
//
// The journal is derived from the finished CampaignResult, not streamed from
// inside the campaign loop — that keeps the event order a pure function of
// the (deterministic) result and never of thread scheduling, preserving the
// parallel runner's bit-identical-merge guarantee. Event types:
//
//   campaign_start   tool, dialect, seed, budget, shards
//   checkpoint       streamed periodic progress record (docs/ROBUSTNESS.md):
//                    cases completed, counters, RNG fingerprint, dedup
//                    digest — what --resume replays from
//   campaign_resume  marker a resumed run writes before continuing: the
//                    cases_completed it resumed from
//   shard_merge      one per shard of a sharded run: shard, statements
//   first_witness    one per unique bug, discovery order: bug_id, pattern,
//                    statement index, shard, wall_ms, recorded (false when
//                    telemetry was not collecting — a wall_ms of 0 with
//                    recorded=true is a genuine sub-millisecond hit)
//   logic_bug        one per seeded wrong-result bug an oracle caught, in
//                    case order: bug_id, oracle ("eet"/"diff"/"norec"/"tlp"),
//                    function, effect, scope, case_index (shard-invariant),
//                    statement_index + shard (shard-local attribution), poc,
//                    witness (the diverging rewrite / sibling dialect)
//   crash_flight     one per worker death in a real-crash campaign: shard,
//                    worker_run, announced, bug_id, last_checkpoint_cases,
//                    and the flushed flight-ring entries (the last entry of
//                    an announced crash is the crashing statement itself)
//   lease            fleet coordinator lease transition (streamed live):
//                    action (grant|complete|reclaim|steal|local|resume),
//                    unit, worker, cases, unit_digest — the record --resume
//                    trusts when re-admitting a spooled unit result
//   worker_death     fleet worker connection lost or process reaped dead:
//                    worker, pid, units_completed, reason
//   fleet_finish     fleet campaign totals: units, workers_spawned,
//                    worker_deaths, leases granted/reclaimed/stolen,
//                    heartbeats, units completed/local/resumed/diverged,
//                    degraded_to_local
//   campaign_finish  totals, coverage, wall_ms
//
// ReplayJournal parses the stream back; a replayed journal reconstructs the
// exact bug set and per-bug first witnesses (tests/telemetry_test.cc).
//
// This header is always available: journal writing/replay has no runtime
// cost inside campaigns, so it is not gated by SOFT_TELEMETRY.
#ifndef SRC_TELEMETRY_JOURNAL_H_
#define SRC_TELEMETRY_JOURNAL_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "src/soft/campaign.h"

namespace soft {
namespace telemetry {

// Appends the campaign's NDJSON event stream to `out`. `wall_ns` is the
// campaign's measured wall time (0 when unknown). Equivalent to
// WriteCampaignStart + WriteCampaignTail (the post-hoc, checkpoint-free form).
void WriteCampaignJournal(std::ostream& out, const CampaignOptions& options,
                          const CampaignResult& result, uint64_t wall_ns);

// Streaming writers for live (checkpointing/resumable) campaigns. The header
// takes tool/dialect/shards explicitly because the CampaignResult does not
// exist yet when a streamed journal opens.
void WriteCampaignStart(std::ostream& out, const CampaignOptions& options,
                        const std::string& tool, const std::string& dialect, int shards);
void WriteCheckpointRecord(std::ostream& out, const CampaignCheckpoint& checkpoint);
void WriteResumeMarker(std::ostream& out, int from_cases);
// Marker a chaos campaign writes after arming its failpoint spec, so the
// journal records that its stream was produced under fault injection.
void WriteChaosMarker(std::ostream& out, const std::string& spec);
// The derived tail: shard_merge, first_witness, campaign_finish.
void WriteCampaignTail(std::ostream& out, const CampaignResult& result, uint64_t wall_ns);

// One fleet lease transition (written live by the coordinator, replayed on
// --resume). The structs below are plain data mirrors of the fleet
// subsystem's state — journal.h cannot depend on src/fleet/ (fleet links
// telemetry, not the reverse).
struct JournalLeaseEvent {
  std::string action;  // grant | complete | reclaim | steal | local | resume
  int unit = 0;
  int worker = -1;     // -1 for coordinator-local actions (local/resume)
  int cases = 0;       // last heartbeat progress at the transition
  // DigestCampaignResult of the spooled unit result (complete/resume
  // actions); 0 otherwise. Resume re-admits a spooled unit only when its
  // recomputed digest matches this journaled value.
  uint64_t unit_digest = 0;
};

// One fleet worker_death event: the coordinator lost the worker's connection
// or reaped its process dead.
struct JournalWorkerDeath {
  int worker = 0;
  int64_t pid = 0;
  int units_completed = 0;
  std::string reason;  // e.g. "eof", "signal 9", "lease expired"
};

// The fleet_finish event's counter snapshot.
struct JournalFleetFinish {
  int units = 0;
  int workers_spawned = 0;
  int worker_deaths = 0;
  int leases_granted = 0;
  int leases_reclaimed = 0;
  int leases_stolen = 0;
  int heartbeats = 0;
  int units_completed = 0;
  int units_run_locally = 0;
  int units_resumed = 0;
  int units_spool_diverged = 0;
  bool degraded_to_local = false;
};

// Streaming writers for the fleet coordinator's journal.
void WriteLeaseEvent(std::ostream& out, const JournalLeaseEvent& event);
void WriteWorkerDeathEvent(std::ostream& out, const JournalWorkerDeath& event);
void WriteFleetFinishEvent(std::ostream& out, const JournalFleetFinish& event);

// One first_witness event read back from a journal.
struct JournalWitness {
  int bug_id = 0;
  std::string pattern;
  int statement_index = 0;
  int shard = 0;
  double wall_ms = 0.0;
  // False when the producer's telemetry was not collecting (wall_ms is then
  // meaningless, not "instant"). Journals written before this field existed
  // replay with the old inference: recorded = (wall_ms != 0).
  bool recorded = false;
};

// One logic_bug event read back from a journal.
struct JournalLogicBug {
  int bug_id = 0;
  std::string oracle;     // which oracle flagged it first
  std::string function;
  std::string effect;     // LogicEffectName string, e.g. "off_by_one"
  std::string scope;      // LogicScopeName string, e.g. "const_args"
  int case_index = 0;     // global case index — identical serial vs. sharded
  int statement_index = 0;
  int shard = 0;
  std::string poc;        // the flagged statement
  std::string witness;    // diverging EET variant SQL / sibling dialect name
};

// A parsed journal: campaign metadata plus the witness stream.
struct JournalReplay {
  std::string tool;
  std::string dialect;
  uint64_t seed = 0;
  int budget = 0;
  int shards = 0;
  std::vector<int> shard_statements;       // from shard_merge events
  std::vector<JournalWitness> witnesses;   // journal order == discovery order
  std::vector<CampaignCheckpoint> checkpoints;  // journal order
  int resume_markers = 0;                  // campaign_resume events seen
  std::vector<std::string> chaos_specs;    // chaos markers (fault-injected runs)
  std::vector<trace::CrashFlightRecord> crash_flights;  // journal order
  std::vector<JournalLogicBug> logic_bugs;  // case order (== journal order)
  std::vector<JournalLeaseEvent> lease_events;   // fleet journals, stream order
  std::vector<JournalWorkerDeath> worker_deaths; // fleet journals, stream order
  bool fleet_finished = false;              // fleet_finish event present
  JournalFleetFinish fleet;                 // valid when fleet_finished
  int statements_executed = 0;
  // Wrong-result oracle totals from campaign_finish (absent — and zero — in
  // journals written before the logic oracles existed).
  int logic_checks = 0;
  int logic_divergences = 0;
  int logic_false_positives = 0;
  int watchdog_timeouts = 0;               // absent in pre-watchdog journals
  uint64_t functions_triggered = 0;
  uint64_t branches_covered = 0;
  double wall_ms = 0.0;
  bool finished = false;                   // campaign_finish event present
  // The final line hit EOF without its terminating '\n': the producer died
  // mid-record (kill -9). The torn record is dropped; everything before it
  // replayed normally, so --resume continues from the last intact
  // checkpoint.
  bool torn_tail = false;
  // campaign_finish reported that the producer lost its checkpoint sink
  // mid-run (CampaignResult::journal_degraded).
  bool journal_degraded = false;

  std::set<int> BugIds() const;
  std::set<int> LogicBugIds() const;
};

// Parses an NDJSON journal stream. Fails on unknown event types, missing
// required fields, or a stream without a campaign_start line. Every record
// is '\n'-terminated by construction, so a final line without one is a torn
// tail: it is dropped and flagged (torn_tail), not an error — the kill -9
// recovery path depends on replaying the intact prefix.
Result<JournalReplay> ReplayJournal(std::istream& in);

// Convenience: file-path variants used by the CLI flags.
Status WriteCampaignJournalFile(const std::string& path,
                                const CampaignOptions& options,
                                const CampaignResult& result, uint64_t wall_ns);
Result<JournalReplay> ReplayJournalFile(const std::string& path);

// Exports the campaign's span trace (CampaignResult::trace) as Chrome
// trace-event JSON — loadable in Perfetto / chrome://tracing — written
// crash-atomically (io::WriteFileAtomic). Timeline layout: the campaign
// root span lives on pid 0, shard i's spans on pid i+1, all on tid 0;
// ts/dur are microseconds with nanosecond precision (three decimals).
// Always available: with tracing off (or compiled out) the file still
// contains the campaign/shard/worker-run structural spans the runner built,
// or only process metadata when the trace is empty. Schema details and a
// loading recipe: docs/OBSERVABILITY.md. Validated by
// tools/check_trace_json.py.
Status WriteChromeTraceFile(const std::string& path, const CampaignResult& result);

}  // namespace telemetry
}  // namespace soft

#endif  // SRC_TELEMETRY_JOURNAL_H_
