// NDJSON campaign journal: one JSON object per line, serializing a
// campaign's event stream so bug-discovery-vs-budget curves can be replotted
// offline (docs/OBSERVABILITY.md documents the schema with worked examples).
//
// The journal is derived from the finished CampaignResult, not streamed from
// inside the campaign loop — that keeps the event order a pure function of
// the (deterministic) result and never of thread scheduling, preserving the
// parallel runner's bit-identical-merge guarantee. Event types:
//
//   campaign_start   tool, dialect, seed, budget, shards
//   shard_merge      one per shard of a sharded run: shard, statements
//   first_witness    one per unique bug, discovery order: bug_id, pattern,
//                    statement index, shard, wall_ms (0 when telemetry was
//                    not recording)
//   campaign_finish  totals, coverage, wall_ms
//
// ReplayJournal parses the stream back; a replayed journal reconstructs the
// exact bug set and per-bug first witnesses (tests/telemetry_test.cc).
//
// This header is always available: journal writing/replay has no runtime
// cost inside campaigns, so it is not gated by SOFT_TELEMETRY.
#ifndef SRC_TELEMETRY_JOURNAL_H_
#define SRC_TELEMETRY_JOURNAL_H_

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "src/soft/campaign.h"

namespace soft {
namespace telemetry {

// Appends the campaign's NDJSON event stream to `out`. `wall_ns` is the
// campaign's measured wall time (0 when unknown).
void WriteCampaignJournal(std::ostream& out, const CampaignOptions& options,
                          const CampaignResult& result, uint64_t wall_ns);

// One first_witness event read back from a journal.
struct JournalWitness {
  int bug_id = 0;
  std::string pattern;
  int statement_index = 0;
  int shard = 0;
  double wall_ms = 0.0;
};

// A parsed journal: campaign metadata plus the witness stream.
struct JournalReplay {
  std::string tool;
  std::string dialect;
  uint64_t seed = 0;
  int budget = 0;
  int shards = 0;
  std::vector<int> shard_statements;       // from shard_merge events
  std::vector<JournalWitness> witnesses;   // journal order == discovery order
  int statements_executed = 0;
  uint64_t functions_triggered = 0;
  uint64_t branches_covered = 0;
  double wall_ms = 0.0;
  bool finished = false;                   // campaign_finish event present

  std::set<int> BugIds() const;
};

// Parses an NDJSON journal stream. Fails on unknown event types, missing
// required fields, or a stream without a campaign_start line.
Result<JournalReplay> ReplayJournal(std::istream& in);

// Convenience: file-path variants used by the CLI flags.
Status WriteCampaignJournalFile(const std::string& path,
                                const CampaignOptions& options,
                                const CampaignResult& result, uint64_t wall_ns);
Result<JournalReplay> ReplayJournalFile(const std::string& path);

}  // namespace telemetry
}  // namespace soft

#endif  // SRC_TELEMETRY_JOURNAL_H_
