// Causal span tracing and the crash flight recorder.
//
// The aggregate telemetry layer (src/telemetry/telemetry.h) answers "how
// much" — histograms and counters — but not "which statement, in which
// worker, caused what". This layer records the causal tree of a campaign:
//
//   campaign → shard → worker-run → statement → parse/optimize/execute
//
// as spans with deterministic IDs, and keeps a fixed-size ring buffer of the
// last executed statements per worker (the flight recorder) so a real-signal
// crash ships its own minimal repro context. Three parts, mirroring the
// telemetry split:
//
//   * Data model (always compiled, methods inline): TraceSpan/TraceData and
//     FlightEntry/CrashFlightRecord. These ride along in CampaignResult; the
//     structural spans (campaign, shard, worker-run) are created by the
//     parallel runner and the worker supervisor in every build configuration
//     whenever tracing is requested, so an exported trace is well-formed even
//     with the per-statement hooks compiled out.
//   * Recording hooks (compiled only under SOFT_TELEMETRY_ENABLED): a
//     thread-local statement tracer installed by the fuzzer execution loops
//     (sampled every trace_sample-th statement) and a thread-local flight
//     ring installed for kReal campaigns. With -DSOFT_TELEMETRY=OFF every
//     hook is an inline no-op and fuzzer/engine objects reference no tracer
//     symbol (the CI nm guard proves it).
//   * Export: Chrome trace-event JSON via telemetry::WriteChromeTraceFile
//     (src/telemetry/journal.h) — loadable in Perfetto / chrome://tracing.
//
// Determinism contract: tracing is strictly observational. Span *identity*
// (id, parent, kind, shard, ordinal, annotations) is derived from campaign
// structure — dialect, shard index, statement ordinal — never from wall
// clock or randomness, so the span tree is bit-identical run to run; only
// start_ns/dur_ns carry wall time. Campaign bug sets, coverage, and outcome
// digests are bit-identical with tracing on or off, serial and K-shard, sim
// and real-crash modes (tests/trace_test.cc).
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/fault/fault.h"

namespace soft {
namespace trace {

// ---------------------------------------------------------------------------
// Data model (always available).
// ---------------------------------------------------------------------------

enum class SpanKind {
  kCampaign = 0,
  kShard,
  kWorkerRun,  // one forked worker lifetime (or the in-process run for sim)
  kStatement,
  kParse,
  kOptimize,
  kExecute,
};

std::string_view SpanKindName(SpanKind kind);
SpanKind StageSpanKind(Stage stage);

// Deterministic span identity: FNV-1a over the canonical tuple
// (dialect, shard, kind, ordinal). Never wall clock, never randomness —
// the same campaign yields the same IDs on every run and on every merge
// order, which is what lets the sharded merge stay bit-identical.
uint64_t SpanId(std::string_view dialect, int shard, SpanKind kind, int ordinal);

struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  SpanKind kind = SpanKind::kStatement;
  int shard = 0;
  // Wall-clock placement relative to the campaign origin (the shard's
  // supervision entry for worker-run/statement/stage spans, rebased to the
  // campaign origin at merge). Observational only — never compared by the
  // determinism tests and never part of the outcome digest.
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  // Deterministically ordered annotations: pattern ID, outcome, bug
  // witnesses, watchdog verdicts, failpoint hits.
  std::vector<std::pair<std::string, std::string>> args;

  bool operator==(const TraceSpan&) const = default;
};

struct TraceData {
  std::vector<TraceSpan> spans;

  bool empty() const { return spans.empty(); }
  void Append(const TraceData& other) {
    spans.insert(spans.end(), other.spans.begin(), other.spans.end());
  }

  bool operator==(const TraceData&) const = default;
};

// ---------------------------------------------------------------------------
// Crash flight recorder data model (always available).
// ---------------------------------------------------------------------------

// Ring capacity: the last K executed statements kept per worker.
inline constexpr size_t kFlightRingCapacity = 16;

struct FlightEntry {
  int statement_index = 0;    // per-shard executed ordinal (1-based)
  std::string pattern;        // generation pattern / tool name
  std::string sql;            // exact statement text
  std::string stage_reached;  // deepest pipeline stage entered
  std::string outcome;        // "ok"|"sql_error"|"crash"|"timeout"|...

  bool operator==(const FlightEntry&) const = default;
};

// One worker death's flight record, assembled supervisor-side. An announced
// crash carries the ring flushed over the pipe just before the signal was
// raised (entries.back() is the crashing statement); an unannounced death
// (SIGKILL, OOM killer) carries no entries — only the last checkpoint the
// supervisor saw, which is where the restart resumed from.
struct CrashFlightRecord {
  int shard = 0;
  int worker_run = 0;  // fork ordinal within the shard (0-based)
  bool announced = false;
  int bug_id = 0;                  // 0 when unannounced
  int last_checkpoint_cases = -1;  // -1 = no checkpoint observed
  std::vector<FlightEntry> entries;

  bool operator==(const CrashFlightRecord&) const = default;
};

// ---------------------------------------------------------------------------
// Recording hooks. Real under SOFT_TELEMETRY_ENABLED, inline no-ops
// otherwise. All state is thread-local, mirroring telemetry::ScopedCollector.
// ---------------------------------------------------------------------------

#ifdef SOFT_TELEMETRY_ENABLED

// Installs `sink` as the calling thread's statement tracer for the scope
// lifetime. Every sample_every-th statement (1 = all) gets a kStatement span
// with kParse/kOptimize/kExecute children. A null sink installs nothing.
// Statement spans are recorded with parent_id = 0; the runner/worker
// supervisor re-parents them under the owning worker-run span (the child
// process cannot know its own fork ordinal).
class ScopedStatementTracer {
 public:
  ScopedStatementTracer(TraceData* sink, std::string dialect, int shard,
                        int sample_every);
  ~ScopedStatementTracer();
  ScopedStatementTracer(const ScopedStatementTracer&) = delete;
  ScopedStatementTracer& operator=(const ScopedStatementTracer&) = delete;
};

// True while a sampled statement span is open on this thread (lets the
// stage timers skip the clock otherwise).
bool StatementOpen();

// Statement span lifecycle, called from the fuzzer execution loops.
// `statement_index` is the per-shard executed ordinal (1-based).
void BeginStatement(int statement_index, std::string_view pattern);
void AnnotateStatement(std::string_view key, std::string value);
void EndStatement(std::string_view outcome);

// Records a completed pipeline-stage child span of the open statement span.
// `start_abs_ns` is a MonotonicNowNs() reading (rebased internally).
void RecordStageSpan(Stage stage, uint64_t start_abs_ns, uint64_t dur_ns);

// Suppresses stage-span recording for the scope lifetime. The logic oracles
// re-execute statements (EET variants, NoREC/TLP rewrites, differential
// siblings) while the flagged statement's span is still open — those runs
// are oracle machinery, not pipeline stages of the traced statement, and
// recording them would duplicate the deterministic per-ordinal span IDs.
// AnnotateStatement/EndStatement work again once the scope closes.
class ScopedOracleExecution {
 public:
  ScopedOracleExecution();
  ~ScopedOracleExecution();
  ScopedOracleExecution(const ScopedOracleExecution&) = delete;
  ScopedOracleExecution& operator=(const ScopedOracleExecution&) = delete;

 private:
  bool was_open_ = false;
};

// Installs the calling thread's flight ring for the scope lifetime (no ring
// is installed when `enabled` is false — sim campaigns don't pay for it).
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(bool enabled);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;
};

bool FlightInstalled();

// Flight ring lifecycle: Begin pushes the statement (evicting the oldest
// beyond kFlightRingCapacity), NoteStage advances its deepest-stage marker
// from inside the stage timers, End stamps the outcome. A statement that
// dies mid-execute keeps "execute" as stage_reached with no End — exactly
// the state the crash announcement flushes.
void FlightBeginStatement(int statement_index, std::string_view pattern,
                          std::string_view sql);
void FlightNoteStage(Stage stage);
void FlightEndStatement(std::string_view outcome);

// Snapshot of the ring, oldest first. Empty without an installed ring.
std::vector<FlightEntry> FlightSnapshot();

#else  // !SOFT_TELEMETRY_ENABLED — the whole hook surface folds to nothing.

class ScopedStatementTracer {
 public:
  ScopedStatementTracer(TraceData*, std::string, int, int) {}
  ScopedStatementTracer(const ScopedStatementTracer&) = delete;
  ScopedStatementTracer& operator=(const ScopedStatementTracer&) = delete;
};

inline bool StatementOpen() { return false; }
inline void BeginStatement(int, std::string_view) {}
inline void AnnotateStatement(std::string_view, std::string) {}
inline void EndStatement(std::string_view) {}
inline void RecordStageSpan(Stage, uint64_t, uint64_t) {}

class ScopedOracleExecution {
 public:
  ScopedOracleExecution() {}
  ScopedOracleExecution(const ScopedOracleExecution&) = delete;
  ScopedOracleExecution& operator=(const ScopedOracleExecution&) = delete;
};

class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(bool) {}
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;
};

inline bool FlightInstalled() { return false; }
inline void FlightBeginStatement(int, std::string_view, std::string_view) {}
inline void FlightNoteStage(Stage) {}
inline void FlightEndStatement(std::string_view) {}
inline std::vector<FlightEntry> FlightSnapshot() { return {}; }

#endif  // SOFT_TELEMETRY_ENABLED

}  // namespace trace
}  // namespace soft

#endif  // SRC_TELEMETRY_TRACE_H_
