// In-memory tables of the simulated DBMS.
#ifndef SRC_ENGINE_TABLE_H_
#define SRC_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "src/sqlast/ast.h"
#include "src/sqlvalue/value.h"

namespace soft {

struct Table {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ValueList> rows;

  int ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

}  // namespace soft

#endif  // SRC_ENGINE_TABLE_H_
