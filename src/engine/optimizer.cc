// Optimize stage: constant folding of literal casts and structural fault
// checks over function expressions.
//
// Finding 1 attributes ~19.6% of the studied crashes to the optimization
// stage; those bugs fire while the optimizer inspects or partially evaluates
// function expressions (constant folding, aggregate rewriting). This pass
// reproduces both behaviours: literal CASTs are folded (through the
// fault-checked cast, so optimize-stage cast bugs can fire), and every
// function-call node is structurally checked against optimize-stage specs.
#include "src/engine/exec_internal.h"
#include "src/failpoint/failpoint.h"

namespace soft {
namespace {

Status OptimizeExpr(ExecContext& ec, Expr& e);

Status OptimizeSelect(ExecContext& ec, SelectStmt& sel) {
  for (SelectItem& item : sel.items) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *item.expr));
  }
  if (sel.from_subquery != nullptr) {
    SOFT_RETURN_IF_ERROR(OptimizeSelect(ec, *sel.from_subquery));
  }
  if (sel.where != nullptr) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *sel.where));
  }
  for (ExprPtr& g : sel.group_by) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *g));
  }
  if (sel.having != nullptr) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *sel.having));
  }
  for (OrderItem& o : sel.order_by) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *o.expr));
  }
  if (sel.union_next != nullptr) {
    SOFT_RETURN_IF_ERROR(OptimizeSelect(ec, *sel.union_next));
  }
  return OkStatus();
}

Status OptimizeExpr(ExecContext& ec, Expr& e) {
  SOFT_FAILPOINT("optimize.expr");
  for (ExprPtr& a : e.args) {
    SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *a));
  }
  if (e.subquery != nullptr) {
    SOFT_RETURN_IF_ERROR(OptimizeSelect(ec, *e.subquery));
  }

  if (e.kind == ExprKind::kFunctionCall) {
    // Structural optimize-stage fault check. Literal arguments are visible
    // to the optimizer (the plan builder sees constants); everything else is
    // opaque at this stage and modeled as NULL placeholders.
    ValueList shallow_args;
    shallow_args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) {
      shallow_args.push_back(a->kind == ExprKind::kLiteral ? a->literal : Value::Null());
    }
    if (auto crash = ec.db->faults().CheckFunction(e.func_name, shallow_args, 1,
                                                   e.distinct_arg, Stage::kOptimize)) {
      return ec.RaiseCrash(std::move(*crash));
    }
    return OkStatus();
  }

  if (e.kind == ExprKind::kCast && e.args[0]->kind == ExprKind::kLiteral) {
    // Constant-fold the cast; on SQL-level error leave the node in place so
    // the error surfaces at execution (matching real engines, which defer).
    const Result<Value> folded = CheckedCast(ec, e.args[0]->literal, e.cast_type);
    if (!folded.ok()) {
      if (folded.status().is_crash()) {
        return folded.status();
      }
      return OkStatus();
    }
    e.kind = ExprKind::kLiteral;
    e.literal = *folded;
    e.args.clear();
    e.cast_type_text.clear();
  }
  return OkStatus();
}

}  // namespace

Status OptimizeStatement(ExecContext& ec, Statement& stmt) {
  SOFT_FAILPOINT("optimize.enter");
  if (SelectStmt* sel = stmt.mutable_select()) {
    return OptimizeSelect(ec, *sel);
  }
  // DDL/DML statements carry expressions only in INSERT VALUES rows.
  if (auto* insert = std::get_if<InsertStmt>(&stmt.node)) {
    for (std::vector<ExprPtr>& row : insert->rows) {
      for (ExprPtr& v : row) {
        SOFT_RETURN_IF_ERROR(OptimizeExpr(ec, *v));
      }
    }
  }
  return OkStatus();
}

}  // namespace soft
