// The simulated DBMS: parse → optimize → execute over an in-memory catalog.
//
// This is the substrate standing in for the paper's seven production DBMSs.
// Its external interface matches what SOFT needs from a DBMS: send SQL text,
// receive a result set, an SQL error, or a (simulated) crash with stage
// attribution. Each of the seven dialects (src/dialects) is a Database
// configured with its own function catalog, cast strictness, and injected
// fault corpus.
#ifndef SRC_ENGINE_DATABASE_H_
#define SRC_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/coverage/coverage.h"
#include "src/engine/table.h"
#include "src/fault/fault.h"
#include "src/sqlast/ast.h"
#include "src/sqlfunc/function.h"
#include "src/sqlparser/parser.h"
#include "src/util/status.h"

namespace soft {

struct ExecContext;

// Cooperative statement-watchdog budgets (docs/ROBUSTNESS.md). The defaults
// leave statements unbounded, matching the pre-watchdog engine. Deadlines are
// wall-clock and therefore excluded from the determinism contract; fuel and
// row budgets are pure counts and deterministic.
struct StatementLimits {
  int64_t deadline_ms = 0;  // wall-clock budget per statement; 0 = none → kTimeout
  int64_t eval_fuel = -1;   // watchdog ticks per statement; -1 = unlimited
                            // (Eval calls + executor row steps) → kResourceExhausted
  int64_t max_rows = 0;     // rows materialized per statement; 0 = unlimited
                            // → kResourceExhausted

  bool operator==(const StatementLimits&) const = default;
};

struct EngineConfig {
  std::string name = "engine";
  CastOptions cast_options;
  EngineLimits limits;
  StatementLimits statement_limits;
};

struct StatementResult {
  // OK, an SQL-level error, or kCrash when an injected fault fired.
  Status status;
  // Present exactly when status.code() == kCrash.
  std::optional<CrashInfo> crash;
  // Stage the statement reached (the failing stage on error/crash).
  Stage stage = Stage::kExecute;

  std::vector<std::string> columns;
  std::vector<ValueList> rows;

  // Wrong-result faults (LogicBugSpec) that fired during SELECT execution.
  // Ground-truth bookkeeping only: a logic bug by definition leaves status
  // OK, and campaigns use these records to validate oracle verdicts — never
  // to detect bugs directly. Empty unless logic faults are enabled.
  std::vector<LogicBugInfo> logic_hits;

  bool ok() const { return status.ok(); }
  bool crashed() const { return crash.has_value(); }
};

class Database {
 public:
  explicit Database(EngineConfig config = {});

  // Engine-owned collaborators. The registry starts with every builtin
  // registered; dialects then prune/replace entries and install fault specs.
  FunctionRegistry& registry() { return registry_; }
  const FunctionRegistry& registry() const { return registry_; }
  FaultEngine& faults() { return faults_; }
  const FaultEngine& faults() const { return faults_; }
  CoverageTracker& coverage() { return coverage_; }
  SessionState& session() { return session_; }
  const EngineConfig& config() const { return config_; }

  // Watchdog budgets applied to every subsequent statement (part of
  // EngineConfig so config copies carry them).
  void set_statement_limits(const StatementLimits& limits) {
    config_.statement_limits = limits;
  }
  const StatementLimits& statement_limits() const { return config_.statement_limits; }

  // Crash-realization policy (simulated vs real signals; see fault.h).
  // Resets the simulate_first replay budget.
  void set_crash_realism(CrashRealismPolicy policy);
  const CrashRealismPolicy& crash_policy() const { return crash_policy_; }

  // Arms the wrong-result fault corpus (LogicBugSpec). Off by default: the
  // dialect constructors seed the specs unconditionally, but they perturb
  // nothing until a logic-oracle campaign enables them — so the crash path,
  // golden PoC corpus, and every determinism contract are unaffected.
  void set_logic_faults_enabled(bool enabled) { logic_faults_enabled_ = enabled; }
  bool logic_faults_enabled() const { return logic_faults_enabled_; }

  // Invoked the moment an injected fault fires (ExecContext::RaiseCrash and
  // the parse-stage probe). Under CrashRealism::kReal with the simulate_first
  // budget exhausted this announces the crash and raises the real signal —
  // it does not return. Otherwise it returns and the crash surfaces as a
  // simulated kCrash StatementResult.
  void OnCrashTriggered(const CrashInfo& info);

  // Executes one statement of SQL text through all three stages. Allocation
  // failure anywhere in the pipeline (std::bad_alloc — e.g. the oom failpoint
  // mode, docs/ROBUSTNESS.md) surfaces as kResourceExhausted, never as an
  // escaping exception.
  StatementResult Execute(std::string_view sql);

  // Executes a ';'-separated script, stopping at the first crash (a crashed
  // server processes nothing further).
  std::vector<StatementResult> ExecuteScript(std::string_view sql);

  // Executes a pre-parsed statement (optimize + execute stages only).
  StatementResult ExecuteStatement(const Statement& stmt);

  // Catalog access.
  const Table* FindTable(const std::string& name) const;
  Status CreateTable(const CreateTableStmt& stmt);
  Status DropTable(const DropTableStmt& stmt);
  // `crash` (when non-null) receives the CrashInfo if an injected fault
  // fires while evaluating the VALUES expressions.
  Status Insert(const InsertStmt& stmt, std::optional<CrashInfo>* crash = nullptr);
  void ClearTables() { tables_.clear(); }
  size_t table_count() const { return tables_.size(); }

 private:
  // Seeds an ExecContext's watchdog state from statement_limits (the deadline
  // is anchored at call time). Defined in database.cc, which sees ExecContext.
  void InitWatchdog(ExecContext& ec) const;

  // Pipeline bodies; the public Execute/ExecuteStatement wrappers add the
  // std::bad_alloc → kResourceExhausted boundary around them.
  StatementResult ExecuteImpl(std::string_view sql);
  StatementResult ExecuteStatementImpl(const Statement& stmt);

  EngineConfig config_;
  CrashRealismPolicy crash_policy_;
  bool logic_faults_enabled_ = false;
  int64_t crash_sim_remaining_ = 0;
  FunctionRegistry registry_;
  FaultEngine faults_;
  CoverageTracker coverage_;
  SessionState session_;
  std::map<std::string, Table> tables_;
};

}  // namespace soft

#endif  // SRC_ENGINE_DATABASE_H_
