// The simulated DBMS: parse → optimize → execute over an in-memory catalog.
//
// This is the substrate standing in for the paper's seven production DBMSs.
// Its external interface matches what SOFT needs from a DBMS: send SQL text,
// receive a result set, an SQL error, or a (simulated) crash with stage
// attribution. Each of the seven dialects (src/dialects) is a Database
// configured with its own function catalog, cast strictness, and injected
// fault corpus.
#ifndef SRC_ENGINE_DATABASE_H_
#define SRC_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/coverage/coverage.h"
#include "src/engine/table.h"
#include "src/fault/fault.h"
#include "src/sqlast/ast.h"
#include "src/sqlfunc/function.h"
#include "src/sqlparser/parser.h"
#include "src/util/status.h"

namespace soft {

struct EngineConfig {
  std::string name = "engine";
  CastOptions cast_options;
  EngineLimits limits;
};

struct StatementResult {
  // OK, an SQL-level error, or kCrash when an injected fault fired.
  Status status;
  // Present exactly when status.code() == kCrash.
  std::optional<CrashInfo> crash;
  // Stage the statement reached (the failing stage on error/crash).
  Stage stage = Stage::kExecute;

  std::vector<std::string> columns;
  std::vector<ValueList> rows;

  bool ok() const { return status.ok(); }
  bool crashed() const { return crash.has_value(); }
};

class Database {
 public:
  explicit Database(EngineConfig config = {});

  // Engine-owned collaborators. The registry starts with every builtin
  // registered; dialects then prune/replace entries and install fault specs.
  FunctionRegistry& registry() { return registry_; }
  const FunctionRegistry& registry() const { return registry_; }
  FaultEngine& faults() { return faults_; }
  const FaultEngine& faults() const { return faults_; }
  CoverageTracker& coverage() { return coverage_; }
  SessionState& session() { return session_; }
  const EngineConfig& config() const { return config_; }

  // Executes one statement of SQL text through all three stages.
  StatementResult Execute(std::string_view sql);

  // Executes a ';'-separated script, stopping at the first crash (a crashed
  // server processes nothing further).
  std::vector<StatementResult> ExecuteScript(std::string_view sql);

  // Executes a pre-parsed statement (optimize + execute stages only).
  StatementResult ExecuteStatement(const Statement& stmt);

  // Catalog access.
  const Table* FindTable(const std::string& name) const;
  Status CreateTable(const CreateTableStmt& stmt);
  Status DropTable(const DropTableStmt& stmt);
  // `crash` (when non-null) receives the CrashInfo if an injected fault
  // fires while evaluating the VALUES expressions.
  Status Insert(const InsertStmt& stmt, std::optional<CrashInfo>* crash = nullptr);
  void ClearTables() { tables_.clear(); }
  size_t table_count() const { return tables_.size(); }

 private:
  EngineConfig config_;
  FunctionRegistry registry_;
  FaultEngine faults_;
  CoverageTracker coverage_;
  SessionState session_;
  std::map<std::string, Table> tables_;
};

}  // namespace soft

#endif  // SRC_ENGINE_DATABASE_H_
