// Database: the statement pipeline (parse → optimize → execute) and catalog
// maintenance.
#include "src/engine/database.h"

#include <sys/time.h>

#include <csignal>

#include <new>

#include "src/engine/exec_internal.h"
#include "src/failpoint/failpoint.h"
#include "src/telemetry/telemetry.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

// Hard SIGALRM backstop for worker children (CrashRealismPolicy::
// alarm_backstop): arms an interval timer at 8x the cooperative deadline so
// it only fires when cooperation failed — the child then dies by SIGALRM and
// the supervisor treats it as an unannounced death. Disarmed on destruction.
class AlarmBackstop {
 public:
  AlarmBackstop(bool requested, int64_t deadline_ms)
      : armed_(requested && deadline_ms > 0) {
    if (!armed_) {
      return;
    }
    std::signal(SIGALRM, SIG_DFL);
    const int64_t budget_ms = deadline_ms * 8;
    itimerval timer = {};
    timer.it_value.tv_sec = budget_ms / 1000;
    timer.it_value.tv_usec = (budget_ms % 1000) * 1000;
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
  ~AlarmBackstop() {
    if (armed_) {
      itimerval timer = {};
      setitimer(ITIMER_REAL, &timer, nullptr);
    }
  }
  AlarmBackstop(const AlarmBackstop&) = delete;
  AlarmBackstop& operator=(const AlarmBackstop&) = delete;

 private:
  bool armed_;
};

}  // namespace

Database::Database(EngineConfig config) : config_(std::move(config)) {
  RegisterAllBuiltins(registry_);
}

void Database::set_crash_realism(CrashRealismPolicy policy) {
  crash_policy_ = std::move(policy);
  crash_sim_remaining_ = crash_policy_.simulate_first;
}

void Database::OnCrashTriggered(const CrashInfo& info) {
  if (crash_policy_.mode != CrashRealism::kReal) {
    return;
  }
  if (crash_sim_remaining_ > 0) {
    // Deterministic replay after a worker restart: already-confirmed crashes
    // take the simulated path again so the campaign retraces its stream.
    --crash_sim_remaining_;
    return;
  }
  if (crash_policy_.announce) {
    crash_policy_.announce(info);
  }
  RaiseRealCrashSignal(info.crash);
}

void Database::InitWatchdog(ExecContext& ec) const {
  const StatementLimits& limits = config_.statement_limits;
  ec.fuel_remaining = limits.eval_fuel;
  ec.max_rows = limits.max_rows;
  ec.deadline_ns =
      limits.deadline_ms > 0
          ? static_cast<int64_t>(telemetry::MonotonicNowNs()) + limits.deadline_ms * 1000000
          : 0;
}

Status ExecContext::CheckDeadline() const {
  if (static_cast<int64_t>(telemetry::MonotonicNowNs()) > deadline_ns) {
    return Timeout("statement watchdog: deadline exceeded");
  }
  return OkStatus();
}

const Table* Database::FindTable(const std::string& name) const {
  const auto it = tables_.find(AsciiLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

Status Database::CreateTable(const CreateTableStmt& stmt) {
  SOFT_FAILPOINT("catalog.create");
  const std::string key = AsciiLower(stmt.table);
  if (tables_.count(key) != 0) {
    return InvalidArgument("table '" + stmt.table + "' already exists");
  }
  if (stmt.columns.empty()) {
    return InvalidArgument("table must have at least one column");
  }
  Table table;
  table.name = stmt.table;
  table.columns = stmt.columns;
  tables_[key] = std::move(table);
  return OkStatus();
}

Status Database::DropTable(const DropTableStmt& stmt) {
  SOFT_FAILPOINT("catalog.drop");
  const std::string key = AsciiLower(stmt.table);
  if (tables_.erase(key) == 0 && !stmt.if_exists) {
    return NotFound("unknown table '" + stmt.table + "'");
  }
  return OkStatus();
}

Status Database::Insert(const InsertStmt& stmt, std::optional<CrashInfo>* crash) {
  SOFT_FAILPOINT("catalog.insert");
  const std::string key = AsciiLower(stmt.table);
  const auto it = tables_.find(key);
  if (it == tables_.end()) {
    return NotFound("unknown table '" + stmt.table + "'");
  }
  Table& table = it->second;

  // Map INSERT column list to table positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < table.columns.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      const int idx = table.ColumnIndex(name);
      if (idx < 0) {
        return NotFound("unknown column '" + name + "' in INSERT");
      }
      positions.push_back(idx);
    }
  }

  ExecContext ec;
  ec.db = this;
  ec.stage = Stage::kExecute;
  InitWatchdog(ec);
  Evaluator eval(ec);
  RowBinding no_row;

  for (const std::vector<ExprPtr>& value_row : stmt.rows) {
    if (value_row.size() != positions.size()) {
      return InvalidArgument("INSERT value count does not match column count");
    }
    ValueList row(table.columns.size(), Value::Null());
    for (size_t i = 0; i < value_row.size(); ++i) {
      Result<Value> evaluated = eval.Eval(*value_row[i], no_row);
      if (!evaluated.ok()) {
        if (crash != nullptr) {
          *crash = std::move(ec.crash);
        }
        return evaluated.status();
      }
      Value v = std::move(evaluated).value();
      const ColumnDef& col = table.columns[static_cast<size_t>(positions[i])];
      if (!v.is_null() && v.kind() != col.type) {
        // Implicit conversion to the column type — fault-checked.
        const Result<Value> cast = CheckedCast(ec, v, col.type);
        if (!cast.ok()) {
          if (crash != nullptr) {
            *crash = std::move(ec.crash);
          }
          return cast.status();
        }
        v = *cast;
      }
      if (v.is_null() && col.not_null) {
        return InvalidArgument("NULL into NOT NULL column '" + col.name + "'");
      }
      row[static_cast<size_t>(positions[i])] = std::move(v);
    }
    table.rows.push_back(std::move(row));
  }
  return OkStatus();
}

StatementResult Database::Execute(std::string_view sql) {
  // Allocation failure anywhere in the pipeline must look like any other
  // engine resource limit — a clean kResourceExhausted statement status —
  // rather than an exception unwinding through the campaign loop. The oom
  // failpoint mode exercises exactly this boundary.
  try {
    return ExecuteImpl(sql);
  } catch (const std::bad_alloc&) {
    StatementResult result;
    result.status = ResourceExhausted("allocation failure while executing statement");
    return result;
  }
}

StatementResult Database::ExecuteStatement(const Statement& stmt) {
  try {
    return ExecuteStatementImpl(stmt);
  } catch (const std::bad_alloc&) {
    StatementResult result;
    result.status = ResourceExhausted("allocation failure while executing statement");
    return result;
  }
}

StatementResult Database::ExecuteImpl(std::string_view sql) {
  StatementResult result;
  const AlarmBackstop backstop(crash_policy_.alarm_backstop,
                               config_.statement_limits.deadline_ms);

  // --- Parse stage ---------------------------------------------------------
  // Telemetry hook: the parse-stage histogram covers the parse-stage fault
  // probe plus lexing/parsing proper. A parse error or parse-stage crash
  // contributes a parse sample and nothing downstream.
  result.stage = Stage::kParse;
  Statement stmt;
  {
    const telemetry::ScopedStageTimer parse_timer(Stage::kParse);
    // Parse-stage injected bugs key on properties of the raw statement text.
    {
      ValueList probe = {Value::Str(std::string(sql))};
      if (auto crash = faults_.CheckFunction("PARSER", probe, 0, false, Stage::kParse)) {
        OnCrashTriggered(*crash);  // no return under real-crash mode
        result.status = CrashStatus(crash->Summary());
        result.crash = std::move(*crash);
        return result;
      }
    }
    Result<Statement> parsed = ParseStatement(sql);
    if (!parsed.ok()) {
      result.status = parsed.status();
      return result;
    }
    stmt = std::move(parsed).value();
  }

  StatementResult exec = ExecuteStatementImpl(stmt);
  return exec;
}

StatementResult Database::ExecuteStatementImpl(const Statement& stmt_in) {
  StatementResult result;
  ExecContext ec;
  ec.db = this;
  InitWatchdog(ec);

  // --- Optimize stage ------------------------------------------------------
  // Telemetry hook: the optimize histogram covers tree cloning plus the
  // optimizer pass — the work a statement costs before execution starts.
  result.stage = Stage::kOptimize;
  ec.stage = Stage::kOptimize;
  Statement stmt;
  {
    const telemetry::ScopedStageTimer optimize_timer(Stage::kOptimize);
    // The optimizer may rewrite the tree; clone SELECTs, copy others.
    if (stmt_in.is_select()) {
      stmt.node = stmt_in.select()->Clone();
    } else if (const auto* create = std::get_if<CreateTableStmt>(&stmt_in.node)) {
      stmt.node = *create;
    } else if (const auto* drop = std::get_if<DropTableStmt>(&stmt_in.node)) {
      stmt.node = *drop;
    } else if (const auto* insert = std::get_if<InsertStmt>(&stmt_in.node)) {
      InsertStmt copy;
      copy.table = insert->table;
      copy.columns = insert->columns;
      for (const std::vector<ExprPtr>& row : insert->rows) {
        std::vector<ExprPtr> row_copy;
        for (const ExprPtr& v : row) {
          row_copy.push_back(v->Clone());
        }
        copy.rows.push_back(std::move(row_copy));
      }
      stmt.node = std::move(copy);
    }

    const Status opt_status = OptimizeStatement(ec, stmt);
    if (!opt_status.ok()) {
      result.status = opt_status;
      result.crash = std::move(ec.crash);
      return result;
    }
  }

  // --- Execute stage -------------------------------------------------------
  // Telemetry hook: the execute histogram covers evaluation/catalog work up
  // to whichever return path the statement takes.
  const telemetry::ScopedStageTimer execute_timer(Stage::kExecute);
  result.stage = Stage::kExecute;
  ec.stage = Stage::kExecute;

  if (const SelectStmt* sel = stmt.select()) {
    // Wrong-result faults apply to SELECT execution only: DDL and INSERT
    // never store perturbed values, so table state stays clean ground truth
    // for the result-set oracles.
    ec.allow_logic_faults = logic_faults_enabled_;
    Result<QueryOutput> out = RunSelect(ec, *sel);
    if (!out.ok()) {
      result.status = out.status();
      result.crash = std::move(ec.crash);
      result.logic_hits = std::move(ec.logic_hits);
      return result;
    }
    result.columns = std::move(out->columns);
    result.rows = std::move(out->rows);
    result.logic_hits = std::move(ec.logic_hits);
    return result;
  }
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt.node)) {
    result.status = CreateTable(*create);
    return result;
  }
  if (const auto* drop = std::get_if<DropTableStmt>(&stmt.node)) {
    result.status = DropTable(*drop);
    return result;
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt.node)) {
    result.status = Insert(*insert, &result.crash);
    return result;
  }
  result.status = Internal("unhandled statement kind");
  return result;
}

std::vector<StatementResult> Database::ExecuteScript(std::string_view sql) {
  std::vector<StatementResult> results;
  const Result<std::vector<Statement>> parsed = ParseScript(sql);
  if (!parsed.ok()) {
    StatementResult r;
    r.stage = Stage::kParse;
    r.status = parsed.status();
    results.push_back(std::move(r));
    return results;
  }
  for (const Statement& stmt : parsed.value()) {
    StatementResult r = ExecuteStatement(stmt);
    const bool crashed = r.crashed();
    results.push_back(std::move(r));
    if (crashed) {
      break;  // a crashed server does not process the rest of the script
    }
  }
  return results;
}

}  // namespace soft
