// Expression evaluation: literals, columns, operators, casts, function
// dispatch with fault-engine and coverage hooks.
#include <cmath>

#include "src/engine/exec_internal.h"
#include "src/failpoint/failpoint.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

constexpr int kMaxEvalDepth = 2000;

// Three-valued logic helpers: Value is NULL, or BOOL after coercion.
Result<Value> ToBool3V(ExecContext& ec, const Value& v) {
  if (v.is_null()) {
    return Value::Null();
  }
  return CoerceValue(v, TypeKind::kBool, ec.db->config().cast_options);
}

// Syntactic constant-ness of an argument expression, for
// LogicScope::kConstArgs: literals, and unary operators / casts over
// constants. A function call is NOT constant — that is exactly the hook an
// EET identity chain (COALESCE(c, c)) uses to evade a const-args-scoped
// wrong-result fault.
bool IsConstExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kUnaryOp:
    case ExprKind::kCast:
      return e.args.size() == 1 && IsConstExpr(*e.args[0]);
    default:
      return false;
  }
}

bool AllArgumentsConst(const Expr& call) {
  if (call.args.empty()) {
    return false;
  }
  for (const ExprPtr& a : call.args) {
    if (!IsConstExpr(*a)) {
      return false;
    }
  }
  return true;
}

Result<Value> EvalArithmetic(ExecContext& ec, const std::string& op, const Value& a,
                             const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  const CastOptions& cast = ec.db->config().cast_options;
  SOFT_ASSIGN_OR_RETURN(Value na, CoerceValue(a, TypeKind::kDecimal, cast));
  SOFT_ASSIGN_OR_RETURN(Value nb, CoerceValue(b, TypeKind::kDecimal, cast));
  // Double path when either operand is a double.
  if (a.kind() == TypeKind::kDouble || b.kind() == TypeKind::kDouble) {
    SOFT_ASSIGN_OR_RETURN(double da, a.AsDouble());
    SOFT_ASSIGN_OR_RETURN(double db, b.AsDouble());
    double out = 0;
    if (op == "+") {
      out = da + db;
    } else if (op == "-") {
      out = da - db;
    } else if (op == "*") {
      out = da * db;
    } else if (op == "/") {
      if (db == 0) {
        return cast.strict ? Result<Value>(InvalidArgument("division by zero"))
                           : Result<Value>(Value::Null());
      }
      out = da / db;
    } else if (op == "%") {
      if (db == 0) {
        return cast.strict ? Result<Value>(InvalidArgument("division by zero"))
                           : Result<Value>(Value::Null());
      }
      out = std::fmod(da, db);
    }
    return Value::DoubleVal(out);
  }
  const Decimal& da = na.decimal_value();
  const Decimal& db = nb.decimal_value();
  if (op == "+") {
    const Decimal sum = Decimal::Add(da, db);
    if (sum.scale() == 0 && sum.total_digits() <= 18) {
      SOFT_ASSIGN_OR_RETURN(int64_t iv, sum.ToInt64());
      if (a.kind() == TypeKind::kInt && b.kind() == TypeKind::kInt) {
        return Value::Int(iv);
      }
    }
    return Value::Dec(sum);
  }
  if (op == "-") {
    const Decimal diff = Decimal::Sub(da, db);
    if (diff.scale() == 0 && diff.total_digits() <= 18 && a.kind() == TypeKind::kInt &&
        b.kind() == TypeKind::kInt) {
      SOFT_ASSIGN_OR_RETURN(int64_t iv, diff.ToInt64());
      return Value::Int(iv);
    }
    return Value::Dec(diff);
  }
  if (op == "*") {
    if (da.total_digits() + db.total_digits() > Decimal::kHardDigitLimit) {
      return ResourceExhausted("multiplication result exceeds digit limit");
    }
    const Decimal prod = Decimal::Mul(da, db);
    if (prod.scale() == 0 && prod.total_digits() <= 18 && a.kind() == TypeKind::kInt &&
        b.kind() == TypeKind::kInt) {
      SOFT_ASSIGN_OR_RETURN(int64_t iv, prod.ToInt64());
      return Value::Int(iv);
    }
    return Value::Dec(prod);
  }
  if (op == "/") {
    if (db.IsZero()) {
      return cast.strict ? Result<Value>(InvalidArgument("division by zero"))
                         : Result<Value>(Value::Null());
    }
    SOFT_ASSIGN_OR_RETURN(Decimal q, Decimal::Div(da, db, 8));
    return Value::Dec(q);
  }
  if (op == "%") {
    if (db.IsZero()) {
      return cast.strict ? Result<Value>(InvalidArgument("division by zero"))
                         : Result<Value>(Value::Null());
    }
    // a - trunc(a/b)*b.
    SOFT_ASSIGN_OR_RETURN(Decimal q, Decimal::Div(da, db, 0));
    return Value::Dec(Decimal::Sub(da, Decimal::Mul(q, db)));
  }
  return Internal("unknown arithmetic operator " + op);
}

// SQL LIKE with % and _ wildcards. The backtracking is exponential in the
// number of '%'s, and recursion steps are invisible to the statement fuel
// budget, so the matcher carries its own deterministic step budget: when
// `budget` goes negative the match unwinds false and the caller reports
// resource exhaustion.
bool LikeMatch(std::string_view text, std::string_view pattern, int64_t& budget) {
  if (--budget < 0) {
    return false;
  }
  if (pattern.empty()) {
    return text.empty();
  }
  if (pattern[0] == '%') {
    for (size_t skip = 0; skip <= text.size(); ++skip) {
      if (LikeMatch(text.substr(skip), pattern.substr(1), budget)) {
        return true;
      }
      if (budget < 0) {
        return false;
      }
    }
    return false;
  }
  if (text.empty()) {
    return false;
  }
  if (pattern[0] == '_' || pattern[0] == text[0]) {
    return LikeMatch(text.substr(1), pattern.substr(1), budget);
  }
  return false;
}

}  // namespace

FunctionContext MakeFunctionContext(ExecContext& ec) {
  return FunctionContext(ec.db->config().cast_options, ec.db->config().limits,
                         &ec.db->coverage(), &ec.db->session());
}

Result<Value> CheckedCast(ExecContext& ec, const Value& v, TypeKind target) {
  if (auto crash = ec.db->faults().CheckCast(target, v, ec.stage)) {
    return ec.RaiseCrash(std::move(*crash));
  }
  return CastValue(v, target, ec.db->config().cast_options);
}

Result<Value> Evaluator::Eval(const Expr& e, const RowBinding& row) {
  if (Status wd = ec_.CheckWatchdog(); !wd.ok()) {
    return wd;
  }
  SOFT_FAILPOINT("eval.enter");
  if (++ec_.eval_depth > kMaxEvalDepth) {
    --ec_.eval_depth;
    return ResourceExhausted("expression evaluation too deep");
  }
  struct DepthGuard {
    ExecContext& ec;
    ~DepthGuard() { --ec.eval_depth; }
  } guard{ec_};

  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      const std::optional<Value> v = row.Lookup(e.column_name);
      if (!v.has_value()) {
        return NotFound("unknown column '" + e.column_name + "'");
      }
      return *v;
    }
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(e, row);
    case ExprKind::kCast:
      return EvalCast(e, row);
    case ExprKind::kBinaryOp:
      return EvalBinaryOp(e, row);
    case ExprKind::kUnaryOp:
      return EvalUnaryOp(e, row);
    case ExprKind::kRowCtor: {
      ValueList fields;
      for (const ExprPtr& f : e.args) {
        SOFT_ASSIGN_OR_RETURN(Value v, Eval(*f, row));
        fields.push_back(std::move(v));
      }
      return Value::RowVal(std::move(fields));
    }
    case ExprKind::kArrayCtor: {
      ValueList items;
      for (const ExprPtr& item : e.args) {
        SOFT_ASSIGN_OR_RETURN(Value v, Eval(*item, row));
        items.push_back(std::move(v));
      }
      return Value::ArrayVal(std::move(items));
    }
    case ExprKind::kSubquery:
      return EvalSubquery(e, row);
  }
  return Internal("unhandled expression kind");
}

Result<Value> Evaluator::EvalFunctionCall(const Expr& e, const RowBinding& row) {
  SOFT_FAILPOINT("eval.function");
  // Aggregates resolved by the SELECT executor arrive pre-computed.
  if (agg_values_ != nullptr) {
    const auto it = agg_values_->find(&e);
    if (it != agg_values_->end()) {
      return it->second;
    }
  }
  Database& db = *ec_.db;
  const FunctionDef* def = db.registry().Find(e.func_name);
  if (def == nullptr) {
    return NotFound("unknown function " + e.func_name);
  }
  const int argc = static_cast<int>(e.args.size());
  if (argc < def->min_args || (def->max_args >= 0 && argc > def->max_args)) {
    return InvalidArgument("wrong argument count for " + e.func_name);
  }
  if (def->is_aggregate) {
    return InvalidArgument("aggregate function " + e.func_name +
                           " is not allowed in this context");
  }

  ++ec_.call_depth;
  struct CallGuard {
    ExecContext& ec;
    ~CallGuard() { --ec.call_depth; }
  } guard{ec_};
  if (ec_.call_depth > db.config().limits.max_call_depth) {
    return ResourceExhausted("function call nesting too deep");
  }

  ValueList argv;
  argv.reserve(e.args.size());
  for (const ExprPtr& a : e.args) {
    SOFT_ASSIGN_OR_RETURN(Value v, Eval(*a, row));
    argv.push_back(std::move(v));
  }

  // Fault check FIRST: an injected bug is a missing validation, so it fires
  // before the reference implementation's own checks would run.
  if (auto crash = db.faults().CheckFunction(e.func_name, argv, ec_.call_depth,
                                             e.distinct_arg, ec_.stage)) {
    return ec_.RaiseCrash(std::move(*crash));
  }

  // The function counts as triggered once arguments reached it.
  db.coverage().Trigger(def->name);

  // Reference validation: '*' only where allowed, NULL propagation.
  if (!def->accepts_star) {
    for (const Value& v : argv) {
      if (v.is_star()) {
        return InvalidArgument("'*' is not a valid argument of " + e.func_name);
      }
    }
  }
  if (def->null_propagates) {
    for (const Value& v : argv) {
      if (v.is_null()) {
        return Value::Null();
      }
    }
  }

  FunctionContext ctx = MakeFunctionContext(ec_);
  ctx.set_current_function(def->name);
  ctx.set_call_depth(ec_.call_depth);
  Result<Value> out = def->scalar(ctx, argv);

  // Wrong-result faults fire AFTER a successful computation: the statement
  // keeps succeeding, only the value is silently perturbed (fault.h,
  // LogicBugSpec). Recording the hit is ground-truth bookkeeping for oracle
  // validation, never a detection signal.
  if (out.ok() && ec_.allow_logic_faults && db.logic_faults_enabled() &&
      db.faults().HasLogicBugs(e.func_name)) {
    if (auto hit = db.faults().CheckLogicFunction(e.func_name, argv, ec_.call_depth,
                                                  AllArgumentsConst(e), ec_.in_where)) {
      Value perturbed = ApplyLogicEffect(hit->effect, *out);
      ec_.RecordLogicHit(std::move(*hit));
      return perturbed;
    }
  }
  return out;
}

Result<Value> Evaluator::EvalCast(const Expr& e, const RowBinding& row) {
  SOFT_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], row));
  return CheckedCast(ec_, v, e.cast_type);
}

Result<Value> Evaluator::EvalBinaryOp(const Expr& e, const RowBinding& row) {
  const std::string& op = e.op;
  // Short-circuiting three-valued AND/OR.
  if (op == "AND" || op == "OR") {
    SOFT_ASSIGN_OR_RETURN(Value lv, Eval(*e.args[0], row));
    SOFT_ASSIGN_OR_RETURN(Value lb, ToBool3V(ec_, lv));
    if (op == "AND" && !lb.is_null() && !lb.bool_value()) {
      return Value::Boolean(false);
    }
    if (op == "OR" && !lb.is_null() && lb.bool_value()) {
      return Value::Boolean(true);
    }
    SOFT_ASSIGN_OR_RETURN(Value rv, Eval(*e.args[1], row));
    SOFT_ASSIGN_OR_RETURN(Value rb, ToBool3V(ec_, rv));
    if (lb.is_null() || rb.is_null()) {
      // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; otherwise NULL.
      if (op == "AND" && !rb.is_null() && !rb.bool_value()) {
        return Value::Boolean(false);
      }
      if (op == "OR" && !rb.is_null() && rb.bool_value()) {
        return Value::Boolean(true);
      }
      return Value::Null();
    }
    return Value::Boolean(op == "AND" ? (lb.bool_value() && rb.bool_value())
                                      : (lb.bool_value() || rb.bool_value()));
  }

  SOFT_ASSIGN_OR_RETURN(Value a, Eval(*e.args[0], row));
  SOFT_ASSIGN_OR_RETURN(Value b, Eval(*e.args[1], row));

  if (op == "||") {
    if (a.is_null() || b.is_null()) {
      return Value::Null();
    }
    SOFT_ASSIGN_OR_RETURN(Value sa, CoerceValue(a, TypeKind::kString,
                                                ec_.db->config().cast_options));
    SOFT_ASSIGN_OR_RETURN(Value sb, CoerceValue(b, TypeKind::kString,
                                                ec_.db->config().cast_options));
    if (sa.string_value().size() + sb.string_value().size() >
        ec_.db->config().limits.max_string_len) {
      return ResourceExhausted("concatenation exceeds engine string limit");
    }
    return Value::Str(sa.string_value() + sb.string_value());
  }
  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
    return EvalArithmetic(ec_, op, a, b);
  }
  if (op == "LIKE") {
    if (a.is_null() || b.is_null()) {
      return Value::Null();
    }
    SOFT_ASSIGN_OR_RETURN(std::string text, MakeFunctionContext(ec_).ArgString(a));
    SOFT_ASSIGN_OR_RETURN(std::string pattern, MakeFunctionContext(ec_).ArgString(b));
    if (text.size() > 4096 || pattern.size() > 1024) {
      return ResourceExhausted("LIKE operands exceed engine matcher limits");
    }
    int64_t budget = int64_t{1} << 22;  // deterministic matcher step cap
    const bool matched = LikeMatch(text, pattern, budget);
    if (budget < 0) {
      return ResourceExhausted("LIKE matcher step budget exhausted");
    }
    return Value::Boolean(matched);
  }
  // Comparisons.
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  SOFT_ASSIGN_OR_RETURN(int cmp, Value::Compare(a, b));
  if (op == "=") {
    return Value::Boolean(cmp == 0);
  }
  if (op == "!=" || op == "<>") {
    return Value::Boolean(cmp != 0);
  }
  if (op == "<") {
    return Value::Boolean(cmp < 0);
  }
  if (op == "<=") {
    return Value::Boolean(cmp <= 0);
  }
  if (op == ">") {
    return Value::Boolean(cmp > 0);
  }
  if (op == ">=") {
    return Value::Boolean(cmp >= 0);
  }
  return Internal("unknown binary operator " + op);
}

Result<Value> Evaluator::EvalUnaryOp(const Expr& e, const RowBinding& row) {
  SOFT_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], row));
  if (e.op == "IS NULL") {
    return Value::Boolean(v.is_null());
  }
  if (e.op == "IS NOT NULL") {
    return Value::Boolean(!v.is_null());
  }
  if (e.op == "NOT") {
    SOFT_ASSIGN_OR_RETURN(Value b, ToBool3V(ec_, v));
    if (b.is_null()) {
      return Value::Null();
    }
    return Value::Boolean(!b.bool_value());
  }
  if (e.op == "-") {
    if (v.is_null()) {
      return Value::Null();
    }
    switch (v.kind()) {
      case TypeKind::kInt:
        if (v.int_value() == INT64_MIN) {
          return InvalidArgument("negation overflow");
        }
        return Value::Int(-v.int_value());
      case TypeKind::kDouble:
        return Value::DoubleVal(-v.double_value());
      case TypeKind::kDecimal:
        return Value::Dec(v.decimal_value().Negated());
      default:
        return TypeError("cannot negate a non-numeric value");
    }
  }
  return Internal("unknown unary operator " + e.op);
}

Result<Value> Evaluator::EvalSubquery(const Expr& e, const RowBinding& row) {
  SOFT_FAILPOINT("eval.subquery");
  SOFT_ASSIGN_OR_RETURN(QueryOutput out, RunSelect(ec_, *e.subquery));
  if (out.rows.empty() || out.rows[0].empty()) {
    return Value::Null();
  }
  if (out.rows[0].size() > 1) {
    return InvalidArgument("scalar subquery returned more than one column");
  }
  // First-row semantics (as in SQLite): a multi-row subquery yields its
  // first row. This keeps Pattern 2.2's UNION shape usable as an argument.
  return out.rows[0][0];
}

}  // namespace soft
