// SELECT execution: FROM resolution, filtering, grouping/aggregation,
// projection, ordering, DISTINCT, LIMIT, and UNION with fault-checked
// implicit casts (the Pattern 2.2 surface).
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "src/engine/exec_internal.h"
#include "src/failpoint/failpoint.h"

namespace soft {
namespace {

struct FromData {
  std::vector<std::string> names;
  std::vector<ValueList> rows;
  bool has_source = false;  // false → projection over a single empty row
};

// Row-materialization budget (StatementLimits::max_rows). Checked wherever a
// SELECT grows its output row set.
Status CheckRowBudget(const ExecContext& ec, size_t materialized) {
  if (ec.max_rows > 0 && materialized > static_cast<size_t>(ec.max_rows)) {
    return ResourceExhausted("statement watchdog: row budget exceeded");
  }
  return OkStatus();
}

Result<FromData> ResolveFrom(ExecContext& ec, const SelectStmt& sel) {
  FromData out;
  if (!sel.from_table.empty()) {
    const Table* table = ec.db->FindTable(sel.from_table);
    if (table == nullptr) {
      return NotFound("unknown table '" + sel.from_table + "'");
    }
    for (const ColumnDef& col : table->columns) {
      out.names.push_back(col.name);
    }
    out.rows = table->rows;
    out.has_source = true;
    return out;
  }
  if (sel.from_subquery != nullptr) {
    SOFT_ASSIGN_OR_RETURN(QueryOutput sub, RunSelect(ec, *sel.from_subquery));
    out.names = std::move(sub.columns);
    out.rows = std::move(sub.rows);
    out.has_source = true;
    return out;
  }
  return out;
}

// Const pre-order collection of aggregate function calls.
void CollectAggregateCalls(const Expr& e, const FunctionRegistry& registry,
                           std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::kFunctionCall) {
    const FunctionDef* def = registry.Find(e.func_name);
    if (def != nullptr && def->is_aggregate) {
      out.push_back(&e);
      return;  // nested aggregates inside an aggregate are not collected
    }
  }
  for (const ExprPtr& a : e.args) {
    CollectAggregateCalls(*a, registry, out);
  }
  // Subqueries run their own aggregation; do not recurse into them.
}

std::string RenderRowKey(const ValueList& row) {
  std::string key;
  for (const Value& v : row) {
    key += v.ToSqlLiteral();
    key.push_back('\x1f');
  }
  return key;
}

struct AggState {
  std::unique_ptr<Aggregator> aggregator;
  std::set<std::string> distinct_seen;
};

class GroupedExecution {
 public:
  GroupedExecution(ExecContext& ec, const SelectStmt& sel,
                   std::vector<const Expr*> agg_calls)
      : ec_(ec), sel_(sel), agg_calls_(std::move(agg_calls)) {}

  Status AccumulateRow(const RowBinding& binding, const ValueList& row_values) {
    // Group key.
    std::string key;
    Evaluator eval(ec_);
    for (const ExprPtr& g : sel_.group_by) {
      SOFT_ASSIGN_OR_RETURN(Value v, eval.Eval(*g, binding));
      key += v.ToSqlLiteral();
      key.push_back('\x1f');
    }
    Group& group = GetGroup(key, row_values);
    for (const Expr* call : agg_calls_) {
      SOFT_RETURN_IF_ERROR(AccumulateCall(group, *call, binding));
    }
    return OkStatus();
  }

  // When there are no input rows and no GROUP BY, aggregates still produce
  // one global row (COUNT over an empty set = 0).
  void EnsureGlobalGroup() {
    if (sel_.group_by.empty() && groups_.empty()) {
      GetGroup("", {});
    }
  }

  Result<QueryOutput> Project(const std::vector<std::string>& from_names);

 private:
  struct Group {
    ValueList representative;
    bool has_representative = false;
    std::map<const Expr*, AggState> states;
  };

  Group& GetGroup(const std::string& key, const ValueList& row_values) {
    auto [it, inserted] = groups_.try_emplace(key);
    if (inserted) {
      group_order_.push_back(key);
      for (const Expr* call : agg_calls_) {
        const FunctionDef* def = ec_.db->registry().Find(call->func_name);
        it->second.states[call].aggregator = def->aggregator();
      }
    }
    if (!it->second.has_representative && !row_values.empty()) {
      it->second.representative = row_values;
      it->second.has_representative = true;
    }
    return it->second;
  }

  Status AccumulateCall(Group& group, const Expr& call, const RowBinding& binding) {
    Database& db = *ec_.db;
    const FunctionDef* def = db.registry().Find(call.func_name);
    Evaluator eval(ec_);
    ValueList argv;
    argv.reserve(call.args.size());
    for (const ExprPtr& a : call.args) {
      SOFT_ASSIGN_OR_RETURN(Value v, eval.Eval(*a, binding));
      argv.push_back(std::move(v));
    }
    if (auto crash = db.faults().CheckFunction(call.func_name, argv, ec_.call_depth + 1,
                                               call.distinct_arg, ec_.stage)) {
      return ec_.RaiseCrash(std::move(*crash));
    }
    db.coverage().Trigger(def->name);
    if (!def->accepts_star) {
      for (const Value& v : argv) {
        if (v.is_star()) {
          return InvalidArgument("'*' is not a valid argument of " + call.func_name);
        }
      }
    }
    AggState& state = group.states[&call];
    if (call.distinct_arg) {
      const std::string key = RenderRowKey(argv);
      if (!state.distinct_seen.insert(key).second) {
        return OkStatus();
      }
    }
    FunctionContext ctx = MakeFunctionContext(ec_);
    ctx.set_current_function(def->name);
    return state.aggregator->Accumulate(ctx, argv);
  }

  ExecContext& ec_;
  const SelectStmt& sel_;
  std::vector<const Expr*> agg_calls_;
  std::map<std::string, Group> groups_;
  std::vector<std::string> group_order_;

 public:
  friend Result<QueryOutput> RunGrouped(ExecContext&, const SelectStmt&, const FromData&);
};

Result<QueryOutput> GroupedExecution::Project(const std::vector<std::string>& from_names) {
  QueryOutput out;
  for (const SelectItem& item : sel_.items) {
    out.columns.push_back(item.alias.empty() ? item.expr->ToSql() : item.alias);
  }
  for (const std::string& key : group_order_) {
    Group& group = groups_[key];
    // Finalize aggregates for this group.
    std::unordered_map<const Expr*, Value> agg_values;
    for (auto& [call, state] : group.states) {
      FunctionContext ctx = MakeFunctionContext(ec_);
      ctx.set_current_function(call->func_name);
      SOFT_ASSIGN_OR_RETURN(Value v, state.aggregator->Finalize(ctx));
      agg_values[call] = std::move(v);
    }
    RowBinding binding(from_names,
                       group.has_representative ? &group.representative : nullptr);
    Evaluator eval(ec_);
    eval.set_agg_values(&agg_values);
    // HAVING.
    if (sel_.having != nullptr) {
      SOFT_ASSIGN_OR_RETURN(Value keep, eval.Eval(*sel_.having, binding));
      if (keep.is_null()) {
        continue;
      }
      SOFT_ASSIGN_OR_RETURN(Value b, CoerceValue(keep, TypeKind::kBool,
                                                 ec_.db->config().cast_options));
      if (b.is_null() || !b.bool_value()) {
        continue;
      }
    }
    ValueList row;
    for (const SelectItem& item : sel_.items) {
      SOFT_ASSIGN_OR_RETURN(Value v, eval.Eval(*item.expr, binding));
      row.push_back(std::move(v));
    }
    out.rows.push_back(std::move(row));
    out.source_rows.push_back(group.has_representative ? group.representative
                                                       : ValueList());
    SOFT_RETURN_IF_ERROR(CheckRowBudget(ec_, out.rows.size()));
  }
  out.source_names = from_names;
  return out;
}

// Marks WHERE-predicate evaluation for LogicScope::kWherePredicate faults.
// Save/restore (not set/clear) so a subquery's own clauses inside an outer
// WHERE don't strip the outer predicate context.
struct WhereScope {
  ExecContext& ec;
  bool prev;
  explicit WhereScope(ExecContext& context) : ec(context), prev(context.in_where) {
    ec.in_where = true;
  }
  ~WhereScope() { ec.in_where = prev; }
};

Result<QueryOutput> RunGrouped(ExecContext& ec, const SelectStmt& sel,
                               const FromData& from) {
  std::vector<const Expr*> agg_calls;
  for (const SelectItem& item : sel.items) {
    CollectAggregateCalls(*item.expr, ec.db->registry(), agg_calls);
  }
  if (sel.having != nullptr) {
    CollectAggregateCalls(*sel.having, ec.db->registry(), agg_calls);
  }
  GroupedExecution grouped(ec, sel, std::move(agg_calls));

  for (const ValueList& row : from.rows) {
    SOFT_RETURN_IF_ERROR(ec.CheckWatchdog());
    RowBinding binding(from.names, &row);
    if (sel.where != nullptr) {
      Evaluator eval(ec);
      Result<Value> cond_r = [&] {
        const WhereScope where_scope(ec);
        return eval.Eval(*sel.where, binding);
      }();
      if (!cond_r.ok()) {
        return cond_r.status();
      }
      const Value cond = std::move(cond_r).value();
      if (cond.is_null()) {
        continue;
      }
      SOFT_ASSIGN_OR_RETURN(Value b, CoerceValue(cond, TypeKind::kBool,
                                                 ec.db->config().cast_options));
      if (b.is_null() || !b.bool_value()) {
        continue;
      }
    }
    SOFT_RETURN_IF_ERROR(grouped.AccumulateRow(binding, row));
  }
  if (!from.has_source) {
    // Literal-only aggregate query: one synthetic input row.
    RowBinding binding;
    SOFT_RETURN_IF_ERROR(grouped.AccumulateRow(binding, {}));
  }
  grouped.EnsureGlobalGroup();
  return grouped.Project(from.names);
}

bool HasAggregates(ExecContext& ec, const SelectStmt& sel) {
  std::vector<const Expr*> calls;
  for (const SelectItem& item : sel.items) {
    CollectAggregateCalls(*item.expr, ec.db->registry(), calls);
  }
  if (sel.having != nullptr) {
    CollectAggregateCalls(*sel.having, ec.db->registry(), calls);
  }
  return !calls.empty() || !sel.group_by.empty();
}

Result<QueryOutput> RunPlain(ExecContext& ec, const SelectStmt& sel, const FromData& from) {
  QueryOutput out;
  // Column headers, with SELECT-* expansion.
  const bool star_expand =
      from.has_source && sel.items.size() >= 1 &&
      std::any_of(sel.items.begin(), sel.items.end(), [](const SelectItem& item) {
        return item.expr->kind == ExprKind::kLiteral && item.expr->literal.is_star();
      });
  for (const SelectItem& item : sel.items) {
    if (star_expand && item.expr->kind == ExprKind::kLiteral &&
        item.expr->literal.is_star()) {
      for (const std::string& name : from.names) {
        out.columns.push_back(name);
      }
      continue;
    }
    out.columns.push_back(item.alias.empty() ? item.expr->ToSql() : item.alias);
  }

  std::vector<ValueList> source_rows;
  if (from.has_source) {
    source_rows = from.rows;
  } else {
    source_rows.emplace_back();  // single empty row
  }

  for (const ValueList& row : source_rows) {
    SOFT_RETURN_IF_ERROR(ec.CheckWatchdog());
    RowBinding binding(from.names, from.has_source ? &row : nullptr);
    Evaluator eval(ec);
    if (sel.where != nullptr) {
      Result<Value> cond_r = [&] {
        const WhereScope where_scope(ec);
        return eval.Eval(*sel.where, binding);
      }();
      if (!cond_r.ok()) {
        return cond_r.status();
      }
      const Value cond = std::move(cond_r).value();
      if (cond.is_null()) {
        continue;
      }
      SOFT_ASSIGN_OR_RETURN(Value b, CoerceValue(cond, TypeKind::kBool,
                                                 ec.db->config().cast_options));
      if (b.is_null() || !b.bool_value()) {
        continue;
      }
    }
    ValueList out_row;
    for (const SelectItem& item : sel.items) {
      if (star_expand && item.expr->kind == ExprKind::kLiteral &&
          item.expr->literal.is_star()) {
        for (const Value& v : row) {
          out_row.push_back(v);
        }
        continue;
      }
      SOFT_ASSIGN_OR_RETURN(Value v, eval.Eval(*item.expr, binding));
      out_row.push_back(std::move(v));
    }
    out.rows.push_back(std::move(out_row));
    out.source_rows.push_back(row);
    SOFT_RETURN_IF_ERROR(CheckRowBudget(ec, out.rows.size()));
  }
  out.source_names = from.names;
  return out;
}

Status ApplyOrderBy(ExecContext& ec, const SelectStmt& sel, QueryOutput& out) {
  if (sel.order_by.empty()) {
    return OkStatus();
  }
  // Precompute sort keys: output columns (aliases) resolve first, then
  // un-projected source columns via the snapshot taken at projection time.
  std::vector<ValueList> keys(out.rows.size());
  for (size_t r = 0; r < out.rows.size(); ++r) {
    SOFT_RETURN_IF_ERROR(ec.CheckWatchdog());
    RowBinding binding(out.columns, &out.rows[r]);
    Evaluator eval(ec);
    for (const OrderItem& item : sel.order_by) {
      // Integer ordinals refer to output columns (ORDER BY 1).
      if (item.expr->kind == ExprKind::kLiteral &&
          item.expr->literal.kind() == TypeKind::kInt) {
        const int64_t ordinal = item.expr->literal.int_value();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(out.rows[r].size())) {
          return InvalidArgument("ORDER BY ordinal out of range");
        }
        keys[r].push_back(out.rows[r][static_cast<size_t>(ordinal - 1)]);
        continue;
      }
      Result<Value> v = eval.Eval(*item.expr, binding);
      if (!v.ok() && v.status().code() == StatusCode::kNotFound &&
          r < out.source_rows.size()) {
        RowBinding source_binding(out.source_names, &out.source_rows[r]);
        v = eval.Eval(*item.expr, source_binding);
      }
      if (!v.ok()) {
        return v.status();
      }
      keys[r].push_back(std::move(*v));
    }
  }
  std::vector<size_t> order(out.rows.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  Status sort_error = OkStatus();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < sel.order_by.size(); ++k) {
      const Result<int> cmp = Value::Compare(keys[a][k], keys[b][k]);
      if (!cmp.ok()) {
        if (sort_error.ok()) {
          sort_error = cmp.status();
        }
        return false;
      }
      if (*cmp != 0) {
        return sel.order_by[k].ascending ? *cmp < 0 : *cmp > 0;
      }
    }
    return false;
  });
  SOFT_RETURN_IF_ERROR(sort_error);
  std::vector<ValueList> sorted;
  std::vector<ValueList> sorted_sources;
  sorted.reserve(out.rows.size());
  for (size_t idx : order) {
    sorted.push_back(std::move(out.rows[idx]));
    if (idx < out.source_rows.size()) {
      sorted_sources.push_back(std::move(out.source_rows[idx]));
    }
  }
  out.rows = std::move(sorted);
  out.source_rows = std::move(sorted_sources);
  return OkStatus();
}

// UNION column unification: infer a common supertype per column and coerce
// every cell through the fault-checked cast (implicit casting, Pattern 2.2).
Status UnifyUnion(ExecContext& ec, QueryOutput& left, QueryOutput&& right, bool union_all) {
  if (left.columns.size() != right.columns.size()) {
    return InvalidArgument("UNION branches have different column counts");
  }
  const size_t ncols = left.columns.size();
  for (size_t c = 0; c < ncols; ++c) {
    TypeKind common = TypeKind::kNull;
    for (const ValueList& row : left.rows) {
      SOFT_ASSIGN_OR_RETURN(common, CommonSuperType(common, row[c].kind()));
    }
    for (const ValueList& row : right.rows) {
      SOFT_ASSIGN_OR_RETURN(common, CommonSuperType(common, row[c].kind()));
    }
    if (common == TypeKind::kNull) {
      continue;
    }
    auto coerce_all = [&](std::vector<ValueList>& rows) -> Status {
      for (ValueList& row : rows) {
        if (row[c].kind() != common && !row[c].is_null()) {
          SOFT_ASSIGN_OR_RETURN(row[c], CheckedCast(ec, row[c], common));
        }
      }
      return OkStatus();
    };
    SOFT_RETURN_IF_ERROR(coerce_all(left.rows));
    SOFT_RETURN_IF_ERROR(coerce_all(right.rows));
  }
  for (ValueList& row : right.rows) {
    left.rows.push_back(std::move(row));
  }
  SOFT_RETURN_IF_ERROR(CheckRowBudget(ec, left.rows.size()));
  if (!union_all) {
    std::set<std::string> seen;
    std::vector<ValueList> deduped;
    for (ValueList& row : left.rows) {
      if (seen.insert(RenderRowKey(row)).second) {
        deduped.push_back(std::move(row));
      }
    }
    left.rows = std::move(deduped);
  }
  return OkStatus();
}

}  // namespace

Result<QueryOutput> RunSelect(ExecContext& ec, const SelectStmt& select) {
  SOFT_FAILPOINT("exec.select");
  SOFT_ASSIGN_OR_RETURN(FromData from, ResolveFrom(ec, select));

  QueryOutput out;
  if (HasAggregates(ec, select)) {
    SOFT_ASSIGN_OR_RETURN(out, RunGrouped(ec, select, from));
  } else {
    SOFT_ASSIGN_OR_RETURN(out, RunPlain(ec, select, from));
  }

  if (select.distinct) {
    std::set<std::string> seen;
    std::vector<ValueList> deduped;
    std::vector<ValueList> deduped_sources;
    for (size_t r = 0; r < out.rows.size(); ++r) {
      if (seen.insert(RenderRowKey(out.rows[r])).second) {
        deduped.push_back(std::move(out.rows[r]));
        if (r < out.source_rows.size()) {
          deduped_sources.push_back(std::move(out.source_rows[r]));
        }
      }
    }
    out.rows = std::move(deduped);
    out.source_rows = std::move(deduped_sources);
  }

  SOFT_RETURN_IF_ERROR(ApplyOrderBy(ec, select, out));

  if (select.limit.has_value() && *select.limit >= 0 &&
      out.rows.size() > static_cast<size_t>(*select.limit)) {
    out.rows.resize(static_cast<size_t>(*select.limit));
    if (out.source_rows.size() > static_cast<size_t>(*select.limit)) {
      out.source_rows.resize(static_cast<size_t>(*select.limit));
    }
  }

  if (select.union_next != nullptr) {
    SOFT_ASSIGN_OR_RETURN(QueryOutput right, RunSelect(ec, *select.union_next));
    SOFT_RETURN_IF_ERROR(UnifyUnion(ec, out, std::move(right), select.union_all));
    // After UNION only output columns are addressable (standard SQL).
    out.source_names.clear();
    out.source_rows.clear();
  }
  return out;
}

}  // namespace soft
