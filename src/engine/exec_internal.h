// Internal execution machinery shared by the evaluator, the SELECT executor,
// and the optimizer. Not part of the public engine API.
#ifndef SRC_ENGINE_EXEC_INTERNAL_H_
#define SRC_ENGINE_EXEC_INTERNAL_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/database.h"

namespace soft {

// Per-statement execution state. Carries the crash slot: when a fault fires
// anywhere in the pipeline, the CrashInfo lands here and a kCrash status
// unwinds to the statement boundary.
struct ExecContext {
  Database* db = nullptr;
  Stage stage = Stage::kExecute;
  std::optional<CrashInfo> crash;
  int call_depth = 0;   // nested function-call depth
  int eval_depth = 0;   // total expression recursion depth

  // Statement-watchdog state, seeded by Database::InitWatchdog from the
  // engine's StatementLimits. deadline_ns == 0 disables the deadline;
  // fuel_remaining == -1 disables the fuel budget; max_rows == 0 disables
  // the row budget.
  int64_t deadline_ns = 0;     // absolute MonotonicNowNs() deadline
  int64_t fuel_remaining = -1;
  int64_t max_rows = 0;
  uint32_t watchdog_tick = 0;

  // Wrong-result fault state (src/fault/fault.h). `allow_logic_faults` is
  // set only for SELECT execution of a logic-fault-enabled Database, so DDL
  // and INSERT paths never store perturbed values; `in_where` marks WHERE
  // predicate evaluation (LogicScope::kWherePredicate). Fired specs are
  // recorded here, deduplicated by bug id, and copied into the
  // StatementResult — silently, the statement still succeeds.
  bool allow_logic_faults = false;
  bool in_where = false;
  std::vector<LogicBugInfo> logic_hits;

  void RecordLogicHit(LogicBugInfo info) {
    for (const LogicBugInfo& hit : logic_hits) {
      if (hit.bug_id == info.bug_id) {
        return;
      }
    }
    logic_hits.push_back(std::move(info));
  }

  // Records a crash and produces the status that unwinds the evaluation. In
  // real-crash mode the OnCrashTriggered call raises the actual signal and
  // never returns.
  Status RaiseCrash(CrashInfo info) {
    if (db != nullptr) {
      db->OnCrashTriggered(info);
    }
    Status status = CrashStatus(info.Summary());
    crash = std::move(info);
    return status;
  }

  // One watchdog tick: charges a unit of fuel and, every 256 ticks, compares
  // the wall clock against the statement deadline. Called from the evaluator
  // entry and the executor row loops.
  Status CheckWatchdog() {
    if (fuel_remaining >= 0) {
      if (fuel_remaining == 0) {  // stays pinned at 0 once exhausted
        return ResourceExhausted("statement watchdog: evaluation fuel exhausted");
      }
      --fuel_remaining;
    }
    if (deadline_ns > 0 && (++watchdog_tick & 0xFFu) == 0) {
      return CheckDeadline();
    }
    return OkStatus();
  }

  // The clock read, out of line (defined in database.cc).
  Status CheckDeadline() const;
};

// Column-name → value binding for one row.
class RowBinding {
 public:
  RowBinding() = default;
  RowBinding(std::vector<std::string> names, const ValueList* values)
      : names_(std::move(names)), values_(values) {}

  // Returns nullopt when the name is unbound.
  std::optional<Value> Lookup(const std::string& name) const {
    if (values_ == nullptr) {
      return std::nullopt;
    }
    for (size_t i = 0; i < names_.size() && i < values_->size(); ++i) {
      if (names_[i] == name) {
        return (*values_)[i];
      }
    }
    return std::nullopt;
  }

  bool empty() const { return values_ == nullptr; }

 private:
  std::vector<std::string> names_;
  const ValueList* values_ = nullptr;
};

// Expression evaluator. `agg_values` (when set) maps aggregate-call AST nodes
// to their finalized values — the SELECT executor resolves aggregates before
// projecting.
class Evaluator {
 public:
  explicit Evaluator(ExecContext& ec) : ec_(ec) {}

  void set_agg_values(const std::unordered_map<const Expr*, Value>* agg_values) {
    agg_values_ = agg_values;
  }

  Result<Value> Eval(const Expr& e, const RowBinding& row);

 private:
  Result<Value> EvalFunctionCall(const Expr& e, const RowBinding& row);
  Result<Value> EvalCast(const Expr& e, const RowBinding& row);
  Result<Value> EvalBinaryOp(const Expr& e, const RowBinding& row);
  Result<Value> EvalUnaryOp(const Expr& e, const RowBinding& row);
  Result<Value> EvalSubquery(const Expr& e, const RowBinding& row);

  ExecContext& ec_;
  const std::unordered_map<const Expr*, Value>* agg_values_ = nullptr;
};

struct QueryOutput {
  std::vector<std::string> columns;
  std::vector<ValueList> rows;
  // Source-row snapshots parallel to `rows`, so ORDER BY can reference
  // un-projected source columns (SELECT UPPER(a) FROM t ORDER BY b). Empty
  // after UNION, where standard SQL only allows output columns anyway.
  std::vector<std::string> source_names;
  std::vector<ValueList> source_rows;
};

// Runs a SELECT (including UNION chains) and returns its rows.
Result<QueryOutput> RunSelect(ExecContext& ec, const SelectStmt& select);

// Optimizer pass: constant-folds literal casts (cast-layer bugs can fire at
// the optimize stage here) and performs structural fault checks on function
// expressions (plan-construction bugs).
Status OptimizeStatement(ExecContext& ec, Statement& stmt);

// Builds a FunctionContext bound to the database's configuration.
FunctionContext MakeFunctionContext(ExecContext& ec);

// Fault-checked cast used by explicit CASTs, implicit coercions in UNION
// column unification, and INSERT column conversion.
Result<Value> CheckedCast(ExecContext& ec, const Value& v, TypeKind target);

}  // namespace soft

#endif  // SRC_ENGINE_EXEC_INTERNAL_H_
