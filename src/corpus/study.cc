#include "src/corpus/study.h"

#include <cassert>
#include <set>

#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

// Marginals reported by the paper.
//
// Table 1: bugs per DBMS.
constexpr int kPostgresBugs = 39;
constexpr int kMysqlBugs = 10;
constexpr int kMariadbBugs = 269;

// Finding 1: stages among the 230 bugs with identifiable backtraces.
constexpr int kStageExecute = 161;
constexpr int kStageOptimize = 45;
constexpr int kStageParse = 24;

// Table 2: statements by function-expression count (>=5 capped at 5 so that
// total occurrences come out at the paper's 508).
constexpr int kExprCount1 = 191;
constexpr int kExprCount2 = 87;
constexpr int kExprCount3 = 23;
constexpr int kExprCount4 = 11;
constexpr int kExprCount5 = 6;

// Figure 1 occurrences / unique functions per type. Only the string bar
// (117/57) and the aggregate occurrence count (91) are stated numerically;
// the other bars are reconstructed to sum to 508 (see study.h header).
struct TypeBar {
  const char* type;
  int occurrences;
  int unique_functions;
};
constexpr TypeBar kTypeBars[] = {
    {"string", 117, 57},   {"aggregate", 91, 23}, {"math", 55, 21},
    {"date", 52, 24},      {"json", 38, 14},      {"casting", 35, 12},
    {"spatial", 33, 17},   {"condition", 30, 10}, {"system", 28, 13},
    {"xml", 12, 5},        {"other", 11, 6},      {"sequence", 6, 3},
};

// Finding 4.
constexpr int kPrereqTableAndData = 151;
constexpr int kPrereqNone = 132;
constexpr int kPrereqEmptyTable = 35;

// Section 5 root causes.
constexpr int kCauseLiteral = 94;
constexpr int kCauseCast = 74;
constexpr int kCauseNested = 110;
constexpr int kCauseConfig = 8;
constexpr int kCauseTableDef = 24;
constexpr int kCauseSyntax = 8;

// Section 6 literal sub-classes (of the 94 literal-caused bugs).
constexpr int kLiteralExtremeNumeric = 32;
constexpr int kLiteralEmptyOrNull = 21;
constexpr int kLiteralCraftedFormat = 41;

}  // namespace

BugStudy::BugStudy() {
  // Corpus construction cost flows into the process-wide named histogram
  // (see the timer destructor at the end of this constructor) — the same
  // telemetry path the engine stages use, not a private chrono stopwatch.
  const telemetry::WallTimer build_timer;
  constexpr int kTotal = 318;
  bugs_.resize(kTotal);

  // Attribute pools, consumed positionally. Using plain positional
  // assignment keeps the construction deterministic; the joint distribution
  // is synthetic by design (study.h).
  int idx = 0;
  for (StudiedBug& bug : bugs_) {
    bug.id = ++idx;
  }

  // DBMS.
  {
    int i = 0;
    for (int k = 0; k < kPostgresBugs; ++k) {
      bugs_[i++].dbms = "postgresql";
    }
    for (int k = 0; k < kMysqlBugs; ++k) {
      bugs_[i++].dbms = "mysql";
    }
    for (int k = 0; k < kMariadbBugs; ++k) {
      bugs_[i++].dbms = "mariadb";
    }
    assert(i == kTotal);
  }

  // Stage: first 230 get backtraces, the rest stay nullopt. Stride the
  // assignment (i % 318) so stages spread across DBMSs.
  {
    int i = 0;
    for (int k = 0; k < kStageExecute; ++k) {
      bugs_[i++].stage = Stage::kExecute;
    }
    for (int k = 0; k < kStageOptimize; ++k) {
      bugs_[i++].stage = Stage::kOptimize;
    }
    for (int k = 0; k < kStageParse; ++k) {
      bugs_[i++].stage = Stage::kParse;
    }
  }

  // Expression counts (Table 2).
  std::vector<int> expr_counts;
  expr_counts.insert(expr_counts.end(), kExprCount1, 1);
  expr_counts.insert(expr_counts.end(), kExprCount2, 2);
  expr_counts.insert(expr_counts.end(), kExprCount3, 3);
  expr_counts.insert(expr_counts.end(), kExprCount4, 4);
  expr_counts.insert(expr_counts.end(), kExprCount5, 5);
  assert(static_cast<int>(expr_counts.size()) == kTotal);
  // Interleave counts so multi-expression bugs spread over the corpus:
  // simple deterministic permutation i -> (i * 131) % 318 (131 coprime 318).
  for (int i = 0; i < kTotal; ++i) {
    const int count = expr_counts[static_cast<size_t>((i * 131) % kTotal)];
    bugs_[static_cast<size_t>(i)].expr_types.resize(static_cast<size_t>(count));
    bugs_[static_cast<size_t>(i)].expr_functions.resize(static_cast<size_t>(count));
  }

  // Function types per occurrence (Figure 1): fill a 508-slot pool, then
  // deal it across the occurrence slots. Function names cycle through each
  // type's unique-function set so the unique counts come out exactly.
  {
    std::vector<std::pair<std::string, std::string>> occurrence_pool;  // (type, fn)
    for (const TypeBar& bar : kTypeBars) {
      for (int k = 0; k < bar.occurrences; ++k) {
        const int fn_index = k % bar.unique_functions;
        // Every unique function appears at least once because occurrences
        // >= unique_functions for every bar.
        occurrence_pool.emplace_back(
            bar.type, std::string(bar.type) + "_fn_" + std::to_string(fn_index + 1));
      }
    }
    assert(occurrence_pool.size() == 508u);
    size_t pool_i = 0;
    for (StudiedBug& bug : bugs_) {
      for (size_t e = 0; e < bug.expr_types.size(); ++e) {
        bug.expr_types[e] = occurrence_pool[pool_i].first;
        bug.expr_functions[e] = occurrence_pool[pool_i].second;
        ++pool_i;
      }
    }
    assert(pool_i == occurrence_pool.size());
  }

  // Prerequisites (Finding 4), strided like the expression counts.
  {
    std::vector<StudiedBug::Prereq> pool;
    pool.insert(pool.end(), kPrereqTableAndData, StudiedBug::Prereq::kTableAndData);
    pool.insert(pool.end(), kPrereqNone, StudiedBug::Prereq::kNone);
    pool.insert(pool.end(), kPrereqEmptyTable, StudiedBug::Prereq::kEmptyTable);
    for (int i = 0; i < kTotal; ++i) {
      bugs_[static_cast<size_t>(i)].prereq = pool[static_cast<size_t>((i * 173) % kTotal)];
    }
  }

  // Root causes + literal sub-classes.
  {
    std::vector<StudiedBug::RootCause> pool;
    pool.insert(pool.end(), kCauseLiteral, StudiedBug::RootCause::kBoundaryLiteral);
    pool.insert(pool.end(), kCauseCast, StudiedBug::RootCause::kBoundaryCast);
    pool.insert(pool.end(), kCauseNested, StudiedBug::RootCause::kBoundaryNested);
    pool.insert(pool.end(), kCauseConfig, StudiedBug::RootCause::kConfiguration);
    pool.insert(pool.end(), kCauseTableDef, StudiedBug::RootCause::kTableDefinition);
    pool.insert(pool.end(), kCauseSyntax, StudiedBug::RootCause::kComplexSyntax);
    std::vector<StudiedBug::LiteralClass> literal_pool;
    literal_pool.insert(literal_pool.end(), kLiteralExtremeNumeric,
                        StudiedBug::LiteralClass::kExtremeNumeric);
    literal_pool.insert(literal_pool.end(), kLiteralEmptyOrNull,
                        StudiedBug::LiteralClass::kEmptyOrNull);
    literal_pool.insert(literal_pool.end(), kLiteralCraftedFormat,
                        StudiedBug::LiteralClass::kCraftedFormat);
    size_t literal_i = 0;
    for (int i = 0; i < kTotal; ++i) {
      StudiedBug& bug = bugs_[static_cast<size_t>(i)];
      bug.cause = pool[static_cast<size_t>(i)];
      if (bug.cause == StudiedBug::RootCause::kBoundaryLiteral) {
        bug.literal_class = literal_pool[literal_i++];
      }
    }
    assert(literal_i == literal_pool.size());
  }
  telemetry::RecordNamedLatency("study_corpus_build", build_timer.ElapsedNs());
}

const BugStudy& BugStudy::Instance() {
  static const BugStudy* kInstance = new BugStudy();
  return *kInstance;
}

std::map<std::string, int> BugStudy::CountByDbms() const {
  std::map<std::string, int> out;
  for (const StudiedBug& bug : bugs_) {
    out[bug.dbms] += 1;
  }
  return out;
}

BugStudy::StageStats BugStudy::CountByStage() const {
  StageStats out;
  for (const StudiedBug& bug : bugs_) {
    if (!bug.stage.has_value()) {
      ++out.without_backtrace;
      continue;
    }
    ++out.with_backtrace;
    switch (*bug.stage) {
      case Stage::kExecute:
        ++out.execute;
        break;
      case Stage::kOptimize:
        ++out.optimize;
        break;
      case Stage::kParse:
        ++out.parse;
        break;
    }
  }
  return out;
}

std::map<std::string, BugStudy::TypeStats> BugStudy::FunctionTypeStats() const {
  std::map<std::string, TypeStats> out;
  std::map<std::string, std::set<std::string>> unique;
  for (const StudiedBug& bug : bugs_) {
    for (size_t e = 0; e < bug.expr_types.size(); ++e) {
      out[bug.expr_types[e]].occurrences += 1;
      unique[bug.expr_types[e]].insert(bug.expr_functions[e]);
    }
  }
  for (auto& [type, stats] : out) {
    stats.unique_functions = static_cast<int>(unique[type].size());
  }
  return out;
}

int BugStudy::TotalOccurrences() const {
  int total = 0;
  for (const StudiedBug& bug : bugs_) {
    total += bug.expression_count();
  }
  return total;
}

std::map<int, int> BugStudy::CountByExpressionCount() const {
  std::map<int, int> out;
  for (const StudiedBug& bug : bugs_) {
    out[std::min(bug.expression_count(), 5)] += 1;
  }
  return out;
}

BugStudy::PrereqStats BugStudy::CountByPrereq() const {
  PrereqStats out;
  for (const StudiedBug& bug : bugs_) {
    switch (bug.prereq) {
      case StudiedBug::Prereq::kTableAndData:
        ++out.table_and_data;
        break;
      case StudiedBug::Prereq::kNone:
        ++out.none;
        break;
      case StudiedBug::Prereq::kEmptyTable:
        ++out.empty_table;
        break;
    }
  }
  return out;
}

BugStudy::CauseStats BugStudy::CountByCause() const {
  CauseStats out;
  for (const StudiedBug& bug : bugs_) {
    switch (bug.cause) {
      case StudiedBug::RootCause::kBoundaryLiteral:
        ++out.boundary_literal;
        break;
      case StudiedBug::RootCause::kBoundaryCast:
        ++out.boundary_cast;
        break;
      case StudiedBug::RootCause::kBoundaryNested:
        ++out.boundary_nested;
        break;
      case StudiedBug::RootCause::kConfiguration:
        ++out.configuration;
        break;
      case StudiedBug::RootCause::kTableDefinition:
        ++out.table_definition;
        break;
      case StudiedBug::RootCause::kComplexSyntax:
        ++out.complex_syntax;
        break;
    }
  }
  return out;
}

BugStudy::LiteralClassStats BugStudy::CountByLiteralClass() const {
  LiteralClassStats out;
  for (const StudiedBug& bug : bugs_) {
    switch (bug.literal_class) {
      case StudiedBug::LiteralClass::kExtremeNumeric:
        ++out.extreme_numeric;
        break;
      case StudiedBug::LiteralClass::kEmptyOrNull:
        ++out.empty_or_null;
        break;
      case StudiedBug::LiteralClass::kCraftedFormat:
        ++out.crafted_format;
        break;
      case StudiedBug::LiteralClass::kNotApplicable:
        break;
    }
  }
  return out;
}

}  // namespace soft
