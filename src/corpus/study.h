// The 318-bug study corpus (Sections 3–6).
//
// The paper mines PostgreSQL/MySQL/MariaDB trackers for 318 SQL-function
// bugs and reports marginal statistics over five attributes: source DBMS
// (Table 1), crash stage (Finding 1), function types of the PoC's
// expressions (Figure 1 / Finding 2), expression count per bug-inducing
// statement (Table 2 / Finding 3), prerequisite statements (Finding 4), and
// root cause (Section 5, with the literal sub-classes of Section 6).
//
// The raw tracker pages are not redistributable, so the corpus here is
// SYNTHESIZED: 318 records whose marginal distributions equal every number
// the paper reports (the joint distribution is an arbitrary consistent
// assignment). Figure 1 gives exact values only for string (117/57) and
// aggregate (91) bars; the remaining bars are reconstructed to the stated
// total of 508 occurrences and flagged as approximate in EXPERIMENTS.md.
// All statistics in the analysis API are *computed from the records*, not
// hard-coded, so the consistency of the reconstruction is testable.
#ifndef SRC_CORPUS_STUDY_H_
#define SRC_CORPUS_STUDY_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault.h"

namespace soft {

struct StudiedBug {
  int id = 0;
  std::string dbms;  // "postgresql" | "mysql" | "mariadb"

  // Crash stage from the report's backtrace; nullopt when the report had no
  // identifiable backtrace (88 of 318).
  std::optional<Stage> stage;

  // Function type of each SQL function expression in the PoC (Figure 1
  // counts occurrences, so one bug contributes expr_types.size() of them)
  // and the (anonymized) function name per occurrence.
  std::vector<std::string> expr_types;
  std::vector<std::string> expr_functions;

  enum class Prereq { kTableAndData, kNone, kEmptyTable };
  Prereq prereq = Prereq::kNone;

  enum class RootCause {
    kBoundaryLiteral,
    kBoundaryCast,
    kBoundaryNested,
    kConfiguration,
    kTableDefinition,
    kComplexSyntax,
  };
  RootCause cause = RootCause::kBoundaryLiteral;

  // Sub-class for boundary-literal bugs (Section 6 percentages).
  enum class LiteralClass { kNotApplicable, kExtremeNumeric, kEmptyOrNull, kCraftedFormat };
  LiteralClass literal_class = LiteralClass::kNotApplicable;

  int expression_count() const { return static_cast<int>(expr_types.size()); }
};

class BugStudy {
 public:
  // The canonical synthesized corpus (built once, deterministic).
  static const BugStudy& Instance();

  const std::vector<StudiedBug>& bugs() const { return bugs_; }
  int total() const { return static_cast<int>(bugs_.size()); }

  // Table 1.
  std::map<std::string, int> CountByDbms() const;

  // Finding 1.
  struct StageStats {
    int execute = 0;
    int optimize = 0;
    int parse = 0;
    int with_backtrace = 0;
    int without_backtrace = 0;
  };
  StageStats CountByStage() const;

  // Figure 1: per function type, (occurrences, unique functions).
  struct TypeStats {
    int occurrences = 0;
    int unique_functions = 0;
  };
  std::map<std::string, TypeStats> FunctionTypeStats() const;
  int TotalOccurrences() const;

  // Table 2: statement count keyed by expression count (5 means ">= 5").
  std::map<int, int> CountByExpressionCount() const;

  // Finding 4.
  struct PrereqStats {
    int table_and_data = 0;
    int none = 0;
    int empty_table = 0;
  };
  PrereqStats CountByPrereq() const;

  // Section 5 root causes + Section 6 literal sub-classes.
  struct CauseStats {
    int boundary_literal = 0;
    int boundary_cast = 0;
    int boundary_nested = 0;
    int configuration = 0;
    int table_definition = 0;
    int complex_syntax = 0;
    int boundary_total() const {
      return boundary_literal + boundary_cast + boundary_nested;
    }
  };
  CauseStats CountByCause() const;

  struct LiteralClassStats {
    int extreme_numeric = 0;
    int empty_or_null = 0;
    int crafted_format = 0;
  };
  LiteralClassStats CountByLiteralClass() const;

 private:
  BugStudy();
  std::vector<StudiedBug> bugs_;
};

}  // namespace soft

#endif  // SRC_CORPUS_STUDY_H_
