#include "src/sqlfunc/function.h"

#include <mutex>

#include "src/util/str_util.h"

namespace soft {

std::string_view FunctionTypeName(FunctionType type) {
  switch (type) {
    case FunctionType::kString:
      return "string";
    case FunctionType::kAggregate:
      return "aggregate";
    case FunctionType::kMath:
      return "math";
    case FunctionType::kDate:
      return "date";
    case FunctionType::kJson:
      return "json";
    case FunctionType::kXml:
      return "xml";
    case FunctionType::kSpatial:
      return "spatial";
    case FunctionType::kSystem:
      return "system";
    case FunctionType::kCondition:
      return "condition";
    case FunctionType::kCasting:
      return "casting";
    case FunctionType::kArray:
      return "array";
    case FunctionType::kMap:
      return "map";
    case FunctionType::kSequence:
      return "sequence";
  }
  return "unknown";
}

Result<std::string> FunctionContext::ArgString(const Value& v) const {
  SOFT_ASSIGN_OR_RETURN(Value s, CoerceValue(v, TypeKind::kString, cast_options_));
  if (s.is_null()) {
    return TypeError("NULL where string argument required");
  }
  return s.string_value();
}

Result<int64_t> FunctionContext::ArgInt(const Value& v) const {
  SOFT_ASSIGN_OR_RETURN(Value i, CoerceValue(v, TypeKind::kInt, cast_options_));
  if (i.is_null()) {
    return TypeError("NULL where integer argument required");
  }
  return i.int_value();
}

Result<double> FunctionContext::ArgDouble(const Value& v) const {
  SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(v, TypeKind::kDouble, cast_options_));
  if (d.is_null()) {
    return TypeError("NULL where double argument required");
  }
  return d.double_value();
}

Result<Decimal> FunctionContext::ArgDecimal(const Value& v) const {
  SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(v, TypeKind::kDecimal, cast_options_));
  if (d.is_null()) {
    return TypeError("NULL where decimal argument required");
  }
  return d.decimal_value();
}

void FunctionRegistry::Register(FunctionDef def) {
  def.name = AsciiUpper(def.name);
  functions_[def.name] = std::move(def);
}

const FunctionDef* FunctionRegistry::Find(std::string_view name) const {
  const std::string upper = AsciiUpper(name);
  const auto it = functions_.find(upper);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<const FunctionDef*> FunctionRegistry::All() const {
  std::vector<const FunctionDef*> out;
  out.reserve(functions_.size());
  for (const auto& [name, def] : functions_) {
    out.push_back(&def);
  }
  return out;
}

void FunctionRegistry::Remove(std::string_view name) {
  functions_.erase(AsciiUpper(name));
}

const FunctionRegistry& BuiltinRegistry() {
  // Not a magic static: the prototype is reachable from every campaign shard
  // thread, so the one-time category registration is call_once-guarded and
  // the storage is never torn down (immutable after init).
  static std::once_flag once;
  static const FunctionRegistry* prototype = nullptr;
  std::call_once(once, [] {
    auto* registry = new FunctionRegistry();
    RegisterStringFunctions(*registry);
    RegisterMathFunctions(*registry);
    RegisterDateFunctions(*registry);
    RegisterJsonFunctions(*registry);
    RegisterXmlFunctions(*registry);
    RegisterSpatialFunctions(*registry);
    RegisterSystemFunctions(*registry);
    RegisterConditionFunctions(*registry);
    RegisterCastingFunctions(*registry);
    RegisterArrayMapFunctions(*registry);
    RegisterSequenceFunctions(*registry);
    RegisterAggregateFunctions(*registry);
    prototype = registry;
  });
  return *prototype;
}

void RegisterAllBuiltins(FunctionRegistry& registry) {
  for (const FunctionDef* def : BuiltinRegistry().All()) {
    registry.Register(*def);
  }
}

}  // namespace soft
