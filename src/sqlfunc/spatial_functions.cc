// Built-in spatial functions.
//
// The MariaDB Case 6 chain — ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))
// — flows an inet blob into geometry code. The reference implementations here
// validate blob payloads via GeometryFromBinary before touching them; the
// injected spatial bugs key on exactly the unvalidated-blob condition.
#include <cmath>

#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<Geometry> ArgGeometry(FunctionContext& ctx, const Value& v) {
  switch (v.kind()) {
    case TypeKind::kGeometry:
      return v.geometry_value();
    case TypeKind::kString: {
      ctx.Cover(11);
      return ParseWkt(v.string_value());
    }
    case TypeKind::kBlob: {
      ctx.Cover(12);
      return GeometryFromBinary(v.blob_value());
    }
    default:
      return TypeError("argument is not a geometry");
  }
}

Result<Value> FnStGeomFromText(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string wkt, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(Geometry g, ParseWkt(wkt));
  return Value::GeoVal(std::move(g));
}

Result<Value> FnStAsText(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  return Value::Str(GeometryToWkt(g));
}

Result<Value> FnStAsBinary(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  return Value::BlobVal(GeometryToBinary(g));
}

Result<Value> FnBoundary(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  const Result<Geometry> boundary = GeometryBoundary(g);
  if (!boundary.ok()) {
    ctx.Cover(1);
    return Value::Null();  // empty boundary → NULL
  }
  return Value::GeoVal(*boundary);
}

Result<Value> FnPoint(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double x, ctx.ArgDouble(args[0]));
  SOFT_ASSIGN_OR_RETURN(double y, ctx.ArgDouble(args[1]));
  Geometry g;
  g.kind = GeometryKind::kPoint;
  g.points = {GeoPoint{x, y}};
  return Value::GeoVal(std::move(g));
}

Result<Value> FnStX(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  if (g.kind != GeometryKind::kPoint) {
    ctx.Cover(1);
    return InvalidArgument("ST_X requires a POINT");
  }
  return Value::DoubleVal(g.points[0].x);
}

Result<Value> FnStY(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  if (g.kind != GeometryKind::kPoint) {
    ctx.Cover(1);
    return InvalidArgument("ST_Y requires a POINT");
  }
  return Value::DoubleVal(g.points[0].y);
}

Result<Value> FnStNumPoints(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  return Value::Int(static_cast<int64_t>(g.points.size()));
}

Result<Value> FnStLength(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry g, ArgGeometry(ctx, args[0]));
  if (g.kind == GeometryKind::kPoint) {
    ctx.Cover(1);
    return Value::DoubleVal(0);
  }
  double total = 0;
  for (size_t i = 1; i < g.points.size(); ++i) {
    const double dx = g.points[i].x - g.points[i - 1].x;
    const double dy = g.points[i].y - g.points[i - 1].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  return Value::DoubleVal(total);
}

Result<Value> FnStDistance(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry a, ArgGeometry(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(Geometry b, ArgGeometry(ctx, args[1]));
  if (a.kind != GeometryKind::kPoint || b.kind != GeometryKind::kPoint) {
    ctx.Cover(1);
    return InvalidArgument("ST_DISTANCE supports POINT arguments only");
  }
  const double dx = a.points[0].x - b.points[0].x;
  const double dy = a.points[0].y - b.points[0].y;
  return Value::DoubleVal(std::sqrt(dx * dx + dy * dy));
}

Result<Value> FnStEquals(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Geometry a, ArgGeometry(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(Geometry b, ArgGeometry(ctx, args[1]));
  return Value::Boolean(a == b);
}

Result<Value> FnStIsValid(FunctionContext& ctx, const ValueList& args) {
  // Accepts anything geometry-shaped; returns false instead of erroring when
  // the payload fails to decode.
  const Result<Geometry> g = ArgGeometry(ctx, args[0]);
  if (!g.ok()) {
    ctx.Cover(1);
    return Value::Boolean(false);
  }
  if (g->kind == GeometryKind::kPolygon &&
      !(g->points.front() == g->points.back())) {
    ctx.Cover(2);
    return Value::Boolean(false);  // unclosed ring
  }
  return Value::Boolean(true);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kSpatial;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterSpatialFunctions(FunctionRegistry& r) {
  Reg(r, "ST_GEOMFROMTEXT", 1, 1, FnStGeomFromText, "Geometry from WKT",
      "ST_GEOMFROMTEXT('POINT(1 2)')");
  Reg(r, "ST_ASTEXT", 1, 1, FnStAsText, "Geometry to WKT",
      "ST_ASTEXT(POINT(1, 2))");
  Reg(r, "ST_ASBINARY", 1, 1, FnStAsBinary, "Geometry to binary",
      "ST_ASBINARY(POINT(1, 2))");
  Reg(r, "BOUNDARY", 1, 1, FnBoundary, "Topological boundary",
      "BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))");
  Reg(r, "POINT", 2, 2, FnPoint, "Point from coordinates", "POINT(1, 2)");
  Reg(r, "ST_X", 1, 1, FnStX, "X coordinate of a point", "ST_X(POINT(1, 2))");
  Reg(r, "ST_Y", 1, 1, FnStY, "Y coordinate of a point", "ST_Y(POINT(1, 2))");
  Reg(r, "ST_NUMPOINTS", 1, 1, FnStNumPoints, "Vertex count",
      "ST_NUMPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))");
  Reg(r, "ST_LENGTH", 1, 1, FnStLength, "Length of a linestring",
      "ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))");
  Reg(r, "ST_DISTANCE", 2, 2, FnStDistance, "Distance between points",
      "ST_DISTANCE(POINT(0, 0), POINT(3, 4))");
  Reg(r, "ST_EQUALS", 2, 2, FnStEquals, "Geometry equality",
      "ST_EQUALS(POINT(1, 2), POINT(1, 2))");
  Reg(r, "ST_ISVALID", 1, 1, FnStIsValid, "Validity check",
      "ST_ISVALID(POINT(1, 2))");
}

}  // namespace soft
