// Built-in casting / conversion functions.
//
// These are explicit-function-call forms of the cast matrix (CONVERT,
// TO_NUMBER, TODECIMALSTRING, INET codecs, ...). The ClickHouse
// toDecimalString null-pointer dereference that opens the paper lives on this
// surface: its precision argument accepted '*' without validation.
#include <cstdio>

#include "src/sqlfunc/function.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

Result<Value> FnConvert(FunctionContext& ctx, const ValueList& args) {
  // CONVERT(value, 'TYPE') — the type name arrives as a string argument
  // (MySQL also allows bare keywords; the parser delivers them as column
  // refs which the engine stringifies before this point).
  SOFT_ASSIGN_OR_RETURN(std::string type_name, ctx.ArgString(args[1]));
  const std::optional<TypeKind> kind = ParseTypeName(type_name);
  if (!kind.has_value()) {
    ctx.Cover(1);
    return InvalidArgument("unknown conversion type '" + type_name + "'");
  }
  return CastValue(args[0], *kind, ctx.cast_options());
}

Result<Value> FnToNumber(FunctionContext& ctx, const ValueList& args) {
  return CastValue(args[0], TypeKind::kDecimal, ctx.cast_options());
}

Result<Value> FnToChar(FunctionContext& ctx, const ValueList& args) {
  return CastValue(args[0], TypeKind::kString, ctx.cast_options());
}

// TODECIMALSTRING(value, precision) — ClickHouse-style: renders a decimal
// with exactly `precision` fractional digits. Reference behaviour validates
// the precision argument (the bug in Listing 1 was a '*' flowing in).
Result<Value> FnToDecimalString(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Decimal d, ctx.ArgDecimal(args[0]));
  if (args[1].is_star()) {
    ctx.Cover(1);
    return InvalidArgument("precision argument must be an integer, not '*'");
  }
  SOFT_ASSIGN_OR_RETURN(int64_t precision, ctx.ArgInt(args[1]));
  if (precision < 0 || precision > 77) {
    ctx.Cover(2);
    return InvalidArgument("precision out of range [0, 77]");
  }
  return Value::Str(d.Rounded(static_cast<int>(precision)).ToString());
}

Result<Value> FnInet6Aton(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(args[0]));
  const Result<InetAddr> addr = ParseInet(text);
  if (!addr.ok()) {
    ctx.Cover(1);
    return Value::Null();  // MySQL: invalid address → NULL
  }
  return Value::BlobVal(InetToBinary(*addr));
}

Result<Value> FnInet6Ntoa(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kBlob) {
    ctx.Cover(1);
    return Value::Null();
  }
  const Result<InetAddr> addr = InetFromBinary(args[0].blob_value());
  if (!addr.ok()) {
    ctx.Cover(2);
    return Value::Null();
  }
  return Value::Str(FormatInet(*addr));
}

Result<Value> FnInetAton(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(args[0]));
  const Result<InetAddr> addr = ParseInet(text);
  if (!addr.ok() || !addr->is_v4) {
    ctx.Cover(1);
    return Value::Null();
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | addr->bytes[12 + i];
  }
  return Value::Int(static_cast<int64_t>(v));
}

Result<Value> FnInetNtoa(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t v, ctx.ArgInt(args[0]));
  if (v < 0 || v > 0xFFFFFFFFll) {
    ctx.Cover(1);
    return Value::Null();
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", static_cast<unsigned>((v >> 24) & 0xFF),
                static_cast<unsigned>((v >> 16) & 0xFF),
                static_cast<unsigned>((v >> 8) & 0xFF), static_cast<unsigned>(v & 0xFF));
  return Value::Str(buf);
}

Result<Value> FnToDate(FunctionContext& ctx, const ValueList& args) {
  return CastValue(args[0], TypeKind::kDate, ctx.cast_options());
}

Result<Value> FnToTimestamp(FunctionContext& ctx, const ValueList& args) {
  return CastValue(args[0], TypeKind::kDateTime, ctx.cast_options());
}

Result<Value> FnToJson(FunctionContext& ctx, const ValueList& args) {
  return CastValue(args[0], TypeKind::kJson, ctx.cast_options());
}

Result<Value> FnBin(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t v, ctx.ArgInt(args[0]));
  if (v == 0) {
    ctx.Cover(1);
    return Value::Str("0");
  }
  uint64_t u = static_cast<uint64_t>(v);
  std::string out;
  while (u != 0) {
    out.insert(out.begin(), static_cast<char>('0' + (u & 1)));
    u >>= 1;
  }
  return Value::Str(std::move(out));
}

Result<Value> FnOct(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t v, ctx.ArgInt(args[0]));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llo", static_cast<unsigned long long>(v));
  return Value::Str(buf);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kCasting;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterCastingFunctions(FunctionRegistry& r) {
  Reg(r, "CONVERT", 2, 2, FnConvert, "Convert to a named type",
      "CONVERT('12', 'SIGNED')");
  Reg(r, "TO_NUMBER", 1, 1, FnToNumber, "Text to exact decimal", "TO_NUMBER('1.5')");
  Reg(r, "TO_CHAR", 1, 1, FnToChar, "Any value to text", "TO_CHAR(1.5)");
  Reg(r, "TODECIMALSTRING", 2, 2, FnToDecimalString,
      "Decimal rendered with fixed fractional digits", "TODECIMALSTRING(1.5, 4)");
  Reg(r, "INET6_ATON", 1, 1, FnInet6Aton, "Address text to binary",
      "INET6_ATON('255.255.255.255')");
  Reg(r, "INET6_NTOA", 1, 1, FnInet6Ntoa, "Binary address to text",
      "INET6_NTOA(INET6_ATON('::1'))");
  Reg(r, "INET_ATON", 1, 1, FnInetAton, "IPv4 text to integer",
      "INET_ATON('10.0.0.1')");
  Reg(r, "INET_NTOA", 1, 1, FnInetNtoa, "Integer to IPv4 text", "INET_NTOA(167772161)");
  Reg(r, "TO_DATE", 1, 1, FnToDate, "Text to DATE", "TO_DATE('2024-06-15')");
  Reg(r, "TO_TIMESTAMP", 1, 1, FnToTimestamp, "Text to DATETIME",
      "TO_TIMESTAMP('2024-06-15 10:00:00')");
  Reg(r, "TO_JSON", 1, 1, FnToJson, "Value to JSON", "TO_JSON('[1,2]')");
  Reg(r, "BIN", 1, 1, FnBin, "Integer to binary text", "BIN(7)");
  Reg(r, "OCT", 1, 1, FnOct, "Integer to octal text", "OCT(8)");
}

}  // namespace soft
