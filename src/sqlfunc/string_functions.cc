// Built-in string functions.
//
// String functions are the paper's largest bug category (57 distinct buggy
// functions, 23.0% of occurrences — Finding 2). Implementations are written
// with explicit boundary branches (negative positions, zero lengths,
// past-the-end indexes, oversized repeats) and report them through
// FunctionContext::Cover so the coverage experiments measure real behaviour.
#include <algorithm>
#include <cctype>
#include <cstdio>

#include "src/sqlfunc/function.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

Result<Value> FnLength(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  if (s.empty()) {
    ctx.Cover(1);
  }
  return Value::Int(static_cast<int64_t>(s.size()));
}

Result<Value> FnUpper(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(AsciiUpper(s));
}

Result<Value> FnLower(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(AsciiLower(s));
}

Result<Value> FnConcat(FunctionContext& ctx, const ValueList& args) {
  std::string out;
  for (const Value& v : args) {
    SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(v));
    if (out.size() + s.size() > ctx.limits().max_string_len) {
      ctx.Cover(1);
      return ResourceExhausted("CONCAT result exceeds engine string limit");
    }
    out += s;
  }
  return Value::Str(std::move(out));
}

Result<Value> FnConcatWs(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string sep, ctx.ArgString(args[0]));
  std::string out;
  bool first = true;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].is_null()) {
      ctx.Cover(1);  // CONCAT_WS skips NULLs rather than propagating
      continue;
    }
    SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[i]));
    if (!first) {
      out += sep;
    }
    first = false;
    out += s;
    if (out.size() > ctx.limits().max_string_len) {
      ctx.Cover(2);
      return ResourceExhausted("CONCAT_WS result exceeds engine string limit");
    }
  }
  return Value::Str(std::move(out));
}

// SUBSTR(s, pos[, len]) with 1-based positions; negative pos counts from the
// end (MySQL semantics).
Result<Value> FnSubstr(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t pos, ctx.ArgInt(args[1]));
  int64_t len = static_cast<int64_t>(s.size());
  if (args.size() >= 3) {
    SOFT_ASSIGN_OR_RETURN(len, ctx.ArgInt(args[2]));
  }
  if (pos == 0) {
    ctx.Cover(1);
    return Value::Str("");
  }
  if (pos < 0) {
    ctx.Cover(2);
    pos = static_cast<int64_t>(s.size()) + pos + 1;
    if (pos <= 0) {
      ctx.Cover(3);
      return Value::Str("");
    }
  }
  if (pos > static_cast<int64_t>(s.size())) {
    ctx.Cover(4);
    return Value::Str("");
  }
  if (len <= 0) {
    ctx.Cover(5);
    return Value::Str("");
  }
  const size_t start = static_cast<size_t>(pos - 1);
  const size_t count = std::min<size_t>(static_cast<size_t>(len), s.size() - start);
  return Value::Str(s.substr(start, count));
}

Result<Value> FnLeft(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[1]));
  if (n <= 0) {
    ctx.Cover(1);
    return Value::Str("");
  }
  if (n >= static_cast<int64_t>(s.size())) {
    ctx.Cover(2);
    return Value::Str(std::move(s));
  }
  return Value::Str(s.substr(0, static_cast<size_t>(n)));
}

Result<Value> FnRight(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[1]));
  if (n <= 0) {
    ctx.Cover(1);
    return Value::Str("");
  }
  if (n >= static_cast<int64_t>(s.size())) {
    ctx.Cover(2);
    return Value::Str(std::move(s));
  }
  return Value::Str(s.substr(s.size() - static_cast<size_t>(n)));
}

Result<Value> PadImpl(FunctionContext& ctx, const ValueList& args, bool left) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t len, ctx.ArgInt(args[1]));
  std::string pad = " ";
  if (args.size() >= 3) {
    SOFT_ASSIGN_OR_RETURN(pad, ctx.ArgString(args[2]));
  }
  if (len < 0) {
    ctx.Cover(1);
    return Value::Null();  // MySQL: negative target length → NULL
  }
  if (static_cast<size_t>(len) > ctx.limits().max_string_len) {
    ctx.Cover(2);
    return ResourceExhausted("pad target exceeds engine string limit");
  }
  if (static_cast<size_t>(len) <= s.size()) {
    ctx.Cover(3);
    return Value::Str(s.substr(0, static_cast<size_t>(len)));
  }
  if (pad.empty()) {
    ctx.Cover(4);
    return Value::Str("");  // MySQL: empty pad cannot reach target → ''
  }
  std::string fill;
  while (fill.size() < static_cast<size_t>(len) - s.size()) {
    fill += pad;
  }
  fill.resize(static_cast<size_t>(len) - s.size());
  return Value::Str(left ? fill + s : s + fill);
}

Result<Value> FnLpad(FunctionContext& ctx, const ValueList& args) {
  return PadImpl(ctx, args, /*left=*/true);
}
Result<Value> FnRpad(FunctionContext& ctx, const ValueList& args) {
  return PadImpl(ctx, args, /*left=*/false);
}

Result<Value> TrimImpl(FunctionContext& ctx, const ValueList& args, bool left, bool right) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  size_t begin = 0;
  size_t end = s.size();
  if (left) {
    while (begin < end && s[begin] == ' ') {
      ++begin;
    }
  }
  if (right) {
    while (end > begin && s[end - 1] == ' ') {
      --end;
    }
  }
  if (begin == end) {
    ctx.Cover(1);
  }
  return Value::Str(s.substr(begin, end - begin));
}

Result<Value> FnTrim(FunctionContext& ctx, const ValueList& args) {
  return TrimImpl(ctx, args, true, true);
}
Result<Value> FnLtrim(FunctionContext& ctx, const ValueList& args) {
  return TrimImpl(ctx, args, true, false);
}
Result<Value> FnRtrim(FunctionContext& ctx, const ValueList& args) {
  return TrimImpl(ctx, args, false, true);
}

Result<Value> FnReplace(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string from, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(std::string to, ctx.ArgString(args[2]));
  if (from.empty()) {
    ctx.Cover(1);
    return Value::Str(std::move(s));
  }
  if (to.size() > from.size() && !s.empty()) {
    // Growth path: check the worst-case output size before substituting.
    const size_t occurrences = [&] {
      size_t n = 0;
      size_t pos = 0;
      while ((pos = s.find(from, pos)) != std::string::npos) {
        ++n;
        pos += from.size();
      }
      return n;
    }();
    if (s.size() + occurrences * (to.size() - from.size()) > ctx.limits().max_string_len) {
      ctx.Cover(2);
      return ResourceExhausted("REPLACE result exceeds engine string limit");
    }
  }
  return Value::Str(ReplaceAll(s, from, to));
}

Result<Value> FnRepeat(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[1]));
  if (n <= 0) {
    ctx.Cover(1);
    return Value::Str("");
  }
  if (n > ctx.limits().max_repeat_count ||
      s.size() * static_cast<uint64_t>(n) > ctx.limits().max_string_len) {
    ctx.Cover(2);
    return ResourceExhausted("REPEAT result exceeds engine string limit");
  }
  std::string out;
  out.reserve(s.size() * static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out += s;
  }
  return Value::Str(std::move(out));
}

Result<Value> FnReverse(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  std::reverse(s.begin(), s.end());
  return Value::Str(std::move(s));
}

Result<Value> FnInstr(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string sub, ctx.ArgString(args[1]));
  if (sub.empty()) {
    ctx.Cover(1);
    return Value::Int(1);
  }
  const size_t pos = s.find(sub);
  if (pos == std::string::npos) {
    ctx.Cover(2);
    return Value::Int(0);
  }
  return Value::Int(static_cast<int64_t>(pos) + 1);
}

Result<Value> FnLocate(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string sub, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[1]));
  int64_t start = 1;
  if (args.size() >= 3) {
    SOFT_ASSIGN_OR_RETURN(start, ctx.ArgInt(args[2]));
  }
  if (start < 1 || start > static_cast<int64_t>(s.size()) + 1) {
    ctx.Cover(1);
    return Value::Int(0);
  }
  const size_t pos = s.find(sub, static_cast<size_t>(start - 1));
  return Value::Int(pos == std::string::npos ? 0 : static_cast<int64_t>(pos) + 1);
}

Result<Value> FnAscii(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  if (s.empty()) {
    ctx.Cover(1);
    return Value::Int(0);
  }
  return Value::Int(static_cast<unsigned char>(s[0]));
}

Result<Value> FnChr(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t code, ctx.ArgInt(args[0]));
  if (code < 0 || code > 0x10FFFF) {
    ctx.Cover(1);
    return InvalidArgument("character code out of range");
  }
  if (code > 255) {
    ctx.Cover(2);
    // Encode as UTF-8.
    std::string out;
    if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return Value::Str(std::move(out));
  }
  return Value::Str(std::string(1, static_cast<char>(code)));
}

Result<Value> FnSpace(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[0]));
  if (n <= 0) {
    ctx.Cover(1);
    return Value::Str("");
  }
  if (static_cast<uint64_t>(n) > ctx.limits().max_string_len) {
    ctx.Cover(2);
    return ResourceExhausted("SPACE result exceeds engine string limit");
  }
  return Value::Str(std::string(static_cast<size_t>(n), ' '));
}

// FORMAT(number, decimal_places[, locale]) — formats with thousands
// separators. The reference implementation clamps decimal places at 38 and
// never switches to scientific notation, closing the MDEV-23415 hole; the
// buggy MariaDB dialect path is injected at the fault layer.
Result<Value> FnFormat(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Decimal num, ctx.ArgDecimal(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t places, ctx.ArgInt(args[1]));
  if (args.size() >= 3) {
    SOFT_ASSIGN_OR_RETURN(std::string locale, ctx.ArgString(args[2]));
    if (locale.size() != 5 || locale[2] != '_') {
      ctx.Cover(1);
      return InvalidArgument("unknown locale '" + locale + "'");
    }
  }
  if (places < 0) {
    ctx.Cover(2);
    places = 0;
  }
  if (places > 38) {
    ctx.Cover(3);
    places = 38;  // clamp (the fixed behaviour)
  }
  const Decimal rounded = num.Rounded(static_cast<int>(places));
  std::string text = rounded.ToString();
  // Insert thousands separators into the integer part.
  const size_t dot = text.find('.');
  size_t int_end = dot == std::string::npos ? text.size() : dot;
  size_t int_begin = text[0] == '-' ? 1 : 0;
  std::string grouped = text.substr(0, int_begin);
  const std::string int_part = text.substr(int_begin, int_end - int_begin);
  for (size_t i = 0; i < int_part.size(); ++i) {
    if (i > 0 && (int_part.size() - i) % 3 == 0) {
      grouped.push_back(',');
    }
    grouped.push_back(int_part[i]);
  }
  grouped += text.substr(int_end);
  return Value::Str(std::move(grouped));
}

Result<Value> FnHex(FunctionContext& ctx, const ValueList& args) {
  std::string bytes;
  if (args[0].kind() == TypeKind::kBlob) {
    ctx.Cover(1);
    bytes = args[0].blob_value();
  } else if (args[0].kind() == TypeKind::kInt) {
    ctx.Cover(2);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llX",
                  static_cast<unsigned long long>(args[0].int_value()));
    return Value::Str(buf);
  } else {
    SOFT_ASSIGN_OR_RETURN(bytes, ctx.ArgString(args[0]));
  }
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return Value::Str(std::move(out));
}

Result<Value> FnUnhex(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  if (s.size() % 2 != 0) {
    ctx.Cover(1);
    return Value::Null();  // MySQL returns NULL for odd-length input
  }
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') {
        return c - '0';
      }
      if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
      }
      if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
      }
      return -1;
    };
    const int hi = nibble(s[i]);
    const int lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) {
      ctx.Cover(2);
      return Value::Null();
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return Value::BlobVal(std::move(out));
}

// Deterministic 64-bit FNV-1a rendered as hex. Stands in for MD5/SHA1: the
// bug study only needs hash *functions* (fixed-width digest of a string),
// not cryptographic strength.
std::string FnvDigest(const std::string& s, int width) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  std::string out;
  static const char* kHex = "0123456789abcdef";
  uint64_t v = h;
  for (int i = 0; i < width; ++i) {
    out.push_back(kHex[v & 0xF]);
    v = (v >> 4) | (v << 60);
    v *= 0x9E3779B97F4A7C15ull;
    v ^= h;
  }
  return out;
}

Result<Value> FnMd5(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(FnvDigest(s, 32));
}

Result<Value> FnSha1(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(FnvDigest(s, 40));
}

Result<Value> FnStrcmp(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string a, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string b, ctx.ArgString(args[1]));
  const int c = a.compare(b);
  return Value::Int(c < 0 ? -1 : (c > 0 ? 1 : 0));
}

Result<Value> FnElt(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[0]));
  if (n < 1 || n >= static_cast<int64_t>(args.size())) {
    ctx.Cover(1);
    return Value::Null();
  }
  return args[static_cast<size_t>(n)];
}

Result<Value> FnField(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string needle, ctx.ArgString(args[0]));
  for (size_t i = 1; i < args.size(); ++i) {
    SOFT_ASSIGN_OR_RETURN(std::string hay, ctx.ArgString(args[i]));
    if (hay == needle) {
      return Value::Int(static_cast<int64_t>(i));
    }
  }
  ctx.Cover(1);
  return Value::Int(0);
}

Result<Value> FnSplitPart(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string delim, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[2]));
  if (n == 0) {
    ctx.Cover(1);
    return InvalidArgument("field position must not be zero");
  }
  if (delim.empty()) {
    ctx.Cover(2);
    return (n == 1 || n == -1) ? Value::Str(std::move(s)) : Value::Str("");
  }
  std::vector<std::string> parts;
  size_t pos = 0;
  for (;;) {
    const size_t hit = s.find(delim, pos);
    if (hit == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, hit - pos));
    pos = hit + delim.size();
  }
  int64_t idx = n > 0 ? n - 1 : static_cast<int64_t>(parts.size()) + n;
  if (idx < 0 || idx >= static_cast<int64_t>(parts.size())) {
    ctx.Cover(3);
    return Value::Str("");
  }
  return Value::Str(parts[static_cast<size_t>(idx)]);
}

Result<Value> FnTranslate(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string from, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(std::string to, ctx.ArgString(args[2]));
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const size_t idx = from.find(c);
    if (idx == std::string::npos) {
      out.push_back(c);
    } else if (idx < to.size()) {
      out.push_back(to[idx]);
    } else {
      ctx.Cover(1);  // mapped to nothing: deletion path
    }
  }
  return Value::Str(std::move(out));
}

Result<Value> FnInitcap(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  bool start = true;
  for (char& c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) {
      start = true;
    } else if (start) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      start = false;
    } else {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return Value::Str(std::move(s));
}

Result<Value> FnQuote(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(SqlQuote(s));
}

Result<Value> FnSoundex(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  auto code = [](char c) -> char {
    switch (std::toupper(static_cast<unsigned char>(c))) {
      case 'B':
      case 'F':
      case 'P':
      case 'V':
        return '1';
      case 'C':
      case 'G':
      case 'J':
      case 'K':
      case 'Q':
      case 'S':
      case 'X':
      case 'Z':
        return '2';
      case 'D':
      case 'T':
        return '3';
      case 'L':
        return '4';
      case 'M':
      case 'N':
        return '5';
      case 'R':
        return '6';
      default:
        return '0';
    }
  };
  std::string out;
  char last = '0';
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c)) == 0) {
      continue;
    }
    if (out.empty()) {
      out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      last = code(c);
      continue;
    }
    const char d = code(c);
    if (d != '0' && d != last) {
      out.push_back(d);
    }
    last = d;
  }
  if (out.empty()) {
    ctx.Cover(1);
    return Value::Str("");
  }
  while (out.size() < 4) {
    out.push_back('0');
  }
  return Value::Str(out.substr(0, 4));
}

constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

Result<Value> FnToBase64(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  std::string out;
  out.reserve((s.size() + 2) / 3 * 4);
  for (size_t i = 0; i < s.size(); i += 3) {
    uint32_t chunk = static_cast<unsigned char>(s[i]) << 16;
    int bytes = 1;
    if (i + 1 < s.size()) {
      chunk |= static_cast<unsigned char>(s[i + 1]) << 8;
      bytes = 2;
    }
    if (i + 2 < s.size()) {
      chunk |= static_cast<unsigned char>(s[i + 2]);
      bytes = 3;
    }
    out.push_back(kBase64Chars[(chunk >> 18) & 0x3F]);
    out.push_back(kBase64Chars[(chunk >> 12) & 0x3F]);
    out.push_back(bytes >= 2 ? kBase64Chars[(chunk >> 6) & 0x3F] : '=');
    out.push_back(bytes >= 3 ? kBase64Chars[chunk & 0x3F] : '=');
  }
  return Value::Str(std::move(out));
}

Result<Value> FnFromBase64(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  auto decode = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') {
      return c - 'A';
    }
    if (c >= 'a' && c <= 'z') {
      return c - 'a' + 26;
    }
    if (c >= '0' && c <= '9') {
      return c - '0' + 52;
    }
    if (c == '+') {
      return 62;
    }
    if (c == '/') {
      return 63;
    }
    return -1;
  };
  std::string out;
  uint32_t acc = 0;
  int bits = 0;
  for (char c : s) {
    if (c == '=' || std::isspace(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    const int v = decode(c);
    if (v < 0) {
      ctx.Cover(1);
      return Value::Null();
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((acc >> bits) & 0xFF));
    }
  }
  return Value::BlobVal(std::move(out));
}

// --- Tiny regular-expression engine ---------------------------------------
//
// Supports: literal characters, '.', '*' (postfix), '^'/'$' anchors, and
// character classes '[a-z]' with negation and '\xNN…' numeric escapes. The
// numeric-escape range path mirrors the CVE-2016-0773 surface: the reference
// implementation range-checks the codepoint; the PostgreSQL-dialect injected
// bug keys on codepoints at INT32_MAX.

struct RegexClass {
  bool negated = false;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  bool Matches(unsigned char c) const {
    bool hit = false;
    for (const auto& [lo, hi] : ranges) {
      if (c >= lo && c <= hi) {
        hit = true;
        break;
      }
    }
    return negated ? !hit : hit;
  }
};

struct RegexNode {
  enum Kind { kChar, kAny, kClass } kind = kChar;
  char ch = 0;
  RegexClass cls;
  bool star = false;
};

struct RegexProgram {
  bool anchored_start = false;
  bool anchored_end = false;
  std::vector<RegexNode> nodes;
};

Result<int64_t> ParseRegexEscape(std::string_view pattern, size_t& i) {
  // At pattern[i] == '\\'.
  ++i;
  if (i >= pattern.size()) {
    return InvalidArgument("trailing backslash in regex");
  }
  const char c = pattern[i];
  if (c == 'x') {
    ++i;
    int64_t code = 0;
    size_t digits = 0;
    while (i < pattern.size() && digits < 16 &&
           std::isxdigit(static_cast<unsigned char>(pattern[i])) != 0) {
      const char h = pattern[i];
      int v = 0;
      if (h >= '0' && h <= '9') {
        v = h - '0';
      } else if (h >= 'a' && h <= 'f') {
        v = h - 'a' + 10;
      } else {
        v = h - 'A' + 10;
      }
      code = code * 16 + v;
      ++i;
      ++digits;
    }
    --i;  // caller advances
    if (digits == 0) {
      return InvalidArgument("empty \\x escape in regex");
    }
    return code;
  }
  switch (c) {
    case 'n':
      return static_cast<int64_t>('\n');
    case 't':
      return static_cast<int64_t>('\t');
    case 'r':
      return static_cast<int64_t>('\r');
    default:
      return static_cast<int64_t>(static_cast<unsigned char>(c));
  }
}

Result<RegexProgram> CompileRegex(std::string_view pattern, FunctionContext& ctx) {
  RegexProgram prog;
  size_t i = 0;
  if (!pattern.empty() && pattern[0] == '^') {
    prog.anchored_start = true;
    i = 1;
  }
  for (; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (c == '$' && i + 1 == pattern.size()) {
      prog.anchored_end = true;
      break;
    }
    RegexNode node;
    if (c == '.') {
      node.kind = RegexNode::kAny;
    } else if (c == '[') {
      node.kind = RegexNode::kClass;
      ++i;
      if (i < pattern.size() && pattern[i] == '^') {
        node.cls.negated = true;
        ++i;
      }
      while (i < pattern.size() && pattern[i] != ']') {
        int64_t lo = 0;
        if (pattern[i] == '\\') {
          SOFT_ASSIGN_OR_RETURN(lo, ParseRegexEscape(pattern, i));
        } else {
          lo = static_cast<unsigned char>(pattern[i]);
        }
        ++i;
        int64_t hi = lo;
        if (i + 1 < pattern.size() && pattern[i] == '-' && pattern[i + 1] != ']') {
          ++i;
          if (pattern[i] == '\\') {
            SOFT_ASSIGN_OR_RETURN(hi, ParseRegexEscape(pattern, i));
          } else {
            hi = static_cast<unsigned char>(pattern[i]);
          }
          ++i;
        }
        // Range checks: the patched CVE-2016-0773 behaviour rejects
        // codepoints at INT32_MAX instead of overflowing in the expansion
        // loop.
        if (lo > hi) {
          ctx.Cover(3);
          return InvalidArgument("invalid regular expression: bad range");
        }
        if (hi >= 0x7ffffffe) {
          ctx.Cover(4);
          return InvalidArgument("invalid regular expression: invalid escape sequence");
        }
        node.cls.ranges.emplace_back(lo, hi);
      }
      if (i >= pattern.size()) {
        return InvalidArgument("unterminated character class in regex");
      }
    } else if (c == '\\') {
      SOFT_ASSIGN_OR_RETURN(int64_t code, ParseRegexEscape(pattern, i));
      if (code >= 0x7ffffffe) {
        ctx.Cover(4);
        return InvalidArgument("invalid regular expression: invalid escape sequence");
      }
      node.kind = RegexNode::kChar;
      node.ch = static_cast<char>(code & 0xFF);
    } else {
      node.kind = RegexNode::kChar;
      node.ch = c;
    }
    if (i + 1 < pattern.size() && pattern[i + 1] == '*') {
      node.star = true;
      ++i;
    }
    prog.nodes.push_back(std::move(node));
  }
  return prog;
}

bool NodeMatches(const RegexNode& node, unsigned char c) {
  switch (node.kind) {
    case RegexNode::kChar:
      return static_cast<unsigned char>(node.ch) == c;
    case RegexNode::kAny:
      return true;
    case RegexNode::kClass:
      return node.cls.Matches(c);
  }
  return false;
}

bool MatchHere(const std::vector<RegexNode>& nodes, size_t ni, std::string_view s, size_t si,
               bool anchored_end, int depth) {
  if (depth > 10000) {
    return false;  // backtracking guard
  }
  if (ni == nodes.size()) {
    return !anchored_end || si == s.size();
  }
  const RegexNode& node = nodes[ni];
  if (node.star) {
    // Zero occurrences first, then extend greedily via recursion.
    if (MatchHere(nodes, ni + 1, s, si, anchored_end, depth + 1)) {
      return true;
    }
    while (si < s.size() && NodeMatches(node, static_cast<unsigned char>(s[si]))) {
      ++si;
      if (MatchHere(nodes, ni + 1, s, si, anchored_end, depth + 1)) {
        return true;
      }
    }
    return false;
  }
  if (si < s.size() && NodeMatches(node, static_cast<unsigned char>(s[si]))) {
    return MatchHere(nodes, ni + 1, s, si + 1, anchored_end, depth + 1);
  }
  return false;
}

bool RunRegex(const RegexProgram& prog, std::string_view s) {
  if (prog.anchored_start) {
    return MatchHere(prog.nodes, 0, s, 0, prog.anchored_end, 0);
  }
  for (size_t start = 0; start <= s.size(); ++start) {
    if (MatchHere(prog.nodes, 0, s, start, prog.anchored_end, 0)) {
      return true;
    }
  }
  return false;
}

Result<Value> FnRegexpLike(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string pattern, ctx.ArgString(args[1]));
  if (pattern.empty()) {
    ctx.Cover(1);
    return Value::Boolean(true);
  }
  if (s.size() > 262144 || pattern.size() > 4096) {
    ctx.Cover(5);
    return ResourceExhausted("REGEXP_LIKE operand exceeds matcher limits");
  }
  SOFT_ASSIGN_OR_RETURN(RegexProgram prog, CompileRegex(pattern, ctx));
  if (prog.nodes.empty()) {
    ctx.Cover(2);
  }
  return Value::Boolean(RunRegex(prog, s));
}

Result<Value> FnRegexpReplace(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string pattern, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(std::string replacement, ctx.ArgString(args[2]));
  if (pattern.empty()) {
    ctx.Cover(1);
    return Value::Str(std::move(s));
  }
  // The window scan below is quadratic in the subject; enforce the regex
  // engine's subject limit rather than letting giant REPEAT outputs stall
  // the whole server (resource guard, not a crash).
  if (s.size() > 16384 || pattern.size() > 1024) {
    ctx.Cover(3);
    return ResourceExhausted("REGEXP_REPLACE operand exceeds matcher limits");
  }
  SOFT_ASSIGN_OR_RETURN(RegexProgram prog, CompileRegex(pattern, ctx));
  // Replace the leftmost shortest match at each position (simplified).
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    bool matched = false;
    for (size_t end = pos; end <= s.size(); ++end) {
      const std::string_view window(s.data() + pos, end - pos);
      RegexProgram probe = prog;
      probe.anchored_start = true;
      probe.anchored_end = true;
      if (RunRegex(probe, window)) {
        out += replacement;
        pos = end > pos ? end : pos + 1;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back(s[pos]);
      ++pos;
    }
    if (out.size() > ctx.limits().max_string_len) {
      ctx.Cover(2);
      return ResourceExhausted("REGEXP_REPLACE result exceeds engine string limit");
    }
  }
  return Value::Str(std::move(out));
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kString;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterStringFunctions(FunctionRegistry& r) {
  Reg(r, "LENGTH", 1, 1, FnLength, "Byte length of a string", "LENGTH('abc')");
  Reg(r, "CHAR_LENGTH", 1, 1, FnLength, "Character length of a string",
      "CHAR_LENGTH('abc')");
  Reg(r, "OCTET_LENGTH", 1, 1, FnLength, "Byte length of a string", "OCTET_LENGTH('abc')");
  Reg(r, "UPPER", 1, 1, FnUpper, "Uppercase conversion", "UPPER('abc')");
  Reg(r, "LOWER", 1, 1, FnLower, "Lowercase conversion", "LOWER('ABC')");
  Reg(r, "CONCAT", 1, -1, FnConcat, "String concatenation", "CONCAT('a', 'b')");
  {
    // CONCAT_WS skips NULL values instead of propagating them, so it opts
    // out of the engine's default NULL short-circuit.
    FunctionDef def;
    def.name = "CONCAT_WS";
    def.type = FunctionType::kString;
    def.min_args = 2;
    def.max_args = -1;
    def.null_propagates = false;
    def.scalar = FnConcatWs;
    def.doc = "Concatenation with separator (skips NULLs)";
    def.example = "CONCAT_WS(',', 'a', 'b')";
    r.Register(std::move(def));
  }
  Reg(r, "SUBSTR", 2, 3, FnSubstr, "Substring extraction", "SUBSTR('abcdef', 2, 3)");
  Reg(r, "SUBSTRING", 2, 3, FnSubstr, "Substring extraction", "SUBSTRING('abcdef', 2, 3)");
  Reg(r, "LEFT", 2, 2, FnLeft, "Leftmost characters", "LEFT('abcdef', 3)");
  Reg(r, "RIGHT", 2, 2, FnRight, "Rightmost characters", "RIGHT('abcdef', 3)");
  Reg(r, "LPAD", 2, 3, FnLpad, "Left padding to a target length", "LPAD('5', 3, '0')");
  Reg(r, "RPAD", 2, 3, FnRpad, "Right padding to a target length", "RPAD('5', 3, '0')");
  Reg(r, "TRIM", 1, 1, FnTrim, "Strip spaces from both ends", "TRIM('  a  ')");
  Reg(r, "LTRIM", 1, 1, FnLtrim, "Strip leading spaces", "LTRIM('  a')");
  Reg(r, "RTRIM", 1, 1, FnRtrim, "Strip trailing spaces", "RTRIM('a  ')");
  Reg(r, "REPLACE", 3, 3, FnReplace, "Substring replacement",
      "REPLACE('banana', 'a', 'o')");
  Reg(r, "REPEAT", 2, 2, FnRepeat, "Repeat a string N times", "REPEAT('ab', 3)");
  Reg(r, "REVERSE", 1, 1, FnReverse, "Reverse a string", "REVERSE('abc')");
  Reg(r, "INSTR", 2, 2, FnInstr, "Position of substring", "INSTR('banana', 'na')");
  Reg(r, "LOCATE", 2, 3, FnLocate, "Position of substring from offset",
      "LOCATE('na', 'banana', 3)");
  Reg(r, "ASCII", 1, 1, FnAscii, "Code of the first character", "ASCII('A')");
  Reg(r, "CHR", 1, 1, FnChr, "Character from code", "CHR(65)");
  Reg(r, "SPACE", 1, 1, FnSpace, "String of N spaces", "SPACE(4)");
  Reg(r, "FORMAT", 2, 3, FnFormat, "Number formatting with separators",
      "FORMAT(1234.567, 2)");
  Reg(r, "HEX", 1, 1, FnHex, "Hex encoding", "HEX('abc')");
  Reg(r, "UNHEX", 1, 1, FnUnhex, "Hex decoding", "UNHEX('616263')");
  Reg(r, "MD5", 1, 1, FnMd5, "Digest of a string (simulated)", "MD5('abc')");
  Reg(r, "SHA1", 1, 1, FnSha1, "Digest of a string (simulated)", "SHA1('abc')");
  Reg(r, "STRCMP", 2, 2, FnStrcmp, "Three-way string comparison", "STRCMP('a', 'b')");
  Reg(r, "ELT", 2, -1, FnElt, "N-th string of a list", "ELT(2, 'a', 'b', 'c')");
  Reg(r, "FIELD", 2, -1, FnField, "Index of a string in a list",
      "FIELD('b', 'a', 'b', 'c')");
  Reg(r, "SPLIT_PART", 3, 3, FnSplitPart, "N-th field of a delimited string",
      "SPLIT_PART('a,b,c', ',', 2)");
  Reg(r, "TRANSLATE", 3, 3, FnTranslate, "Per-character mapping",
      "TRANSLATE('abc', 'abc', 'xyz')");
  Reg(r, "INITCAP", 1, 1, FnInitcap, "Capitalize each word", "INITCAP('hello world')");
  Reg(r, "QUOTE", 1, 1, FnQuote, "SQL-quote a string", "QUOTE('it''s')");
  Reg(r, "SOUNDEX", 1, 1, FnSoundex, "Phonetic code", "SOUNDEX('Robert')");
  Reg(r, "TO_BASE64", 1, 1, FnToBase64, "Base64 encoding", "TO_BASE64('abc')");
  Reg(r, "FROM_BASE64", 1, 1, FnFromBase64, "Base64 decoding", "FROM_BASE64('YWJj')");
  Reg(r, "REGEXP_LIKE", 2, 2, FnRegexpLike, "Regular-expression match",
      "REGEXP_LIKE('abc', 'a.c')");
  Reg(r, "REGEXP_REPLACE", 3, 3, FnRegexpReplace, "Regular-expression replacement",
      "REGEXP_REPLACE('abc', 'b', 'x')");
}

}  // namespace soft
