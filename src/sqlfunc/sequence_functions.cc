// Built-in sequence functions (MariaDB-style NEXTVAL/LASTVAL/SETVAL).
//
// Sequences live in SessionState; one MariaDB Table 4 bug keys on NEXTVAL
// receiving a non-identifier argument produced by a nested function.
#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<Value> FnNextval(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string name, ctx.ArgString(args[0]));
  if (name.empty()) {
    ctx.Cover(1);
    return InvalidArgument("sequence name must not be empty");
  }
  SessionState* session = ctx.session();
  const int64_t next = ++session->sequences[name];
  session->last_sequence_value = next;
  return Value::Int(next);
}

Result<Value> FnLastval(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string name, ctx.ArgString(args[0]));
  SessionState* session = ctx.session();
  const auto it = session->sequences.find(name);
  if (it == session->sequences.end()) {
    ctx.Cover(1);
    return Value::Null();
  }
  return Value::Int(it->second);
}

Result<Value> FnSetval(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string name, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t value, ctx.ArgInt(args[1]));
  if (name.empty()) {
    ctx.Cover(1);
    return InvalidArgument("sequence name must not be empty");
  }
  SessionState* session = ctx.session();
  session->sequences[name] = value;
  session->last_sequence_value = value;
  return Value::Int(value);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kSequence;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterSequenceFunctions(FunctionRegistry& r) {
  Reg(r, "NEXTVAL", 1, 1, FnNextval, "Advance and return a sequence", "NEXTVAL('s1')");
  Reg(r, "LASTVAL", 1, 1, FnLastval, "Current value of a sequence", "LASTVAL('s1')");
  Reg(r, "SETVAL", 2, 2, FnSetval, "Set a sequence value", "SETVAL('s1', 10)");
}

}  // namespace soft
