// Built-in SQL function framework: categories, evaluation context, and the
// scalar/aggregate implementation interfaces.
//
// Function categories follow Figure 1 of the paper (the classification used
// in the study: string, aggregate, math, date, JSON, XML, spatial, system,
// condition, casting, array, map, sequence). Every implementation receives a
// FunctionContext carrying dialect limits, the coverage hook, and the
// nested-call depth — the three ingredients the injected fault corpus and the
// coverage experiments need.
#ifndef SRC_SQLFUNC_FUNCTION_H_
#define SRC_SQLFUNC_FUNCTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/coverage/coverage.h"
#include "src/sqlvalue/cast.h"
#include "src/sqlvalue/value.h"
#include "src/util/status.h"

namespace soft {

enum class FunctionType {
  kString = 0,
  kAggregate,
  kMath,
  kDate,
  kJson,
  kXml,
  kSpatial,
  kSystem,
  kCondition,
  kCasting,
  kArray,
  kMap,
  kSequence,
};

constexpr int kNumFunctionTypes = static_cast<int>(FunctionType::kSequence) + 1;

std::string_view FunctionTypeName(FunctionType type);

// Per-dialect execution limits. The paper's false positives came from
// REPEAT('a', 9999999999)-style resource exhaustion: the engine enforces
// these limits and reports kResourceExhausted, which the harness must NOT
// count as a crash.
struct EngineLimits {
  size_t max_string_len = 16u << 20;  // bytes a string function may build
  int64_t max_repeat_count = 1u << 22;
  int json_depth_limit = 512;
  int max_call_depth = 256;
};

// Session state shared by system/sequence functions.
struct SessionState {
  std::map<std::string, int64_t> sequences;
  int64_t last_sequence_value = 0;
  uint64_t connection_id = 1;
};

class FunctionContext {
 public:
  FunctionContext(CastOptions cast_options, EngineLimits limits, CoverageTracker* coverage,
                  SessionState* session)
      : cast_options_(cast_options),
        limits_(limits),
        coverage_(coverage),
        session_(session) {}

  const CastOptions& cast_options() const { return cast_options_; }
  const EngineLimits& limits() const { return limits_; }
  SessionState* session() const { return session_; }

  // Nested function-call depth of the current evaluation (1 = outermost).
  int call_depth() const { return call_depth_; }
  void set_call_depth(int depth) { call_depth_ = depth; }

  // The function currently being evaluated (upper-case); set by the engine
  // before dispatch so Cover() attributes branches correctly.
  const std::string& current_function() const { return current_function_; }
  void set_current_function(std::string name) { current_function_ = std::move(name); }

  // Marks a branch of the current function as covered.
  void Cover(int branch_id) const {
    if (coverage_ != nullptr) {
      coverage_->Hit(current_function_, branch_id);
    }
  }

  // Convenience coercions honouring the dialect's cast strictness.
  Result<std::string> ArgString(const Value& v) const;
  Result<int64_t> ArgInt(const Value& v) const;
  Result<double> ArgDouble(const Value& v) const;
  Result<Decimal> ArgDecimal(const Value& v) const;

 private:
  CastOptions cast_options_;
  EngineLimits limits_;
  CoverageTracker* coverage_;
  SessionState* session_;
  int call_depth_ = 1;
  std::string current_function_;
};

using ScalarFunction = std::function<Result<Value>(FunctionContext&, const ValueList&)>;

// Aggregate protocol: one Aggregator per (group, call site).
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  // `args` holds the per-row evaluated argument values.
  virtual Status Accumulate(FunctionContext& ctx, const ValueList& args) = 0;
  virtual Result<Value> Finalize(FunctionContext& ctx) = 0;
};

using AggregatorFactory = std::function<std::unique_ptr<Aggregator>()>;

struct FunctionDef {
  std::string name;  // upper-case
  FunctionType type = FunctionType::kSystem;
  int min_args = 0;
  int max_args = -1;  // -1 = variadic
  bool is_aggregate = false;
  // True when the function tolerates a '*' argument (COUNT(*)).
  bool accepts_star = false;
  // When true (the SQL default) the engine returns NULL without dispatching
  // if any argument is NULL. Condition functions (IFNULL, COALESCE, ...)
  // opt out to see the NULLs themselves.
  bool null_propagates = true;
  ScalarFunction scalar;          // when !is_aggregate
  AggregatorFactory aggregator;   // when is_aggregate
  std::string doc;                // one-line description ("documentation scan" source)
  // Example invocation used to seed the fuzzer corpus ("regression suite").
  std::string example;
};

class FunctionRegistry {
 public:
  // Registers a definition; later registrations override earlier ones (lets
  // dialects replace a common implementation with a dialect-specific one).
  void Register(FunctionDef def);

  const FunctionDef* Find(std::string_view name) const;
  bool Contains(std::string_view name) const { return Find(name) != nullptr; }

  // All definitions, sorted by name (the "documentation" SOFT scans).
  std::vector<const FunctionDef*> All() const;
  size_t size() const { return functions_.size(); }

  // Removes a function (dialect allowlisting).
  void Remove(std::string_view name);

 private:
  std::map<std::string, FunctionDef, std::less<>> functions_;
};

// Category registration entry points (implemented across the
// *_functions.cc files). RegisterAllBuiltins calls every one of them.
void RegisterStringFunctions(FunctionRegistry& registry);
void RegisterMathFunctions(FunctionRegistry& registry);
void RegisterDateFunctions(FunctionRegistry& registry);
void RegisterJsonFunctions(FunctionRegistry& registry);
void RegisterXmlFunctions(FunctionRegistry& registry);
void RegisterSpatialFunctions(FunctionRegistry& registry);
void RegisterSystemFunctions(FunctionRegistry& registry);
void RegisterConditionFunctions(FunctionRegistry& registry);
void RegisterCastingFunctions(FunctionRegistry& registry);
void RegisterArrayMapFunctions(FunctionRegistry& registry);
void RegisterSequenceFunctions(FunctionRegistry& registry);
void RegisterAggregateFunctions(FunctionRegistry& registry);
void RegisterAllBuiltins(FunctionRegistry& registry);

// The immutable builtin-catalog prototype: all category registrations run
// exactly once (std::call_once-guarded, so concurrent first-time Database
// construction from campaign shards is safe) and the result is shared
// read-only. RegisterAllBuiltins copies it into a per-instance registry,
// which dialects then prune/override independently.
const FunctionRegistry& BuiltinRegistry();

}  // namespace soft

#endif  // SRC_SQLFUNC_FUNCTION_H_
