// Built-in aggregate functions.
//
// Aggregates are the paper's second-largest bug category (17.9% of
// occurrences) and its richest cross-type surface: they see every value a
// column can produce. SUM/AVG accumulate exactly in Decimal so digit-count
// boundaries (the MySQL AVG(1.2999…) global overflow) are observable;
// JSONB_OBJECT_AGG mirrors the CVE-2023-5868 unknown-type-argument surface.
#include <algorithm>
#include <cmath>

#include "src/sqlfunc/function.h"

namespace soft {
namespace {

class CountAggregator : public Aggregator {
 public:
  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args.empty() || args[0].is_star()) {
      ctx.Cover(1);
      ++count_;
      return OkStatus();
    }
    if (!args[0].is_null()) {
      ++count_;
    }
    return OkStatus();
  }
  Result<Value> Finalize(FunctionContext& ctx) override { return Value::Int(count_); }

 private:
  int64_t count_ = 0;
};

// Exact numeric accumulation: decimal until a double shows up.
class SumAggregator : public Aggregator {
 public:
  explicit SumAggregator(bool average) : average_(average) {}

  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    const Value& v = args[0];
    if (v.is_null()) {
      return OkStatus();
    }
    if (!v.is_numeric()) {
      // Lenient engines coerce; strict ones error — honour the dialect.
      if (ctx.cast_options().strict) {
        ctx.Cover(1);
        return TypeError("SUM/AVG argument is not numeric");
      }
      ctx.Cover(2);
    }
    ++count_;
    if (v.kind() == TypeKind::kDouble || use_double_) {
      if (!use_double_) {
        ctx.Cover(3);
        use_double_ = true;
        dsum_ = sum_.ToDouble();
      }
      SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(v, TypeKind::kDouble, ctx.cast_options()));
      dsum_ += d.is_null() ? 0.0 : d.double_value();
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(v, TypeKind::kDecimal, ctx.cast_options()));
    if (d.is_null()) {
      return OkStatus();
    }
    if (d.decimal_value().total_digits() > Decimal::kMaxPrecision) {
      ctx.Cover(4);  // past-precision path: the fixed engines truncate safely
    }
    sum_ = Decimal::Add(sum_, d.decimal_value());
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (count_ == 0) {
      ctx.Cover(5);
      return Value::Null();
    }
    if (use_double_) {
      return Value::DoubleVal(average_ ? dsum_ / static_cast<double>(count_) : dsum_);
    }
    if (!average_) {
      return Value::Dec(sum_);
    }
    SOFT_ASSIGN_OR_RETURN(Decimal avg, Decimal::Div(sum_, Decimal::FromInt64(count_), 8));
    return Value::Dec(avg);
  }

 private:
  bool average_;
  bool use_double_ = false;
  Decimal sum_;
  double dsum_ = 0;
  int64_t count_ = 0;
};

class ExtremeAggregator : public Aggregator {
 public:
  explicit ExtremeAggregator(bool want_max) : want_max_(want_max) {}

  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    const Value& v = args[0];
    if (v.is_null()) {
      return OkStatus();
    }
    if (!has_value_) {
      best_ = v;
      has_value_ = true;
      return OkStatus();
    }
    const Result<int> cmp = Value::Compare(v, best_);
    if (!cmp.ok()) {
      ctx.Cover(1);
      return cmp.status();
    }
    if ((want_max_ && *cmp > 0) || (!want_max_ && *cmp < 0)) {
      best_ = v;
    }
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (!has_value_) {
      ctx.Cover(2);
      return Value::Null();
    }
    return best_;
  }

 private:
  bool want_max_;
  bool has_value_ = false;
  Value best_;
};

class GroupConcatAggregator : public Aggregator {
 public:
  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args[0].is_null()) {
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
    std::string sep = ",";
    if (args.size() >= 2) {
      SOFT_ASSIGN_OR_RETURN(sep, ctx.ArgString(args[1]));
    }
    if (!out_.empty()) {
      out_ += sep;
    }
    out_ += s;
    if (out_.size() > ctx.limits().max_string_len) {
      ctx.Cover(1);
      return ResourceExhausted("GROUP_CONCAT result exceeds engine string limit");
    }
    empty_ = false;
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (empty_) {
      ctx.Cover(2);
      return Value::Null();
    }
    return Value::Str(out_);
  }

 private:
  std::string out_;
  bool empty_ = true;
};

class VarianceAggregator : public Aggregator {
 public:
  explicit VarianceAggregator(bool stddev) : stddev_(stddev) {}

  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args[0].is_null()) {
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(args[0], TypeKind::kDouble,
                                               ctx.cast_options()));
    if (d.is_null()) {
      return OkStatus();
    }
    // Welford's online algorithm.
    ++n_;
    const double x = d.double_value();
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (n_ == 0) {
      ctx.Cover(1);
      return Value::Null();
    }
    const double var = m2_ / static_cast<double>(n_);
    return Value::DoubleVal(stddev_ ? std::sqrt(var) : var);
  }

 private:
  bool stddev_;
  int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

class BitAggregator : public Aggregator {
 public:
  enum class Op { kAnd, kOr, kXor };
  explicit BitAggregator(Op op)
      : op_(op), acc_(op == Op::kAnd ? ~0ull : 0ull) {}

  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args[0].is_null()) {
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(int64_t v, ctx.ArgInt(args[0]));
    const uint64_t u = static_cast<uint64_t>(v);
    switch (op_) {
      case Op::kAnd:
        acc_ &= u;
        break;
      case Op::kOr:
        acc_ |= u;
        break;
      case Op::kXor:
        acc_ ^= u;
        break;
    }
    seen_ = true;
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (!seen_ && op_ == Op::kAnd) {
      ctx.Cover(1);
      return Value::Int(-1);  // MySQL: BIT_AND of empty set = all ones
    }
    return Value::Int(static_cast<int64_t>(acc_));
  }

 private:
  Op op_;
  uint64_t acc_;
  bool seen_ = false;
};

// JSONB_OBJECT_AGG(key, value) — PostgreSQL-style. The reference behaviour
// stringifies the key argument through the audited cast path instead of
// assuming '\0' termination (the CVE-2023-5868 flaw).
class JsonObjectAggAggregator : public Aggregator {
 public:
  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args.size() < 2) {
      ctx.Cover(1);
      return InvalidArgument("JSONB_OBJECT_AGG requires key and value");
    }
    if (args[0].is_null()) {
      ctx.Cover(2);
      return InvalidArgument("JSONB_OBJECT_AGG key must not be NULL");
    }
    SOFT_ASSIGN_OR_RETURN(std::string key, ctx.ArgString(args[0]));
    JsonPtr val;
    switch (args[1].kind()) {
      case TypeKind::kNull:
        val = JsonValue::MakeNull();
        break;
      case TypeKind::kBool:
        val = JsonValue::MakeBool(args[1].bool_value());
        break;
      case TypeKind::kInt:
        val = JsonValue::MakeNumber(static_cast<double>(args[1].int_value()));
        break;
      case TypeKind::kDouble:
        val = JsonValue::MakeNumber(args[1].double_value());
        break;
      case TypeKind::kJson:
        val = args[1].json_value();
        break;
      default: {
        SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(args[1]));
        val = JsonValue::MakeString(std::move(text));
      }
    }
    members_.emplace_back(std::move(key), std::move(val));
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    return Value::JsonVal(JsonValue::MakeObject(members_));
  }

 private:
  JsonValue::Object members_;
};

class JsonArrayAggAggregator : public Aggregator {
 public:
  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    switch (args[0].kind()) {
      case TypeKind::kNull:
        items_.push_back(JsonValue::MakeNull());
        break;
      case TypeKind::kInt:
        items_.push_back(JsonValue::MakeNumber(static_cast<double>(args[0].int_value())));
        break;
      case TypeKind::kDouble:
        items_.push_back(JsonValue::MakeNumber(args[0].double_value()));
        break;
      case TypeKind::kJson:
        items_.push_back(args[0].json_value());
        break;
      default: {
        SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(args[0]));
        items_.push_back(JsonValue::MakeString(std::move(text)));
      }
    }
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    return Value::JsonVal(JsonValue::MakeArray(items_));
  }

 private:
  JsonValue::Array items_;
};

class BoolAggregator : public Aggregator {
 public:
  explicit BoolAggregator(bool want_and) : want_and_(want_and), acc_(want_and) {}

  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args[0].is_null()) {
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(Value b, CoerceValue(args[0], TypeKind::kBool,
                                               ctx.cast_options()));
    if (b.is_null()) {
      return OkStatus();
    }
    seen_ = true;
    acc_ = want_and_ ? (acc_ && b.bool_value()) : (acc_ || b.bool_value());
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (!seen_) {
      ctx.Cover(1);
      return Value::Null();
    }
    return Value::Boolean(acc_);
  }

 private:
  bool want_and_;
  bool acc_;
  bool seen_ = false;
};

class MedianAggregator : public Aggregator {
 public:
  Status Accumulate(FunctionContext& ctx, const ValueList& args) override {
    if (args[0].is_null()) {
      return OkStatus();
    }
    SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(args[0], TypeKind::kDouble,
                                               ctx.cast_options()));
    if (!d.is_null()) {
      values_.push_back(d.double_value());
    }
    return OkStatus();
  }

  Result<Value> Finalize(FunctionContext& ctx) override {
    if (values_.empty()) {
      ctx.Cover(1);
      return Value::Null();
    }
    std::sort(values_.begin(), values_.end());
    const size_t n = values_.size();
    if (n % 2 == 1) {
      return Value::DoubleVal(values_[n / 2]);
    }
    ctx.Cover(2);
    return Value::DoubleVal((values_[n / 2 - 1] + values_[n / 2]) / 2.0);
  }

 private:
  std::vector<double> values_;
};

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args,
         AggregatorFactory factory, const char* doc, const char* example,
         bool accepts_star = false) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kAggregate;
  def.min_args = min_args;
  def.max_args = max_args;
  def.is_aggregate = true;
  def.accepts_star = accepts_star;
  def.null_propagates = false;  // aggregates handle NULL rows themselves
  def.aggregator = std::move(factory);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterAggregateFunctions(FunctionRegistry& r) {
  Reg(r, "COUNT", 1, 1, [] { return std::make_unique<CountAggregator>(); },
      "Row / non-NULL count", "COUNT(*)", /*accepts_star=*/true);
  Reg(r, "SUM", 1, 1, [] { return std::make_unique<SumAggregator>(false); },
      "Exact numeric sum", "SUM(1.5)");
  Reg(r, "AVG", 1, 1, [] { return std::make_unique<SumAggregator>(true); },
      "Arithmetic mean", "AVG(2)");
  Reg(r, "MIN", 1, 1, [] { return std::make_unique<ExtremeAggregator>(false); },
      "Smallest value", "MIN(3)");
  Reg(r, "MAX", 1, 1, [] { return std::make_unique<ExtremeAggregator>(true); },
      "Largest value", "MAX(3)");
  Reg(r, "GROUP_CONCAT", 1, 2, [] { return std::make_unique<GroupConcatAggregator>(); },
      "Concatenated group text", "GROUP_CONCAT('a')");
  Reg(r, "STRING_AGG", 2, 2, [] { return std::make_unique<GroupConcatAggregator>(); },
      "Concatenated group text with separator", "STRING_AGG('a', ',')");
  Reg(r, "STDDEV", 1, 1, [] { return std::make_unique<VarianceAggregator>(true); },
      "Population standard deviation", "STDDEV(1)");
  Reg(r, "VARIANCE", 1, 1, [] { return std::make_unique<VarianceAggregator>(false); },
      "Population variance", "VARIANCE(1)");
  Reg(r, "BIT_AND", 1, 1,
      [] { return std::make_unique<BitAggregator>(BitAggregator::Op::kAnd); },
      "Bitwise AND of a group", "BIT_AND(7)");
  Reg(r, "BIT_OR", 1, 1,
      [] { return std::make_unique<BitAggregator>(BitAggregator::Op::kOr); },
      "Bitwise OR of a group", "BIT_OR(1)");
  Reg(r, "BIT_XOR", 1, 1,
      [] { return std::make_unique<BitAggregator>(BitAggregator::Op::kXor); },
      "Bitwise XOR of a group", "BIT_XOR(1)");
  Reg(r, "JSONB_OBJECT_AGG", 2, 2,
      [] { return std::make_unique<JsonObjectAggAggregator>(); },
      "Aggregate key/value pairs into a JSON object", "JSONB_OBJECT_AGG('a', 1)");
  Reg(r, "JSON_ARRAYAGG", 1, 1, [] { return std::make_unique<JsonArrayAggAggregator>(); },
      "Aggregate values into a JSON array", "JSON_ARRAYAGG(1)");
  Reg(r, "BOOL_AND", 1, 1, [] { return std::make_unique<BoolAggregator>(true); },
      "Conjunction of a boolean group", "BOOL_AND(TRUE)");
  Reg(r, "BOOL_OR", 1, 1, [] { return std::make_unique<BoolAggregator>(false); },
      "Disjunction of a boolean group", "BOOL_OR(FALSE)");
  Reg(r, "MEDIAN", 1, 1, [] { return std::make_unique<MedianAggregator>(); },
      "Median of a numeric group", "MEDIAN(2)");
}

}  // namespace soft
