// Built-in condition / control-flow functions.
//
// These opt out of NULL propagation — seeing NULLs is their job. INTERVAL is
// the paper's MDEV-14596 exemplar: it relies on ordered comparison of its
// arguments, so ROW-typed (non-comparable) inputs must be rejected; the
// reference implementation checks, the injected MariaDB bug does not.
#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<Value> FnIfnull(FunctionContext& ctx, const ValueList& args) {
  if (args[0].is_null()) {
    ctx.Cover(1);
    return args[1];
  }
  return args[0];
}

Result<Value> FnNullif(FunctionContext& ctx, const ValueList& args) {
  if (args[0].is_null() || args[1].is_null()) {
    ctx.Cover(1);
    return args[0];
  }
  SOFT_ASSIGN_OR_RETURN(int cmp, Value::Compare(args[0], args[1]));
  if (cmp == 0) {
    ctx.Cover(2);
    return Value::Null();
  }
  return args[0];
}

Result<Value> FnCoalesce(FunctionContext& ctx, const ValueList& args) {
  for (const Value& v : args) {
    if (!v.is_null()) {
      return v;
    }
  }
  ctx.Cover(1);
  return Value::Null();
}

Result<Value> FnIf(FunctionContext& ctx, const ValueList& args) {
  if (args[0].is_null()) {
    ctx.Cover(1);
    return args[2];
  }
  SOFT_ASSIGN_OR_RETURN(Value cond, CoerceValue(args[0], TypeKind::kBool,
                                                ctx.cast_options()));
  return (!cond.is_null() && cond.bool_value()) ? args[1] : args[2];
}

Result<Value> FnIsnull(FunctionContext& ctx, const ValueList& args) {
  return Value::Int(args[0].is_null() ? 1 : 0);
}

Result<Value> ExtremeImpl(FunctionContext& ctx, const ValueList& args, bool greatest) {
  const Value* best = nullptr;
  for (const Value& v : args) {
    if (v.is_null()) {
      ctx.Cover(1);
      return Value::Null();
    }
    if (best == nullptr) {
      best = &v;
      continue;
    }
    SOFT_ASSIGN_OR_RETURN(int cmp, Value::Compare(v, *best));
    if ((greatest && cmp > 0) || (!greatest && cmp < 0)) {
      best = &v;
    }
  }
  return *best;
}

Result<Value> FnGreatest(FunctionContext& ctx, const ValueList& args) {
  return ExtremeImpl(ctx, args, /*greatest=*/true);
}

Result<Value> FnLeast(FunctionContext& ctx, const ValueList& args) {
  return ExtremeImpl(ctx, args, /*greatest=*/false);
}

// INTERVAL(N, N1, N2, ...) — index of the last Ni <= N (MySQL definition:
// returns the slot of N among the ordered thresholds).
Result<Value> FnInterval(FunctionContext& ctx, const ValueList& args) {
  if (args[0].is_null()) {
    ctx.Cover(1);
    return Value::Int(-1);
  }
  // The reference implementation validates comparability before comparing
  // (MDEV-14596: ROW arguments must be rejected, not dereferenced).
  if (!IsComparableType(args[0].kind())) {
    ctx.Cover(2);
    return TypeError("INTERVAL arguments must be comparable scalars");
  }
  int64_t index = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].is_null()) {
      ctx.Cover(3);
      break;
    }
    if (!IsComparableType(args[i].kind())) {
      ctx.Cover(2);
      return TypeError("INTERVAL arguments must be comparable scalars");
    }
    SOFT_ASSIGN_OR_RETURN(int cmp, Value::Compare(args[0], args[i]));
    if (cmp < 0) {
      break;
    }
    index = static_cast<int64_t>(i);
  }
  return Value::Int(index);
}

Result<Value> FnNvl2(FunctionContext& ctx, const ValueList& args) {
  return args[0].is_null() ? args[2] : args[1];
}

Result<Value> FnDecode(FunctionContext& ctx, const ValueList& args) {
  // DECODE(expr, search1, result1, ..., [default]).
  size_t i = 1;
  for (; i + 1 < args.size(); i += 2) {
    if (args[0].is_null() && args[i].is_null()) {
      ctx.Cover(1);
      return args[i + 1];
    }
    if (args[0].is_null() || args[i].is_null()) {
      continue;
    }
    const Result<int> cmp = Value::Compare(args[0], args[i]);
    if (cmp.ok() && *cmp == 0) {
      return args[i + 1];
    }
  }
  if (i < args.size()) {
    ctx.Cover(2);
    return args[i];  // default
  }
  return Value::Null();
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kCondition;
  def.min_args = min_args;
  def.max_args = max_args;
  def.null_propagates = false;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterConditionFunctions(FunctionRegistry& r) {
  Reg(r, "IFNULL", 2, 2, FnIfnull, "First argument unless NULL", "IFNULL(NULL, 1)");
  Reg(r, "NVL", 2, 2, FnIfnull, "First argument unless NULL", "NVL(NULL, 1)");
  Reg(r, "NULLIF", 2, 2, FnNullif, "NULL when arguments are equal", "NULLIF(1, 1)");
  Reg(r, "COALESCE", 1, -1, FnCoalesce, "First non-NULL argument",
      "COALESCE(NULL, NULL, 3)");
  Reg(r, "IF", 3, 3, FnIf, "Conditional choice", "IF(1 < 2, 'y', 'n')");
  Reg(r, "ISNULL", 1, 1, FnIsnull, "1 when NULL", "ISNULL(NULL)");
  Reg(r, "GREATEST", 2, -1, FnGreatest, "Largest argument", "GREATEST(1, 2, 3)");
  Reg(r, "LEAST", 2, -1, FnLeast, "Smallest argument", "LEAST(1, 2, 3)");
  Reg(r, "INTERVAL", 2, -1, FnInterval, "Slot of N among ordered thresholds",
      "INTERVAL(5, 1, 10)");
  Reg(r, "NVL2", 3, 3, FnNvl2, "Choice on NULL-ness", "NVL2(NULL, 'a', 'b')");
  Reg(r, "DECODE", 3, -1, FnDecode, "Value mapping with default",
      "DECODE(2, 1, 'a', 2, 'b', 'z')");
}

}  // namespace soft
