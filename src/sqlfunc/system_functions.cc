// Built-in system / information functions.
//
// Virtuoso's bug table is dominated by system functions (15 of its 45) —
// introspection helpers that accept loosely-typed arguments. CONTAINS is the
// Case 2 exemplar: the reference implementation rejects '*' arguments; the
// Virtuoso-dialect injected bug does not.
#include "src/sqlfunc/function.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

Result<Value> FnVersion(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("soft-engine 1.0.0");
}

Result<Value> FnDatabase(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("main");
}

Result<Value> FnCurrentUser(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("soft@localhost");
}

Result<Value> FnConnectionId(FunctionContext& ctx, const ValueList& args) {
  return Value::Int(static_cast<int64_t>(ctx.session()->connection_id));
}

// CONTAINS(haystack, needle[, options]) — text search. The options argument
// must be a string; '*' is explicitly rejected here (the fixed behaviour).
Result<Value> FnContains(FunctionContext& ctx, const ValueList& args) {
  for (const Value& v : args) {
    if (v.is_star()) {
      ctx.Cover(1);
      return InvalidArgument("CONTAINS does not accept '*' arguments");
    }
  }
  SOFT_ASSIGN_OR_RETURN(std::string hay, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string needle, ctx.ArgString(args[1]));
  if (args.size() >= 3) {
    SOFT_ASSIGN_OR_RETURN(std::string options, ctx.ArgString(args[2]));
    if (EqualsIgnoreCase(options, "i")) {
      ctx.Cover(2);
      hay = AsciiLower(hay);
      needle = AsciiLower(needle);
    }
  }
  if (needle.empty()) {
    ctx.Cover(3);
    return Value::Int(1);
  }
  return Value::Int(hay.find(needle) != std::string::npos ? 1 : 0);
}

Result<Value> FnSleep(FunctionContext& ctx, const ValueList& args) {
  // Deterministic engine: SLEEP validates its argument but never blocks.
  SOFT_ASSIGN_OR_RETURN(double seconds, ctx.ArgDouble(args[0]));
  if (seconds < 0) {
    ctx.Cover(1);
    return InvalidArgument("negative SLEEP duration");
  }
  return Value::Int(0);
}

Result<Value> FnUuid(FunctionContext& ctx, const ValueList& args) {
  // Deterministic per-session UUID-shaped string.
  const uint64_t id = ctx.session()->connection_id * 0x9E3779B97F4A7C15ull + 7;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(id & 0xFFFFFFFF),
                static_cast<unsigned>((id >> 32) & 0xFFFF),
                static_cast<unsigned>((id >> 48) & 0xFFFF), 0x4000u,
                static_cast<unsigned long long>(id & 0xFFFFFFFFFFFFull));
  return Value::Str(buf);
}

Result<Value> FnTypeOf(FunctionContext& ctx, const ValueList& args) {
  return Value::Str(std::string(TypeKindName(args[0].kind())));
}

Result<Value> FnLastInsertId(FunctionContext& ctx, const ValueList& args) {
  return Value::Int(ctx.session()->last_sequence_value);
}

Result<Value> FnBenchmark(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t count, ctx.ArgInt(args[0]));
  if (count < 0) {
    ctx.Cover(1);
    return Value::Null();
  }
  if (count > 1000000) {
    ctx.Cover(2);
    return ResourceExhausted("BENCHMARK repetition limit exceeded");
  }
  // The expression argument was already evaluated once by the engine; the
  // loop is modeled, not executed.
  return Value::Int(0);
}

Result<Value> FnFoundRows(FunctionContext& ctx, const ValueList& args) {
  return Value::Int(0);
}

Result<Value> FnCharset(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("utf8mb4");
}

Result<Value> FnCollation(FunctionContext& ctx, const ValueList& args) {
  return Value::Str("utf8mb4_general_ci");
}

Result<Value> FnCoercibility(FunctionContext& ctx, const ValueList& args) {
  // MySQL coercibility levels: literal = 4, NULL = 6.
  if (args[0].is_null()) {
    ctx.Cover(1);
    return Value::Int(6);
  }
  return Value::Int(4);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example, bool null_prop = true) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kSystem;
  def.min_args = min_args;
  def.max_args = max_args;
  def.null_propagates = null_prop;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterSystemFunctions(FunctionRegistry& r) {
  Reg(r, "VERSION", 0, 0, FnVersion, "Engine version string", "VERSION()");
  Reg(r, "DATABASE", 0, 0, FnDatabase, "Current database name", "DATABASE()");
  Reg(r, "CURRENT_USER", 0, 0, FnCurrentUser, "Current user", "CURRENT_USER()");
  Reg(r, "USER", 0, 0, FnCurrentUser, "Current user", "USER()");
  Reg(r, "CONNECTION_ID", 0, 0, FnConnectionId, "Session id", "CONNECTION_ID()");
  Reg(r, "CONTAINS", 2, 3, FnContains, "Text containment search",
      "CONTAINS('haystack', 'hay')");
  Reg(r, "SLEEP", 1, 1, FnSleep, "Validated no-op delay", "SLEEP(0)");
  Reg(r, "UUID", 0, 0, FnUuid, "Deterministic UUID-shaped string", "UUID()");
  Reg(r, "TYPEOF", 1, 1, FnTypeOf, "Type of a value", "TYPEOF(1)", false);
  Reg(r, "LAST_INSERT_ID", 0, 0, FnLastInsertId, "Last sequence value",
      "LAST_INSERT_ID()");
  Reg(r, "BENCHMARK", 2, 2, FnBenchmark, "Repeated-evaluation probe",
      "BENCHMARK(10, 1 + 1)");
  Reg(r, "FOUND_ROWS", 0, 0, FnFoundRows, "Rows found by the last query",
      "FOUND_ROWS()");
  Reg(r, "CHARSET", 1, 1, FnCharset, "Character set of a value", "CHARSET('a')", false);
  Reg(r, "COLLATION", 1, 1, FnCollation, "Collation of a value", "COLLATION('a')", false);
  Reg(r, "COERCIBILITY", 1, 1, FnCoercibility, "Collation coercibility",
      "COERCIBILITY('a')", false);
}

}  // namespace soft
