// Built-in JSON functions.
//
// JSON arguments combine two boundary axes the paper leans on: nesting depth
// (CVE-2015-5289, the MariaDB JSON_LENGTH global overflow) and huge embedded
// numbers (MDEV-8407's COLUMN_JSON on a 48-digit decimal). Every function
// here funnels string arguments through the depth-accounted parser.
#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<JsonPtr> ArgJson(FunctionContext& ctx, const Value& v) {
  if (v.kind() == TypeKind::kJson) {
    return v.json_value();
  }
  SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(v));
  SOFT_ASSIGN_OR_RETURN(JsonParseResult parsed,
                        ParseJson(text, ctx.limits().json_depth_limit));
  return parsed.value;
}

Result<Value> FnJsonValid(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() == TypeKind::kJson) {
    ctx.Cover(1);
    return Value::Boolean(true);
  }
  SOFT_ASSIGN_OR_RETURN(std::string text, ctx.ArgString(args[0]));
  const Result<JsonParseResult> parsed = ParseJson(text, ctx.limits().json_depth_limit);
  if (!parsed.ok() && parsed.status().code() == StatusCode::kResourceExhausted) {
    ctx.Cover(2);
    return parsed.status();  // depth limit is an engine error, not "invalid"
  }
  return Value::Boolean(parsed.ok());
}

Result<Value> FnJsonDepth(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  return Value::Int(doc->Depth());
}

// JSON_LENGTH(doc[, path]) — number of elements/members at the target.
Result<Value> FnJsonLength(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  JsonPtr target = doc;
  if (args.size() >= 2) {
    SOFT_ASSIGN_OR_RETURN(std::string path, ctx.ArgString(args[1]));
    SOFT_ASSIGN_OR_RETURN(target, EvalJsonPath(doc, path));
    if (target == nullptr) {
      ctx.Cover(1);
      return Value::Null();
    }
  }
  switch (target->kind()) {
    case JsonKind::kArray:
      return Value::Int(static_cast<int64_t>(target->array_items().size()));
    case JsonKind::kObject:
      return Value::Int(static_cast<int64_t>(target->object_members().size()));
    default:
      ctx.Cover(2);
      return Value::Int(1);
  }
}

Result<Value> FnJsonExtract(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string path, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(JsonPtr target, EvalJsonPath(doc, path));
  if (target == nullptr) {
    ctx.Cover(1);
    return Value::Null();
  }
  return Value::JsonVal(target);
}

Result<Value> FnJsonType(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  switch (doc->kind()) {
    case JsonKind::kNull:
      return Value::Str("NULL");
    case JsonKind::kBool:
      return Value::Str("BOOLEAN");
    case JsonKind::kNumber:
      return Value::Str("NUMBER");
    case JsonKind::kString:
      return Value::Str("STRING");
    case JsonKind::kArray:
      return Value::Str("ARRAY");
    case JsonKind::kObject:
      return Value::Str("OBJECT");
  }
  return Value::Null();
}

Result<Value> FnJsonKeys(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  if (doc->kind() != JsonKind::kObject) {
    ctx.Cover(1);
    return Value::Null();
  }
  JsonValue::Array keys;
  for (const auto& [k, v] : doc->object_members()) {
    keys.push_back(JsonValue::MakeString(k));
  }
  return Value::JsonVal(JsonValue::MakeArray(std::move(keys)));
}

// JSON_ARRAY(v1, v2, ...) — builds an array from SQL values.
Result<JsonPtr> SqlValueToJson(FunctionContext& ctx, const Value& v) {
  switch (v.kind()) {
    case TypeKind::kNull:
      return JsonValue::MakeNull();
    case TypeKind::kBool:
      return JsonValue::MakeBool(v.bool_value());
    case TypeKind::kInt:
      return JsonValue::MakeNumber(static_cast<double>(v.int_value()));
    case TypeKind::kDouble:
      return JsonValue::MakeNumber(v.double_value());
    case TypeKind::kDecimal:
      return JsonValue::MakeNumber(v.decimal_value().ToDouble());
    case TypeKind::kJson:
      return v.json_value();
    default: {
      SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(v));
      return JsonValue::MakeString(std::move(s));
    }
  }
}

Result<Value> FnJsonArray(FunctionContext& ctx, const ValueList& args) {
  JsonValue::Array items;
  for (const Value& v : args) {
    SOFT_ASSIGN_OR_RETURN(JsonPtr j, SqlValueToJson(ctx, v));
    items.push_back(std::move(j));
  }
  return Value::JsonVal(JsonValue::MakeArray(std::move(items)));
}

Result<Value> FnJsonObject(FunctionContext& ctx, const ValueList& args) {
  if (args.size() % 2 != 0) {
    ctx.Cover(1);
    return InvalidArgument("JSON_OBJECT requires an even number of arguments");
  }
  JsonValue::Object members;
  for (size_t i = 0; i < args.size(); i += 2) {
    SOFT_ASSIGN_OR_RETURN(std::string key, ctx.ArgString(args[i]));
    SOFT_ASSIGN_OR_RETURN(JsonPtr val, SqlValueToJson(ctx, args[i + 1]));
    members.emplace_back(std::move(key), std::move(val));
  }
  return Value::JsonVal(JsonValue::MakeObject(std::move(members)));
}

Result<Value> FnJsonQuote(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  return Value::Str(JsonValue::MakeString(s)->Serialize());
}

Result<Value> FnJsonUnquote(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  if (doc->kind() == JsonKind::kString) {
    return Value::Str(doc->string_value());
  }
  ctx.Cover(1);
  return Value::Str(doc->Serialize());
}

Result<Value> FnJsonMergePreserve(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr a, ArgJson(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(JsonPtr b, ArgJson(ctx, args[1]));
  // Array-style merge: wrap non-arrays.
  JsonValue::Array items;
  auto extend = [&](const JsonPtr& doc) {
    if (doc->kind() == JsonKind::kArray) {
      for (const JsonPtr& item : doc->array_items()) {
        items.push_back(item);
      }
    } else {
      items.push_back(doc);
    }
  };
  extend(a);
  extend(b);
  return Value::JsonVal(JsonValue::MakeArray(std::move(items)));
}

Result<Value> FnJsonContainsPath(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(JsonPtr doc, ArgJson(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string path, ctx.ArgString(args[1]));
  const Result<JsonPtr> target = EvalJsonPath(doc, path);
  if (!target.ok()) {
    ctx.Cover(1);
    return target.status();
  }
  return Value::Boolean(*target != nullptr);
}

// COLUMN_CREATE / COLUMN_JSON — MariaDB dynamic columns, simplified: a
// dynamic column set is a JSON object carried as a blob.
Result<Value> FnColumnCreate(FunctionContext& ctx, const ValueList& args) {
  if (args.size() % 2 != 0) {
    ctx.Cover(1);
    return InvalidArgument("COLUMN_CREATE requires name/value pairs");
  }
  JsonValue::Object members;
  for (size_t i = 0; i < args.size(); i += 2) {
    SOFT_ASSIGN_OR_RETURN(std::string key, ctx.ArgString(args[i]));
    // Decimal values keep their full digit string (the MDEV-8407 surface).
    if (args[i + 1].kind() == TypeKind::kDecimal) {
      ctx.Cover(2);
      members.emplace_back(std::move(key),
                           JsonValue::MakeString(args[i + 1].decimal_value().ToString()));
      continue;
    }
    SOFT_ASSIGN_OR_RETURN(JsonPtr val, SqlValueToJson(ctx, args[i + 1]));
    members.emplace_back(std::move(key), std::move(val));
  }
  return Value::BlobVal(JsonValue::MakeObject(std::move(members))->Serialize());
}

Result<Value> FnColumnJson(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kBlob) {
    ctx.Cover(1);
    return InvalidArgument("COLUMN_JSON expects a dynamic-column blob");
  }
  SOFT_ASSIGN_OR_RETURN(JsonParseResult parsed,
                        ParseJson(args[0].blob_value(), ctx.limits().json_depth_limit));
  return Value::Str(parsed.value->Serialize());
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kJson;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterJsonFunctions(FunctionRegistry& r) {
  Reg(r, "JSON_VALID", 1, 1, FnJsonValid, "Whether text parses as JSON",
      "JSON_VALID('{\"a\": 1}')");
  Reg(r, "JSON_DEPTH", 1, 1, FnJsonDepth, "Nesting depth of a document",
      "JSON_DEPTH('[[1]]')");
  Reg(r, "JSON_LENGTH", 1, 2, FnJsonLength, "Element count at a path",
      "JSON_LENGTH('[1,2,3]', '$')");
  Reg(r, "JSON_EXTRACT", 2, 2, FnJsonExtract, "Value at a path",
      "JSON_EXTRACT('{\"a\": [1,2]}', '$.a[1]')");
  Reg(r, "JSON_TYPE", 1, 1, FnJsonType, "Type tag of a document", "JSON_TYPE('[1]')");
  Reg(r, "JSON_KEYS", 1, 1, FnJsonKeys, "Keys of an object", "JSON_KEYS('{\"a\": 1}')");
  Reg(r, "JSON_ARRAY", 0, -1, FnJsonArray, "Build a JSON array", "JSON_ARRAY(1, 'a')");
  Reg(r, "JSON_OBJECT", 0, -1, FnJsonObject, "Build a JSON object",
      "JSON_OBJECT('a', 1)");
  Reg(r, "JSON_QUOTE", 1, 1, FnJsonQuote, "Quote text as a JSON string",
      "JSON_QUOTE('abc')");
  Reg(r, "JSON_UNQUOTE", 1, 1, FnJsonUnquote, "Unquote a JSON string",
      "JSON_UNQUOTE('\"abc\"')");
  Reg(r, "JSON_MERGE_PRESERVE", 2, 2, FnJsonMergePreserve, "Merge two documents",
      "JSON_MERGE_PRESERVE('[1]', '[2]')");
  Reg(r, "JSON_CONTAINS_PATH", 2, 2, FnJsonContainsPath, "Whether a path resolves",
      "JSON_CONTAINS_PATH('{\"a\": 1}', '$.a')");
  Reg(r, "COLUMN_CREATE", 2, -1, FnColumnCreate, "Build a dynamic-column blob",
      "COLUMN_CREATE('x', 1)");
  Reg(r, "COLUMN_JSON", 1, 1, FnColumnJson, "Dynamic-column blob to JSON text",
      "COLUMN_JSON(COLUMN_CREATE('x', 1))");
}

}  // namespace soft
