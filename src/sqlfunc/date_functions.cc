// Built-in date/time functions.
//
// Date boundaries: year 0000/9999, invalid months/days accepted leniently by
// MySQL-style casts, huge AddDays offsets. CURRENT_DATE is pinned to a fixed
// date so every campaign is reproducible.
#include "src/sqlfunc/function.h"

namespace soft {
namespace {

// Fixed "today" for deterministic runs.
constexpr Date kEngineToday{2025, 3, 30};  // EuroSys'25 week, why not

Result<Date> ArgDate(FunctionContext& ctx, const Value& v) {
  SOFT_ASSIGN_OR_RETURN(Value d, CoerceValue(v, TypeKind::kDate, ctx.cast_options()));
  if (d.is_null()) {
    return InvalidArgument("invalid DATE argument");
  }
  return d.date_value();
}

Result<Value> FnCurrentDate(FunctionContext& ctx, const ValueList& args) {
  return Value::DateVal(kEngineToday);
}

Result<Value> FnNow(FunctionContext& ctx, const ValueList& args) {
  DateTime dt;
  dt.date = kEngineToday;
  dt.hour = 12;
  return Value::DateTimeVal(dt);
}

Result<Value> FnDateAdd(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t days, ctx.ArgInt(args[1]));
  const Result<Date> out = AddDays(d, days);
  if (!out.ok()) {
    ctx.Cover(1);
    return Value::Null();  // out-of-range result → NULL (MySQL)
  }
  return Value::DateVal(*out);
}

Result<Value> FnDateSub(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t days, ctx.ArgInt(args[1]));
  const Result<Date> out = AddDays(d, -days);
  if (!out.ok()) {
    ctx.Cover(1);
    return Value::Null();
  }
  return Value::DateVal(*out);
}

Result<Value> FnAddMonths(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t months, ctx.ArgInt(args[1]));
  const Result<Date> out = AddMonths(d, months);
  if (!out.ok()) {
    ctx.Cover(1);
    return Value::Null();
  }
  if (out->day != d.day) {
    ctx.Cover(2);  // end-of-month clamp path
  }
  return Value::DateVal(*out);
}

Result<Value> FnDateDiff(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date a, ArgDate(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(Date b, ArgDate(ctx, args[1]));
  return Value::Int(DateDiffDays(a, b));
}

Result<Value> FnYear(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int(d.year);
}

Result<Value> FnMonth(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int(d.month);
}

Result<Value> FnDay(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int(d.day);
}

Result<Value> FnDayOfWeek(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int(DayOfWeek(d));
}

Result<Value> FnDayOfYear(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int(DayOfYear(d));
}

Result<Value> FnLastDay(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  d.day = DaysInMonth(d.year, d.month);
  return Value::DateVal(d);
}

Result<Value> FnMakeDate(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t year, ctx.ArgInt(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t doy, ctx.ArgInt(args[1]));
  if (year < 0 || year > 9999) {
    ctx.Cover(1);
    return Value::Null();
  }
  if (doy < 1) {
    ctx.Cover(2);
    return Value::Null();  // MySQL: MAKEDATE with dayofyear < 1 → NULL
  }
  Date jan1{static_cast<int32_t>(year), 1, 1};
  const Result<Date> out = AddDays(jan1, doy - 1);
  if (!out.ok()) {
    ctx.Cover(3);
    return Value::Null();
  }
  return Value::DateVal(*out);
}

Result<Value> FnQuarter(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int((d.month - 1) / 3 + 1);
}

Result<Value> FnWeek(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  return Value::Int((DayOfYear(d) - 1) / 7 + 1);
}

// DATE_FORMAT(date, fmt): %Y %m %d %H %i %s %j %w subset.
Result<Value> FnDateFormat(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Value dv, CoerceValue(args[0], TypeKind::kDateTime,
                                              ctx.cast_options()));
  if (dv.is_null()) {
    ctx.Cover(1);
    return Value::Null();
  }
  const DateTime dt = dv.datetime_value();
  SOFT_ASSIGN_OR_RETURN(std::string fmt, ctx.ArgString(args[1]));
  std::string out;
  char buf[16];
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%' || i + 1 >= fmt.size()) {
      out.push_back(fmt[i]);
      continue;
    }
    ++i;
    switch (fmt[i]) {
      case 'Y':
        std::snprintf(buf, sizeof(buf), "%04d", dt.date.year);
        out += buf;
        break;
      case 'm':
        std::snprintf(buf, sizeof(buf), "%02d", dt.date.month);
        out += buf;
        break;
      case 'd':
        std::snprintf(buf, sizeof(buf), "%02d", dt.date.day);
        out += buf;
        break;
      case 'H':
        std::snprintf(buf, sizeof(buf), "%02d", dt.hour);
        out += buf;
        break;
      case 'i':
        std::snprintf(buf, sizeof(buf), "%02d", dt.minute);
        out += buf;
        break;
      case 's':
        std::snprintf(buf, sizeof(buf), "%02d", dt.second);
        out += buf;
        break;
      case 'j':
        std::snprintf(buf, sizeof(buf), "%03d", DayOfYear(dt.date));
        out += buf;
        break;
      case 'w':
        out += std::to_string(DayOfWeek(dt.date) - 1);
        break;
      case '%':
        out.push_back('%');
        break;
      default:
        ctx.Cover(2);  // unknown specifier passes through
        out.push_back('%');
        out.push_back(fmt[i]);
    }
  }
  return Value::Str(std::move(out));
}

Result<Value> FnToDays(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Date d, ArgDate(ctx, args[0]));
  // MySQL's TO_DAYS counts from year 0; ours counts from 1970-01-01 shifted.
  return Value::Int(DateToDayNumber(d) + 719528);
}

Result<Value> FnFromDays(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t n, ctx.ArgInt(args[0]));
  const Result<Date> d = DayNumberToDate(n - 719528);
  if (!d.ok()) {
    ctx.Cover(1);
    return Value::Null();
  }
  return Value::DateVal(*d);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kDate;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterDateFunctions(FunctionRegistry& r) {
  Reg(r, "CURRENT_DATE", 0, 0, FnCurrentDate, "Fixed engine date", "CURRENT_DATE()");
  Reg(r, "CURDATE", 0, 0, FnCurrentDate, "Fixed engine date", "CURDATE()");
  Reg(r, "NOW", 0, 0, FnNow, "Fixed engine timestamp", "NOW()");
  Reg(r, "DATE_ADD", 2, 2, FnDateAdd, "Add days to a date",
      "DATE_ADD(DATE '2024-01-01', 30)");
  Reg(r, "ADDDATE", 2, 2, FnDateAdd, "Add days to a date",
      "ADDDATE(DATE '2024-01-01', 30)");
  Reg(r, "DATE_SUB", 2, 2, FnDateSub, "Subtract days from a date",
      "DATE_SUB(DATE '2024-01-01', 30)");
  Reg(r, "ADD_MONTHS", 2, 2, FnAddMonths, "Add months with end-of-month clamp",
      "ADD_MONTHS(DATE '2024-01-31', 1)");
  Reg(r, "DATEDIFF", 2, 2, FnDateDiff, "Days between two dates",
      "DATEDIFF(DATE '2024-02-01', DATE '2024-01-01')");
  Reg(r, "YEAR", 1, 1, FnYear, "Year part", "YEAR(DATE '2024-06-15')");
  Reg(r, "MONTH", 1, 1, FnMonth, "Month part", "MONTH(DATE '2024-06-15')");
  Reg(r, "DAY", 1, 1, FnDay, "Day part", "DAY(DATE '2024-06-15')");
  Reg(r, "DAYOFMONTH", 1, 1, FnDay, "Day part", "DAYOFMONTH(DATE '2024-06-15')");
  Reg(r, "DAYOFWEEK", 1, 1, FnDayOfWeek, "Day of week (1=Sunday)",
      "DAYOFWEEK(DATE '2024-06-15')");
  Reg(r, "DAYOFYEAR", 1, 1, FnDayOfYear, "Day of year", "DAYOFYEAR(DATE '2024-06-15')");
  Reg(r, "LAST_DAY", 1, 1, FnLastDay, "Last day of the month",
      "LAST_DAY(DATE '2024-02-10')");
  Reg(r, "MAKEDATE", 2, 2, FnMakeDate, "Date from year and day-of-year",
      "MAKEDATE(2024, 60)");
  Reg(r, "QUARTER", 1, 1, FnQuarter, "Quarter of the year", "QUARTER(DATE '2024-06-15')");
  Reg(r, "WEEK", 1, 1, FnWeek, "Week of the year", "WEEK(DATE '2024-06-15')");
  Reg(r, "DATE_FORMAT", 2, 2, FnDateFormat, "Format a date",
      "DATE_FORMAT(DATE '2024-06-15', '%Y/%m/%d')");
  Reg(r, "TO_DAYS", 1, 1, FnToDays, "Day number of a date", "TO_DAYS(DATE '2024-06-15')");
  Reg(r, "FROM_DAYS", 1, 1, FnFromDays, "Date from a day number", "FROM_DAYS(739000)");
}

}  // namespace soft
