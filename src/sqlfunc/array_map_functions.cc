// Built-in array / map functions (DuckDB-style).
//
// DuckDB contributed 9 array and 3 map bugs to Table 4, mostly assertion
// failures on boundary indexes and empty containers. The reference
// implementations validate indexes and element types explicitly.
#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<ValueList> ArgArray(FunctionContext& ctx, const Value& v) {
  if (v.kind() == TypeKind::kArray) {
    return v.array_items();
  }
  SOFT_ASSIGN_OR_RETURN(Value arr, CastValue(v, TypeKind::kArray, ctx.cast_options()));
  if (arr.is_null()) {
    return TypeError("argument is not an array");
  }
  return arr.array_items();
}

Result<Value> FnArrayLength(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  if (items.empty()) {
    ctx.Cover(1);
  }
  return Value::Int(static_cast<int64_t>(items.size()));
}

// ELEMENT_AT(array, index) — 1-based; negative counts from the end; 0 and
// out-of-range are validated (the DuckDB assertion-failure class).
Result<Value> FnElementAt(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t idx, ctx.ArgInt(args[1]));
  if (idx == 0) {
    ctx.Cover(1);
    return InvalidArgument("array index 0 (arrays are 1-based)");
  }
  if (idx < 0) {
    ctx.Cover(2);
    idx = static_cast<int64_t>(items.size()) + idx + 1;
  }
  if (idx < 1 || idx > static_cast<int64_t>(items.size())) {
    ctx.Cover(3);
    return Value::Null();
  }
  return items[static_cast<size_t>(idx - 1)];
}

Result<Value> FnArrayConcat(FunctionContext& ctx, const ValueList& args) {
  ValueList out;
  for (const Value& v : args) {
    SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, v));
    out.insert(out.end(), items.begin(), items.end());
  }
  if (out.size() > 1u << 22) {
    ctx.Cover(1);
    return ResourceExhausted("array concat result too large");
  }
  return Value::ArrayVal(std::move(out));
}

Result<Value> FnArrayAppend(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  items.push_back(args[1]);
  return Value::ArrayVal(std::move(items));
}

Result<Value> FnArrayContains(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  for (const Value& item : items) {
    if (item.Equals(args[1])) {
      return Value::Boolean(true);
    }
  }
  ctx.Cover(1);
  return Value::Boolean(false);
}

Result<Value> FnArraySlice(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t from, ctx.ArgInt(args[1]));
  SOFT_ASSIGN_OR_RETURN(int64_t to, ctx.ArgInt(args[2]));
  // Clamp both ends (validated slice — no assertion on reversed bounds).
  if (from < 1) {
    ctx.Cover(1);
    from = 1;
  }
  if (to > static_cast<int64_t>(items.size())) {
    ctx.Cover(2);
    to = static_cast<int64_t>(items.size());
  }
  ValueList out;
  for (int64_t i = from; i <= to; ++i) {
    out.push_back(items[static_cast<size_t>(i - 1)]);
  }
  if (out.empty()) {
    ctx.Cover(3);
  }
  return Value::ArrayVal(std::move(out));
}

Result<Value> FnArrayReverse(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  ValueList out(items.rbegin(), items.rend());
  return Value::ArrayVal(std::move(out));
}

Result<Value> FnArrayPosition(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList items, ArgArray(ctx, args[0]));
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].Equals(args[1])) {
      return Value::Int(static_cast<int64_t>(i) + 1);
    }
  }
  ctx.Cover(1);
  return Value::Null();
}

// MAP(keys_array, values_array).
Result<Value> FnMap(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(ValueList keys, ArgArray(ctx, args[0]));
  SOFT_ASSIGN_OR_RETURN(ValueList values, ArgArray(ctx, args[1]));
  if (keys.size() != values.size()) {
    ctx.Cover(1);
    return InvalidArgument("MAP key and value arrays must have equal length");
  }
  MapEntries entries;
  entries.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].is_null()) {
      ctx.Cover(2);
      return InvalidArgument("MAP keys must not be NULL");
    }
    entries.emplace_back(keys[i], values[i]);
  }
  return Value::MapVal(std::move(entries));
}

Result<Value> FnMapKeys(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kMap) {
    ctx.Cover(1);
    return TypeError("MAP_KEYS requires a MAP");
  }
  ValueList keys;
  for (const auto& [k, v] : args[0].map_entries()) {
    keys.push_back(k);
  }
  return Value::ArrayVal(std::move(keys));
}

Result<Value> FnMapValues(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kMap) {
    ctx.Cover(1);
    return TypeError("MAP_VALUES requires a MAP");
  }
  ValueList values;
  for (const auto& [k, v] : args[0].map_entries()) {
    values.push_back(v);
  }
  return Value::ArrayVal(std::move(values));
}

Result<Value> FnMapExtract(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() != TypeKind::kMap) {
    ctx.Cover(1);
    return TypeError("MAP_EXTRACT requires a MAP");
  }
  for (const auto& [k, v] : args[0].map_entries()) {
    if (k.Equals(args[1])) {
      return v;
    }
  }
  ctx.Cover(2);
  return Value::Null();
}

Result<Value> FnCardinality(FunctionContext& ctx, const ValueList& args) {
  switch (args[0].kind()) {
    case TypeKind::kArray:
      return Value::Int(static_cast<int64_t>(args[0].array_items().size()));
    case TypeKind::kMap:
      ctx.Cover(1);
      return Value::Int(static_cast<int64_t>(args[0].map_entries().size()));
    default:
      ctx.Cover(2);
      return TypeError("CARDINALITY requires an ARRAY or MAP");
  }
}

void Reg(FunctionRegistry& r, const char* name, FunctionType type, int min_args,
         int max_args, ScalarFunction fn, const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = type;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterArrayMapFunctions(FunctionRegistry& r) {
  Reg(r, "ARRAY_LENGTH", FunctionType::kArray, 1, 1, FnArrayLength, "Element count",
      "ARRAY_LENGTH(ARRAY[1, 2, 3])");
  Reg(r, "ELEMENT_AT", FunctionType::kArray, 2, 2, FnElementAt, "Element at 1-based index",
      "ELEMENT_AT(ARRAY[1, 2, 3], 2)");
  Reg(r, "ARRAY_CONCAT", FunctionType::kArray, 2, -1, FnArrayConcat, "Concatenate arrays",
      "ARRAY_CONCAT(ARRAY[1], ARRAY[2])");
  Reg(r, "ARRAY_APPEND", FunctionType::kArray, 2, 2, FnArrayAppend, "Append an element",
      "ARRAY_APPEND(ARRAY[1], 2)");
  Reg(r, "ARRAY_CONTAINS", FunctionType::kArray, 2, 2, FnArrayContains,
      "Membership test", "ARRAY_CONTAINS(ARRAY[1, 2], 2)");
  Reg(r, "ARRAY_SLICE", FunctionType::kArray, 3, 3, FnArraySlice, "Subrange of an array",
      "ARRAY_SLICE(ARRAY[1, 2, 3], 1, 2)");
  Reg(r, "ARRAY_REVERSE", FunctionType::kArray, 1, 1, FnArrayReverse, "Reverse an array",
      "ARRAY_REVERSE(ARRAY[1, 2, 3])");
  Reg(r, "ARRAY_POSITION", FunctionType::kArray, 2, 2, FnArrayPosition,
      "1-based index of an element", "ARRAY_POSITION(ARRAY[1, 2], 2)");
  Reg(r, "MAP", FunctionType::kMap, 2, 2, FnMap, "Map from key/value arrays",
      "MAP(ARRAY['a'], ARRAY[1])");
  Reg(r, "MAP_KEYS", FunctionType::kMap, 1, 1, FnMapKeys, "Keys of a map",
      "MAP_KEYS(MAP(ARRAY['a'], ARRAY[1]))");
  Reg(r, "MAP_VALUES", FunctionType::kMap, 1, 1, FnMapValues, "Values of a map",
      "MAP_VALUES(MAP(ARRAY['a'], ARRAY[1]))");
  Reg(r, "MAP_EXTRACT", FunctionType::kMap, 2, 2, FnMapExtract, "Value for a key",
      "MAP_EXTRACT(MAP(ARRAY['a'], ARRAY[1]), 'a')");
  Reg(r, "CARDINALITY", FunctionType::kArray, 1, 1, FnCardinality,
      "Size of an array or map", "CARDINALITY(ARRAY[1, 2])");
}

}  // namespace soft
