// Built-in XML functions, with a self-contained micro-XML substrate.
//
// The paper's Listing 2 example is MySQL's UpdateXML; its bug table includes
// XML use-after-free and NPD entries. The substrate is a strict well-formed
// tag parser with nesting-depth accounting (deep <a><a><a>… documents are a
// Pattern 1.4 / 3.1 target) plus a '/a/b[1]'-style XPath subset.
#include <cctype>
#include <memory>
#include <vector>

#include "src/sqlfunc/function.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

struct XmlNode {
  std::string tag;
  std::string text;  // concatenated character data
  std::vector<std::unique_ptr<XmlNode>> children;

  std::string Serialize() const {
    std::string out = "<" + tag + ">";
    out += text;
    for (const auto& child : children) {
      out += child->Serialize();
    }
    out += "</" + tag + ">";
    return out;
  }
};

constexpr int kMaxXmlDepth = 512;

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XmlNode>> Parse() {
    SkipSpace();
    SOFT_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement(1));
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgument("trailing content after XML root element");
    }
    return root;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Result<std::unique_ptr<XmlNode>> ParseElement(int depth) {
    if (depth > kMaxXmlDepth) {
      return ResourceExhausted("XML nesting depth limit exceeded");
    }
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return InvalidArgument("expected '<' in XML");
    }
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    while (pos_ < text_.size() && text_[pos_] != '>' && text_[pos_] != '/' &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
      node->tag.push_back(text_[pos_]);
      ++pos_;
    }
    if (node->tag.empty()) {
      return InvalidArgument("empty XML tag name");
    }
    SkipSpace();
    // Self-closing form <a/>.
    if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return node;
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return InvalidArgument("malformed XML start tag");
    }
    ++pos_;
    // Content: text and child elements until the matching close tag.
    for (;;) {
      if (pos_ >= text_.size()) {
        return InvalidArgument("unterminated XML element <" + node->tag + ">");
      }
      if (text_[pos_] == '<') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          pos_ += 2;
          std::string close;
          while (pos_ < text_.size() && text_[pos_] != '>') {
            close.push_back(text_[pos_]);
            ++pos_;
          }
          if (pos_ >= text_.size()) {
            return InvalidArgument("unterminated XML close tag");
          }
          ++pos_;
          if (close != node->tag) {
            return InvalidArgument("mismatched XML close tag </" + close + ">");
          }
          return node;
        }
        SOFT_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement(depth + 1));
        node->children.push_back(std::move(child));
      } else {
        node->text.push_back(text_[pos_]);
        ++pos_;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Path subset: /tag/tag[index]/... (1-based indexes).
struct XPathStep {
  std::string tag;
  int index = 1;
};

Result<std::vector<XPathStep>> ParseXPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument("XPath must start with '/'");
  }
  std::vector<XPathStep> steps;
  size_t pos = 1;
  while (pos < path.size()) {
    XPathStep step;
    while (pos < path.size() && path[pos] != '/' && path[pos] != '[') {
      step.tag.push_back(path[pos]);
      ++pos;
    }
    if (step.tag.empty()) {
      return InvalidArgument("empty step in XPath");
    }
    if (pos < path.size() && path[pos] == '[') {
      const size_t close = path.find(']', pos);
      if (close == std::string_view::npos) {
        return InvalidArgument("unterminated index in XPath");
      }
      step.index = 0;
      for (size_t i = pos + 1; i < close; ++i) {
        if (std::isdigit(static_cast<unsigned char>(path[i])) == 0) {
          return InvalidArgument("non-numeric index in XPath");
        }
        step.index = step.index * 10 + (path[i] - '0');
      }
      pos = close + 1;
    }
    steps.push_back(std::move(step));
    if (pos < path.size()) {
      if (path[pos] != '/') {
        return InvalidArgument("malformed XPath");
      }
      ++pos;
    }
  }
  return steps;
}

// Returns the node at the path, or nullptr when it does not resolve. The
// first step must match the root tag.
XmlNode* ResolveXPath(XmlNode* root, const std::vector<XPathStep>& steps) {
  if (steps.empty() || root == nullptr || root->tag != steps[0].tag ||
      steps[0].index != 1) {
    return nullptr;
  }
  XmlNode* cur = root;
  for (size_t s = 1; s < steps.size(); ++s) {
    int seen = 0;
    XmlNode* next = nullptr;
    for (const auto& child : cur->children) {
      if (child->tag == steps[s].tag) {
        ++seen;
        if (seen == steps[s].index) {
          next = child.get();
          break;
        }
      }
    }
    if (next == nullptr) {
      return nullptr;
    }
    cur = next;
  }
  return cur;
}

Result<Value> FnExtractValue(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string xml, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string path, ctx.ArgString(args[1]));
  XmlParser parser(xml);
  const Result<std::unique_ptr<XmlNode>> doc = parser.Parse();
  if (!doc.ok()) {
    ctx.Cover(1);
    return doc.status().code() == StatusCode::kResourceExhausted ? doc.status()
                                                                 : Result<Value>(Value::Null());
  }
  SOFT_ASSIGN_OR_RETURN(std::vector<XPathStep> steps, ParseXPath(path));
  const XmlNode* target = ResolveXPath(doc->get(), steps);
  if (target == nullptr) {
    ctx.Cover(2);
    return Value::Str("");
  }
  return Value::Str(target->text);
}

Result<Value> FnUpdateXml(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string xml, ctx.ArgString(args[0]));
  SOFT_ASSIGN_OR_RETURN(std::string path, ctx.ArgString(args[1]));
  SOFT_ASSIGN_OR_RETURN(std::string replacement, ctx.ArgString(args[2]));
  XmlParser parser(xml);
  Result<std::unique_ptr<XmlNode>> doc = parser.Parse();
  if (!doc.ok()) {
    ctx.Cover(1);
    return doc.status().code() == StatusCode::kResourceExhausted ? doc.status()
                                                                 : Result<Value>(Value::Null());
  }
  SOFT_ASSIGN_OR_RETURN(std::vector<XPathStep> steps, ParseXPath(path));
  XmlNode* target = ResolveXPath(doc->get(), steps);
  if (target == nullptr) {
    ctx.Cover(2);
    return Value::Str(xml);  // MySQL: path miss returns the original
  }
  // Parse the replacement fragment; it must itself be well-formed.
  XmlParser repl_parser(replacement);
  Result<std::unique_ptr<XmlNode>> fragment = repl_parser.Parse();
  if (!fragment.ok()) {
    ctx.Cover(3);
    return Value::Str(xml);
  }
  if (steps.size() == 1) {
    ctx.Cover(4);
    return Value::Str((*fragment)->Serialize());  // replaced the root
  }
  // Replace within the parent.
  std::vector<XPathStep> parent_steps(steps.begin(), steps.end() - 1);
  XmlNode* parent = ResolveXPath(doc->get(), parent_steps);
  for (auto& child : parent->children) {
    if (child.get() == target) {
      child = std::move(*fragment);
      break;
    }
  }
  return Value::Str((*doc)->Serialize());
}

Result<Value> FnXmlValid(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string xml, ctx.ArgString(args[0]));
  XmlParser parser(xml);
  const Result<std::unique_ptr<XmlNode>> doc = parser.Parse();
  if (!doc.ok() && doc.status().code() == StatusCode::kResourceExhausted) {
    ctx.Cover(1);
    return doc.status();
  }
  return Value::Boolean(doc.ok());
}

Result<Value> FnXmlRoot(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string xml, ctx.ArgString(args[0]));
  XmlParser parser(xml);
  SOFT_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> doc, parser.Parse());
  return Value::Str(doc->tag);
}

Result<Value> FnXmlElementCount(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string xml, ctx.ArgString(args[0]));
  XmlParser parser(xml);
  SOFT_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> doc, parser.Parse());
  int64_t count = 0;
  std::vector<const XmlNode*> stack = {doc.get()};
  while (!stack.empty()) {
    const XmlNode* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return Value::Int(count);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kXml;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterXmlFunctions(FunctionRegistry& r) {
  Reg(r, "EXTRACTVALUE", 2, 2, FnExtractValue, "Text content at an XPath",
      "EXTRACTVALUE('<a><b>x</b></a>', '/a/b')");
  Reg(r, "UPDATEXML", 3, 3, FnUpdateXml, "Replace a subtree at an XPath",
      "UPDATEXML('<a><c></c></a>', '/a/c[1]', '<b></b>')");
  Reg(r, "XML_VALID", 1, 1, FnXmlValid, "Whether text is well-formed XML",
      "XML_VALID('<a></a>')");
  Reg(r, "XML_ROOT", 1, 1, FnXmlRoot, "Root tag name", "XML_ROOT('<a><b/></a>')");
  Reg(r, "XML_ELEMENT_COUNT", 1, 1, FnXmlElementCount, "Total element count",
      "XML_ELEMENT_COUNT('<a><b/><b/></a>')");
}

}  // namespace soft
