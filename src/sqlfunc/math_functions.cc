// Built-in math functions.
//
// Numeric boundary values (INT64 extremes, huge decimal digit counts,
// division by zero, domain edges of LOG/SQRT/ASIN) are the Pattern 1.1
// workhorses. Exact decimal arguments route through the Decimal substrate so
// digit-count boundaries are observable by the fault predicates.
#include <cmath>

#include "src/sqlfunc/function.h"

namespace soft {
namespace {

Result<Value> FnAbs(FunctionContext& ctx, const ValueList& args) {
  const Value& v = args[0];
  switch (v.kind()) {
    case TypeKind::kInt: {
      const int64_t i = v.int_value();
      if (i == INT64_MIN) {
        ctx.Cover(1);
        return InvalidArgument("ABS(INT64_MIN) overflows");
      }
      return Value::Int(i < 0 ? -i : i);
    }
    case TypeKind::kDecimal: {
      ctx.Cover(2);
      const Decimal& d = v.decimal_value();
      return Value::Dec(d.negative() ? d.Negated() : d);
    }
    default: {
      SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(v));
      return Value::DoubleVal(std::fabs(d));
    }
  }
}

Result<Value> FnSign(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  if (d == 0) {
    ctx.Cover(1);
    return Value::Int(0);
  }
  return Value::Int(d < 0 ? -1 : 1);
}

Result<Value> FnCeil(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() == TypeKind::kDecimal) {
    ctx.Cover(1);
    const Decimal r = args[0].decimal_value().Rounded(0);
    // Rounded() rounds half away; CEIL must go up when there was a fraction.
    const Decimal& d = args[0].decimal_value();
    if (Decimal::Compare(r, d) < 0) {
      return Value::Dec(Decimal::Add(r, Decimal::FromInt64(1)));
    }
    return Value::Dec(r);
  }
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  return Value::DoubleVal(std::ceil(d));
}

Result<Value> FnFloor(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() == TypeKind::kDecimal) {
    ctx.Cover(1);
    const Decimal r = args[0].decimal_value().Rounded(0);
    const Decimal& d = args[0].decimal_value();
    if (Decimal::Compare(r, d) > 0) {
      return Value::Dec(Decimal::Sub(r, Decimal::FromInt64(1)));
    }
    return Value::Dec(r);
  }
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  return Value::DoubleVal(std::floor(d));
}

Result<Value> FnRound(FunctionContext& ctx, const ValueList& args) {
  int64_t places = 0;
  if (args.size() >= 2) {
    SOFT_ASSIGN_OR_RETURN(places, ctx.ArgInt(args[1]));
  }
  if (args[0].kind() == TypeKind::kDecimal || args[0].kind() == TypeKind::kInt) {
    SOFT_ASSIGN_OR_RETURN(Decimal d, ctx.ArgDecimal(args[0]));
    if (places < -38) {
      ctx.Cover(1);
      return Value::Dec(Decimal());
    }
    if (places < 0) {
      ctx.Cover(2);
      // Round to a power of ten left of the decimal point.
      Decimal shifted = d;
      for (int64_t i = 0; i < -places; ++i) {
        SOFT_ASSIGN_OR_RETURN(shifted, Decimal::Div(shifted, Decimal::FromInt64(10), 20));
      }
      shifted = shifted.Rounded(0);
      for (int64_t i = 0; i < -places; ++i) {
        shifted = Decimal::Mul(shifted, Decimal::FromInt64(10));
      }
      return Value::Dec(shifted);
    }
    if (places > 10000) {
      ctx.Cover(3);
      return ResourceExhausted("ROUND scale exceeds engine limit");
    }
    return Value::Dec(d.Rounded(static_cast<int>(places)));
  }
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  const double scale = std::pow(10.0, static_cast<double>(places));
  if (!std::isfinite(scale) || scale == 0) {
    ctx.Cover(4);
    return Value::DoubleVal(places > 0 ? d : 0.0);
  }
  return Value::DoubleVal(std::round(d * scale) / scale);
}

Result<Value> FnTruncate(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(Decimal d, ctx.ArgDecimal(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t places, ctx.ArgInt(args[1]));
  if (places < 0) {
    ctx.Cover(1);
    places = 0;
  }
  if (places > 10000) {
    ctx.Cover(2);
    return ResourceExhausted("TRUNCATE scale exceeds engine limit");
  }
  // Truncation = rounding toward zero: chop digits without the half-up step.
  const std::string text = d.ToString();
  const size_t dot = text.find('.');
  if (dot == std::string::npos || text.size() - dot - 1 <= static_cast<size_t>(places)) {
    ctx.Cover(3);
    return Value::Dec(d);
  }
  const std::string chopped =
      text.substr(0, dot + (places > 0 ? static_cast<size_t>(places) + 1 : 0));
  SOFT_ASSIGN_OR_RETURN(Decimal out, Decimal::FromString(chopped));
  return Value::Dec(out);
}

Result<Value> FnMod(FunctionContext& ctx, const ValueList& args) {
  if (args[0].kind() == TypeKind::kInt && args[1].kind() == TypeKind::kInt) {
    const int64_t a = args[0].int_value();
    const int64_t b = args[1].int_value();
    if (b == 0) {
      ctx.Cover(1);
      return InvalidArgument("division by zero in MOD");
    }
    if (a == INT64_MIN && b == -1) {
      ctx.Cover(2);
      return Value::Int(0);  // checked: avoids the classic SIGFPE
    }
    return Value::Int(a % b);
  }
  SOFT_ASSIGN_OR_RETURN(double a, ctx.ArgDouble(args[0]));
  SOFT_ASSIGN_OR_RETURN(double b, ctx.ArgDouble(args[1]));
  if (b == 0) {
    ctx.Cover(1);
    return InvalidArgument("division by zero in MOD");
  }
  return Value::DoubleVal(std::fmod(a, b));
}

Result<Value> FnDiv(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t a, ctx.ArgInt(args[0]));
  SOFT_ASSIGN_OR_RETURN(int64_t b, ctx.ArgInt(args[1]));
  if (b == 0) {
    ctx.Cover(1);
    return InvalidArgument("division by zero in DIV");
  }
  if (a == INT64_MIN && b == -1) {
    ctx.Cover(2);
    return InvalidArgument("DIV overflow");
  }
  return Value::Int(a / b);
}

Result<Value> FnPower(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double base, ctx.ArgDouble(args[0]));
  SOFT_ASSIGN_OR_RETURN(double exp, ctx.ArgDouble(args[1]));
  const double out = std::pow(base, exp);
  if (!std::isfinite(out)) {
    ctx.Cover(1);
    return InvalidArgument("POWER result out of range");
  }
  if (base == 0 && exp < 0) {
    ctx.Cover(2);
    return InvalidArgument("zero raised to a negative power");
  }
  return Value::DoubleVal(out);
}

Result<Value> FnSqrt(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  if (d < 0) {
    ctx.Cover(1);
    return InvalidArgument("SQRT of a negative number");
  }
  return Value::DoubleVal(std::sqrt(d));
}

Result<Value> FnExp(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  const double out = std::exp(d);
  if (!std::isfinite(out)) {
    ctx.Cover(1);
    return InvalidArgument("EXP result out of range");
  }
  return Value::DoubleVal(out);
}

Result<Value> FnLn(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  if (d <= 0) {
    ctx.Cover(1);
    return InvalidArgument("LN of a non-positive number");
  }
  return Value::DoubleVal(std::log(d));
}

Result<Value> FnLog(FunctionContext& ctx, const ValueList& args) {
  if (args.size() == 1) {
    return FnLn(ctx, args);
  }
  SOFT_ASSIGN_OR_RETURN(double base, ctx.ArgDouble(args[0]));
  SOFT_ASSIGN_OR_RETURN(double x, ctx.ArgDouble(args[1]));
  if (x <= 0 || base <= 0 || base == 1) {
    ctx.Cover(1);
    return InvalidArgument("LOG domain error");
  }
  return Value::DoubleVal(std::log(x) / std::log(base));
}

Result<Value> FnLog10(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  if (d <= 0) {
    ctx.Cover(1);
    return InvalidArgument("LOG10 of a non-positive number");
  }
  return Value::DoubleVal(std::log10(d));
}

Result<Value> FnLog2(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  if (d <= 0) {
    ctx.Cover(1);
    return InvalidArgument("LOG2 of a non-positive number");
  }
  return Value::DoubleVal(std::log2(d));
}

Result<Value> TrigImpl(FunctionContext& ctx, const ValueList& args, double (*fn)(double)) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  const double out = fn(d);
  if (std::isnan(out)) {
    ctx.Cover(1);
    return InvalidArgument("trigonometric domain error");
  }
  return Value::DoubleVal(out);
}

Result<Value> FnSin(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::sin);
}
Result<Value> FnCos(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::cos);
}
Result<Value> FnTan(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::tan);
}
Result<Value> FnAsin(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::asin);
}
Result<Value> FnAcos(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::acos);
}
Result<Value> FnAtan(FunctionContext& ctx, const ValueList& args) {
  return TrigImpl(ctx, args, std::atan);
}

Result<Value> FnAtan2(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double y, ctx.ArgDouble(args[0]));
  SOFT_ASSIGN_OR_RETURN(double x, ctx.ArgDouble(args[1]));
  return Value::DoubleVal(std::atan2(y, x));
}

Result<Value> FnPi(FunctionContext& ctx, const ValueList& args) {
  return Value::DoubleVal(3.14159265358979323846);
}

Result<Value> FnRadians(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  return Value::DoubleVal(d * 3.14159265358979323846 / 180.0);
}

Result<Value> FnDegrees(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
  return Value::DoubleVal(d * 180.0 / 3.14159265358979323846);
}

Result<Value> FnCrc32(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(std::string s, ctx.ArgString(args[0]));
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : s) {
    crc ^= c;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return Value::Int(static_cast<int64_t>(~crc & 0xFFFFFFFFu));
}

Result<Value> FnBitCount(FunctionContext& ctx, const ValueList& args) {
  SOFT_ASSIGN_OR_RETURN(int64_t v, ctx.ArgInt(args[0]));
  uint64_t u = static_cast<uint64_t>(v);
  int count = 0;
  while (u != 0) {
    count += static_cast<int>(u & 1);
    u >>= 1;
  }
  return Value::Int(count);
}

// RAND([seed]) — deterministic; without a seed uses a fixed engine seed so
// campaigns stay reproducible.
Result<Value> FnRand(FunctionContext& ctx, const ValueList& args) {
  uint64_t seed = 0x853c49e6748fea9bull;
  if (!args.empty()) {
    ctx.Cover(1);
    SOFT_ASSIGN_OR_RETURN(int64_t s, ctx.ArgInt(args[0]));
    seed ^= static_cast<uint64_t>(s) * 0x9E3779B97F4A7C15ull;
  }
  seed ^= seed >> 33;
  seed *= 0xFF51AFD7ED558CCDull;
  seed ^= seed >> 33;
  return Value::DoubleVal(static_cast<double>(seed >> 11) * 0x1.0p-53);
}

void Reg(FunctionRegistry& r, const char* name, int min_args, int max_args, ScalarFunction fn,
         const char* doc, const char* example) {
  FunctionDef def;
  def.name = name;
  def.type = FunctionType::kMath;
  def.min_args = min_args;
  def.max_args = max_args;
  def.scalar = std::move(fn);
  def.doc = doc;
  def.example = example;
  r.Register(std::move(def));
}

}  // namespace

void RegisterMathFunctions(FunctionRegistry& r) {
  Reg(r, "ABS", 1, 1, FnAbs, "Absolute value", "ABS(-5)");
  Reg(r, "SIGN", 1, 1, FnSign, "Sign of a number", "SIGN(-5)");
  Reg(r, "CEIL", 1, 1, FnCeil, "Round up", "CEIL(1.2)");
  Reg(r, "CEILING", 1, 1, FnCeil, "Round up", "CEILING(1.2)");
  Reg(r, "FLOOR", 1, 1, FnFloor, "Round down", "FLOOR(1.8)");
  Reg(r, "ROUND", 1, 2, FnRound, "Round to N places", "ROUND(1.2345, 2)");
  Reg(r, "TRUNCATE", 2, 2, FnTruncate, "Truncate to N places", "TRUNCATE(1.999, 1)");
  Reg(r, "MOD", 2, 2, FnMod, "Remainder", "MOD(10, 3)");
  Reg(r, "DIV", 2, 2, FnDiv, "Integer division", "DIV(10, 3)");
  Reg(r, "POWER", 2, 2, FnPower, "Exponentiation", "POWER(2, 10)");
  Reg(r, "POW", 2, 2, FnPower, "Exponentiation", "POW(2, 10)");
  Reg(r, "SQRT", 1, 1, FnSqrt, "Square root", "SQRT(2)");
  Reg(r, "EXP", 1, 1, FnExp, "e^x", "EXP(1)");
  Reg(r, "LN", 1, 1, FnLn, "Natural logarithm", "LN(2.718)");
  Reg(r, "LOG", 1, 2, FnLog, "Logarithm (optionally with base)", "LOG(2, 8)");
  Reg(r, "LOG10", 1, 1, FnLog10, "Base-10 logarithm", "LOG10(100)");
  Reg(r, "LOG2", 1, 1, FnLog2, "Base-2 logarithm", "LOG2(8)");
  Reg(r, "SIN", 1, 1, FnSin, "Sine", "SIN(0)");
  Reg(r, "COS", 1, 1, FnCos, "Cosine", "COS(0)");
  Reg(r, "TAN", 1, 1, FnTan, "Tangent", "TAN(0)");
  Reg(r, "ASIN", 1, 1, FnAsin, "Arc sine", "ASIN(0.5)");
  Reg(r, "ACOS", 1, 1, FnAcos, "Arc cosine", "ACOS(0.5)");
  Reg(r, "ATAN", 1, 1, FnAtan, "Arc tangent", "ATAN(1)");
  Reg(r, "ATAN2", 2, 2, FnAtan2, "Two-argument arc tangent", "ATAN2(1, 1)");
  Reg(r, "PI", 0, 0, FnPi, "The constant pi", "PI()");
  Reg(r, "RADIANS", 1, 1, FnRadians, "Degrees to radians", "RADIANS(180)");
  Reg(r, "DEGREES", 1, 1, FnDegrees, "Radians to degrees", "DEGREES(3.14159)");
  Reg(r, "CRC32", 1, 1, FnCrc32, "CRC-32 checksum", "CRC32('abc')");
  Reg(r, "BIT_COUNT", 1, 1, FnBitCount, "Count of set bits", "BIT_COUNT(7)");
  Reg(r, "RAND", 0, 1, FnRand, "Deterministic pseudo-random value", "RAND(42)");
}

}  // namespace soft
