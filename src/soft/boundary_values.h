// Pattern 1.1: the boundary-literal pool.
//
// "bound → ±0.99999, ±99999, '', NULL, *". The paper stresses that single
// extreme values are insufficient — parsers reject over-long literals and
// precision caps differ per DBMS — so the pool enumerates *digit lengths*
// (Section 6). We additionally include the crafted format strings the study
// attributes 12.9% of bugs to (JSON, dates, paths, WKT, addresses) and the
// special composite literals (ROW(1,1); MDEV-14596) documented as a pool
// extension in DESIGN.md.
#ifndef SRC_SOFT_BOUNDARY_VALUES_H_
#define SRC_SOFT_BOUNDARY_VALUES_H_

#include <string>
#include <vector>

namespace soft {

struct BoundaryPool {
  // Each entry is a SQL expression snippet ("-0.99999", "''", "NULL", "*",
  // "ROW(1, 1)", ...) that parses as a literal-ish expression.
  std::vector<std::string> snippets;
};

// The full pool. `max_digits` bounds the digit-length enumeration (default
// covers every precision cap among the seven dialects, 65 digits + past-cap
// probes).
BoundaryPool GenerateBoundaryPool(int max_digits = 80);

// Sub-pools, exposed for the digit-sweep ablation bench: only the single
// most extreme value per class (the strategy the paper calls insufficient).
BoundaryPool GenerateExtremesOnlyPool();

}  // namespace soft

#endif  // SRC_SOFT_BOUNDARY_VALUES_H_
