// Chaos campaigns: systematically inject a fault at every registered
// failpoint and verify the harness degrades the way docs/ROBUSTNESS.md
// promises. This is the acceptance oracle for the failpoint subsystem, run
// as the `Chaos*` ctest suites and the CI asan-chaos lane
// (`find_bugs --chaos=enumerate`).
//
// Per SiteClass oracle (failpoint.h documents the classes):
//
//   kEngine    a fixed driver statement through the site surfaces a clean
//              kResourceExhausted (error mode) — and under oom mode the
//              thrown bad_alloc is caught at the Execute boundary; a small
//              campaign with the site armed still completes its full budget
//              and is run-to-run deterministic under the same armed spec.
//   kIoRetry   the fault is absorbed by a retry loop: payloads and campaign
//              results are bit-identical to the uninjected run (worker
//              sites fork real children, so they are gated behind
//              include_worker_sites for sanitizer lanes that must not fork
//              with threads).
//   kIoError   the artifact write fails with kIoError naming the path, the
//              destination keeps its previous contents, no tmp file is left
//              behind; after disarming, the identical artifact is produced.
//   kDegrade   the campaign continues without its checkpoint sink, latches
//              CampaignResult::journal_degraded, and its deterministic
//              outcome (bug set, counters, coverage) is bit-identical to
//              the uninjected run.
#ifndef SRC_SOFT_CHAOS_H_
#define SRC_SOFT_CHAOS_H_

#include <string>
#include <vector>

#include "src/soft/campaign.h"

namespace soft {

struct ChaosSiteOutcome {
  std::string failpoint;  // site name from failpoint::kInventory
  std::string site_class; // SiteClassName of the site
  std::string spec;       // the chaos spec the smoke run armed
  bool ran = false;       // false when skipped (e.g. worker sites disabled)
  bool ok = false;        // oracle verdict (true for skipped sites)
  std::string detail;     // human-readable oracle evidence / failure reason
};

struct ChaosReport {
  bool compiled_in = false;  // failpoint::kCompiledIn
  std::string dialect;
  int budget = 0;
  std::vector<ChaosSiteOutcome> outcomes;

  // True when every site's oracle held (vacuously true when failpoints are
  // compiled out — there is nothing to inject).
  bool ok() const {
    for (const ChaosSiteOutcome& outcome : outcomes) {
      if (!outcome.ok) {
        return false;
      }
    }
    return true;
  }
};

// Stable digest over a campaign result's deterministic fields (counters,
// bug set with witnesses, coverage, per-shard statement breakdown).
// Wall-clock quantities (found_wall_ns, telemetry latencies) are excluded,
// matching the parallel runner's bit-identity contract; journal_degraded is
// excluded too, so a degraded campaign can be compared against its intact
// reference. Exposed for the chaos tests' sharded-identity assertions.
uint64_t DigestCampaignResult(const CampaignResult& result);

// Stable digest over the campaign's *bug inventory* alone: the dialect plus
// the sorted crash-bug ids and sorted logic-bug ids. Unlike
// DigestCampaignResult it folds no shard structure, witnesses, or counters,
// so it is bit-identical between a serial run, a --shards=K run, and a
// fleet campaign at any worker count — the parity oracle the asan-fleet CI
// lane greps (`find_bugs` prints it as `bug digest`).
uint64_t DigestBugInventory(const CampaignResult& result);

// Stable digest over a campaign's wrong-result outcome: the logic counters
// and, per logic bug, only shard-invariant identity (bug id, flagging
// oracle, PoC statement, global case index). statements_until_found and
// shard are shard-LOCAL attribution detail and are deliberately excluded —
// this digest is bit-identical between a serial campaign and any
// partition-sharded run of the same options (find_bugs prints it as
// `logic digest`).
uint64_t DigestLogicOutcome(const CampaignResult& result);

// Runs the smoke oracle once per inventory site. `budget` bounds each smoke
// campaign's statement count (<= 0 selects the default, 600).
// `include_worker_sites` = false skips the fork-based worker.* sites
// (required under TSan, where fork-with-threads is undefined).
ChaosReport RunChaosEnumeration(const std::string& dialect, int budget,
                                bool include_worker_sites);

}  // namespace soft

#endif  // SRC_SOFT_CHAOS_H_
