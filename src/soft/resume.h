// Checkpoint/resume for interrupted campaigns (docs/ROBUSTNESS.md).
//
// A streamed campaign journal (docs/OBSERVABILITY.md) carries periodic
// `checkpoint` records: cases completed, counters, the RNG state fingerprint
// and the dedup-set digest at that point. Because campaigns are
// deterministic, resuming does not need to serialize fuzzer state — it
// re-runs the campaign from case 0 with the journal's (tool, dialect, seed,
// budget) and *verifies* the replay against the journal's last checkpoint:
// when the replay reaches the same cases_completed, its RNG fingerprint and
// dedup digest must match, or the resume fails loudly instead of silently
// producing a different campaign. The final result is therefore bit-identical
// to the uninterrupted run by construction — including after a kill -9
// mid-campaign, which is what tests/worker_harness_test.cc exercises.
#ifndef SRC_SOFT_RESUME_H_
#define SRC_SOFT_RESUME_H_

#include <string>

#include "src/soft/soft_fuzzer.h"

namespace soft {

// What a --resume=<journal> replay needs from the interrupted run.
struct ResumeSpec {
  std::string tool;
  std::string dialect;
  uint64_t seed = 0;
  int budget = 0;
  int shards = 1;
  // Whether the journal already holds a campaign_finish event (resuming a
  // finished journal is legal but pointless; callers may warn).
  bool finished = false;
  // The journal's last checkpoint — the verification anchor. A journal
  // killed before its first checkpoint resumes as a plain re-run.
  bool has_checkpoint = false;
  CampaignCheckpoint last_checkpoint;
};

// Parses `journal_path` into a ResumeSpec. Fails on unparseable journals and
// on multi-shard journals (per-shard checkpoint streams interleave; resume
// is defined for single-shard campaigns only).
Result<ResumeSpec> LoadResumeSpec(const std::string& journal_path);

// Names every checkpoint field on which `replayed` differs from `journal`,
// with both values ("rng_fingerprint journal=… replay=…; dedup_digest …").
// Feeds the divergence error below so an operator can tell a corrupted
// journal (digest off) from mismatched campaign knobs (counters off) without
// diffing checkpoints by hand. "no field differs" only when the structs are
// equal — the caller then has a logic error, not a divergence.
std::string DescribeCheckpointDivergence(const CampaignCheckpoint& journal,
                                         const CampaignCheckpoint& replayed);

// Re-runs the SOFT campaign described by `spec` deterministically and
// verifies the replay against the journal's last checkpoint as described
// above. `base_options` contributes the knobs the journal does not record
// (statement limits, crash realism, stop_when_all_bugs_found, checkpoint
// sink — which also receives the verification checkpoints); seed, budget and
// checkpoint cadence come from the spec. Real-crash resumes run under the
// forked-worker harness exactly like fresh campaigns.
Result<CampaignResult> ResumeSoftCampaign(const ResumeSpec& spec,
                                          const CampaignOptions& base_options,
                                          const SoftOptions& soft_options = SoftOptions());

}  // namespace soft

#endif  // SRC_SOFT_RESUME_H_
