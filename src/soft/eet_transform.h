// EET-style equivalent-expression transformer (Jiang et al., PAPERS.md):
// rewrites a SELECT statement into variants that are semantically equivalent
// on a correct engine, so any result-set divergence between the original and
// a variant is a wrong-result logic bug.
//
// The rewrites are chosen to perturb exactly the properties the seeded
// LogicBugSpec scopes key on (src/fault/fault.h):
//   - a redundant COALESCE shell around each select item raises the item's
//     function-call depth (evades kTopLevelCall faults);
//   - an identity chain COALESCE(c, c) over a constant argument makes the
//     argument expression non-constant (evades kConstArgs faults);
//   - predicate wrapping over the three-valued-logic partitions — p AND TRUE,
//     p OR FALSE, NOT (NOT p) — exercises the WHERE path without changing
//     row selection.
//
// Soundness rests on two engine facts: COALESCE(e, e) returns its first
// non-null argument verbatim, and the WHERE clause coerces its condition
// with the same null-check + bool-coercion that AND/OR/NOT three-valued
// logic uses — so the wrapped predicates select exactly the same rows.
#ifndef SRC_SOFT_EET_TRANSFORM_H_
#define SRC_SOFT_EET_TRANSFORM_H_

#include <string>
#include <vector>

namespace soft {

struct EetVariant {
  std::string label;  // "shell.coalesce", "pred.and_true", ...
  std::string sql;
};

// Builds every applicable equivalent rewrite of `sql`. Returns an empty
// vector when the statement is out of scope: not a parseable SELECT, or it
// references a volatile function (dialect_diffs.h) whose value re-execution
// legitimately changes. Variants that fail to execute are declared
// differences for the caller to skip, never divergences.
std::vector<EetVariant> BuildEetVariants(const std::string& sql);

}  // namespace soft

#endif  // SRC_SOFT_EET_TRANSFORM_H_
