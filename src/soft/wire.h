// Shared line-oriented wire codec for campaign results and progress records.
//
// Two transports speak this format: the fork+pipe worker harness
// (src/soft/worker.cc, PR 3/5) and the fleet coordinator's Unix-domain
// socket protocol (src/fleet/). Both move '\n'-terminated records of
// space-separated tokens, strings hex-encoded with "-" for empty, so a
// record is torn if and only if its newline is missing — the same framing
// invariant the NDJSON journal relies on (docs/ROBUSTNESS.md).
//
// Record tags of a serialized result block, in emission order:
//
//   RES  tool dialect statements sql_errors crashes fps timeouts
//        logic_checks logic_divergences logic_fps functions branches
//        shards journal_degraded
//   SST  per-shard statement count (one line per shard of a merged result)
//   BUG  crash identity + witness (found_by, poc, statement index, shard,
//        wall anchor)
//   LBG  wrong-result bug: LogicBugInfo + oracle attribution + PoC/witness
//   CVB  one covered branch key
//   TLS  one stage-latency histogram (index, samples, totals, buckets)
//   TLP  one per-pattern telemetry counter row
//   TRS  one trace span (id, parent, kind, shard, times, args)
//   FLR  one crash flight record (headers + inlined ring entries)
//   END  terminates the block
//
// Progress records outside result blocks (transport-specific dispatch):
// the worker pipe's F/C/K lines and the fleet protocol's HELLO/REQ/GRANT/
// HB/UNIT/FIN lines reuse the token and sub-record encoders below.
#ifndef SRC_SOFT_WIRE_H_
#define SRC_SOFT_WIRE_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/coverage/coverage.h"
#include "src/soft/campaign.h"

namespace soft {
namespace wire {

// --- token encoding --------------------------------------------------------

// Lowercase hex; "-" encodes the empty string so tokens never vanish.
std::string HexEncode(const std::string& s);
std::string HexDecode(const std::string& s);

// --- sub-record serialization ---------------------------------------------

std::string EncodeCrash(const CrashInfo& info);
bool DecodeCrash(std::istringstream& in, CrashInfo& info);

std::string EncodeFlightEntry(const trace::FlightEntry& e);
bool DecodeFlightEntry(std::istringstream& in, trace::FlightEntry& e);

std::string EncodeSpan(const trace::TraceSpan& s);
bool DecodeSpan(std::istringstream& in, trace::TraceSpan& s);

std::string EncodeCheckpoint(const CampaignCheckpoint& cp);
bool DecodeCheckpoint(std::istringstream& in, CampaignCheckpoint& cp);

std::string EncodeLogicBug(const FoundLogicBug& bug);
bool DecodeLogicBug(std::istringstream& in, FoundLogicBug& bug);

std::string EncodeFlightRecord(const trace::CrashFlightRecord& flight);
bool DecodeFlightRecord(std::istringstream& in, trace::CrashFlightRecord& flight);

// --- result block ----------------------------------------------------------

// Receives one unframed record line per call; returns false when the
// transport is gone (the caller stops emitting — a finished result block is
// then torn, never half-parsed, because END was not delivered).
using LineSink = std::function<bool(const std::string&)>;

// Serializes a completed CampaignResult + coverage snapshot as the record
// block above. Returns false as soon as the sink does.
bool WriteResultBlock(const LineSink& sink, const CampaignResult& result,
                      const CoverageTracker& coverage);

// Reassembly state for one result block.
struct ResultBlock {
  CampaignResult result;
  CoverageTracker coverage;
  bool complete = false;  // END seen
};

// Feeds one record line into `block`. Returns true when the tag was a
// result-block tag (consumed), false for anything else — the caller owns
// transport-specific records (C/F/K, fleet control lines) and torn tails.
bool ConsumeResultLine(const std::string& line, ResultBlock& block);

// --- framing ---------------------------------------------------------------

// Reassembles '\n'-framed records from arbitrary read chunks. A partial
// last line stays buffered until its newline arrives (or forever, if the
// producer died mid-record — exactly the torn-tail case the caller drops).
class LineBuffer {
 public:
  void Append(const char* data, size_t n) { buffer_.append(data, n); }
  // Pops the next complete line (without its '\n') into `line`.
  bool Next(std::string& line);
  bool HasPartial() const { return !buffer_.empty(); }

 private:
  std::string buffer_;
};

}  // namespace wire
}  // namespace soft

#endif  // SRC_SOFT_WIRE_H_
