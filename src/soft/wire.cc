#include "src/soft/wire.h"

#include <utility>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace soft {
namespace wire {

// --- token encoding --------------------------------------------------------

std::string HexEncode(const std::string& s) {
  if (s.empty()) {
    return "-";
  }
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

std::string HexDecode(const std::string& s) {
  if (s == "-") {
    return "";
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return 0;
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i + 1 < s.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(s[i]) << 4) | nibble(s[i + 1])));
  }
  return out;
}

// --- sub-record serialization ----------------------------------------------

std::string EncodeCrash(const CrashInfo& info) {
  std::ostringstream out;
  out << info.bug_id << ' ' << HexEncode(info.dbms) << ' ' << HexEncode(info.function)
      << ' ' << static_cast<int>(info.crash) << ' ' << static_cast<int>(info.stage)
      << ' ' << HexEncode(info.pattern) << ' ' << HexEncode(info.description);
  return out.str();
}

bool DecodeCrash(std::istringstream& in, CrashInfo& info) {
  int crash = 0, stage = 0;
  std::string dbms, function, pattern, description;
  if (!(in >> info.bug_id >> dbms >> function >> crash >> stage >> pattern >>
        description)) {
    return false;
  }
  info.dbms = HexDecode(dbms);
  info.function = HexDecode(function);
  info.crash = static_cast<CrashType>(crash);
  info.stage = static_cast<Stage>(stage);
  info.pattern = HexDecode(pattern);
  info.description = HexDecode(description);
  return true;
}

std::string EncodeFlightEntry(const trace::FlightEntry& e) {
  std::ostringstream out;
  out << e.statement_index << ' ' << HexEncode(e.pattern) << ' ' << HexEncode(e.sql)
      << ' ' << HexEncode(e.stage_reached) << ' ' << HexEncode(e.outcome);
  return out.str();
}

bool DecodeFlightEntry(std::istringstream& in, trace::FlightEntry& e) {
  std::string pattern, sql, stage, outcome;
  if (!(in >> e.statement_index >> pattern >> sql >> stage >> outcome)) {
    return false;
  }
  e.pattern = HexDecode(pattern);
  e.sql = HexDecode(sql);
  e.stage_reached = HexDecode(stage);
  e.outcome = HexDecode(outcome);
  return true;
}

std::string EncodeSpan(const trace::TraceSpan& s) {
  std::ostringstream out;
  out << s.id << ' ' << s.parent_id << ' ' << static_cast<int>(s.kind) << ' '
      << s.shard << ' ' << s.start_ns << ' ' << s.dur_ns << ' ' << s.args.size();
  for (const auto& [key, value] : s.args) {
    out << ' ' << HexEncode(key) << ' ' << HexEncode(value);
  }
  return out.str();
}

bool DecodeSpan(std::istringstream& in, trace::TraceSpan& s) {
  int kind = 0;
  size_t arg_count = 0;
  if (!(in >> s.id >> s.parent_id >> kind >> s.shard >> s.start_ns >> s.dur_ns >>
        arg_count)) {
    return false;
  }
  s.kind = static_cast<trace::SpanKind>(kind);
  for (size_t i = 0; i < arg_count; ++i) {
    std::string key, value;
    if (!(in >> key >> value)) {
      return false;
    }
    s.args.emplace_back(HexDecode(key), HexDecode(value));
  }
  return true;
}

std::string EncodeCheckpoint(const CampaignCheckpoint& cp) {
  std::ostringstream out;
  out << cp.every << ' ' << cp.shard << ' ' << cp.cases_completed << ' '
      << cp.sql_errors << ' ' << cp.crashes_observed << ' ' << cp.false_positives
      << ' ' << cp.watchdog_timeouts << ' ' << cp.unique_bugs << ' '
      << cp.rng_fingerprint << ' ' << cp.dedup_digest;
  return out.str();
}

bool DecodeCheckpoint(std::istringstream& in, CampaignCheckpoint& cp) {
  return static_cast<bool>(in >> cp.every >> cp.shard >> cp.cases_completed >>
                           cp.sql_errors >> cp.crashes_observed >> cp.false_positives >>
                           cp.watchdog_timeouts >> cp.unique_bugs >>
                           cp.rng_fingerprint >> cp.dedup_digest);
}

std::string EncodeLogicBug(const FoundLogicBug& bug) {
  std::ostringstream out;
  out << bug.info.bug_id << ' ' << HexEncode(bug.info.dbms) << ' '
      << HexEncode(bug.info.function) << ' ' << static_cast<int>(bug.info.effect)
      << ' ' << static_cast<int>(bug.info.scope) << ' ' << HexEncode(bug.info.pattern)
      << ' ' << HexEncode(bug.info.description) << ' ' << HexEncode(bug.oracle) << ' '
      << HexEncode(bug.poc_sql) << ' ' << HexEncode(bug.witness) << ' '
      << HexEncode(bug.detail) << ' ' << bug.case_index << ' '
      << bug.statements_until_found << ' ' << bug.shard;
  return out.str();
}

bool DecodeLogicBug(std::istringstream& in, FoundLogicBug& bug) {
  int effect = 0, scope = 0;
  std::string dbms, function, pattern, description, oracle, poc, witness, detail;
  if (!(in >> bug.info.bug_id >> dbms >> function >> effect >> scope >> pattern >>
        description >> oracle >> poc >> witness >> detail >> bug.case_index >>
        bug.statements_until_found >> bug.shard)) {
    return false;
  }
  bug.info.dbms = HexDecode(dbms);
  bug.info.function = HexDecode(function);
  bug.info.effect = static_cast<LogicEffect>(effect);
  bug.info.scope = static_cast<LogicScope>(scope);
  bug.info.pattern = HexDecode(pattern);
  bug.info.description = HexDecode(description);
  bug.oracle = HexDecode(oracle);
  bug.poc_sql = HexDecode(poc);
  bug.witness = HexDecode(witness);
  bug.detail = HexDecode(detail);
  return true;
}

std::string EncodeFlightRecord(const trace::CrashFlightRecord& flight) {
  std::ostringstream out;
  out << flight.shard << ' ' << flight.worker_run << ' ' << (flight.announced ? 1 : 0)
      << ' ' << flight.bug_id << ' ' << flight.last_checkpoint_cases << ' '
      << flight.entries.size();
  for (const trace::FlightEntry& entry : flight.entries) {
    out << ' ' << EncodeFlightEntry(entry);
  }
  return out.str();
}

bool DecodeFlightRecord(std::istringstream& in, trace::CrashFlightRecord& flight) {
  int announced = 0;
  size_t entry_count = 0;
  if (!(in >> flight.shard >> flight.worker_run >> announced >> flight.bug_id >>
        flight.last_checkpoint_cases >> entry_count)) {
    return false;
  }
  flight.announced = announced != 0;
  for (size_t i = 0; i < entry_count; ++i) {
    trace::FlightEntry entry;
    if (!DecodeFlightEntry(in, entry)) {
      return false;
    }
    flight.entries.push_back(std::move(entry));
  }
  return true;
}

// --- result block ----------------------------------------------------------

bool WriteResultBlock(const LineSink& sink, const CampaignResult& result,
                      const CoverageTracker& coverage) {
  {
    std::ostringstream out;
    out << "RES " << HexEncode(result.tool) << ' ' << HexEncode(result.dialect) << ' '
        << result.statements_executed << ' ' << result.sql_errors << ' '
        << result.crashes_observed << ' ' << result.false_positives << ' '
        << result.watchdog_timeouts << ' ' << result.logic_checks << ' '
        << result.logic_divergences << ' ' << result.logic_false_positives << ' '
        << result.functions_triggered << ' ' << result.branches_covered << ' '
        << result.shards << ' ' << (result.journal_degraded ? 1 : 0);
    if (!sink(out.str())) {
      return false;
    }
  }
  for (const int n : result.shard_statements) {
    if (!sink("SST " + std::to_string(n))) {
      return false;
    }
  }
  for (const FoundBug& bug : result.unique_bugs) {
    std::ostringstream out;
    out << "BUG " << EncodeCrash(bug.crash) << ' ' << HexEncode(bug.found_by) << ' '
        << HexEncode(bug.poc_sql) << ' ' << bug.statements_until_found << ' '
        << bug.shard << ' ' << bug.found_wall_ns << ' ' << (bug.wall_recorded ? 1 : 0);
    if (!sink(out.str())) {
      return false;
    }
  }
  for (const FoundLogicBug& bug : result.logic_bugs) {
    if (!sink("LBG " + EncodeLogicBug(bug))) {
      return false;
    }
  }
  for (const std::string& key : coverage.BranchKeys()) {
    if (!sink("CVB " + HexEncode(key))) {
      return false;
    }
  }
  for (size_t i = 0; i < telemetry::kStageCount; ++i) {
    const telemetry::LatencyHistogram& h = result.telemetry.stage_latency[i];
    std::ostringstream out;
    out << "TLS " << i << ' ' << h.samples << ' ' << h.total_ns << ' ' << h.max_ns;
    for (const uint64_t b : h.buckets) {
      out << ' ' << b;
    }
    if (!sink(out.str())) {
      return false;
    }
  }
  for (const auto& [pattern, c] : result.telemetry.patterns) {
    std::ostringstream out;
    out << "TLP " << HexEncode(pattern) << ' ' << c.generated << ' ' << c.executed
        << ' ' << c.crashes << ' ' << c.bugs_deduped << ' ' << c.sql_errors << ' '
        << c.false_positives << ' ' << c.timeouts;
    if (!sink(out.str())) {
      return false;
    }
  }
  for (const trace::TraceSpan& span : result.trace.spans) {
    if (!sink("TRS " + EncodeSpan(span))) {
      return false;
    }
  }
  for (const trace::CrashFlightRecord& flight : result.crash_flights) {
    if (!sink("FLR " + EncodeFlightRecord(flight))) {
      return false;
    }
  }
  return sink("END");
}

bool ConsumeResultLine(const std::string& line, ResultBlock& block) {
  if (line.empty()) {
    return false;
  }
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag == "RES") {
    std::string tool, dialect;
    int journal_degraded = 0;
    in >> tool >> dialect >> block.result.statements_executed >>
        block.result.sql_errors >> block.result.crashes_observed >>
        block.result.false_positives >> block.result.watchdog_timeouts >>
        block.result.logic_checks >> block.result.logic_divergences >>
        block.result.logic_false_positives >> block.result.functions_triggered >>
        block.result.branches_covered >> block.result.shards >> journal_degraded;
    block.result.journal_degraded = journal_degraded != 0;
    block.result.tool = HexDecode(tool);
    block.result.dialect = HexDecode(dialect);
  } else if (tag == "SST") {
    int n = 0;
    if (in >> n) {
      block.result.shard_statements.push_back(n);
    }
  } else if (tag == "BUG") {
    FoundBug bug;
    std::string found_by, poc;
    int wall_recorded = 0;
    if (DecodeCrash(in, bug.crash) &&
        (in >> found_by >> poc >> bug.statements_until_found >> bug.shard >>
         bug.found_wall_ns >> wall_recorded)) {
      bug.found_by = HexDecode(found_by);
      bug.poc_sql = HexDecode(poc);
      bug.wall_recorded = wall_recorded != 0;
      block.result.unique_bugs.push_back(std::move(bug));
    }
  } else if (tag == "LBG") {
    FoundLogicBug bug;
    if (DecodeLogicBug(in, bug)) {
      block.result.logic_bugs.push_back(std::move(bug));
    }
  } else if (tag == "CVB") {
    std::string key;
    if (in >> key) {
      block.coverage.RestoreBranchKey(HexDecode(key));
    }
  } else if (tag == "TLS") {
    size_t stage = 0;
    telemetry::LatencyHistogram h;
    in >> stage >> h.samples >> h.total_ns >> h.max_ns;
    for (uint64_t& b : h.buckets) {
      in >> b;
    }
    if (in && stage < telemetry::kStageCount) {
      block.result.telemetry.stage_latency[stage] = h;
    }
  } else if (tag == "TLP") {
    std::string pattern;
    telemetry::PatternCounters c;
    if (in >> pattern >> c.generated >> c.executed >> c.crashes >> c.bugs_deduped >>
        c.sql_errors >> c.false_positives >> c.timeouts) {
      block.result.telemetry.patterns[HexDecode(pattern)] = c;
    }
  } else if (tag == "TRS") {
    trace::TraceSpan span;
    if (DecodeSpan(in, span)) {
      block.result.trace.spans.push_back(std::move(span));
    }
  } else if (tag == "FLR") {
    trace::CrashFlightRecord flight;
    if (DecodeFlightRecord(in, flight)) {
      block.result.crash_flights.push_back(std::move(flight));
    }
  } else if (tag == "END") {
    block.complete = true;
  } else {
    return false;
  }
  return true;
}

// --- framing ---------------------------------------------------------------

bool LineBuffer::Next(std::string& line) {
  const size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) {
    return false;
  }
  line.assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  return true;
}

}  // namespace wire
}  // namespace soft
