// Clause-boundary extension (Section 8, "Extending Existing DBMS Testing
// Works with SOFT").
//
// The paper notes SOFT's boundary values also stress data-sensitive clause
// machinery — WHERE filtering, ORDER BY sorting, GROUP BY grouping — not
// just function arguments. This module routes the Pattern 1.1 pool into
// those clauses: comparisons against boundary constants in WHERE, boundary
// expressions as sort and group keys, and boundary LIMIT counts.
#ifndef SRC_SOFT_CLAUSE_EXTENSION_H_
#define SRC_SOFT_CLAUSE_EXTENSION_H_

#include <string>
#include <vector>

#include "src/engine/database.h"

namespace soft {

struct ClauseCase {
  std::string sql;
  std::string clause;  // "WHERE" | "ORDER BY" | "GROUP BY" | "LIMIT"
};

// Generates boundary-valued clause statements over `table`'s columns.
// Deterministic per seed; roughly `budget` statements.
std::vector<ClauseCase> GenerateClauseCases(const Database& db, const std::string& table,
                                            int budget, uint64_t seed = 1);

struct ClauseCampaignResult {
  int statements_executed = 0;
  int sql_errors = 0;
  int crashes = 0;
  std::vector<CrashInfo> unique_crashes;
};

// Generates and executes clause cases, recording crashes (deduplicated by
// bug id).
ClauseCampaignResult RunClauseCampaign(Database& db, const std::string& table,
                                       int budget, uint64_t seed = 1);

}  // namespace soft

#endif  // SRC_SOFT_CLAUSE_EXTENSION_H_
