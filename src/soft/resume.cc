#include "src/soft/resume.h"

#include <utility>

#include "src/dialects/dialects.h"
#include "src/telemetry/journal.h"

namespace soft {

std::string DescribeCheckpointDivergence(const CampaignCheckpoint& journal,
                                         const CampaignCheckpoint& replayed) {
  std::string out;
  const auto field = [&out](const char* name, auto journal_value, auto replay_value) {
    if (journal_value == replay_value) {
      return;
    }
    if (!out.empty()) {
      out += "; ";
    }
    out += std::string(name) + " journal=" + std::to_string(journal_value) +
           " replay=" + std::to_string(replay_value);
  };
  field("cases_completed", journal.cases_completed, replayed.cases_completed);
  field("sql_errors", journal.sql_errors, replayed.sql_errors);
  field("crashes_observed", journal.crashes_observed, replayed.crashes_observed);
  field("false_positives", journal.false_positives, replayed.false_positives);
  field("watchdog_timeouts", journal.watchdog_timeouts, replayed.watchdog_timeouts);
  field("unique_bugs", journal.unique_bugs, replayed.unique_bugs);
  field("rng_fingerprint", journal.rng_fingerprint, replayed.rng_fingerprint);
  field("dedup_digest", journal.dedup_digest, replayed.dedup_digest);
  return out.empty() ? "no field differs" : out;
}

Result<ResumeSpec> LoadResumeSpec(const std::string& journal_path) {
  SOFT_ASSIGN_OR_RETURN(telemetry::JournalReplay replay,
                        telemetry::ReplayJournalFile(journal_path));
  if (replay.shards != 1) {
    return InvalidArgument("--resume supports single-shard journals only (journal has " +
                           std::to_string(replay.shards) + " shards)");
  }
  ResumeSpec spec;
  spec.tool = replay.tool;
  spec.dialect = replay.dialect;
  spec.seed = replay.seed;
  spec.budget = replay.budget;
  spec.shards = replay.shards;
  spec.finished = replay.finished;
  if (!replay.checkpoints.empty()) {
    spec.has_checkpoint = true;
    spec.last_checkpoint = replay.checkpoints.back();
  }
  return spec;
}

Result<CampaignResult> ResumeSoftCampaign(const ResumeSpec& spec,
                                          const CampaignOptions& base_options,
                                          const SoftOptions& soft_options) {
  if (spec.tool != "SOFT") {
    return InvalidArgument("--resume only replays SOFT journals (journal tool: '" +
                           spec.tool + "')");
  }
  if (spec.shards != 1) {
    return InvalidArgument("--resume supports single-shard journals only");
  }
  if (MakeDialect(spec.dialect) == nullptr) {
    return InvalidArgument("unknown dialect in journal: '" + spec.dialect + "'");
  }

  CampaignOptions options = base_options;
  options.seed = spec.seed;
  options.max_statements = spec.budget;
  if (spec.has_checkpoint) {
    // Replay on the interrupted run's cadence so the verification checkpoint
    // is emitted at exactly the journal's cases_completed.
    options.checkpoint_every = spec.last_checkpoint.every;
  }

  bool verified = false;
  CampaignCheckpoint replayed;  // the replay's checkpoint at the anchor cases
  bool mismatch = false;
  const auto original_sink = base_options.checkpoint_sink;
  options.checkpoint_sink = [&, original_sink](const CampaignCheckpoint& cp) {
    if (spec.has_checkpoint &&
        cp.cases_completed == spec.last_checkpoint.cases_completed) {
      if (cp.rng_fingerprint == spec.last_checkpoint.rng_fingerprint &&
          cp.dedup_digest == spec.last_checkpoint.dedup_digest) {
        verified = true;
      } else {
        replayed = cp;
        mismatch = true;
      }
    }
    return original_sink ? original_sink(cp) : true;
  };

  CampaignResult result =
      RunShardedSoftCampaign(spec.dialect, options, /*shards=*/1, soft_options);
  if (mismatch) {
    return InvalidArgument(
        "resume verification failed: replay diverged from the journal's last "
        "checkpoint at " +
        std::to_string(spec.last_checkpoint.cases_completed) + " cases — " +
        DescribeCheckpointDivergence(spec.last_checkpoint, replayed) +
        " (journal corrupt, or campaign knobs differ from the "
        "interrupted run)");
  }
  if (spec.has_checkpoint && !verified &&
      result.statements_executed >= spec.last_checkpoint.cases_completed) {
    return InvalidArgument(
        "resume verification failed: replay never emitted the journal's last "
        "checkpoint (checkpoint cadence mismatch)");
  }
  return result;
}

}  // namespace soft
