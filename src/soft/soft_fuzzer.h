// SOFT: the pattern-based SQL-function fuzzer (Section 7).
//
// Pipeline per campaign: (1) collect function expressions from the dialect's
// documentation and regression suite, (2) generate test cases with the 10
// boundary-value-generation patterns, (3) execute them and watch for
// crashes, deduplicating bugs and logging PoCs. Resource-limit kills
// (REPEAT('a', 9999999999)-style) are counted as false positives, matching
// Section 7.3.
#ifndef SRC_SOFT_SOFT_FUZZER_H_
#define SRC_SOFT_SOFT_FUZZER_H_

#include "src/soft/campaign.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/patterns.h"

namespace soft {

struct SoftOptions {
  PatternOptions patterns;
  // Restrict generation to a subset of patterns (empty = all ten families).
  // Used by the ablation benches.
  std::vector<std::string> only_patterns;
  // Use the extremes-only literal pool instead of the digit sweep (the
  // strategy Section 6 calls insufficient); ablation knob.
  bool extremes_only_pool = false;
};

class SoftFuzzer : public Fuzzer {
 public:
  explicit SoftFuzzer(SoftOptions options = SoftOptions());

  std::string name() const override { return "SOFT"; }
  CampaignResult Run(Database& db, const CampaignOptions& options) override;

 private:
  SoftOptions soft_options_;
};

// Runs one SOFT campaign split across `shards` parallel threads, each shard
// against a fresh instance of `dialect` (see src/soft/parallel_runner.h for
// the shard/merge semantics). SOFT generates a finite case pool, so the
// default mode partitions the serial campaign's case order across shards —
// the merged run finds the identical bug set and coverage as the serial
// reference at any budget. Pass ShardMode::kSplitBudget to get the
// decorrelated per-shard-seed sampling used for the baselines instead.
// shards == 1 is bit-identical to SoftFuzzer::Run against
// MakeDialect(dialect) in either mode.
CampaignResult RunShardedSoftCampaign(const std::string& dialect,
                                      const CampaignOptions& options, int shards,
                                      SoftOptions soft_options = SoftOptions(),
                                      ShardMode mode = ShardMode::kPartitionCases);

}  // namespace soft

#endif  // SRC_SOFT_SOFT_FUZZER_H_
