// Bug-report rendering: the artifact SOFT hands to DBMS vendors (the paper
// reported all 132 findings upstream; Figure 2 shows the reactions).
//
// Reports are Markdown with the reproduction script (prerequisites + PoC),
// crash classification, stage, and the boundary-value-generation pattern
// that constructed the input — everything a triager needs.
#ifndef SRC_SOFT_REPORT_H_
#define SRC_SOFT_REPORT_H_

#include <string>
#include <vector>

#include "src/soft/campaign.h"

namespace soft {

// One finding as a self-contained Markdown report.
std::string RenderBugReport(const Database& db, const FoundBug& bug);

// A campaign summary: header stats plus every finding.
std::string RenderCampaignReport(const Database& db, const CampaignResult& result);

}  // namespace soft

#endif  // SRC_SOFT_REPORT_H_
