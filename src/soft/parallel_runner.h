// Parallel sharded campaign execution.
//
// The paper's campaigns are 24-hour wall-clock runs against seven DBMSs in
// parallel; the serial reproduction replays them one statement at a time on
// one core. This runner splits a CampaignOptions statement budget into K
// deterministic shards: shard i runs the same tool with seed
// SeedForShard(base_seed, i) and its slice of the budget against a *fresh*
// Database instance (dialects are cheap to construct), one shard per thread.
//
// Determinism contract: the merged result is a pure function of
// (options, shards) and never of thread scheduling —
//   * shard seeds and budgets come from PlanShards alone;
//   * every shard owns its Database (catalog, coverage, session, fault
//     engine are all per-instance; the builtin catalog prototype is
//     call_once-guarded, see src/sqlfunc/function.cc);
//   * merging walks shards in index order: scalar counters sum, coverage
//     unions via CoverageTracker::MergeFrom, and unique bugs dedupe by
//     crash identity keeping the lowest (shard, statements_until_found)
//     witness, so found_by attribution is order-independent.
// Consequently Run(options, K) is bit-identical to RunSerial(options, K)
// (the same shard plan executed sequentially), which is what
// tests/parallel_runner_test.cc asserts per dialect, and a 1-shard run is
// bit-identical to the plain serial Fuzzer::Run it replaces.
#ifndef SRC_SOFT_PARALLEL_RUNNER_H_
#define SRC_SOFT_PARALLEL_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/soft/campaign.h"
#include "src/soft/worker.h"

namespace soft {

// How a campaign budget is divided across shards.
enum class ShardMode {
  // Shard i runs with seed SeedForShard(base_seed, i) and budget/K
  // statements (remainder front-loaded), so shard budgets sum to the serial
  // budget. Works for every Fuzzer — fuzzers that generate statements on
  // the fly (the baselines) get K decorrelated streams. For a fuzzer with a
  // finite case pool this resamples: shards draw overlapping samples from K
  // different shuffles, so the union bug set matches the serial reference
  // only when per-shard budgets stay large (see EXPERIMENTS.md).
  kSplitBudget,
  // Shard i runs with the *base* seed, the full budget, and
  // (shard_index, shard_count) = (i, K) in its CampaignOptions: a
  // pool-based fuzzer (SOFT) then executes the interleaved partition of the
  // global case order, so the shards divide the serial campaign's work
  // exactly — identical merged bug set and coverage by construction, at any
  // budget. Requires the fuzzer to honor shard_index/shard_count.
  kPartitionCases,
};

// One shard's campaign parameters: the base options with the derived seed
// and the shard's slice of the statement budget.
struct ShardPlan {
  int shard = 0;
  CampaignOptions options;
};

// Splits `options` into `shards` plans under `mode`. shards < 1 is treated
// as 1.
std::vector<ShardPlan> PlanShards(const CampaignOptions& options, int shards,
                                  ShardMode mode = ShardMode::kSplitBudget);

// One executed shard: the campaign result plus the artifacts the merge
// needs alongside it.
struct ShardResult {
  CampaignResult result;
  // Snapshot of the shard database's tracker, merged across shards so the
  // campaign-level coverage counts are a true union (not a sum).
  CoverageTracker coverage;
  // Worker-supervision record for this shard (real-crash mode only).
  WorkerRunStats stats;
};

// Executes one shard plan on the calling thread: honours
// options.crash_realism (kReal dispatches to the forked-worker harness),
// stamps FoundBug/FoundLogicBug::shard, and — when tracing — attaches the
// shard/worker-run structural spans rebased onto `campaign_base_ns` (the
// absolute MonotonicNowNs() reading at campaign start). This is the one
// shard-execution path: ParallelCampaignRunner threads call it per shard,
// and fleet workers (src/fleet/) call it per leased work unit, which is
// what makes a fleet merge bit-identical to a sharded run by construction.
ShardResult ExecuteShardPlan(const WorkerFuzzerFactory& make_fuzzer,
                             const WorkerDatabaseFactory& make_database,
                             const ShardPlan& plan,
                             const WorkerOptions& worker_options = {},
                             uint64_t campaign_base_ns = 0);

// The deterministic shard merge (see the contract above): walks `outcomes`
// in index order — counters sum, coverage unions, crash bugs dedupe by
// identity keeping the lowest (shard, statements_until_found) witness,
// logic bugs dedupe on the lowest global case index, traces/flights
// concatenate and gain the campaign root span. A pure function of the
// outcome vector: any executor that produces the same per-shard results
// (threads, fleet workers, a resume loading spooled units) merges to the
// bit-identical campaign. `stats`, when given, receives the aggregated
// worker-supervision counters.
CampaignResult MergeShardResults(std::vector<ShardResult> outcomes,
                                 WorkerRunStats* stats = nullptr);

class ParallelCampaignRunner {
 public:
  using FuzzerFactory = std::function<std::unique_ptr<Fuzzer>()>;
  using DatabaseFactory = std::function<std::unique_ptr<Database>()>;

  // Both factories are called once per shard, possibly concurrently; they
  // must be safe to invoke from multiple threads (the dialect factories and
  // fuzzer constructors are).
  ParallelCampaignRunner(FuzzerFactory make_fuzzer, DatabaseFactory make_database);

  // Runs the shard plan with one thread per shard and merges. A single-shard
  // plan runs on the calling thread.
  CampaignResult Run(const CampaignOptions& options, int shards,
                     ShardMode mode = ShardMode::kSplitBudget) const;

  // The same shard plan executed sequentially on the calling thread — the
  // oracle the determinism tests compare Run() against.
  CampaignResult RunSerial(const CampaignOptions& options, int shards,
                           ShardMode mode = ShardMode::kSplitBudget) const;

  // Supervision knobs for real-crash campaigns (options.crash_realism ==
  // CrashRealism::kReal): each shard then runs inside forked worker
  // processes via RunShardInWorkerProcess. Ignored in simulated mode.
  void set_worker_options(const WorkerOptions& options) { worker_options_ = options; }

  // Supervision statistics aggregated across shards by the most recent
  // Run/RunSerial call (zeroed at each merge). Only populated by real-crash
  // campaigns.
  const WorkerRunStats& worker_stats() const { return worker_stats_; }

 private:
  FuzzerFactory make_fuzzer_;
  DatabaseFactory make_database_;
  WorkerOptions worker_options_;
  // Written only by Merge, which runs on the thread that called Run/RunSerial.
  mutable WorkerRunStats worker_stats_;
};

// Convenience for the common case: run `fuzzer factory` shards against fresh
// instances of a named dialect.
CampaignResult RunShardedCampaign(const ParallelCampaignRunner::FuzzerFactory& make_fuzzer,
                                  const std::string& dialect,
                                  const CampaignOptions& options, int shards,
                                  ShardMode mode = ShardMode::kSplitBudget);

}  // namespace soft

#endif  // SRC_SOFT_PARALLEL_RUNNER_H_
