// Process-isolated real-crash shard execution (docs/ROBUSTNESS.md).
//
// Under CrashRealism::kReal a triggered BugSpec raises the actual signal for
// its CrashType, killing the process executing the statement. This is the
// fork+pipe harness that makes such campaigns survivable:
//
//   * The supervisor forks one worker child per attempt. The child runs the
//     shard campaign with a real-crash policy whose announce callback writes
//     the crash identity to the pipe — written and flushed *before* the
//     signal is raised, so the pipe line is the primary crash identity and
//     WTERMSIG only a cross-check (sanitizer runtimes can distort exit
//     signals; the pipe cannot lie).
//   * On an announced death the supervisor restarts the child with
//     simulate_first = number of confirmed crashes: the deterministic replay
//     re-runs the campaign from case 0, takes the simulated path through
//     every already-confirmed fault firing, and realizes the next one for
//     real. The child that finally completes serializes its entire
//     CampaignResult (bugs, counters, coverage, telemetry) over the pipe, so
//     the supervisor's result is bit-identical to the simulated campaign by
//     construction.
//   * A death *without* an announcement (startup crash, SIGALRM backstop,
//     SIGKILL) triggers bounded exponential backoff; after
//     max_consecutive_deaths such deaths in a row the shard degrades to
//     in-process simulated execution instead of aborting the campaign.
#ifndef SRC_SOFT_WORKER_H_
#define SRC_SOFT_WORKER_H_

#include <functional>
#include <memory>

#include "src/coverage/coverage.h"
#include "src/soft/campaign.h"

namespace soft {

struct WorkerOptions {
  // Unannounced deaths in a row before the shard degrades to in-process
  // simulated execution.
  int max_consecutive_deaths = 3;
  // Bounded exponential backoff between restarts after unannounced deaths
  // (announced crashes restart immediately — they are the expected path).
  int backoff_initial_ms = 5;
  int backoff_max_ms = 200;

  // --- Test hooks (tests/worker_harness_test.cc); all fire inside the
  // forked child, never in degraded in-process execution. Ordinals count the
  // child's *real* (announcing) crash events, 0-based per child life.
  int test_hang_at_crash = -1;   // hang instead of announcing (SIGALRM backstop)
  int test_kill9_at_crash = -1;  // SIGKILL self without announcing
  int test_silent_deaths = 0;    // first N forks _exit immediately
};

struct WorkerRunStats {
  int forks = 0;
  int real_crashes = 0;        // announced crashes confirmed by child death
  int matched_signals = 0;     // WTERMSIG matched ExpectedSignalFor(crash)
  int mismatched_signals = 0;  // child died but by a different signal/exit
  int unexpected_deaths = 0;   // deaths without an announcement
  int alarm_kills = 0;         // unexpected deaths that were SIGALRM (backstop)
  bool degraded_to_simulated = false;

  void MergeFrom(const WorkerRunStats& other) {
    forks += other.forks;
    real_crashes += other.real_crashes;
    matched_signals += other.matched_signals;
    mismatched_signals += other.mismatched_signals;
    unexpected_deaths += other.unexpected_deaths;
    alarm_kills += other.alarm_kills;
    degraded_to_simulated = degraded_to_simulated || other.degraded_to_simulated;
  }
};

struct WorkerShardOutcome {
  CampaignResult result;
  CoverageTracker coverage;  // rebuilt from the child's pipe serialization
  WorkerRunStats stats;
};

using WorkerFuzzerFactory = std::function<std::unique_ptr<Fuzzer>()>;
using WorkerDatabaseFactory = std::function<std::unique_ptr<Database>()>;

// Runs one campaign shard under real-crash execution, supervising forked
// workers as described above. `options` is the shard's CampaignOptions (its
// checkpoint_sink, when set, receives the checkpoints forwarded from child
// pipes — duplicates from restarts are filtered by cases_completed). Blocks
// until the shard completes (possibly degraded). The returned result has
// FoundBug::shard left as the fuzzer produced it; callers stamp shard ids
// exactly as they do for in-process shards.
WorkerShardOutcome RunShardInWorkerProcess(const WorkerFuzzerFactory& make_fuzzer,
                                           const WorkerDatabaseFactory& make_database,
                                           CampaignOptions options,
                                           const WorkerOptions& worker_options = {});

}  // namespace soft

#endif  // SRC_SOFT_WORKER_H_
