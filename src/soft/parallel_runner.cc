#include "src/soft/parallel_runner.h"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "src/dialects/dialects.h"
#include "src/util/rng.h"

namespace soft {

std::vector<ShardPlan> PlanShards(const CampaignOptions& options, int shards,
                                  ShardMode mode) {
  const int count = std::max(shards, 1);
  const int base_budget = options.max_statements / count;
  const int remainder = options.max_statements % count;
  std::vector<ShardPlan> plans(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ShardPlan& plan = plans[static_cast<size_t>(i)];
    plan.shard = i;
    plan.options = options;
    if (mode == ShardMode::kPartitionCases) {
      // Base seed and full budget: the fuzzer itself restricts execution to
      // global case indices ≡ i (mod count) below the budget (campaign.h).
      plan.options.shard_index = i;
      plan.options.shard_count = count;
    } else {
      plan.options.seed = SeedForShard(options.seed, i);
      plan.options.max_statements = base_budget + (i < remainder ? 1 : 0);
    }
  }
  return plans;
}

ParallelCampaignRunner::ParallelCampaignRunner(FuzzerFactory make_fuzzer,
                                               DatabaseFactory make_database)
    : make_fuzzer_(std::move(make_fuzzer)), make_database_(std::move(make_database)) {}

namespace {

// Builds the shard's structural span (campaign → shard) and rebases the
// shard-local spans already in `result.trace` onto the campaign clock.
// For in-process (simulated) shards a synthetic worker-run span is added
// first so the tree shape matches the forked path:
// campaign → shard → worker-run → statement. Observational only.
void AttachShardSpans(CampaignResult& result, int shard, uint64_t shard_start_ns,
                      uint64_t shard_end_ns, bool in_process) {
  const std::string& dialect = result.dialect;
  const uint64_t campaign_id =
      trace::SpanId(dialect, -1, trace::SpanKind::kCampaign, 0);
  const uint64_t shard_id = trace::SpanId(dialect, shard, trace::SpanKind::kShard, 0);
  if (in_process) {
    // One synthetic run covering the whole shard; statement spans (recorded
    // with parent 0 — the fuzzer cannot know its run ordinal) hang off it.
    const uint64_t run_id =
        trace::SpanId(dialect, shard, trace::SpanKind::kWorkerRun, 0);
    for (trace::TraceSpan& span : result.trace.spans) {
      if (span.kind == trace::SpanKind::kStatement && span.parent_id == 0) {
        span.parent_id = run_id;
      }
    }
    trace::TraceSpan run;
    run.id = run_id;
    run.parent_id = shard_id;
    run.kind = trace::SpanKind::kWorkerRun;
    run.shard = shard;
    run.start_ns = 0;
    run.dur_ns = shard_end_ns - shard_start_ns;
    run.args.emplace_back("run", "0");
    run.args.emplace_back("verdict", "in-process");
    result.trace.spans.insert(result.trace.spans.begin(), std::move(run));
  }
  // Rebase everything recorded so far (run/statement/stage spans are on the
  // shard clock) onto the campaign clock, then prepend the shard span.
  for (trace::TraceSpan& span : result.trace.spans) {
    span.start_ns += shard_start_ns;
  }
  trace::TraceSpan shard_span;
  shard_span.id = shard_id;
  shard_span.parent_id = campaign_id;
  shard_span.kind = trace::SpanKind::kShard;
  shard_span.shard = shard;
  shard_span.start_ns = shard_start_ns;
  shard_span.dur_ns = shard_end_ns - shard_start_ns;
  shard_span.args.emplace_back("statements",
                               std::to_string(result.statements_executed));
  shard_span.args.emplace_back("mode", in_process ? "sim" : "real");
  result.trace.spans.insert(result.trace.spans.begin(), std::move(shard_span));
}

}  // namespace

ShardResult ExecuteShardPlan(const WorkerFuzzerFactory& make_fuzzer,
                             const WorkerDatabaseFactory& make_database,
                             const ShardPlan& plan,
                             const WorkerOptions& worker_options,
                             uint64_t campaign_base_ns) {
  ShardResult outcome;
  const bool tracing = plan.options.trace_sample > 0;
  const uint64_t shard_start_ns =
      tracing ? telemetry::MonotonicNowNs() - campaign_base_ns : 0;
  if (plan.options.crash_realism == CrashRealism::kReal) {
    // Real crashes must not kill the campaign process: run the shard inside
    // supervised forked workers. Deterministic replay makes the returned
    // result bit-identical to the simulated in-process path.
    WorkerShardOutcome worker = RunShardInWorkerProcess(
        make_fuzzer, make_database, plan.options, worker_options);
    outcome.result = std::move(worker.result);
    outcome.coverage = std::move(worker.coverage);
    outcome.stats = worker.stats;
    for (FoundBug& bug : outcome.result.unique_bugs) {
      bug.shard = plan.shard;
    }
    for (FoundLogicBug& bug : outcome.result.logic_bugs) {
      bug.shard = plan.shard;
    }
    if (tracing) {
      AttachShardSpans(outcome.result, plan.shard, shard_start_ns,
                       telemetry::MonotonicNowNs() - campaign_base_ns,
                       /*in_process=*/false);
    }
    return outcome;
  }
  std::unique_ptr<Database> db = make_database();
  std::unique_ptr<Fuzzer> fuzzer = make_fuzzer();
  if (db == nullptr || fuzzer == nullptr) {
    return outcome;
  }
  outcome.result = fuzzer->Run(*db, plan.options);
  for (FoundBug& bug : outcome.result.unique_bugs) {
    bug.shard = plan.shard;
  }
  for (FoundLogicBug& bug : outcome.result.logic_bugs) {
    bug.shard = plan.shard;
  }
  outcome.coverage = db->coverage();
  if (tracing) {
    AttachShardSpans(outcome.result, plan.shard, shard_start_ns,
                     telemetry::MonotonicNowNs() - campaign_base_ns,
                     /*in_process=*/true);
  }
  return outcome;
}

CampaignResult MergeShardResults(std::vector<ShardResult> outcomes,
                                 WorkerRunStats* stats) {
  CampaignResult merged;
  if (stats != nullptr) {
    *stats = WorkerRunStats{};
  }
  if (outcomes.empty()) {
    return merged;
  }
  merged.tool = outcomes.front().result.tool;
  merged.dialect = outcomes.front().result.dialect;
  merged.shards = static_cast<int>(outcomes.size());

  CoverageTracker coverage;
  std::vector<FoundBug> witnesses;
  std::vector<FoundLogicBug> logic_witnesses;
  if (stats != nullptr) {
    for (const ShardResult& outcome : outcomes) {
      stats->MergeFrom(outcome.stats);
    }
  }
  for (const ShardResult& outcome : outcomes) {
    const CampaignResult& r = outcome.result;
    merged.statements_executed += r.statements_executed;
    merged.sql_errors += r.sql_errors;
    merged.crashes_observed += r.crashes_observed;
    merged.false_positives += r.false_positives;
    merged.watchdog_timeouts += r.watchdog_timeouts;
    merged.logic_checks += r.logic_checks;
    merged.logic_divergences += r.logic_divergences;
    merged.logic_false_positives += r.logic_false_positives;
    merged.journal_degraded |= r.journal_degraded;
    merged.shard_statements.push_back(r.statements_executed);
    // Telemetry merges by per-bucket / per-counter sum, walking shards in
    // index order; the merged snapshot is a pure function of the shard
    // results, never of thread scheduling. Shard-local snapshots are kept
    // alongside so callers can attribute cost per shard.
    merged.telemetry.MergeFrom(r.telemetry);
    merged.shard_telemetry.push_back(r.telemetry);
    coverage.MergeFrom(outcome.coverage);
    witnesses.insert(witnesses.end(), r.unique_bugs.begin(), r.unique_bugs.end());
    logic_witnesses.insert(logic_witnesses.end(), r.logic_bugs.begin(),
                           r.logic_bugs.end());
    // Trace spans and flight records concatenate in shard index order — the
    // merged trace is a pure function of the shard outcomes, like telemetry.
    merged.trace.Append(r.trace);
    merged.crash_flights.insert(merged.crash_flights.end(), r.crash_flights.begin(),
                                r.crash_flights.end());
  }
  if (!merged.trace.empty()) {
    // Campaign root span: starts at the campaign clock origin and covers the
    // latest shard end. Prepended so exports list the root first.
    trace::TraceSpan root;
    root.id = trace::SpanId(merged.dialect, -1, trace::SpanKind::kCampaign, 0);
    root.kind = trace::SpanKind::kCampaign;
    root.shard = -1;
    for (const trace::TraceSpan& span : merged.trace.spans) {
      if (span.kind == trace::SpanKind::kShard) {
        root.dur_ns = std::max(root.dur_ns, span.start_ns + span.dur_ns);
      }
    }
    root.args.emplace_back("tool", merged.tool);
    root.args.emplace_back("dialect", merged.dialect);
    root.args.emplace_back("shards", std::to_string(merged.shards));
    merged.trace.spans.insert(merged.trace.spans.begin(), std::move(root));
  }

  // Dedupe by crash identity, keeping the lowest (shard,
  // statements_until_found) witness. Walking shards in index order means the
  // first witness seen per bug id is already the winner on `shard`; the
  // comparison settles ties inside one shard (cannot occur — a shard reports
  // each bug once) and keeps the rule explicit.
  std::map<int, FoundBug> best;
  for (FoundBug& bug : witnesses) {
    const auto [it, inserted] = best.try_emplace(bug.crash.bug_id, bug);
    if (!inserted &&
        std::make_pair(bug.shard, bug.statements_until_found) <
            std::make_pair(it->second.shard, it->second.statements_until_found)) {
      it->second = std::move(bug);
    }
  }
  // Report in global discovery order (shard-major, then statement index),
  // mirroring a serial campaign's discovery-ordered list.
  merged.unique_bugs.reserve(best.size());
  for (auto& [id, bug] : best) {
    merged.unique_bugs.push_back(std::move(bug));
  }
  std::sort(merged.unique_bugs.begin(), merged.unique_bugs.end(),
            [](const FoundBug& a, const FoundBug& b) {
              return std::make_tuple(a.shard, a.statements_until_found, a.crash.bug_id) <
                     std::make_tuple(b.shard, b.statements_until_found, b.crash.bug_id);
            });

  // Logic bugs dedupe by bug id on the lowest global case index — the same
  // case flags the same bug in whichever shard executes it, so the winner
  // (and the merged order below) is shard-count-invariant.
  std::map<int, FoundLogicBug> best_logic;
  for (FoundLogicBug& bug : logic_witnesses) {
    const auto [it, inserted] = best_logic.try_emplace(bug.info.bug_id, bug);
    if (!inserted && bug.case_index < it->second.case_index) {
      it->second = std::move(bug);
    }
  }
  merged.logic_bugs.reserve(best_logic.size());
  for (auto& [id, bug] : best_logic) {
    merged.logic_bugs.push_back(std::move(bug));
  }
  std::sort(merged.logic_bugs.begin(), merged.logic_bugs.end(),
            [](const FoundLogicBug& a, const FoundLogicBug& b) {
              return a.case_index != b.case_index ? a.case_index < b.case_index
                                                  : a.info.bug_id < b.info.bug_id;
            });

  merged.functions_triggered = coverage.TriggeredFunctionCount();
  merged.branches_covered = coverage.CoveredBranchCount();
  return merged;
}

CampaignResult ParallelCampaignRunner::Run(const CampaignOptions& options, int shards,
                                           ShardMode mode) const {
  const std::vector<ShardPlan> plans = PlanShards(options, shards, mode);
  const uint64_t campaign_base_ns = telemetry::MonotonicNowNs();
  std::vector<ShardResult> outcomes(plans.size());
  if (plans.size() == 1) {
    outcomes[0] = ExecuteShardPlan(make_fuzzer_, make_database_, plans[0],
                                   worker_options_, campaign_base_ns);
    return MergeShardResults(std::move(outcomes), &worker_stats_);
  }
  std::vector<std::thread> workers;
  workers.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    workers.emplace_back([this, &plans, &outcomes, campaign_base_ns, i] {
      outcomes[i] = ExecuteShardPlan(make_fuzzer_, make_database_, plans[i],
                                     worker_options_, campaign_base_ns);
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return MergeShardResults(std::move(outcomes), &worker_stats_);
}

CampaignResult ParallelCampaignRunner::RunSerial(const CampaignOptions& options,
                                                 int shards, ShardMode mode) const {
  const std::vector<ShardPlan> plans = PlanShards(options, shards, mode);
  const uint64_t campaign_base_ns = telemetry::MonotonicNowNs();
  std::vector<ShardResult> outcomes(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    outcomes[i] = ExecuteShardPlan(make_fuzzer_, make_database_, plans[i],
                                   worker_options_, campaign_base_ns);
  }
  return MergeShardResults(std::move(outcomes), &worker_stats_);
}

CampaignResult RunShardedCampaign(const ParallelCampaignRunner::FuzzerFactory& make_fuzzer,
                                  const std::string& dialect,
                                  const CampaignOptions& options, int shards,
                                  ShardMode mode) {
  ParallelCampaignRunner runner(make_fuzzer, [&dialect] { return MakeDialect(dialect); });
  return runner.Run(options, shards, mode);
}

}  // namespace soft
