#include "src/soft/parallel_runner.h"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "src/dialects/dialects.h"
#include "src/util/rng.h"

namespace soft {

std::vector<ShardPlan> PlanShards(const CampaignOptions& options, int shards,
                                  ShardMode mode) {
  const int count = std::max(shards, 1);
  const int base_budget = options.max_statements / count;
  const int remainder = options.max_statements % count;
  std::vector<ShardPlan> plans(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ShardPlan& plan = plans[static_cast<size_t>(i)];
    plan.shard = i;
    plan.options = options;
    if (mode == ShardMode::kPartitionCases) {
      // Base seed and full budget: the fuzzer itself restricts execution to
      // global case indices ≡ i (mod count) below the budget (campaign.h).
      plan.options.shard_index = i;
      plan.options.shard_count = count;
    } else {
      plan.options.seed = SeedForShard(options.seed, i);
      plan.options.max_statements = base_budget + (i < remainder ? 1 : 0);
    }
  }
  return plans;
}

ParallelCampaignRunner::ParallelCampaignRunner(FuzzerFactory make_fuzzer,
                                               DatabaseFactory make_database)
    : make_fuzzer_(std::move(make_fuzzer)), make_database_(std::move(make_database)) {}

ParallelCampaignRunner::ShardOutcome ParallelCampaignRunner::RunShard(
    const ShardPlan& plan) const {
  ShardOutcome outcome;
  if (plan.options.crash_realism == CrashRealism::kReal) {
    // Real crashes must not kill the campaign process: run the shard inside
    // supervised forked workers. Deterministic replay makes the returned
    // result bit-identical to the simulated in-process path.
    WorkerShardOutcome worker = RunShardInWorkerProcess(
        make_fuzzer_, make_database_, plan.options, worker_options_);
    outcome.result = std::move(worker.result);
    outcome.coverage = std::move(worker.coverage);
    outcome.stats = worker.stats;
    for (FoundBug& bug : outcome.result.unique_bugs) {
      bug.shard = plan.shard;
    }
    return outcome;
  }
  std::unique_ptr<Database> db = make_database_();
  std::unique_ptr<Fuzzer> fuzzer = make_fuzzer_();
  if (db == nullptr || fuzzer == nullptr) {
    return outcome;
  }
  outcome.result = fuzzer->Run(*db, plan.options);
  for (FoundBug& bug : outcome.result.unique_bugs) {
    bug.shard = plan.shard;
  }
  outcome.coverage = db->coverage();
  return outcome;
}

CampaignResult ParallelCampaignRunner::Merge(std::vector<ShardOutcome> outcomes) const {
  CampaignResult merged;
  if (outcomes.empty()) {
    return merged;
  }
  merged.tool = outcomes.front().result.tool;
  merged.dialect = outcomes.front().result.dialect;
  merged.shards = static_cast<int>(outcomes.size());

  CoverageTracker coverage;
  std::vector<FoundBug> witnesses;
  worker_stats_ = WorkerRunStats{};
  for (const ShardOutcome& outcome : outcomes) {
    worker_stats_.MergeFrom(outcome.stats);
  }
  for (const ShardOutcome& outcome : outcomes) {
    const CampaignResult& r = outcome.result;
    merged.statements_executed += r.statements_executed;
    merged.sql_errors += r.sql_errors;
    merged.crashes_observed += r.crashes_observed;
    merged.false_positives += r.false_positives;
    merged.watchdog_timeouts += r.watchdog_timeouts;
    merged.journal_degraded |= r.journal_degraded;
    merged.shard_statements.push_back(r.statements_executed);
    // Telemetry merges by per-bucket / per-counter sum, walking shards in
    // index order; the merged snapshot is a pure function of the shard
    // results, never of thread scheduling. Shard-local snapshots are kept
    // alongside so callers can attribute cost per shard.
    merged.telemetry.MergeFrom(r.telemetry);
    merged.shard_telemetry.push_back(r.telemetry);
    coverage.MergeFrom(outcome.coverage);
    witnesses.insert(witnesses.end(), r.unique_bugs.begin(), r.unique_bugs.end());
  }

  // Dedupe by crash identity, keeping the lowest (shard,
  // statements_until_found) witness. Walking shards in index order means the
  // first witness seen per bug id is already the winner on `shard`; the
  // comparison settles ties inside one shard (cannot occur — a shard reports
  // each bug once) and keeps the rule explicit.
  std::map<int, FoundBug> best;
  for (FoundBug& bug : witnesses) {
    const auto [it, inserted] = best.try_emplace(bug.crash.bug_id, bug);
    if (!inserted &&
        std::make_pair(bug.shard, bug.statements_until_found) <
            std::make_pair(it->second.shard, it->second.statements_until_found)) {
      it->second = std::move(bug);
    }
  }
  // Report in global discovery order (shard-major, then statement index),
  // mirroring a serial campaign's discovery-ordered list.
  merged.unique_bugs.reserve(best.size());
  for (auto& [id, bug] : best) {
    merged.unique_bugs.push_back(std::move(bug));
  }
  std::sort(merged.unique_bugs.begin(), merged.unique_bugs.end(),
            [](const FoundBug& a, const FoundBug& b) {
              return std::make_tuple(a.shard, a.statements_until_found, a.crash.bug_id) <
                     std::make_tuple(b.shard, b.statements_until_found, b.crash.bug_id);
            });

  merged.functions_triggered = coverage.TriggeredFunctionCount();
  merged.branches_covered = coverage.CoveredBranchCount();
  return merged;
}

CampaignResult ParallelCampaignRunner::Run(const CampaignOptions& options, int shards,
                                           ShardMode mode) const {
  const std::vector<ShardPlan> plans = PlanShards(options, shards, mode);
  std::vector<ShardOutcome> outcomes(plans.size());
  if (plans.size() == 1) {
    outcomes[0] = RunShard(plans[0]);
    return Merge(std::move(outcomes));
  }
  std::vector<std::thread> workers;
  workers.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    workers.emplace_back(
        [this, &plans, &outcomes, i] { outcomes[i] = RunShard(plans[i]); });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return Merge(std::move(outcomes));
}

CampaignResult ParallelCampaignRunner::RunSerial(const CampaignOptions& options,
                                                 int shards, ShardMode mode) const {
  const std::vector<ShardPlan> plans = PlanShards(options, shards, mode);
  std::vector<ShardOutcome> outcomes(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    outcomes[i] = RunShard(plans[i]);
  }
  return Merge(std::move(outcomes));
}

CampaignResult RunShardedCampaign(const ParallelCampaignRunner::FuzzerFactory& make_fuzzer,
                                  const std::string& dialect,
                                  const CampaignOptions& options, int shards,
                                  ShardMode mode) {
  ParallelCampaignRunner runner(make_fuzzer, [&dialect] { return MakeDialect(dialect); });
  return runner.Run(options, shards, mode);
}

}  // namespace soft
