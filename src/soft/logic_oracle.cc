#include "src/soft/logic_oracle.h"

#include "src/soft/boundary_values.h"
#include "src/util/rng.h"

namespace soft {
namespace {

// Executes a statement that must succeed for the oracle to have a verdict.
Result<StatementResult> MustRun(Database& db, const std::string& sql) {
  StatementResult r = db.Execute(sql);
  if (!r.ok()) {
    return r.status;
  }
  return r;
}

int64_t CountTrueColumn(const StatementResult& r) {
  int64_t count = 0;
  for (const ValueList& row : r.rows) {
    if (!row.empty() && row[0].kind() == TypeKind::kBool && row[0].bool_value()) {
      ++count;
    }
  }
  return count;
}

}  // namespace

Result<std::optional<LogicBug>> CheckNoRec(Database& db, const std::string& table,
                                           const std::string& predicate) {
  // Optimized form: the engine filters.
  SOFT_ASSIGN_OR_RETURN(
      StatementResult optimized,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE " + predicate));
  // Non-optimizing reference: project the predicate, count TRUE client-side.
  SOFT_ASSIGN_OR_RETURN(
      StatementResult reference,
      MustRun(db, "SELECT CAST((" + predicate + ") AS BOOL) FROM " + table));

  SOFT_ASSIGN_OR_RETURN(int64_t optimized_count, optimized.rows.at(0).at(0).AsInt64());
  const int64_t reference_count = CountTrueColumn(reference);
  if (optimized_count != reference_count) {
    LogicBug bug;
    bug.oracle = "NoREC";
    bug.predicate = predicate;
    bug.detail = "optimized WHERE selected " + std::to_string(optimized_count) +
                 " rows, per-row evaluation says " + std::to_string(reference_count);
    return std::optional<LogicBug>(std::move(bug));
  }
  return std::optional<LogicBug>();
}

Result<std::optional<LogicBug>> CheckTlp(Database& db, const std::string& table,
                                         const std::string& predicate) {
  SOFT_ASSIGN_OR_RETURN(StatementResult total,
                        MustRun(db, "SELECT COUNT(*) FROM " + table));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_true,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE " + predicate));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_false,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE NOT (" + predicate + ")"));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_null,
      MustRun(db,
              "SELECT COUNT(*) FROM " + table + " WHERE (" + predicate + ") IS NULL"));

  SOFT_ASSIGN_OR_RETURN(int64_t n_total, total.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_true, when_true.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_false, when_false.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_null, when_null.rows.at(0).at(0).AsInt64());

  if (n_total != n_true + n_false + n_null) {
    LogicBug bug;
    bug.oracle = "TLP";
    bug.predicate = predicate;
    bug.detail = std::to_string(n_total) + " rows partition into " +
                 std::to_string(n_true) + " + " + std::to_string(n_false) + " + " +
                 std::to_string(n_null);
    return std::optional<LogicBug>(std::move(bug));
  }
  return std::optional<LogicBug>();
}

LogicCampaignResult RunLogicCampaign(Database& db, const std::string& table,
                                     int predicate_budget, uint64_t seed) {
  LogicCampaignResult result;
  const Table* t = db.FindTable(table);
  if (t == nullptr || t->columns.empty()) {
    return result;
  }

  Rng rng(seed);
  const BoundaryPool pool = GenerateBoundaryPool();
  const std::vector<std::string> comparators = {"=", "!=", "<", "<=", ">", ">="};
  // A few function shapes the predicates route the column through, so
  // boundary handling inside functions is also on the oracle's path.
  const std::vector<std::string> wrappers = {"%s", "ABS(%s)", "LENGTH(%s)",
                                             "COALESCE(%s, 0)"};

  for (int i = 0; i < predicate_budget; ++i) {
    const ColumnDef& col = t->columns[rng.NextBelow(t->columns.size())];
    std::string lhs = col.name;
    const std::string& shape = wrappers[rng.NextBelow(wrappers.size())];
    if (shape != "%s") {
      lhs = shape.substr(0, shape.find("%s")) + col.name + ")";
    }
    std::string boundary;
    do {
      boundary = pool.snippets[rng.NextBelow(pool.snippets.size())];
    } while (boundary == "*");  // '*' is not a predicate operand
    const std::string predicate =
        lhs + " " + comparators[rng.NextBelow(comparators.size())] + " " + boundary;

    const Result<std::optional<LogicBug>> norec = CheckNoRec(db, table, predicate);
    const Result<std::optional<LogicBug>> tlp = CheckTlp(db, table, predicate);
    if (!norec.ok() || !tlp.ok()) {
      ++result.skipped_errors;
      continue;
    }
    ++result.predicates_checked;
    if (norec->has_value()) {
      result.bugs.push_back(**norec);
    }
    if (tlp->has_value()) {
      result.bugs.push_back(**tlp);
    }
  }
  return result;
}

}  // namespace soft
