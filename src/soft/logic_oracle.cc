#include "src/soft/logic_oracle.h"

#include <algorithm>
#include <utility>

#include "src/dialects/dialect_diffs.h"
#include "src/dialects/dialects.h"
#include "src/soft/boundary_values.h"
#include "src/soft/eet_transform.h"
#include "src/sqlparser/parser.h"
#include "src/util/rng.h"

namespace soft {
namespace {

// Executes a statement that must succeed for the oracle to have a verdict.
Result<StatementResult> MustRun(Database& db, const std::string& sql) {
  StatementResult r = db.Execute(sql);
  if (!r.ok()) {
    return r.status;
  }
  return r;
}

int64_t CountTrueColumn(const StatementResult& r) {
  int64_t count = 0;
  for (const ValueList& row : r.rows) {
    if (!row.empty() && row[0].kind() == TypeKind::kBool && row[0].bool_value()) {
      ++count;
    }
  }
  return count;
}

}  // namespace

Result<std::optional<LogicBug>> CheckNoRec(Database& db, const std::string& table,
                                           const std::string& predicate) {
  // Optimized form: the engine filters.
  SOFT_ASSIGN_OR_RETURN(
      StatementResult optimized,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE " + predicate));
  // Non-optimizing reference: project the predicate, count TRUE client-side.
  SOFT_ASSIGN_OR_RETURN(
      StatementResult reference,
      MustRun(db, "SELECT CAST((" + predicate + ") AS BOOL) FROM " + table));

  SOFT_ASSIGN_OR_RETURN(int64_t optimized_count, optimized.rows.at(0).at(0).AsInt64());
  const int64_t reference_count = CountTrueColumn(reference);
  if (optimized_count != reference_count) {
    LogicBug bug;
    bug.oracle = "NoREC";
    bug.predicate = predicate;
    bug.detail = "optimized WHERE selected " + std::to_string(optimized_count) +
                 " rows, per-row evaluation says " + std::to_string(reference_count);
    return std::optional<LogicBug>(std::move(bug));
  }
  return std::optional<LogicBug>();
}

Result<std::optional<LogicBug>> CheckTlp(Database& db, const std::string& table,
                                         const std::string& predicate) {
  SOFT_ASSIGN_OR_RETURN(StatementResult total,
                        MustRun(db, "SELECT COUNT(*) FROM " + table));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_true,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE " + predicate));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_false,
      MustRun(db, "SELECT COUNT(*) FROM " + table + " WHERE NOT (" + predicate + ")"));
  SOFT_ASSIGN_OR_RETURN(
      StatementResult when_null,
      MustRun(db,
              "SELECT COUNT(*) FROM " + table + " WHERE (" + predicate + ") IS NULL"));

  SOFT_ASSIGN_OR_RETURN(int64_t n_total, total.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_true, when_true.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_false, when_false.rows.at(0).at(0).AsInt64());
  SOFT_ASSIGN_OR_RETURN(int64_t n_null, when_null.rows.at(0).at(0).AsInt64());

  if (n_total != n_true + n_false + n_null) {
    LogicBug bug;
    bug.oracle = "TLP";
    bug.predicate = predicate;
    bug.detail = std::to_string(n_total) + " rows partition into " +
                 std::to_string(n_true) + " + " + std::to_string(n_false) + " + " +
                 std::to_string(n_null);
    return std::optional<LogicBug>(std::move(bug));
  }
  return std::optional<LogicBug>();
}

LogicCampaignResult RunLogicCampaign(Database& db, const std::string& table,
                                     int predicate_budget, uint64_t seed) {
  LogicCampaignResult result;
  const Table* t = db.FindTable(table);
  if (t == nullptr || t->columns.empty()) {
    return result;
  }

  Rng rng(seed);
  const BoundaryPool pool = GenerateBoundaryPool();
  const std::vector<std::string> comparators = {"=", "!=", "<", "<=", ">", ">="};
  // A few function shapes the predicates route the column through, so
  // boundary handling inside functions is also on the oracle's path.
  const std::vector<std::string> wrappers = {"%s", "ABS(%s)", "LENGTH(%s)",
                                             "COALESCE(%s, 0)"};

  for (int i = 0; i < predicate_budget; ++i) {
    const ColumnDef& col = t->columns[rng.NextBelow(t->columns.size())];
    std::string lhs = col.name;
    const std::string& shape = wrappers[rng.NextBelow(wrappers.size())];
    if (shape != "%s") {
      lhs = shape.substr(0, shape.find("%s")) + col.name + ")";
    }
    std::string boundary;
    do {
      boundary = pool.snippets[rng.NextBelow(pool.snippets.size())];
    } while (boundary == "*");  // '*' is not a predicate operand
    const std::string predicate =
        lhs + " " + comparators[rng.NextBelow(comparators.size())] + " " + boundary;

    const Result<std::optional<LogicBug>> norec = CheckNoRec(db, table, predicate);
    const Result<std::optional<LogicBug>> tlp = CheckTlp(db, table, predicate);
    if (!norec.ok() || !tlp.ok()) {
      ++result.skipped_errors;
      continue;
    }
    ++result.predicates_checked;
    if (norec->has_value()) {
      result.bugs.push_back(**norec);
    }
    if (tlp->has_value()) {
      result.bugs.push_back(**tlp);
    }
  }
  return result;
}

namespace {

// Shared scope test for the NoREC/TLP campaign adapters: a single-table
// SELECT with a WHERE clause and no UNION tail. Returns the (table,
// predicate-SQL) pair when in scope.
std::optional<std::pair<std::string, std::string>> WhereShape(const std::string& sql) {
  Result<Statement> parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return std::nullopt;
  }
  Statement stmt = std::move(parsed).value();
  const SelectStmt* sel = stmt.mutable_select();
  if (sel == nullptr || sel->where == nullptr || sel->from_table.empty() ||
      sel->union_next != nullptr) {
    return std::nullopt;
  }
  return std::make_pair(sel->from_table, sel->where->ToSql());
}

// EET: execute each equivalent rewrite on the same database and compare
// canonical result keys. Variants that fail to execute (a crash spec newly
// reached through the deeper call chain, a pruned COALESCE) are skipped —
// declared differences, not divergences.
class EetOracle final : public LogicOracle {
 public:
  std::string_view name() const override { return "eet"; }

  Verdict Check(Database& db, const std::string& sql,
                const StatementResult& result) override {
    Verdict verdict;
    const std::string original_key = CanonicalResultKey(result);
    for (const EetVariant& variant : BuildEetVariants(sql)) {
      const StatementResult v = db.Execute(variant.sql);
      if (!v.ok()) {
        continue;
      }
      verdict.checked = true;
      if (CanonicalResultKey(v) != original_key) {
        verdict.divergence = true;
        verdict.witness = variant.sql;
        verdict.detail = variant.label + " variant returned a different result set";
        return verdict;
      }
    }
    return verdict;
  }
};

// Differential: the same statement on the six sibling dialects, compared
// modulo the declared difference table (dialect_diffs.h). Siblings run with
// logic faults disabled — they are the clean reference.
class DifferentialOracle final : public LogicOracle {
 public:
  explicit DifferentialOracle(const std::string& dialect) {
    for (const std::string& name : AllDialectNames()) {
      if (name == dialect) {
        continue;
      }
      if (auto sibling = MakeDialect(name)) {
        siblings_.emplace_back(name, std::move(sibling));
      }
    }
  }

  std::string_view name() const override { return "diff"; }

  void ObserveSideEffect(const std::string& sql) override {
    for (auto& [name, sibling] : siblings_) {
      sibling->Execute(sql);
    }
  }

  Verdict Check(Database& db, const std::string& sql,
                const StatementResult& result) override {
    (void)db;
    Verdict verdict;
    if (!OracleComparable(sql)) {
      return verdict;
    }
    for (auto& [name, sibling] : siblings_) {
      const StatementResult s = sibling->Execute(sql);
      switch (ClassifyDifferential(result, s)) {
        case DialectDiffClass::kDeclaredDifference:
          continue;
        case DialectDiffClass::kIdentical:
          verdict.checked = true;
          continue;
        case DialectDiffClass::kDivergence:
          verdict.checked = true;
          verdict.divergence = true;
          verdict.witness = name;
          verdict.detail = "result set differs from the " + name + " dialect";
          return verdict;
      }
    }
    return verdict;
  }

 private:
  std::vector<std::pair<std::string, std::unique_ptr<Database>>> siblings_;
};

// NoREC/TLP as campaign oracles: applied to WHERE-shaped statements, reusing
// the free-function checks above on the statement's own predicate.
class NoRecOracle final : public LogicOracle {
 public:
  std::string_view name() const override { return "norec"; }

  Verdict Check(Database& db, const std::string& sql,
                const StatementResult& result) override {
    (void)result;
    Verdict verdict;
    if (!OracleComparable(sql)) {
      return verdict;
    }
    const auto shape = WhereShape(sql);
    if (!shape.has_value()) {
      return verdict;
    }
    const Result<std::optional<LogicBug>> check =
        CheckNoRec(db, shape->first, shape->second);
    if (!check.ok()) {
      return verdict;
    }
    verdict.checked = true;
    if (check->has_value()) {
      verdict.divergence = true;
      verdict.witness = shape->second;
      verdict.detail = (*check)->detail;
    }
    return verdict;
  }
};

class TlpOracle final : public LogicOracle {
 public:
  std::string_view name() const override { return "tlp"; }

  Verdict Check(Database& db, const std::string& sql,
                const StatementResult& result) override {
    (void)result;
    Verdict verdict;
    if (!OracleComparable(sql)) {
      return verdict;
    }
    const auto shape = WhereShape(sql);
    if (!shape.has_value()) {
      return verdict;
    }
    const Result<std::optional<LogicBug>> check =
        CheckTlp(db, shape->first, shape->second);
    if (!check.ok()) {
      return verdict;
    }
    verdict.checked = true;
    if (check->has_value()) {
      verdict.divergence = true;
      verdict.witness = shape->second;
      verdict.detail = (*check)->detail;
    }
    return verdict;
  }
};

const char* const kOracleNames[] = {"eet", "diff", "norec", "tlp"};

}  // namespace

bool IsKnownLogicOracle(const std::string& name) {
  if (name == "all") {
    return true;
  }
  for (const char* known : kOracleNames) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

std::vector<std::unique_ptr<LogicOracle>> MakeLogicOracles(
    const std::vector<std::string>& names, const std::string& dialect) {
  std::vector<std::string> expanded;
  for (const std::string& name : names) {
    if (name == "all") {
      expanded.insert(expanded.end(), std::begin(kOracleNames), std::end(kOracleNames));
    } else {
      expanded.push_back(name);
    }
  }
  std::vector<std::unique_ptr<LogicOracle>> oracles;
  std::vector<std::string> seen;
  for (const std::string& name : expanded) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
      continue;
    }
    seen.push_back(name);
    if (name == "eet") {
      oracles.push_back(std::make_unique<EetOracle>());
    } else if (name == "diff") {
      oracles.push_back(std::make_unique<DifferentialOracle>(dialect));
    } else if (name == "norec") {
      oracles.push_back(std::make_unique<NoRecOracle>());
    } else if (name == "tlp") {
      oracles.push_back(std::make_unique<TlpOracle>());
    }
  }
  return oracles;
}

}  // namespace soft
