// Shared campaign types: what a fuzzing run (SOFT or a baseline) reports.
#ifndef SRC_SOFT_CAMPAIGN_H_
#define SRC_SOFT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/telemetry/telemetry.h"

namespace soft {

struct CampaignOptions {
  uint64_t seed = 1;
  // Statement budget standing in for the paper's wall-clock budgets (all
  // tools are compared under identical budgets).
  int max_statements = 20000;
  // Stop early once every injected bug of the dialect has been found
  // (benches turn this off to measure coverage at full budget).
  bool stop_when_all_bugs_found = false;

  // Case-partitioned sharding (ShardMode::kPartitionCases in
  // src/soft/parallel_runner.h): when shard_count > 1, a fuzzer with a
  // finite generated case pool executes only the global case indices below
  // max_statements with index % shard_count == shard_index, all derived
  // from the same base seed. The union over shards is then exactly the
  // serial campaign's executed prefix — identical bug set and coverage by
  // construction. Fuzzers that generate statements on the fly (the
  // baselines) ignore these fields and are sharded by budget split instead.
  int shard_index = 0;
  int shard_count = 1;
};

struct FoundBug {
  CrashInfo crash;
  std::string poc_sql;
  // SOFT: the boundary-value-generation pattern that produced the PoC
  // ("P1.2", ...); baselines: the tool name.
  std::string found_by;
  int statements_until_found = 0;
  // Shard that found this witness (0 for serial campaigns). Sharded merges
  // keep the lowest (shard, statements_until_found) witness per bug so
  // attribution is independent of thread scheduling.
  int shard = 0;
  // Wall-clock nanoseconds from campaign start to this first witness,
  // stamped when telemetry is recording (0 otherwise). Observational only —
  // exported to the NDJSON journal, never part of the determinism contract
  // and never compared by the bit-identical-merge tests.
  int64_t found_wall_ns = 0;
};

struct CampaignResult {
  std::string tool;
  std::string dialect;
  int statements_executed = 0;
  int sql_errors = 0;
  int crashes_observed = 0;        // crash events incl. duplicates
  int false_positives = 0;         // resource-limit kills (REPEAT(...,1e10) class)
  std::vector<FoundBug> unique_bugs;

  // Coverage snapshot after the campaign (Table 5 / Table 6 quantities).
  size_t functions_triggered = 0;
  size_t branches_covered = 0;

  // Sharding record (see src/soft/parallel_runner.h). Serial campaigns keep
  // shards == 1 and an empty per-shard breakdown; merged sharded campaigns
  // report the shard count and each shard's statements_executed.
  int shards = 1;
  std::vector<int> shard_statements;

  // Observability snapshot (src/telemetry): stage-latency histograms and
  // per-pattern counters recorded during this campaign. Serial campaigns
  // fill `telemetry` directly; merged sharded campaigns carry the
  // shard-index-ordered per-shard snapshots in `shard_telemetry` and their
  // deterministic sum in `telemetry`. Empty in -DSOFT_TELEMETRY=OFF builds
  // or under telemetry::SetRuntimeEnabled(false).
  telemetry::CampaignTelemetry telemetry;
  std::vector<telemetry::CampaignTelemetry> shard_telemetry;
};

// Common interface so the comparison benches can run the four tools
// uniformly.
class Fuzzer {
 public:
  virtual ~Fuzzer() = default;
  virtual std::string name() const = 0;
  // Runs one campaign against `db`. The fuzzer owns nothing: the database's
  // coverage tracker accumulates, and its tables may be created/dropped.
  virtual CampaignResult Run(Database& db, const CampaignOptions& options) = 0;
};

}  // namespace soft

#endif  // SRC_SOFT_CAMPAIGN_H_
