// Shared campaign types: what a fuzzing run (SOFT or a baseline) reports.
#ifndef SRC_SOFT_CAMPAIGN_H_
#define SRC_SOFT_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace soft {

// Periodic campaign progress record: the journal's `checkpoint` event and the
// worker pipe's checkpoint lines (docs/ROBUSTNESS.md). Fuzzer execution loops
// emit one every CampaignOptions::checkpoint_every executed statements. The
// rng_fingerprint and dedup_digest exist so --resume can *verify* that its
// deterministic replay retraced the interrupted campaign rather than trusting
// the journal blindly.
struct CampaignCheckpoint {
  int every = 0;            // the cadence the producer was running with
  int shard = 0;
  int cases_completed = 0;  // statements executed when this was taken
  int sql_errors = 0;
  int crashes_observed = 0;
  int false_positives = 0;
  int watchdog_timeouts = 0;
  int unique_bugs = 0;
  uint64_t rng_fingerprint = 0;  // Rng::StateFingerprint() at emission
  uint64_t dedup_digest = 0;     // FNV-1a over found bug ids, discovery order

  bool operator==(const CampaignCheckpoint&) const = default;
};

// FNV-1a step folding one found bug id into the dedup-set digest.
inline uint64_t DedupDigestStep(uint64_t digest, int bug_id) {
  const uint64_t v = static_cast<uint64_t>(bug_id);
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (v >> shift) & 0xFFu;
    digest *= 0x100000001B3ull;
  }
  return digest;
}
inline constexpr uint64_t kDedupDigestSeed = 0xCBF29CE484222325ull;

struct CampaignOptions {
  uint64_t seed = 1;
  // Statement budget standing in for the paper's wall-clock budgets (all
  // tools are compared under identical budgets).
  int max_statements = 20000;
  // Stop early once every injected bug of the dialect has been found
  // (benches turn this off to measure coverage at full budget).
  bool stop_when_all_bugs_found = false;

  // Case-partitioned sharding (ShardMode::kPartitionCases in
  // src/soft/parallel_runner.h): when shard_count > 1, a fuzzer with a
  // finite generated case pool executes only the global case indices below
  // max_statements with index % shard_count == shard_index, all derived
  // from the same base seed. The union over shards is then exactly the
  // serial campaign's executed prefix — identical bug set and coverage by
  // construction. Fuzzers that generate statements on the fly (the
  // baselines) ignore these fields and are sharded by budget split instead.
  int shard_index = 0;
  int shard_count = 1;

  // Crash realization (src/fault/fault.h). kReal is honoured by the sharded
  // runner, which dispatches each shard to a forked worker whose supervisor
  // decodes the death; calling Fuzzer::Run directly under kReal would kill
  // the calling process at the first triggered bug.
  CrashRealism crash_realism = CrashRealism::kSimulated;

  // Statement-watchdog budgets, applied to the campaign database at Run
  // start. Statements killed by the deadline count as watchdog_timeouts;
  // fuel/row kills surface as kResourceExhausted (false positives).
  StatementLimits statement_limits;

  // Checkpointing: with checkpoint_every > 0 and a sink installed, the
  // execution loop invokes the sink every checkpoint_every executed
  // statements. Campaign runs ignore the sink's cost — it must not perturb
  // determinism (write-only). The sink returns false when it can no longer
  // persist checkpoints (journal stream went bad, pipe broke): the campaign
  // then *continues without the sink* and latches
  // CampaignResult::journal_degraded rather than crashing or silently
  // pretending the journal is intact (docs/ROBUSTNESS.md).
  int checkpoint_every = 0;
  std::function<bool(const CampaignCheckpoint&)> checkpoint_sink;

  // Span tracing (src/telemetry/trace.h): 0 disables tracing (the default —
  // campaigns carry an empty trace); N ≥ 1 records a statement span with
  // stage children for every N-th executed statement (1 = all). Strictly
  // observational — bug sets, coverage, and outcome digests are identical at
  // every setting. Exposed as find_bugs --trace-sample=N.
  int trace_sample = 0;

  // Logic-bug oracles ("eet", "diff", "norec", "tlp", "all" — see
  // src/soft/logic_oracle.h). Non-empty switches the campaign into
  // wrong-result mode: the database arms its seeded LogicBugSpec corpus
  // after prerequisites, every seeded bug's PoC is queued ahead of the
  // generated pool, and each successfully executed SELECT is examined by
  // every listed oracle. Requires CrashRealism::kSimulated — a forked kReal
  // worker cannot host the differential siblings.
  std::vector<std::string> logic_oracles;
};

struct FoundBug {
  CrashInfo crash;
  std::string poc_sql;
  // SOFT: the boundary-value-generation pattern that produced the PoC
  // ("P1.2", ...); baselines: the tool name.
  std::string found_by;
  int statements_until_found = 0;
  // Shard that found this witness (0 for serial campaigns). Sharded merges
  // keep the lowest (shard, statements_until_found) witness per bug so
  // attribution is independent of thread scheduling.
  int shard = 0;
  // Wall-clock nanoseconds from campaign start to this first witness,
  // stamped when telemetry is recording. Observational only — exported to
  // the NDJSON journal, never part of the determinism contract and never
  // compared by the bit-identical-merge tests. `wall_recorded` says whether
  // a collector was actually recording: a 0 with wall_recorded == true is a
  // genuine sub-nanosecond-resolution hit, a 0 with wall_recorded == false
  // means "no telemetry" (journal `first_witness` events carry this as the
  // `recorded` field so the two are distinguishable offline).
  int64_t found_wall_ns = 0;
  bool wall_recorded = false;
};

// One detected wrong-result bug (campaign logic-oracle mode). The verdict
// came from result comparison alone; `info` is the ground-truth spec the
// engine recorded when it perturbed the value, attached afterwards so tests
// can assert detection completeness.
struct FoundLogicBug {
  LogicBugInfo info;
  std::string oracle;   // first oracle that flagged it ("eet", "diff", ...)
  std::string poc_sql;  // the campaign statement whose result diverged
  std::string witness;  // variant SQL / sibling dialect / reference predicate
  std::string detail;
  // Global case index of the flagging statement — shard-invariant under
  // partition sharding, unlike statements_until_found (shard-local).
  int case_index = 0;
  int statements_until_found = 0;
  int shard = 0;
};

struct CampaignResult {
  std::string tool;
  std::string dialect;
  int statements_executed = 0;
  int sql_errors = 0;
  int crashes_observed = 0;        // crash events incl. duplicates
  int false_positives = 0;         // resource-limit kills (REPEAT(...,1e10) class)
  int watchdog_timeouts = 0;       // statement-deadline kills (kTimeout)
  std::vector<FoundBug> unique_bugs;

  // Wrong-result detection (CampaignOptions::logic_oracles). Counters and
  // bug set are shard-invariant: each case is examined exactly once, in
  // whichever shard executes it, against a database (and differential
  // siblings) that replayed exactly that shard's side effects.
  std::vector<FoundLogicBug> logic_bugs;  // sorted by (case_index, bug_id)
  int logic_checks = 0;           // oracle examinations that were in scope
  int logic_divergences = 0;      // examinations that flagged a divergence
  int logic_false_positives = 0;  // divergences with no recorded fault hit

  // Coverage snapshot after the campaign (Table 5 / Table 6 quantities).
  size_t functions_triggered = 0;
  size_t branches_covered = 0;

  // Sharding record (see src/soft/parallel_runner.h). Serial campaigns keep
  // shards == 1 and an empty per-shard breakdown; merged sharded campaigns
  // report the shard count and each shard's statements_executed.
  int shards = 1;
  std::vector<int> shard_statements;

  // True when the telemetry/checkpoint sink failed mid-campaign and the run
  // continued without it (graceful degradation — the campaign outcome is
  // still complete and deterministic, but the streamed journal is not).
  // Sharded merges OR the per-shard flags. Exported as `journal_degraded`
  // on the journal's campaign_finish event.
  bool journal_degraded = false;

  // Observability snapshot (src/telemetry): stage-latency histograms and
  // per-pattern counters recorded during this campaign. Serial campaigns
  // fill `telemetry` directly; merged sharded campaigns carry the
  // shard-index-ordered per-shard snapshots in `shard_telemetry` and their
  // deterministic sum in `telemetry`. Empty in -DSOFT_TELEMETRY=OFF builds
  // or under telemetry::SetRuntimeEnabled(false).
  telemetry::CampaignTelemetry telemetry;
  std::vector<telemetry::CampaignTelemetry> shard_telemetry;

  // Causal span trace (src/telemetry/trace.h). Empty unless
  // CampaignOptions::trace_sample > 0. Serial in-process runs carry their
  // statement spans; the sharded runner adds shard/worker-run structure and
  // the campaign root at merge (shard-index order, deterministic). Strictly
  // observational — excluded from the outcome digest and the bit-identity
  // comparisons.
  trace::TraceData trace;

  // Flight records for every worker death in a kReal campaign, shard-index
  // ordered (src/telemetry/trace.h). Exported as `crash_flight` journal
  // events. Empty for simulated campaigns.
  std::vector<trace::CrashFlightRecord> crash_flights;
};

inline CampaignCheckpoint MakeCheckpoint(const CampaignOptions& options,
                                         const CampaignResult& result,
                                         uint64_t rng_fingerprint, uint64_t dedup_digest) {
  CampaignCheckpoint cp;
  cp.every = options.checkpoint_every;
  cp.shard = options.shard_index;
  cp.cases_completed = result.statements_executed;
  cp.sql_errors = result.sql_errors;
  cp.crashes_observed = result.crashes_observed;
  cp.false_positives = result.false_positives;
  cp.watchdog_timeouts = result.watchdog_timeouts;
  cp.unique_bugs = static_cast<int>(result.unique_bugs.size());
  cp.rng_fingerprint = rng_fingerprint;
  cp.dedup_digest = dedup_digest;
  return cp;
}

// Common interface so the comparison benches can run the four tools
// uniformly.
class Fuzzer {
 public:
  virtual ~Fuzzer() = default;
  virtual std::string name() const = 0;
  // Runs one campaign against `db`. The fuzzer owns nothing: the database's
  // coverage tracker accumulates, and its tables may be created/dropped.
  virtual CampaignResult Run(Database& db, const CampaignOptions& options) = 0;
};

}  // namespace soft

#endif  // SRC_SOFT_CAMPAIGN_H_
