#include "src/soft/patterns.h"

#include <algorithm>

#include "src/sqlparser/parser.h"
#include "src/util/str_util.h"

namespace soft {
namespace {

// Types the cast patterns sweep over.
constexpr TypeKind kCastSweep[] = {
    TypeKind::kInt,      TypeKind::kDouble, TypeKind::kDecimal, TypeKind::kString,
    TypeKind::kBlob,     TypeKind::kBool,   TypeKind::kDate,    TypeKind::kDateTime,
    TypeKind::kJson,     TypeKind::kArray,  TypeKind::kInet,    TypeKind::kGeometry,
};

// Canonical literal text castable to each sweep type (the "typed
// constructor" variants of P2.1/P2.2).
const char* CanonicalTextFor(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt:
      return "'7'";
    case TypeKind::kDouble:
      return "'1.5'";
    case TypeKind::kDecimal:
      return "'1.5'";
    case TypeKind::kString:
      return "'zz'";
    case TypeKind::kBlob:
      return "'zz'";
    case TypeKind::kBool:
      return "'1'";
    case TypeKind::kDate:
      return "'2024-01-01'";
    case TypeKind::kDateTime:
      return "'2024-01-02 03:04:05'";
    case TypeKind::kJson:
      return "'[1]'";
    case TypeKind::kArray:
      return "'[1]'";
    case TypeKind::kInet:
      return "'1.2.3.4'";
    case TypeKind::kGeometry:
      return "'POINT(1 2)'";
    default:
      return "'0'";
  }
}

// Mutable access to the function-call nodes of a cloned tree, in the same
// deterministic pre-order that CollectFunctionCalls uses.
std::vector<Expr*> CallSites(Expr& root) {
  std::vector<Expr*> out;
  root.CollectFunctionCalls(out);
  return out;
}

bool IsStringLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral && e.literal.kind() == TypeKind::kString;
}

bool IsNumericLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral && e.literal.is_numeric();
}

// Builds (SELECT lhs UNION SELECT rhs) as an expression.
ExprPtr UnionSubquery(ExprPtr lhs, ExprPtr rhs) {
  auto left = std::make_unique<SelectStmt>();
  left->items.emplace_back(std::move(lhs), "");
  auto right = std::make_unique<SelectStmt>();
  right->items.emplace_back(std::move(rhs), "");
  left->union_next = std::move(right);
  return MakeSubquery(std::move(left));
}

ExprPtr CastText(const char* text, TypeKind kind) {
  return MakeCast(MakeLiteral(Value::Str(std::string(text).substr(
                      1, std::string(text).size() - 2))),  // strip quotes
                  kind);
}

}  // namespace

PatternEngine::PatternEngine(const Database& db, uint64_t seed, PatternOptions options)
    : db_(db), rng_(seed), options_(std::move(options)) {
  pool_ = GenerateBoundaryPool();
}

bool PatternEngine::ParseSeed(const std::string& seed_expr, ExprPtr& root) const {
  Result<ExprPtr> parsed = ParseExpression(seed_expr);
  if (!parsed.ok()) {
    return false;
  }
  root = std::move(parsed).value();
  const int calls = root->CountFunctionCalls();
  // Finding-3 cutoff: expressions with more than max_seed_functions function
  // calls are not expanded further.
  return calls >= 1 && calls <= options_.max_seed_functions;
}

template <typename Mutator>
void PatternEngine::EmitVariant(const ExprPtr& root, size_t call_idx, size_t arg_idx,
                                const char* pattern, std::vector<GeneratedCase>& out,
                                Mutator&& mutate) {
  ExprPtr clone = root->Clone();
  std::vector<Expr*> calls = CallSites(*clone);
  if (call_idx >= calls.size() || arg_idx >= calls[call_idx]->args.size()) {
    return;
  }
  mutate(calls[call_idx]->args[arg_idx]);
  out.push_back(GeneratedCase{"SELECT " + clone->ToSql(), pattern});
}

void PatternEngine::ApplyP12(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      for (const std::string& snippet : pool_.snippets) {
        Result<ExprPtr> bound = ParseExpression(snippet);
        if (!bound.ok()) {
          continue;
        }
        ExprPtr replacement = std::move(bound).value();
        EmitVariant(root, c, a, "P1.2", out, [&](ExprPtr& slot) {
          slot = std::move(replacement);
        });
      }
    }
  }
}

void PatternEngine::ApplyP13(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      const Expr& arg = *calls[c]->args[a];
      for (int digits : {5, 20, 40, 45, 60, 65}) {
        const std::string stuffing(static_cast<size_t>(digits), '9');
        if (IsNumericLiteral(arg)) {
          // Stuff digits into the numeric text: 1.5 -> 1.999…995 etc.
          const std::string text = arg.literal.ToDisplayString();
          const size_t split = text.size() / 2 + (text[0] == '-' ? 1 : 0);
          const std::string stuffed =
              text.substr(0, split) + stuffing + text.substr(split);
          Result<Decimal> dec = Decimal::FromString(stuffed);
          if (!dec.ok()) {
            continue;
          }
          Value v = Value::Dec(std::move(dec).value());
          EmitVariant(root, c, a, "P1.3", out, [&](ExprPtr& slot) {
            slot = MakeLiteral(std::move(v));
          });
        } else if (IsStringLiteral(arg)) {
          const std::string& text = arg.literal.string_value();
          const size_t split = text.size() / 2;
          std::string stuffed = text.substr(0, split) + stuffing + text.substr(split);
          EmitVariant(root, c, a, "P1.3", out, [&](ExprPtr& slot) {
            slot = MakeLiteral(Value::Str(std::move(stuffed)));
          });
        }
      }
    }
  }
}

void PatternEngine::ApplyP14(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      const Expr& arg = *calls[c]->args[a];
      if (!IsStringLiteral(arg) || arg.literal.string_value().empty()) {
        continue;
      }
      const std::string& text = arg.literal.string_value();
      // Repeat each distinct structural character at its first occurrence.
      std::string seen;
      for (size_t i = 0; i < text.size(); ++i) {
        const char ch = text[i];
        if (seen.find(ch) != std::string::npos) {
          continue;
        }
        seen.push_back(ch);
        for (int reps : {4, 8, 16, 64, 256}) {
          std::string repeated =
              text.substr(0, i) + std::string(static_cast<size_t>(reps), ch) +
              text.substr(i);
          EmitVariant(root, c, a, "P1.4", out, [&](ExprPtr& slot) {
            slot = MakeLiteral(Value::Str(std::move(repeated)));
          });
        }
      }
    }
  }
}

void PatternEngine::ApplyP21(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      for (TypeKind kind : kCastSweep) {
        // CAST(c AS T): wrap the original argument.
        EmitVariant(root, c, a, "P2.1", out, [&](ExprPtr& slot) {
          slot = MakeCast(std::move(slot), kind);
        });
        // Typed-constructor variant: CAST('canonical' AS T).
        EmitVariant(root, c, a, "P2.1", out, [&](ExprPtr& slot) {
          slot = CastText(CanonicalTextFor(kind), kind);
        });
      }
    }
  }
}

void PatternEngine::ApplyP22(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      for (TypeKind kind :
           {TypeKind::kInt, TypeKind::kDouble, TypeKind::kDecimal, TypeKind::kString,
            TypeKind::kDate, TypeKind::kDateTime}) {
        // (SELECT c UNION SELECT CAST(canon AS T)): the original value is
        // implicitly unified with a typed constructor.
        EmitVariant(root, c, a, "P2.2", out, [&](ExprPtr& slot) {
          slot = UnionSubquery(std::move(slot), CastText(CanonicalTextFor(kind), kind));
        });
      }
      // Canonical two-branch variants that unify to temporal / numeric
      // supertypes regardless of the original argument.
      struct Pair {
        TypeKind a;
        TypeKind b;
      };
      for (const Pair& pair : {Pair{TypeKind::kDate, TypeKind::kDateTime},
                               Pair{TypeKind::kDate, TypeKind::kDate},
                               Pair{TypeKind::kInt, TypeKind::kDouble},
                               Pair{TypeKind::kInt, TypeKind::kDecimal}}) {
        EmitVariant(root, c, a, "P2.2", out, [&](ExprPtr& slot) {
          slot = UnionSubquery(CastText(CanonicalTextFor(pair.a), pair.a),
                               CastText(CanonicalTextFor(pair.b), pair.b));
        });
      }
    }
  }
}

void PatternEngine::ApplyP23(const ExprPtr& root, const std::vector<std::string>& corpus,
                             std::vector<GeneratedCase>& out) {
  // Donor argument *lists* from other corpus entries. The pattern as defined
  // is f(c), f2(c2) → f(c2): f receives f2's whole argument list. This is
  // how the paper's CVE-2023-5868 PoC arises — JSONB_OBJECT_AGG(DISTINCT
  // k, v) inheriting two string arguments from a string function.
  std::vector<std::vector<ExprPtr>> donor_lists;
  std::vector<ExprPtr> donor_args;  // individual donors for partial variants
  for (int i = 0; i < options_.donor_sample * 3 && !corpus.empty(); ++i) {
    const std::string& donor_text = corpus[rng_.NextBelow(corpus.size())];
    Result<ExprPtr> donor = ParseExpression(donor_text);
    if (!donor.ok() || (*donor)->kind != ExprKind::kFunctionCall ||
        (*donor)->args.empty()) {
      continue;
    }
    std::vector<ExprPtr> list;
    bool all_literalish = true;
    for (ExprPtr& arg : (*donor)->args) {
      if (arg->CountFunctionCalls() > 0 ||
          (arg->kind == ExprKind::kLiteral && arg->literal.is_star())) {
        all_literalish = false;
        break;
      }
      list.push_back(arg->Clone());
    }
    if (!all_literalish) {
      continue;
    }
    for (ExprPtr& arg : (*donor)->args) {
      if (arg->kind == ExprKind::kLiteral) {
        donor_args.push_back(std::move(arg));
      }
    }
    donor_lists.push_back(std::move(list));
    if (static_cast<int>(donor_lists.size()) >= options_.donor_sample) {
      break;
    }
  }

  std::vector<Expr*> probe = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < probe.size(); ++c) {
    // Full argument-list replacement (the pattern as written).
    for (const std::vector<ExprPtr>& list : donor_lists) {
      ExprPtr clone = root->Clone();
      std::vector<Expr*> calls = CallSites(*clone);
      if (c >= calls.size()) {
        continue;
      }
      calls[c]->args.clear();
      for (const ExprPtr& arg : list) {
        calls[c]->args.push_back(arg->Clone());
      }
      out.push_back(GeneratedCase{"SELECT " + clone->ToSql(), "P2.3"});
    }
    // Single-argument donor variants (partial application of the pattern).
    for (size_t a = 0; a < probe[c]->args.size(); ++a) {
      for (const ExprPtr& donor : donor_args) {
        EmitVariant(root, c, a, "P2.3", out, [&](ExprPtr& slot) {
          slot = donor->Clone();
        });
      }
    }
  }
}

void PatternEngine::ApplyP31(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  if (!db_.registry().Contains("REPEAT")) {
    return;
  }
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      const Expr& arg = *calls[c]->args[a];
      // c[:i] of the original argument: string literals contribute their raw
      // text, other literals (numbers, blobs) their textual payload — the
      // pattern repeats a *prefix of the argument*, whatever its kind.
      if (arg.kind != ExprKind::kLiteral || arg.literal.is_null() ||
          arg.literal.is_star()) {
        continue;
      }
      const std::string text = arg.literal.kind() == TypeKind::kBlob
                                   ? arg.literal.blob_value()
                                   : arg.literal.ToDisplayString();
      if (text.empty()) {
        continue;
      }
      for (size_t prefix_len : {size_t{1}, size_t{2}, size_t{4}}) {
        if (prefix_len > text.size()) {
          break;
        }
        const std::string prefix = text.substr(0, prefix_len);
        for (int64_t bound : options_.repeat_bounds) {
          EmitVariant(root, c, a, "P3.1", out, [&](ExprPtr& slot) {
            std::vector<ExprPtr> args;
            args.push_back(MakeLiteral(Value::Str(prefix)));
            args.push_back(MakeLiteral(Value::Int(bound)));
            slot = MakeFunctionCall("REPEAT", std::move(args));
          });
        }
      }
    }
  }
}

void PatternEngine::ApplyP32(const ExprPtr& root, std::vector<GeneratedCase>& out) {
  // Wrappers: unary-capable functions sampled from the catalog.
  std::vector<const FunctionDef*> wrappers;
  for (const FunctionDef* def : db_.registry().All()) {
    if (!def->is_aggregate && def->min_args <= 1 &&
        (def->max_args < 0 || def->max_args >= 1)) {
      wrappers.push_back(def);
    }
  }
  if (wrappers.empty()) {
    return;
  }
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      for (int k = 0; k < options_.donor_sample; ++k) {
        const FunctionDef* wrapper = wrappers[rng_.NextBelow(wrappers.size())];
        EmitVariant(root, c, a, "P3.2", out, [&](ExprPtr& slot) {
          std::vector<ExprPtr> args;
          args.push_back(std::move(slot));
          slot = MakeFunctionCall(wrapper->name, std::move(args));
        });
      }
    }
  }
}

void PatternEngine::ApplyP33(const ExprPtr& root, const std::vector<std::string>& corpus,
                             std::vector<GeneratedCase>& out) {
  if (corpus.empty()) {
    return;
  }
  std::vector<Expr*> calls = CallSites(*const_cast<Expr*>(root.get()));
  for (size_t c = 0; c < calls.size(); ++c) {
    for (size_t a = 0; a < calls[c]->args.size(); ++a) {
      for (int k = 0; k < options_.donor_sample; ++k) {
        const std::string& donor_text = corpus[rng_.NextBelow(corpus.size())];
        Result<ExprPtr> donor = ParseExpression(donor_text);
        if (!donor.ok() || (*donor)->kind != ExprKind::kFunctionCall) {
          continue;
        }
        ExprPtr replacement = std::move(donor).value();
        EmitVariant(root, c, a, "P3.3", out, [&](ExprPtr& slot) {
          slot = std::move(replacement);
        });
      }
    }
  }
}

void PatternEngine::GenerateAll(const std::string& seed_expr,
                                const std::vector<std::string>& corpus,
                                std::vector<GeneratedCase>& out) {
  ExprPtr root;
  if (!ParseSeed(seed_expr, root)) {
    return;
  }
  ApplyP12(root, out);
  ApplyP13(root, out);
  ApplyP14(root, out);
  ApplyP21(root, out);
  ApplyP22(root, out);
  ApplyP23(root, corpus, out);
  ApplyP31(root, out);
  ApplyP32(root, out);
  ApplyP33(root, corpus, out);
}

void PatternEngine::GenerateOne(const std::string& pattern, const std::string& seed_expr,
                                const std::vector<std::string>& corpus,
                                std::vector<GeneratedCase>& out) {
  ExprPtr root;
  if (!ParseSeed(seed_expr, root)) {
    return;
  }
  if (pattern == "P1.2") {
    ApplyP12(root, out);
  } else if (pattern == "P1.3") {
    ApplyP13(root, out);
  } else if (pattern == "P1.4") {
    ApplyP14(root, out);
  } else if (pattern == "P2.1") {
    ApplyP21(root, out);
  } else if (pattern == "P2.2") {
    ApplyP22(root, out);
  } else if (pattern == "P2.3") {
    ApplyP23(root, corpus, out);
  } else if (pattern == "P3.1") {
    ApplyP31(root, out);
  } else if (pattern == "P3.2") {
    ApplyP32(root, out);
  } else if (pattern == "P3.3") {
    ApplyP33(root, corpus, out);
  }
}

}  // namespace soft
