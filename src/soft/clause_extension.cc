#include "src/soft/clause_extension.h"

#include <set>

#include "src/soft/boundary_values.h"
#include "src/util/rng.h"

namespace soft {

std::vector<ClauseCase> GenerateClauseCases(const Database& db, const std::string& table,
                                            int budget, uint64_t seed) {
  std::vector<ClauseCase> out;
  const Table* t = db.FindTable(table);
  if (t == nullptr || t->columns.empty()) {
    return out;
  }
  Rng rng(seed);
  const BoundaryPool pool = GenerateBoundaryPool();
  const std::vector<std::string> comparators = {"=", "!=", "<", "<=", ">", ">="};

  auto column = [&]() -> const std::string& {
    return t->columns[rng.NextBelow(t->columns.size())].name;
  };
  auto boundary = [&]() -> std::string {
    std::string snippet;
    do {
      snippet = pool.snippets[rng.NextBelow(pool.snippets.size())];
    } while (snippet == "*");
    return snippet;
  };

  while (static_cast<int>(out.size()) < budget) {
    switch (rng.NextBelow(4)) {
      case 0: {
        ClauseCase c;
        c.clause = "WHERE";
        c.sql = "SELECT " + column() + " FROM " + table + " WHERE " + column() + " " +
                comparators[rng.NextBelow(comparators.size())] + " " + boundary();
        out.push_back(std::move(c));
        break;
      }
      case 1: {
        // Boundary expression as the sort key: the sorter compares the same
        // constant against itself per row, exercising comparison dispatch.
        ClauseCase c;
        c.clause = "ORDER BY";
        c.sql = "SELECT " + column() + " FROM " + table + " ORDER BY " + boundary() +
                (rng.NextBool() ? " DESC" : "");
        out.push_back(std::move(c));
        break;
      }
      case 2: {
        ClauseCase c;
        c.clause = "GROUP BY";
        c.sql = "SELECT COUNT(*) FROM " + table + " GROUP BY " + boundary();
        out.push_back(std::move(c));
        break;
      }
      default: {
        ClauseCase c;
        c.clause = "LIMIT";
        const int64_t n = rng.NextBool() ? 0 : 9999999999LL;
        c.sql = "SELECT " + column() + " FROM " + table + " LIMIT " + std::to_string(n);
        out.push_back(std::move(c));
        break;
      }
    }
  }
  return out;
}

ClauseCampaignResult RunClauseCampaign(Database& db, const std::string& table,
                                       int budget, uint64_t seed) {
  ClauseCampaignResult result;
  std::set<int> seen;
  for (const ClauseCase& test_case : GenerateClauseCases(db, table, budget, seed)) {
    ++result.statements_executed;
    const StatementResult r = db.Execute(test_case.sql);
    if (r.crashed()) {
      ++result.crashes;
      if (seen.insert(r.crash->bug_id).second) {
        result.unique_crashes.push_back(*r.crash);
      }
      continue;
    }
    if (!r.ok()) {
      ++result.sql_errors;
    }
  }
  return result;
}

}  // namespace soft
