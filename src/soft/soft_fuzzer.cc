#include "src/soft/soft_fuzzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/dialects/dialects.h"
#include "src/failpoint/failpoint.h"
#include "src/soft/expr_collection.h"
#include "src/soft/logic_oracle.h"
#include "src/soft/parallel_runner.h"
#include "src/soft/seeds.h"
#include "src/sqlparser/parser.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace soft {
namespace {

bool StatementIsSelect(const std::string& sql) {
  const Result<Statement> parsed = ParseStatement(sql);
  return parsed.ok() && parsed->is_select();
}

}  // namespace

SoftFuzzer::SoftFuzzer(SoftOptions options) : soft_options_(std::move(options)) {}

CampaignResult SoftFuzzer::Run(Database& db, const CampaignOptions& options) {
  CampaignResult result;
  result.tool = name();
  result.dialect = db.config().name;
  // Campaign-scoped telemetry: stage latencies recorded by the engine and
  // the per-pattern counters below land in result.telemetry. Observational
  // only — no RNG draw or control-flow decision reads telemetry state, so
  // results are bit-identical with recording on or off.
  const telemetry::ScopedCollector telem(&result.telemetry);
  // Span tracer (opt-in via trace_sample) and crash flight recorder (kReal
  // campaigns only) — both strictly observational, like the collector.
  const trace::ScopedStatementTracer tracer(
      options.trace_sample > 0 ? &result.trace : nullptr, result.dialect,
      options.shard_index, options.trace_sample);
  const trace::ScopedFlightRecorder flight(options.crash_realism ==
                                           CrashRealism::kReal);

  const size_t expected_bugs = db.faults().bug_count();
  Rng rng(options.seed);
  db.set_statement_limits(options.statement_limits);

  // Step 1: function-expression collection (documentation + suite).
  const std::vector<std::string> suite = SeedSuiteFor(db.config().name);
  const FunctionCorpus corpus = CollectCorpus(db, suite);

  // Logic-bug oracle mode (CampaignOptions::logic_oracles). Oracles exist
  // before the prerequisites run so the differential siblings replay them and
  // start in lockstep with the campaign database.
  const bool logic_mode = !options.logic_oracles.empty() &&
                          options.crash_realism == CrashRealism::kSimulated;
  std::vector<std::unique_ptr<LogicOracle>> oracles;
  if (logic_mode) {
    oracles = MakeLogicOracles(options.logic_oracles, result.dialect);
  }
  const auto observe_side_effect = [&](const std::string& sql) {
    for (const std::unique_ptr<LogicOracle>& oracle : oracles) {
      oracle->ObserveSideEffect(sql);
    }
  };

  // Prerequisites: tables the suite queries depend on (Finding 4).
  for (const std::string& prereq : corpus.prerequisites) {
    db.Execute(prereq);
    observe_side_effect(prereq);
  }
  if (logic_mode) {
    for (const std::string& prereq : LogicOraclePrerequisites()) {
      db.Execute(prereq);
      observe_side_effect(prereq);
    }
    // Arm the seeded wrong-result corpus only now: every DDL/INSERT above ran
    // clean, so stored rows are identical across the campaign database and
    // the sibling engines.
    db.set_logic_faults_enabled(true);
  }

  // Step 2: pattern-based generation.
  PatternEngine engine(db, options.seed, soft_options_.patterns);
  if (soft_options_.extremes_only_pool) {
    engine.set_pool(GenerateExtremesOnlyPool());
  }
  std::vector<GeneratedCase> cases;
  // In logic mode the seeded wrong-result corpus's PoCs lead the case list,
  // so even small budgets exercise every LogicBugSpec (the injectable
  // ground-truth analogue of the crash corpus-replay prefix below).
  if (logic_mode) {
    for (const LogicBugSpec& spec : db.faults().AllLogicBugs()) {
      Result<std::string> poc = BuildLogicPocSql(db, spec);
      if (poc.ok()) {
        cases.push_back(GeneratedCase{std::move(poc).value(), "logic-seed"});
      }
    }
  }
  // The suite's own queries and every collected expression run first (the
  // corpus replay: SOFT validates each harvested function expression before
  // mutating it), warming function-trigger coverage across the catalog.
  for (const std::string& seed : suite) {
    cases.push_back(GeneratedCase{seed, "seed"});
  }
  for (const std::string& expr : corpus.expressions) {
    cases.push_back(GeneratedCase{"SELECT " + expr, "seed"});
  }
  for (const std::string& expr : corpus.expressions) {
    if (soft_options_.only_patterns.empty()) {
      engine.GenerateAll(expr, corpus.expressions, cases);
    } else {
      for (const std::string& pattern : soft_options_.only_patterns) {
        engine.GenerateOne(pattern, expr, corpus.expressions, cases);
      }
    }
  }
  // Deduplicate by statement text (the patterns overlap on simple seeds),
  // then shuffle so the statement budget samples all patterns and seeds
  // uniformly (Fisher-Yates with the campaign RNG).
  {
    std::set<std::string> seen;
    std::vector<GeneratedCase> unique_cases;
    unique_cases.reserve(cases.size());
    for (GeneratedCase& test_case : cases) {
      if (seen.insert(test_case.sql).second) {
        unique_cases.push_back(std::move(test_case));
      }
    }
    cases = std::move(unique_cases);
  }
  // Keep the corpus-replay prefix in place; shuffle only the generated tail
  // so the budget samples patterns and seeds uniformly.
  size_t first_generated = 0;
  while (first_generated < cases.size() &&
         (cases[first_generated].pattern == "seed" ||
          cases[first_generated].pattern == "logic-seed")) {
    ++first_generated;
  }
  for (size_t i = cases.size(); i > first_generated + 1; --i) {
    const size_t j = first_generated + rng.NextBelow(i - first_generated);
    std::swap(cases[i - 1], cases[j]);
  }

  // Per-pattern pool census (aggregated locally so the hook fires once per
  // pattern, not once per case). In partition-sharded runs every shard
  // generates this full pool, so merged `generated` counts are K× the
  // serial pool — the partition mode's redundant-generation cost, made
  // visible.
  if (telemetry::CollectorInstalled()) {
    std::map<std::string, uint64_t> pool_census;
    for (const GeneratedCase& test_case : cases) {
      ++pool_census[test_case.pattern];
    }
    for (const auto& [pattern, count] : pool_census) {
      telemetry::CountGenerated(pattern, count);
    }
  }

  // Step 3: execution and crash detection. A case-partitioned shard
  // (options.shard_count > 1, see campaign.h) executes the interleave of the
  // global case order: indices below the budget with
  // index % shard_count == shard_index. The serial campaign is the
  // shard_count == 1 special case of the same loop, so the union over K
  // shards is exactly the serial campaign's executed prefix.
  const size_t shard_count = options.shard_count > 1
                                 ? static_cast<size_t>(options.shard_count)
                                 : size_t{1};
  const size_t shard_index =
      options.shard_index > 0 ? static_cast<size_t>(options.shard_index) : size_t{0};
  const size_t budget = options.max_statements > 0
                            ? static_cast<size_t>(options.max_statements)
                            : size_t{0};
  std::set<int> found_ids;
  std::set<int> logic_found_ids;
  uint64_t dedup_digest = kDedupDigestSeed;
  for (size_t case_index = shard_index;
       case_index < cases.size() && case_index < budget; case_index += shard_count) {
    const GeneratedCase& test_case = cases[case_index];
    ++result.statements_executed;
    telemetry::CountExecuted(test_case.pattern);
    // Flight ring entry and (sampled) statement span open before Execute:
    // a real-signal crash inside Execute leaves exactly this context for the
    // announcement to flush.
    trace::FlightBeginStatement(result.statements_executed, test_case.pattern,
                                test_case.sql);
    trace::BeginStatement(result.statements_executed, test_case.pattern);
    const StatementResult r = db.Execute(test_case.sql);
    bool stop = false;
    std::string_view outcome = "ok";
    if (r.crashed()) {
      outcome = "crash";
      ++result.crashes_observed;
      telemetry::CountCrash(test_case.pattern);
      trace::AnnotateStatement("bug_id", std::to_string(r.crash->bug_id));
      if (found_ids.insert(r.crash->bug_id).second) {
        telemetry::CountBugDeduped(test_case.pattern);
        dedup_digest = DedupDigestStep(dedup_digest, r.crash->bug_id);
        trace::AnnotateStatement("first_witness", "1");
        FoundBug bug;
        bug.crash = *r.crash;
        bug.poc_sql = test_case.sql;
        bug.found_by = test_case.pattern;
        bug.statements_until_found = result.statements_executed;
        bug.found_wall_ns =
            static_cast<int64_t>(telemetry::WallSinceCollectorStartNs());
        bug.wall_recorded = telemetry::CollectorInstalled();
        result.unique_bugs.push_back(std::move(bug));
      }
      stop = options.stop_when_all_bugs_found && found_ids.size() >= expected_bugs;
    } else if (r.status.code() == StatusCode::kTimeout) {
      // The statement watchdog killed the query at its deadline: a clean
      // termination, counted separately from crashes and false positives.
      outcome = "timeout";
      ++result.watchdog_timeouts;
      telemetry::CountTimeout(test_case.pattern);
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      // The server killed the query on a resource limit: initially flagged
      // as a crash by the detector, later triaged as a false positive
      // (Section 7.3's REPEAT('a', 9999999999) class).
      outcome = "resource_exhausted";
      ++result.false_positives;
      telemetry::CountFalsePositive(test_case.pattern);
    } else if (!r.ok()) {
      outcome = "sql_error";
      ++result.sql_errors;
      telemetry::CountSqlError(test_case.pattern);
    }
    // Logic-oracle examination: successful SELECTs are compared for
    // wrong-result divergence; successful writes are mirrored into the
    // differential siblings so they stay in lockstep with this shard's
    // database. Verdicts come exclusively from result comparison —
    // r.logic_hits is ground truth consulted only AFTER an oracle flags,
    // to separate attributed bugs from false positives.
    if (!oracles.empty() && outcome == "ok") {
      // Oracle re-executions happen while this statement's trace span is
      // open; the scoped guard suppresses their stage spans so the traced
      // pipeline stays the statement's own (and span IDs stay unique per
      // ordinal). The guard is released before the verdict annotation,
      // which needs the span open again.
      const std::string verdict = [&]() -> std::string {
        const trace::ScopedOracleExecution suppress_oracle_stage_spans;
        if (!StatementIsSelect(test_case.sql)) {
          observe_side_effect(test_case.sql);
          return "skipped";
        }
        bool any_in_scope = false;
        for (const std::unique_ptr<LogicOracle>& oracle : oracles) {
          const LogicOracle::Verdict v = oracle->Check(db, test_case.sql, r);
          if (!v.checked) {
            continue;
          }
          any_in_scope = true;
          ++result.logic_checks;
          telemetry::CountLogicCheck(test_case.pattern);
          if (!v.divergence) {
            continue;
          }
          ++result.logic_divergences;
          const std::string oracle_name(oracle->name());
          if (r.logic_hits.empty()) {
            ++result.logic_false_positives;
            return "false_positive:" + oracle_name;
          }
          // First flagging oracle wins — deterministic attribution.
          telemetry::CountLogicBug(test_case.pattern);
          for (const LogicBugInfo& hit : r.logic_hits) {
            if (!logic_found_ids.insert(hit.bug_id).second) {
              continue;
            }
            FoundLogicBug logic_bug;
            logic_bug.info = hit;
            logic_bug.oracle = oracle_name;
            logic_bug.poc_sql = test_case.sql;
            logic_bug.witness = v.witness;
            logic_bug.detail = v.detail;
            logic_bug.case_index = static_cast<int>(case_index);
            logic_bug.statements_until_found = result.statements_executed;
            result.logic_bugs.push_back(std::move(logic_bug));
          }
          return "logic_bug:" + oracle_name;
        }
        return any_in_scope ? "consistent" : "skipped";
      }();
      trace::AnnotateStatement("oracle_verdict", verdict);
    }
    trace::EndStatement(outcome);
    trace::FlightEndStatement(outcome);
    if (options.checkpoint_every > 0 && options.checkpoint_sink &&
        !result.journal_degraded &&
        result.statements_executed % options.checkpoint_every == 0) {
      // campaign.checkpoint_sink: chaos campaigns kill the sink here to
      // prove the run continues (degraded, not dead) with an identical
      // campaign outcome.
      const bool sink_ok =
          !SOFT_FAILPOINT_HIT("campaign.checkpoint_sink") &&
          options.checkpoint_sink(
              MakeCheckpoint(options, result, rng.StateFingerprint(), dedup_digest));
      if (!sink_ok) {
        result.journal_degraded = true;
      }
    }
    if (stop) {
      break;
    }
  }

  // Canonical logic-bug order: the global case index is shard-invariant, so
  // serial and merged sharded campaigns agree on it (statements_until_found
  // and shard are shard-local attribution detail, excluded from digests).
  std::sort(result.logic_bugs.begin(), result.logic_bugs.end(),
            [](const FoundLogicBug& a, const FoundLogicBug& b) {
              return a.case_index != b.case_index ? a.case_index < b.case_index
                                                  : a.info.bug_id < b.info.bug_id;
            });

  result.functions_triggered = db.coverage().TriggeredFunctionCount();
  result.branches_covered = db.coverage().CoveredBranchCount();
  return result;
}

CampaignResult RunShardedSoftCampaign(const std::string& dialect,
                                      const CampaignOptions& options, int shards,
                                      SoftOptions soft_options, ShardMode mode) {
  return RunShardedCampaign(
      [soft_options] { return std::make_unique<SoftFuzzer>(soft_options); }, dialect,
      options, shards, mode);
}

}  // namespace soft
