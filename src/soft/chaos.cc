#include "src/soft/chaos.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/failpoint/failpoint.h"
#include "src/soft/soft_fuzzer.h"
#include "src/telemetry/journal.h"
#include "src/util/io.h"

namespace soft {
namespace {

constexpr int kDefaultBudget = 600;

// FNV-1a over a byte string.
uint64_t FnvFold(uint64_t digest, const std::string& bytes) {
  for (const unsigned char c : bytes) {
    digest ^= c;
    digest *= 0x100000001B3ull;
  }
  return digest;
}

uint64_t FnvFoldInt(uint64_t digest, int64_t v) {
  return FnvFold(digest, std::to_string(v));
}

// The last statement of a site's driver script is the one expected to take
// the injected fault; everything before it is setup that must succeed.
std::vector<std::string> EngineDriverScript(const std::string& site) {
  if (site == "parse.enter" || site == "optimize.enter" || site == "exec.select") {
    return {"SELECT 1"};
  }
  if (site == "parse.expr" || site == "optimize.expr" || site == "eval.enter") {
    return {"SELECT 1 + 1"};
  }
  if (site == "eval.function") {
    return {"SELECT ABS(-1)"};
  }
  if (site == "eval.subquery") {
    return {"SELECT (SELECT 1)"};
  }
  if (site == "catalog.create") {
    return {"CREATE TABLE chaos_t (a INT)"};
  }
  if (site == "catalog.drop") {
    return {"CREATE TABLE chaos_t (a INT)", "DROP TABLE chaos_t"};
  }
  if (site == "catalog.insert") {
    return {"CREATE TABLE chaos_t (a INT)", "INSERT INTO chaos_t VALUES (1)"};
  }
  return {};
}

// Runs `script` against a fresh builtin-catalog database; the final
// statement's result lands in `last`. Setup statements must succeed.
bool RunDriverScript(const std::vector<std::string>& script, StatementResult& last,
                     std::string& error) {
  Database db;
  for (size_t i = 0; i < script.size(); ++i) {
    last = db.Execute(script[i]);
    if (i + 1 < script.size() && !last.ok()) {
      error = "setup statement '" + script[i] + "' failed: " + last.status.ToString();
      return false;
    }
  }
  return true;
}

CampaignOptions SmokeOptions(int budget) {
  CampaignOptions options;
  options.seed = 20260807;
  options.max_statements = budget;
  return options;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- per-class oracles ------------------------------------------------------

ChaosSiteOutcome CheckEngineSite(const failpoint::SiteInfo& site,
                                 const std::string& dialect, int budget) {
  ChaosSiteOutcome outcome;
  outcome.failpoint = std::string(site.name);
  outcome.site_class = std::string(failpoint::SiteClassName(site.site_class));
  outcome.spec = std::string(site.name) + "=error";
  outcome.ran = true;

  const std::vector<std::string> script = EngineDriverScript(outcome.failpoint);
  if (script.empty()) {
    outcome.detail = "no driver script registered for this engine site";
    return outcome;
  }

  // (1) error mode: the driver statement surfaces a clean kResourceExhausted.
  failpoint::DisarmAll();
  if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
    outcome.detail = "arm failed: " + armed.ToString();
    return outcome;
  }
  StatementResult last;
  std::string setup_error;
  if (!RunDriverScript(script, last, setup_error)) {
    failpoint::DisarmAll();
    outcome.detail = setup_error;
    return outcome;
  }
  const failpoint::SiteStats stats = failpoint::Stats(site.name);
  failpoint::DisarmAll();
  if (stats.fires == 0) {
    outcome.detail = "driver statement never evaluated the site (inventory drift?)";
    return outcome;
  }
  if (last.ok() || last.status.code() != StatusCode::kResourceExhausted ||
      last.crashed()) {
    outcome.detail = "expected clean kResourceExhausted, got " + last.status.ToString();
    return outcome;
  }

  // (2) oom mode: the thrown bad_alloc is caught at the Execute boundary.
  if (Status armed = failpoint::ArmFromSpec(std::string(site.name) + "=oom");
      !armed.ok()) {
    outcome.detail = "oom arm failed: " + armed.ToString();
    return outcome;
  }
  StatementResult oom_last;
  const bool oom_setup_ok = RunDriverScript(script, oom_last, setup_error);
  failpoint::DisarmAll();
  if (!oom_setup_ok) {
    outcome.detail = "oom: " + setup_error;
    return outcome;
  }
  if (oom_last.status.code() != StatusCode::kResourceExhausted ||
      oom_last.status.message().find("allocation failure") == std::string::npos) {
    outcome.detail = "oom: expected caught bad_alloc → kResourceExhausted, got " +
                     oom_last.status.ToString();
    return outcome;
  }

  // (3) a campaign with the site armed completes its budget and is
  // run-to-run deterministic under the identical armed spec.
  const CampaignResult baseline =
      RunShardedSoftCampaign(dialect, SmokeOptions(budget), /*shards=*/1);
  const std::string campaign_spec = std::string(site.name) + "=after:50";
  uint64_t digests[2] = {0, 0};
  int statements[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    failpoint::DisarmAll();  // resets counters so both runs fire identically
    if (Status armed = failpoint::ArmFromSpec(campaign_spec); !armed.ok()) {
      outcome.detail = "campaign arm failed: " + armed.ToString();
      return outcome;
    }
    const CampaignResult injected =
        RunShardedSoftCampaign(dialect, SmokeOptions(budget), /*shards=*/1);
    failpoint::DisarmAll();
    digests[run] = DigestCampaignResult(injected);
    statements[run] = injected.statements_executed;
  }
  if (statements[0] != baseline.statements_executed) {
    outcome.detail = "injected campaign stopped early: " +
                     std::to_string(statements[0]) + " vs baseline " +
                     std::to_string(baseline.statements_executed) + " statements";
    return outcome;
  }
  if (digests[0] != digests[1]) {
    outcome.detail = "injected campaign not run-to-run deterministic";
    return outcome;
  }
  outcome.ok = true;
  outcome.detail = "error+oom surfaced cleanly after " +
                   std::to_string(stats.fires) + " fire(s); armed campaign ran " +
                   std::to_string(statements[0]) + " statements, deterministic";
  return outcome;
}

ChaosSiteOutcome CheckIoRetrySite(const failpoint::SiteInfo& site,
                                  const std::string& dialect, int budget,
                                  bool include_worker_sites) {
  ChaosSiteOutcome outcome;
  outcome.failpoint = std::string(site.name);
  outcome.site_class = std::string(failpoint::SiteClassName(site.site_class));

  const bool worker_site = outcome.failpoint.rfind("worker.", 0) == 0;
  if (worker_site && !include_worker_sites) {
    outcome.spec = "(skipped)";
    outcome.ok = true;
    outcome.detail = "worker sites disabled (no forking in this lane)";
    return outcome;
  }
  outcome.ran = true;

  if (!worker_site) {
    // io.eintr / io.short_write: a payload written through RetryingWriter
    // over a pipe arrives bit-identical despite the injected transient
    // faults.
    outcome.spec = outcome.failpoint + "=after:0:5";
    int fds[2];
    if (::pipe(fds) != 0) {
      outcome.detail = "pipe() failed";
      return outcome;
    }
    std::string payload;
    for (int i = 0; i < 64; ++i) {
      payload += "chaos-retry-record-" + std::to_string(i) + "\n";
    }
    failpoint::DisarmAll();
    if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
      ::close(fds[0]);
      ::close(fds[1]);
      outcome.detail = "arm failed: " + armed.ToString();
      return outcome;
    }
    io::RetryingWriter writer(fds[1]);
    const Status write_status = writer.WriteAll(payload);
    const failpoint::SiteStats stats = failpoint::Stats(site.name);
    failpoint::DisarmAll();
    ::close(fds[1]);
    std::string received;
    char chunk[4096];
    for (;;) {
      const int64_t n = io::ReadRetrying(fds[0], chunk, sizeof(chunk));
      if (n <= 0) {
        break;
      }
      received.append(chunk, static_cast<size_t>(n));
    }
    ::close(fds[0]);
    if (!write_status.ok()) {
      outcome.detail = "retrying write failed: " + write_status.ToString();
      return outcome;
    }
    if (stats.fires == 0) {
      outcome.detail = "site never fired (inventory drift?)";
      return outcome;
    }
    if (received != payload) {
      outcome.detail = "payload corrupted across injected transient faults";
      return outcome;
    }
    outcome.ok = true;
    outcome.detail = "payload bit-identical across " + std::to_string(stats.fires) +
                     " injected fault(s)";
    return outcome;
  }

  // worker.fork / worker.pipe_write / worker.pipe_read: a real-crash
  // campaign with the transient fault armed merges bit-identical to the
  // uninjected simulated reference (PR3's sim/real identity, preserved
  // under injection because the fault is retried or absorbed by the
  // supervisor's restart/backoff ladder).
  outcome.spec = outcome.failpoint + "=after:0:2";
  CampaignOptions sim_options = SmokeOptions(budget);
  const CampaignResult reference = RunShardedSoftCampaign(dialect, sim_options, 1);

  failpoint::DisarmAll();
  if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
    outcome.detail = "arm failed: " + armed.ToString();
    return outcome;
  }
  CampaignOptions real_options = SmokeOptions(budget);
  real_options.crash_realism = CrashRealism::kReal;
  const CampaignResult injected = RunShardedSoftCampaign(dialect, real_options, 1);
  failpoint::DisarmAll();

  if (DigestCampaignResult(injected) != DigestCampaignResult(reference)) {
    outcome.detail = "real-crash campaign diverged from simulated reference "
                     "under injected fault";
    return outcome;
  }
  outcome.ok = true;
  outcome.detail = "real-crash campaign bit-identical to simulated reference (" +
                   std::to_string(injected.unique_bugs.size()) + " bugs)";
  return outcome;
}

ChaosSiteOutcome CheckIoErrorSite(const failpoint::SiteInfo& site) {
  ChaosSiteOutcome outcome;
  outcome.failpoint = std::string(site.name);
  outcome.site_class = std::string(failpoint::SiteClassName(site.site_class));
  outcome.spec = outcome.failpoint + "=error";
  outcome.ran = true;

  const std::string path =
      "chaos_artifact_" + std::to_string(static_cast<long>(::getpid())) + ".txt";
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  struct Cleanup {
    const std::string& p;
    const std::string& t;
    ~Cleanup() {
      ::unlink(p.c_str());
      ::unlink(t.c_str());
    }
  } cleanup{path, tmp_path};

  failpoint::DisarmAll();
  if (Status baseline = io::WriteFileAtomic(path, "baseline contents\n");
      !baseline.ok()) {
    outcome.detail = "uninjected baseline write failed: " + baseline.ToString();
    return outcome;
  }

  if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
    outcome.detail = "arm failed: " + armed.ToString();
    return outcome;
  }
  const Status injected = io::WriteFileAtomic(path, "updated contents\n");
  const failpoint::SiteStats stats = failpoint::Stats(site.name);
  failpoint::DisarmAll();

  if (injected.ok() || injected.code() != StatusCode::kIoError) {
    outcome.detail = "expected kIoError, got " + injected.ToString();
    return outcome;
  }
  if (stats.fires == 0) {
    outcome.detail = "site never fired (inventory drift?)";
    return outcome;
  }
  if (injected.message().find(path) == std::string::npos) {
    outcome.detail = "error does not name the artifact path: " + injected.ToString();
    return outcome;
  }
  if (ReadFileOrEmpty(path) != "baseline contents\n") {
    outcome.detail = "destination no longer holds its previous contents "
                     "(atomicity violated)";
    return outcome;
  }
  if (::access(tmp_path.c_str(), F_OK) == 0) {
    outcome.detail = "tmp file left behind after failed write";
    return outcome;
  }

  // Disarmed retry produces the artifact the failed attempt was writing.
  if (Status retry = io::WriteFileAtomic(path, "updated contents\n"); !retry.ok()) {
    outcome.detail = "disarmed retry failed: " + retry.ToString();
    return outcome;
  }
  if (ReadFileOrEmpty(path) != "updated contents\n") {
    outcome.detail = "disarmed retry produced wrong contents";
    return outcome;
  }
  outcome.ok = true;
  outcome.detail = "clean kIoError naming the path; destination atomic; retry "
                   "after disarm identical";
  return outcome;
}

ChaosSiteOutcome CheckDegradeSite(const failpoint::SiteInfo& site,
                                  const std::string& dialect, int budget) {
  ChaosSiteOutcome outcome;
  outcome.failpoint = std::string(site.name);
  outcome.site_class = std::string(failpoint::SiteClassName(site.site_class));
  outcome.spec = outcome.failpoint + "=error";
  outcome.ran = true;

  // Reference: sink intact (writing real checkpoint records, as find_bugs
  // does), campaign not degraded.
  CampaignOptions reference_options = SmokeOptions(budget);
  reference_options.checkpoint_every = 50;
  std::ostringstream reference_journal;
  reference_options.checkpoint_sink = [&](const CampaignCheckpoint& cp) {
    telemetry::WriteCheckpointRecord(reference_journal, cp);
    return reference_journal.good();
  };
  failpoint::DisarmAll();
  const CampaignResult reference = RunShardedSoftCampaign(dialect, reference_options, 1);
  if (reference.journal_degraded) {
    outcome.detail = "uninjected reference campaign unexpectedly degraded";
    return outcome;
  }

  // Injected: the sink (or the record writer under it) fails mid-campaign.
  if (Status armed = failpoint::ArmFromSpec(outcome.spec); !armed.ok()) {
    outcome.detail = "arm failed: " + armed.ToString();
    return outcome;
  }
  CampaignOptions injected_options = SmokeOptions(budget);
  injected_options.checkpoint_every = 50;
  std::ostringstream injected_journal;
  int sink_calls = 0;
  injected_options.checkpoint_sink = [&](const CampaignCheckpoint& cp) {
    ++sink_calls;
    telemetry::WriteCheckpointRecord(injected_journal, cp);
    return injected_journal.good();
  };
  const CampaignResult injected = RunShardedSoftCampaign(dialect, injected_options, 1);
  failpoint::DisarmAll();

  if (!injected.journal_degraded) {
    outcome.detail = "campaign did not record journal_degraded";
    return outcome;
  }
  if (DigestCampaignResult(injected) != DigestCampaignResult(reference)) {
    outcome.detail = "degraded campaign outcome diverged from reference";
    return outcome;
  }
  outcome.ok = true;
  outcome.detail = "campaign continued degraded (" + std::to_string(sink_calls) +
                   " sink call(s) before loss), outcome bit-identical to reference";
  return outcome;
}

}  // namespace

uint64_t DigestCampaignResult(const CampaignResult& result) {
  // Deterministic fields only: wall-clock quantities (found_wall_ns, stage
  // latencies) and journal_degraded (which is exactly what degrade-class
  // injections change) are excluded, mirroring the bit-identical-merge
  // tests' comparison set.
  uint64_t d = 0xCBF29CE484222325ull;
  d = FnvFold(d, result.tool);
  d = FnvFold(d, result.dialect);
  d = FnvFoldInt(d, result.statements_executed);
  d = FnvFoldInt(d, result.sql_errors);
  d = FnvFoldInt(d, result.crashes_observed);
  d = FnvFoldInt(d, result.false_positives);
  d = FnvFoldInt(d, result.watchdog_timeouts);
  d = FnvFoldInt(d, static_cast<int64_t>(result.functions_triggered));
  d = FnvFoldInt(d, static_cast<int64_t>(result.branches_covered));
  d = FnvFoldInt(d, result.shards);
  for (const int n : result.shard_statements) {
    d = FnvFoldInt(d, n);
  }
  for (const FoundBug& bug : result.unique_bugs) {
    d = FnvFoldInt(d, bug.crash.bug_id);
    d = FnvFold(d, bug.found_by);
    d = FnvFold(d, bug.poc_sql);
    d = FnvFoldInt(d, bug.statements_until_found);
    d = FnvFoldInt(d, bug.shard);
  }
  // Wrong-result outcome: counters plus shard-invariant bug identity, so a
  // logic campaign's digest also moves when an oracle regresses.
  d = FnvFoldInt(d, result.logic_checks);
  d = FnvFoldInt(d, result.logic_divergences);
  d = FnvFoldInt(d, result.logic_false_positives);
  for (const FoundLogicBug& bug : result.logic_bugs) {
    d = FnvFoldInt(d, bug.info.bug_id);
    d = FnvFold(d, bug.oracle);
    d = FnvFold(d, bug.poc_sql);
    d = FnvFoldInt(d, bug.case_index);
  }
  return d;
}

uint64_t DigestBugInventory(const CampaignResult& result) {
  std::vector<int64_t> crash_ids;
  crash_ids.reserve(result.unique_bugs.size());
  for (const FoundBug& bug : result.unique_bugs) {
    crash_ids.push_back(bug.crash.bug_id);
  }
  std::sort(crash_ids.begin(), crash_ids.end());
  std::vector<int64_t> logic_ids;
  logic_ids.reserve(result.logic_bugs.size());
  for (const FoundLogicBug& bug : result.logic_bugs) {
    logic_ids.push_back(bug.info.bug_id);
  }
  std::sort(logic_ids.begin(), logic_ids.end());
  uint64_t d = 0xCBF29CE484222325ull;
  d = FnvFold(d, result.dialect);
  d = FnvFoldInt(d, static_cast<int64_t>(crash_ids.size()));
  for (const int64_t id : crash_ids) {
    d = FnvFoldInt(d, id);
  }
  d = FnvFoldInt(d, static_cast<int64_t>(logic_ids.size()));
  for (const int64_t id : logic_ids) {
    d = FnvFoldInt(d, id);
  }
  return d;
}

uint64_t DigestLogicOutcome(const CampaignResult& result) {
  uint64_t d = 0xCBF29CE484222325ull;
  d = FnvFold(d, result.dialect);
  d = FnvFoldInt(d, result.logic_checks);
  d = FnvFoldInt(d, result.logic_divergences);
  d = FnvFoldInt(d, result.logic_false_positives);
  for (const FoundLogicBug& bug : result.logic_bugs) {
    d = FnvFoldInt(d, bug.info.bug_id);
    d = FnvFold(d, bug.oracle);
    d = FnvFold(d, bug.poc_sql);
    d = FnvFoldInt(d, bug.case_index);
  }
  return d;
}

ChaosReport RunChaosEnumeration(const std::string& dialect, int budget,
                                bool include_worker_sites) {
  ChaosReport report;
  report.compiled_in = failpoint::kCompiledIn;
  report.dialect = dialect;
  report.budget = budget > 0 ? budget : kDefaultBudget;
  if (!report.compiled_in) {
    return report;  // nothing to inject; vacuously ok
  }
  for (const failpoint::SiteInfo& site : failpoint::kInventory) {
    // fleet.* sites need a live coordinator/worker topology to exercise;
    // their oracles live in soft::fleet::RunFleetChaosEnumeration (soft_core
    // cannot link the fleet library). Report them as delegated, not failed.
    if (std::string_view(site.name).rfind("fleet.", 0) == 0) {
      ChaosSiteOutcome delegated;
      delegated.failpoint = std::string(site.name);
      delegated.site_class = std::string(failpoint::SiteClassName(site.site_class));
      delegated.spec = "(delegated)";
      delegated.ok = true;
      delegated.detail =
          "fleet site: oracle runs in soft::fleet::RunFleetChaosEnumeration "
          "(find_bugs --chaos=fleet)";
      report.outcomes.push_back(delegated);
      continue;
    }
    switch (site.site_class) {
      case failpoint::SiteClass::kEngine:
        report.outcomes.push_back(CheckEngineSite(site, dialect, report.budget));
        break;
      case failpoint::SiteClass::kIoRetry:
        report.outcomes.push_back(
            CheckIoRetrySite(site, dialect, report.budget, include_worker_sites));
        break;
      case failpoint::SiteClass::kIoError:
        report.outcomes.push_back(CheckIoErrorSite(site));
        break;
      case failpoint::SiteClass::kDegrade:
        report.outcomes.push_back(CheckDegradeSite(site, dialect, report.budget));
        break;
    }
  }
  failpoint::DisarmAll();
  return report;
}

}  // namespace soft
