// The 10 boundary-value-generation patterns (Section 6).
//
//   P1.1  boundary-literal pool (src/soft/boundary_values.h)
//   P1.2  f(c) -> f(bound)                      pool literal as argument
//   P1.3  f(c) -> f(c[:i] + 99999 + c[i+1:])    digit stuffing
//   P1.4  f(c) -> f(c[:i] + c[i]c[i] + ...)     character repetition
//   P2.1  f(c) -> f(CAST(c AS type))            explicit cast
//   P2.2  f(c) -> f((SELECT c UNION SELECT type()))   implicit UNION cast
//   P2.3  f(c), f2(c2) -> f(c2)                 cross-function argument
//   P3.1  f(c) -> f(REPEAT(c[:i], bound))       extreme lengths / depths
//   P3.2  f(c), f2 -> f(f2(c))                  wrap the argument
//   P3.3  f(c), f2(c2) -> f(f2(c2))             nested-call replacement
//
// Generation respects the Finding-3 cutoff: seeds containing more than
// `max_seed_functions` function expressions are not expanded further.
#ifndef SRC_SOFT_PATTERNS_H_
#define SRC_SOFT_PATTERNS_H_

#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/soft/boundary_values.h"
#include "src/util/rng.h"

namespace soft {

struct GeneratedCase {
  std::string sql;      // full statement ("SELECT ...")
  std::string pattern;  // "P1.2" ... "P3.3"
};

struct PatternOptions {
  // Finding-3 cutoff: seeds with more function calls than this are skipped.
  int max_seed_functions = 2;
  // Donor sample size for the cross-function patterns (P2.3, P3.2, P3.3).
  int donor_sample = 8;
  // Length bounds used by P3.1 (chosen to sweep across every dialect's
  // internal thresholds without exceeding engine limits).
  std::vector<int64_t> repeat_bounds = {16, 100, 2000, 6000, 120000, 400000, 1100000};
};

class PatternEngine {
 public:
  PatternEngine(const Database& db, uint64_t seed,
                PatternOptions options = PatternOptions());

  void set_pool(BoundaryPool pool) { pool_ = std::move(pool); }
  const BoundaryPool& pool() const { return pool_; }

  // Applies every pattern to `seed_expr` (a function expression like
  // "JSON_LENGTH('[1]', '$')"), using `corpus` as the donor set for the
  // cross-function patterns. Appends generated statements to `out`.
  void GenerateAll(const std::string& seed_expr, const std::vector<std::string>& corpus,
                   std::vector<GeneratedCase>& out);

  // Applies a single pattern ("P1.2", ..., "P3.3"); used by the per-pattern
  // tests and the ablation benches.
  void GenerateOne(const std::string& pattern, const std::string& seed_expr,
                   const std::vector<std::string>& corpus,
                   std::vector<GeneratedCase>& out);

 private:
  struct SeedTree;  // parsed seed with its call/arg sites

  bool ParseSeed(const std::string& seed_expr, ExprPtr& root) const;

  void ApplyP12(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP13(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP14(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP21(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP22(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP23(const ExprPtr& root, const std::vector<std::string>& corpus,
                std::vector<GeneratedCase>& out);
  void ApplyP31(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP32(const ExprPtr& root, std::vector<GeneratedCase>& out);
  void ApplyP33(const ExprPtr& root, const std::vector<std::string>& corpus,
                std::vector<GeneratedCase>& out);

  // Emits a variant: clone root, apply `mutate` to argument `arg` of call
  // `call_idx`, render. `mutate` receives the owned arg slot.
  template <typename Mutator>
  void EmitVariant(const ExprPtr& root, size_t call_idx, size_t arg_idx,
                   const char* pattern, std::vector<GeneratedCase>& out,
                   Mutator&& mutate);

  const Database& db_;
  Rng rng_;
  PatternOptions options_;
  BoundaryPool pool_;
};

}  // namespace soft

#endif  // SRC_SOFT_PATTERNS_H_
