// Fork+pipe worker harness for real-crash shard execution. Protocol and
// supervision semantics are documented in worker.h and docs/ROBUSTNESS.md.
//
// Pipe records (child → supervisor) use the shared wire codec
// (src/soft/wire.h): '\n'-terminated lines of space-separated tokens,
// strings hex-encoded, "-" for empty. Transport-specific records:
//
//   F  <index> <pattern> <sql> <stage> <outcome>
//        one crash-flight ring entry (oldest first), flushed as a block
//        right before a crash announcement — the last F line is the
//        crashing statement itself
//   C  <bug_id> <dbms> <function> <crash> <stage> <pattern> <description>
//        crash announcement, flushed before the signal is raised
//   K  <every> <shard> <cases> <sql_errors> <crashes> <fps> <timeouts>
//        <unique_bugs> <rng_fingerprint> <dedup_digest>
//        checkpoint record, forwarded to the shard's checkpoint sink
//
// A child that finishes its campaign writes the wire result block
// (RES/SST/BUG/LBG/CVB/TLS/TLP/TRS/FLR/END — see wire.h).
#include "src/soft/worker.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/failpoint/failpoint.h"
#include "src/soft/wire.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/io.h"

namespace soft {
namespace {

// Writes the whole line (append '\n') to fd through the shared retrying
// writer (bounded backoff over EINTR/short writes — src/util/io.h). Only
// write(2) + usleep(2) — safe to call right before raising a fatal signal.
// Returns false when the writer gave up (supervisor gone / pipe dead);
// callers that stream checkpoints use that to latch journal degradation.
// The worker.pipe_write failpoint forces the first byte through alone so
// chaos campaigns exercise the record-reassembly path on every record.
bool WriteLine(int fd, const std::string& line) {
  io::RetryingWriter writer(fd);
  if (SOFT_FAILPOINT_HIT("worker.pipe_write") && !line.empty()) {
    if (!writer.WriteAll(line.substr(0, 1)).ok()) {
      return false;
    }
    return writer.WriteLine(line.substr(1)).ok();
  }
  return writer.WriteLine(line).ok();
}

// --- child -----------------------------------------------------------------

[[noreturn]] void RunWorkerChild(int fd, const WorkerFuzzerFactory& make_fuzzer,
                                 const WorkerDatabaseFactory& make_database,
                                 CampaignOptions options,
                                 const WorkerOptions& worker_options,
                                 int simulate_first, bool die_silently) {
  if (die_silently) {
    ::_exit(86);  // test hook: unannounced startup death
  }
  // A supervisor killed mid-read must not SIGPIPE-kill the child mid-frame:
  // writes then fail with EPIPE, which RetryingWriter surfaces as a clean
  // kIoError and the checkpoint sink turns into journal degradation.
  io::IgnoreSigpipe();
  std::unique_ptr<Database> db = make_database();
  std::unique_ptr<Fuzzer> fuzzer = make_fuzzer();
  if (db == nullptr || fuzzer == nullptr) {
    ::_exit(87);
  }

  int announce_ordinal = 0;
  CrashRealismPolicy policy;
  policy.mode = CrashRealism::kReal;
  policy.simulate_first = simulate_first;
  policy.alarm_backstop = options.statement_limits.deadline_ms > 0;
  policy.announce = [fd, &announce_ordinal, &worker_options](const CrashInfo& info) {
    const int ordinal = announce_ordinal++;
    if (ordinal == worker_options.test_kill9_at_crash) {
      ::raise(SIGKILL);
    }
    if (ordinal == worker_options.test_hang_at_crash) {
      for (;;) {
        ::pause();  // the SIGALRM backstop (or the supervisor) ends this
      }
    }
    // Flush the crash flight ring (oldest first) ahead of the announcement:
    // the statement that is crashing right now is the ring's newest entry,
    // still marked in-flight — stamp it with the crash verdict so the
    // supervisor-side record is self-describing.
    std::vector<trace::FlightEntry> entries = trace::FlightSnapshot();
    if (!entries.empty()) {
      entries.back().stage_reached = std::string(StageName(info.stage));
      entries.back().outcome = "crash";
      for (const trace::FlightEntry& entry : entries) {
        WriteLine(fd, "F " + wire::EncodeFlightEntry(entry));
      }
    }
    WriteLine(fd, "C " + wire::EncodeCrash(info));
  };
  db->set_crash_realism(std::move(policy));

  // Checkpoints stream over the pipe; the supervisor forwards them to the
  // shard's original sink with restart duplicates filtered. A dead pipe
  // degrades the journal (the child keeps running), it does not kill the
  // campaign.
  options.checkpoint_sink = [fd](const CampaignCheckpoint& cp) {
    return WriteLine(fd, "K " + wire::EncodeCheckpoint(cp));
  };

  const CampaignResult result = fuzzer->Run(*db, options);
  wire::WriteResultBlock([fd](const std::string& line) { return WriteLine(fd, line); },
                         result, db->coverage());
  ::_exit(0);  // skip atexit/leak machinery; the pipe already holds the result
}

// --- supervisor-side stream parsing ---------------------------------------

struct ChildStream {
  bool announced = false;
  CrashInfo crash;  // last (only) announcement of this child life
  // Crash-flight entries flushed ahead of the announcement (oldest first).
  std::vector<trace::FlightEntry> flight;
  // The completed result block (block.complete once END arrived).
  wire::ResultBlock block;
};

void ParseChildLine(const std::string& line, ChildStream& stream,
                    const std::function<bool(const CampaignCheckpoint&)>& on_checkpoint) {
  if (line.empty()) {
    return;
  }
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag == "C") {
    CrashInfo info;
    if (wire::DecodeCrash(in, info)) {
      stream.crash = std::move(info);
      stream.announced = true;
    }
  } else if (tag == "F") {
    trace::FlightEntry entry;
    if (wire::DecodeFlightEntry(in, entry)) {
      stream.flight.push_back(std::move(entry));
    }
  } else if (tag == "K") {
    CampaignCheckpoint cp;
    if (wire::DecodeCheckpoint(in, cp) && on_checkpoint) {
      on_checkpoint(cp);
    }
  } else {
    // Result-block records go through the shared parser. Unknown tags are
    // ignored: a child killed mid-write leaves a torn last line, which must
    // not poison the supervision loop.
    wire::ConsumeResultLine(line, stream.block);
  }
}

ChildStream ReadChildStream(
    int fd, const std::function<bool(const CampaignCheckpoint&)>& on_checkpoint) {
  ChildStream stream;
  wire::LineBuffer buffer;
  std::string line;
  char chunk[4096];
  for (;;) {
    // EINTR-retrying read: a SIGCHLD-interrupted read must not be mistaken
    // for end-of-stream and drop the tail of a live child's result block.
    const int64_t n = io::ReadRetrying(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // EOF (child exited) or real error — either way the stream is over
    }
    buffer.Append(chunk, static_cast<size_t>(n));
    while (buffer.Next(line)) {
      ParseChildLine(line, stream, on_checkpoint);
    }
  }
  return stream;
}

}  // namespace

WorkerShardOutcome RunShardInWorkerProcess(const WorkerFuzzerFactory& make_fuzzer,
                                           const WorkerDatabaseFactory& make_database,
                                           CampaignOptions options,
                                           const WorkerOptions& worker_options) {
  WorkerShardOutcome outcome;
  io::IgnoreSigpipe();

  // Wall base for worker-run span placement: every child life is recorded
  // as [fork, waitpid] on this shard-local clock, and a completing child's
  // statement spans (relative to its own campaign start) are shifted onto
  // it. Observational only.
  const telemetry::WallTimer shard_timer;
  struct RunRec {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    std::string verdict;  // completed|crashed|unannounced-death|fork-failed|...
    int bug_id = 0;       // announced crashes only
  };
  std::vector<RunRec> runs;
  std::vector<trace::CrashFlightRecord> flights;
  int last_checkpoint_cases = -1;  // newest checkpoint seen on the pipe

  // Attaches the supervision-side observability to the shard's final result:
  // the collected crash-flight records always, and — when tracing — one
  // worker-run span per child life (parented under the shard span) with the
  // completing run's statement spans shifted onto the shard clock and
  // re-parented under it (the child cannot know its own fork ordinal).
  const auto attach_observability = [&](CampaignResult& result,
                                        uint64_t final_run_start_ns) {
    result.crash_flights = flights;
    if (options.trace_sample <= 0 || runs.empty()) {
      return;
    }
    const std::string& dialect = result.dialect;
    const uint64_t shard_span_id =
        trace::SpanId(dialect, options.shard_index, trace::SpanKind::kShard, 0);
    const uint64_t final_run_id =
        trace::SpanId(dialect, options.shard_index, trace::SpanKind::kWorkerRun,
                      static_cast<int>(runs.size()) - 1);
    for (trace::TraceSpan& span : result.trace.spans) {
      span.start_ns += final_run_start_ns;
      if (span.kind == trace::SpanKind::kStatement && span.parent_id == 0) {
        span.parent_id = final_run_id;
      }
    }
    std::vector<trace::TraceSpan> run_spans;
    run_spans.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      trace::TraceSpan span;
      span.id = trace::SpanId(dialect, options.shard_index,
                              trace::SpanKind::kWorkerRun, static_cast<int>(i));
      span.parent_id = shard_span_id;
      span.kind = trace::SpanKind::kWorkerRun;
      span.shard = options.shard_index;
      span.start_ns = runs[i].start_ns;
      span.dur_ns = runs[i].end_ns - runs[i].start_ns;
      span.args.emplace_back("run", std::to_string(i));
      span.args.emplace_back("verdict", runs[i].verdict);
      if (runs[i].bug_id != 0) {
        span.args.emplace_back("bug_id", std::to_string(runs[i].bug_id));
      }
      run_spans.push_back(std::move(span));
    }
    result.trace.spans.insert(result.trace.spans.begin(), run_spans.begin(),
                              run_spans.end());
  };

  // Restart duplicates: a replaying child re-emits checkpoints it already
  // streamed in a previous life; forward only strictly-new progress. A
  // failing downstream sink latches degradation for the shard — duplicates
  // and already-degraded forwards still count as "handled" (true) so the
  // child keeps its own journal_degraded flag accurate.
  const auto original_sink = options.checkpoint_sink;
  int max_forwarded_cases = 0;
  bool sink_degraded = false;
  const std::function<bool(const CampaignCheckpoint&)> forward_checkpoint =
      [&](const CampaignCheckpoint& cp) {
        last_checkpoint_cases = std::max(last_checkpoint_cases, cp.cases_completed);
        if (!original_sink || sink_degraded || cp.cases_completed <= max_forwarded_cases) {
          return true;
        }
        max_forwarded_cases = cp.cases_completed;
        if (!original_sink(cp)) {
          sink_degraded = true;
        }
        return true;
      };

  int confirmed_crashes = 0;
  int consecutive_unannounced = 0;
  int backoff_ms = worker_options.backoff_initial_ms;

  for (;;) {
    if (consecutive_unannounced >= worker_options.max_consecutive_deaths) {
      // Degradation ladder's last rung: finish the shard in-process with
      // simulated crashes. Deterministic replay makes this produce the same
      // campaign the real-crash path would have.
      outcome.stats.degraded_to_simulated = true;
      std::unique_ptr<Database> db = make_database();
      std::unique_ptr<Fuzzer> fuzzer = make_fuzzer();
      if (db == nullptr || fuzzer == nullptr) {
        return outcome;
      }
      CampaignOptions degraded = options;
      degraded.crash_realism = CrashRealism::kSimulated;
      degraded.checkpoint_sink = forward_checkpoint;
      RunRec rec;
      rec.start_ns = shard_timer.ElapsedNs();
      outcome.result = fuzzer->Run(*db, degraded);
      rec.end_ns = shard_timer.ElapsedNs();
      rec.verdict = "degraded-simulated";
      runs.push_back(rec);
      outcome.result.journal_degraded |= sink_degraded;
      outcome.coverage = db->coverage();
      attach_observability(outcome.result, rec.start_ns);
      return outcome;
    }

    int fds[2];
    if (::pipe(fds) != 0) {
      ++consecutive_unannounced;
      continue;
    }
    ++outcome.stats.forks;
    const bool die_silently = outcome.stats.forks <= worker_options.test_silent_deaths;
    RunRec rec;
    rec.start_ns = shard_timer.ElapsedNs();
    // worker.fork simulates transient fork failure (EAGAIN class); it takes
    // the same backoff/degradation ladder a real fork failure would.
    const pid_t pid = SOFT_FAILPOINT_HIT("worker.fork") ? -1 : ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      rec.end_ns = shard_timer.ElapsedNs();
      rec.verdict = "fork-failed";
      runs.push_back(rec);
      ++outcome.stats.unexpected_deaths;
      ++consecutive_unannounced;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, worker_options.backoff_max_ms);
      continue;
    }
    if (pid == 0) {
      ::close(fds[0]);
      RunWorkerChild(fds[1], make_fuzzer, make_database, options, worker_options,
                     confirmed_crashes, die_silently);
    }
    ::close(fds[1]);
    ChildStream stream = ReadChildStream(fds[0], forward_checkpoint);
    ::close(fds[0]);
    int status = 0;
    ::waitpid(pid, &status, 0);
    rec.end_ns = shard_timer.ElapsedNs();

    if (stream.block.complete) {
      rec.verdict = "completed";
      runs.push_back(rec);
      outcome.result = std::move(stream.block.result);
      outcome.result.journal_degraded |= sink_degraded;
      outcome.coverage = std::move(stream.block.coverage);
      attach_observability(outcome.result, rec.start_ns);
      return outcome;
    }
    if (stream.announced) {
      // The expected real-crash path: the pipe identity is authoritative;
      // the exit signal is recorded as a cross-check.
      trace::CrashFlightRecord flight;
      flight.shard = options.shard_index;
      flight.worker_run = static_cast<int>(runs.size());
      flight.announced = true;
      flight.bug_id = stream.crash.bug_id;
      flight.last_checkpoint_cases = last_checkpoint_cases;
      flight.entries = std::move(stream.flight);
      flights.push_back(std::move(flight));
      rec.verdict = "crashed";
      rec.bug_id = stream.crash.bug_id;
      runs.push_back(rec);
      ++confirmed_crashes;
      ++outcome.stats.real_crashes;
      consecutive_unannounced = 0;
      backoff_ms = worker_options.backoff_initial_ms;
      if (WIFSIGNALED(status) &&
          WTERMSIG(status) == ExpectedSignalFor(stream.crash.crash)) {
        ++outcome.stats.matched_signals;
      } else {
        ++outcome.stats.mismatched_signals;
      }
      continue;
    }
    // Unannounced death: no flight ring made it out — the record carries the
    // last checkpoint the supervisor saw, which is where the restart resumes.
    {
      trace::CrashFlightRecord flight;
      flight.shard = options.shard_index;
      flight.worker_run = static_cast<int>(runs.size());
      flight.announced = false;
      flight.last_checkpoint_cases = last_checkpoint_cases;
      flights.push_back(std::move(flight));
    }
    rec.verdict = "unannounced-death";
    runs.push_back(rec);
    ++outcome.stats.unexpected_deaths;
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGALRM) {
      ++outcome.stats.alarm_kills;
    }
    ++consecutive_unannounced;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, worker_options.backoff_max_ms);
  }
}

}  // namespace soft
