// Fork+pipe worker harness for real-crash shard execution. Protocol and
// supervision semantics are documented in worker.h and docs/ROBUSTNESS.md.
//
// Pipe line protocol (child → supervisor, one record per '\n'-terminated
// line, space-separated tokens; strings hex-encoded, "-" for empty):
//
//   F  <index> <pattern> <sql> <stage> <outcome>
//        one crash-flight ring entry (oldest first), flushed as a block
//        right before a crash announcement — the last F line is the
//        crashing statement itself
//   C  <bug_id> <dbms> <function> <crash> <stage> <pattern> <description>
//        crash announcement, flushed before the signal is raised
//   K  <every> <shard> <cases> <sql_errors> <crashes> <fps> <timeouts>
//        <unique_bugs> <rng_fingerprint> <dedup_digest>
//        checkpoint record, forwarded to the shard's checkpoint sink
//   RES/SST/BUG/CVB/TLS/TLP/TRS/END
//        the completed CampaignResult + coverage + telemetry + trace-span
//        block, written only by a child that finished its campaign
#include "src/soft/worker.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/failpoint/failpoint.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"
#include "src/util/io.h"

namespace soft {
namespace {

// --- token encoding --------------------------------------------------------

std::string HexEncode(const std::string& s) {
  if (s.empty()) {
    return "-";
  }
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

std::string HexDecode(const std::string& s) {
  if (s == "-") {
    return "";
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return 0;
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i + 1 < s.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(s[i]) << 4) | nibble(s[i + 1])));
  }
  return out;
}

// Writes the whole line (append '\n') to fd through the shared retrying
// writer (bounded backoff over EINTR/short writes — src/util/io.h). Only
// write(2) + usleep(2) — safe to call right before raising a fatal signal.
// Returns false when the writer gave up (supervisor gone / pipe dead);
// callers that stream checkpoints use that to latch journal degradation.
// The worker.pipe_write failpoint forces the first byte through alone so
// chaos campaigns exercise the record-reassembly path on every record.
bool WriteLine(int fd, const std::string& line) {
  io::RetryingWriter writer(fd);
  if (SOFT_FAILPOINT_HIT("worker.pipe_write") && !line.empty()) {
    if (!writer.WriteAll(line.substr(0, 1)).ok()) {
      return false;
    }
    return writer.WriteLine(line.substr(1)).ok();
  }
  return writer.WriteLine(line).ok();
}

// --- record serialization --------------------------------------------------

std::string EncodeCrash(const CrashInfo& info) {
  std::ostringstream out;
  out << info.bug_id << ' ' << HexEncode(info.dbms) << ' ' << HexEncode(info.function)
      << ' ' << static_cast<int>(info.crash) << ' ' << static_cast<int>(info.stage)
      << ' ' << HexEncode(info.pattern) << ' ' << HexEncode(info.description);
  return out.str();
}

bool DecodeCrash(std::istringstream& in, CrashInfo& info) {
  int crash = 0, stage = 0;
  std::string dbms, function, pattern, description;
  if (!(in >> info.bug_id >> dbms >> function >> crash >> stage >> pattern >>
        description)) {
    return false;
  }
  info.dbms = HexDecode(dbms);
  info.function = HexDecode(function);
  info.crash = static_cast<CrashType>(crash);
  info.stage = static_cast<Stage>(stage);
  info.pattern = HexDecode(pattern);
  info.description = HexDecode(description);
  return true;
}

std::string EncodeFlightEntry(const trace::FlightEntry& e) {
  std::ostringstream out;
  out << e.statement_index << ' ' << HexEncode(e.pattern) << ' ' << HexEncode(e.sql)
      << ' ' << HexEncode(e.stage_reached) << ' ' << HexEncode(e.outcome);
  return out.str();
}

bool DecodeFlightEntry(std::istringstream& in, trace::FlightEntry& e) {
  std::string pattern, sql, stage, outcome;
  if (!(in >> e.statement_index >> pattern >> sql >> stage >> outcome)) {
    return false;
  }
  e.pattern = HexDecode(pattern);
  e.sql = HexDecode(sql);
  e.stage_reached = HexDecode(stage);
  e.outcome = HexDecode(outcome);
  return true;
}

std::string EncodeSpan(const trace::TraceSpan& s) {
  std::ostringstream out;
  out << s.id << ' ' << s.parent_id << ' ' << static_cast<int>(s.kind) << ' '
      << s.shard << ' ' << s.start_ns << ' ' << s.dur_ns << ' ' << s.args.size();
  for (const auto& [key, value] : s.args) {
    out << ' ' << HexEncode(key) << ' ' << HexEncode(value);
  }
  return out.str();
}

bool DecodeSpan(std::istringstream& in, trace::TraceSpan& s) {
  int kind = 0;
  size_t arg_count = 0;
  if (!(in >> s.id >> s.parent_id >> kind >> s.shard >> s.start_ns >> s.dur_ns >>
        arg_count)) {
    return false;
  }
  s.kind = static_cast<trace::SpanKind>(kind);
  for (size_t i = 0; i < arg_count; ++i) {
    std::string key, value;
    if (!(in >> key >> value)) {
      return false;
    }
    s.args.emplace_back(HexDecode(key), HexDecode(value));
  }
  return true;
}

std::string EncodeCheckpoint(const CampaignCheckpoint& cp) {
  std::ostringstream out;
  out << cp.every << ' ' << cp.shard << ' ' << cp.cases_completed << ' '
      << cp.sql_errors << ' ' << cp.crashes_observed << ' ' << cp.false_positives
      << ' ' << cp.watchdog_timeouts << ' ' << cp.unique_bugs << ' '
      << cp.rng_fingerprint << ' ' << cp.dedup_digest;
  return out.str();
}

bool DecodeCheckpoint(std::istringstream& in, CampaignCheckpoint& cp) {
  return static_cast<bool>(in >> cp.every >> cp.shard >> cp.cases_completed >>
                           cp.sql_errors >> cp.crashes_observed >> cp.false_positives >>
                           cp.watchdog_timeouts >> cp.unique_bugs >>
                           cp.rng_fingerprint >> cp.dedup_digest);
}

void WriteResultBlock(int fd, const CampaignResult& result,
                      const CoverageTracker& coverage) {
  {
    std::ostringstream out;
    out << "RES " << HexEncode(result.tool) << ' ' << HexEncode(result.dialect) << ' '
        << result.statements_executed << ' ' << result.sql_errors << ' '
        << result.crashes_observed << ' ' << result.false_positives << ' '
        << result.watchdog_timeouts << ' ' << result.functions_triggered << ' '
        << result.branches_covered << ' ' << result.shards << ' '
        << (result.journal_degraded ? 1 : 0);
    WriteLine(fd, out.str());
  }
  for (const int n : result.shard_statements) {
    WriteLine(fd, "SST " + std::to_string(n));
  }
  for (const FoundBug& bug : result.unique_bugs) {
    std::ostringstream out;
    out << "BUG " << EncodeCrash(bug.crash) << ' ' << HexEncode(bug.found_by) << ' '
        << HexEncode(bug.poc_sql) << ' ' << bug.statements_until_found << ' '
        << bug.shard << ' ' << bug.found_wall_ns << ' ' << (bug.wall_recorded ? 1 : 0);
    WriteLine(fd, out.str());
  }
  for (const std::string& key : coverage.BranchKeys()) {
    WriteLine(fd, "CVB " + HexEncode(key));
  }
  for (size_t i = 0; i < telemetry::kStageCount; ++i) {
    const telemetry::LatencyHistogram& h = result.telemetry.stage_latency[i];
    std::ostringstream out;
    out << "TLS " << i << ' ' << h.samples << ' ' << h.total_ns << ' ' << h.max_ns;
    for (const uint64_t b : h.buckets) {
      out << ' ' << b;
    }
    WriteLine(fd, out.str());
  }
  for (const auto& [pattern, c] : result.telemetry.patterns) {
    std::ostringstream out;
    out << "TLP " << HexEncode(pattern) << ' ' << c.generated << ' ' << c.executed
        << ' ' << c.crashes << ' ' << c.bugs_deduped << ' ' << c.sql_errors << ' '
        << c.false_positives << ' ' << c.timeouts;
    WriteLine(fd, out.str());
  }
  for (const trace::TraceSpan& span : result.trace.spans) {
    WriteLine(fd, "TRS " + EncodeSpan(span));
  }
  WriteLine(fd, "END");
}

// --- child -----------------------------------------------------------------

[[noreturn]] void RunWorkerChild(int fd, const WorkerFuzzerFactory& make_fuzzer,
                                 const WorkerDatabaseFactory& make_database,
                                 CampaignOptions options,
                                 const WorkerOptions& worker_options,
                                 int simulate_first, bool die_silently) {
  if (die_silently) {
    ::_exit(86);  // test hook: unannounced startup death
  }
  std::unique_ptr<Database> db = make_database();
  std::unique_ptr<Fuzzer> fuzzer = make_fuzzer();
  if (db == nullptr || fuzzer == nullptr) {
    ::_exit(87);
  }

  int announce_ordinal = 0;
  CrashRealismPolicy policy;
  policy.mode = CrashRealism::kReal;
  policy.simulate_first = simulate_first;
  policy.alarm_backstop = options.statement_limits.deadline_ms > 0;
  policy.announce = [fd, &announce_ordinal, &worker_options](const CrashInfo& info) {
    const int ordinal = announce_ordinal++;
    if (ordinal == worker_options.test_kill9_at_crash) {
      ::raise(SIGKILL);
    }
    if (ordinal == worker_options.test_hang_at_crash) {
      for (;;) {
        ::pause();  // the SIGALRM backstop (or the supervisor) ends this
      }
    }
    // Flush the crash flight ring (oldest first) ahead of the announcement:
    // the statement that is crashing right now is the ring's newest entry,
    // still marked in-flight — stamp it with the crash verdict so the
    // supervisor-side record is self-describing.
    std::vector<trace::FlightEntry> entries = trace::FlightSnapshot();
    if (!entries.empty()) {
      entries.back().stage_reached = std::string(StageName(info.stage));
      entries.back().outcome = "crash";
      for (const trace::FlightEntry& entry : entries) {
        WriteLine(fd, "F " + EncodeFlightEntry(entry));
      }
    }
    WriteLine(fd, "C " + EncodeCrash(info));
  };
  db->set_crash_realism(std::move(policy));

  // Checkpoints stream over the pipe; the supervisor forwards them to the
  // shard's original sink with restart duplicates filtered. A dead pipe
  // degrades the journal (the child keeps running), it does not kill the
  // campaign.
  options.checkpoint_sink = [fd](const CampaignCheckpoint& cp) {
    return WriteLine(fd, "K " + EncodeCheckpoint(cp));
  };

  const CampaignResult result = fuzzer->Run(*db, options);
  WriteResultBlock(fd, result, db->coverage());
  ::_exit(0);  // skip atexit/leak machinery; the pipe already holds the result
}

// --- supervisor-side stream parsing ---------------------------------------

struct ChildStream {
  bool announced = false;
  CrashInfo crash;       // last (only) announcement of this child life
  bool complete = false;
  CampaignResult result;
  CoverageTracker coverage;
  // Crash-flight entries flushed ahead of the announcement (oldest first).
  std::vector<trace::FlightEntry> flight;
};

void ParseChildLine(const std::string& line, ChildStream& stream,
                    const std::function<bool(const CampaignCheckpoint&)>& on_checkpoint) {
  if (line.empty()) {
    return;
  }
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  if (tag == "C") {
    CrashInfo info;
    if (DecodeCrash(in, info)) {
      stream.crash = std::move(info);
      stream.announced = true;
    }
  } else if (tag == "F") {
    trace::FlightEntry entry;
    if (DecodeFlightEntry(in, entry)) {
      stream.flight.push_back(std::move(entry));
    }
  } else if (tag == "TRS") {
    trace::TraceSpan span;
    if (DecodeSpan(in, span)) {
      stream.result.trace.spans.push_back(std::move(span));
    }
  } else if (tag == "K") {
    CampaignCheckpoint cp;
    if (DecodeCheckpoint(in, cp) && on_checkpoint) {
      on_checkpoint(cp);
    }
  } else if (tag == "RES") {
    std::string tool, dialect;
    int journal_degraded = 0;
    in >> tool >> dialect >> stream.result.statements_executed >>
        stream.result.sql_errors >> stream.result.crashes_observed >>
        stream.result.false_positives >> stream.result.watchdog_timeouts >>
        stream.result.functions_triggered >> stream.result.branches_covered >>
        stream.result.shards >> journal_degraded;
    stream.result.journal_degraded = journal_degraded != 0;
    stream.result.tool = HexDecode(tool);
    stream.result.dialect = HexDecode(dialect);
  } else if (tag == "SST") {
    int n = 0;
    if (in >> n) {
      stream.result.shard_statements.push_back(n);
    }
  } else if (tag == "BUG") {
    FoundBug bug;
    std::string found_by, poc;
    int wall_recorded = 0;
    if (DecodeCrash(in, bug.crash) &&
        (in >> found_by >> poc >> bug.statements_until_found >> bug.shard >>
         bug.found_wall_ns >> wall_recorded)) {
      bug.found_by = HexDecode(found_by);
      bug.poc_sql = HexDecode(poc);
      bug.wall_recorded = wall_recorded != 0;
      stream.result.unique_bugs.push_back(std::move(bug));
    }
  } else if (tag == "CVB") {
    std::string key;
    if (in >> key) {
      stream.coverage.RestoreBranchKey(HexDecode(key));
    }
  } else if (tag == "TLS") {
    size_t stage = 0;
    telemetry::LatencyHistogram h;
    in >> stage >> h.samples >> h.total_ns >> h.max_ns;
    for (uint64_t& b : h.buckets) {
      in >> b;
    }
    if (in && stage < telemetry::kStageCount) {
      stream.result.telemetry.stage_latency[stage] = h;
    }
  } else if (tag == "TLP") {
    std::string pattern;
    telemetry::PatternCounters c;
    if (in >> pattern >> c.generated >> c.executed >> c.crashes >> c.bugs_deduped >>
        c.sql_errors >> c.false_positives >> c.timeouts) {
      stream.result.telemetry.patterns[HexDecode(pattern)] = c;
    }
  } else if (tag == "END") {
    stream.complete = true;
  }
  // Unknown tags are ignored: a child killed mid-write leaves a torn last
  // line, which must not poison the supervision loop.
}

ChildStream ReadChildStream(
    int fd, const std::function<bool(const CampaignCheckpoint&)>& on_checkpoint) {
  ChildStream stream;
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // EINTR-retrying read: a SIGCHLD-interrupted read must not be mistaken
    // for end-of-stream and drop the tail of a live child's result block.
    const int64_t n = io::ReadRetrying(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;  // EOF (child exited) or real error — either way the stream is over
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (;;) {
      const size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) {
        break;
      }
      ParseChildLine(buffer.substr(start, nl - start), stream, on_checkpoint);
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  return stream;
}

}  // namespace

WorkerShardOutcome RunShardInWorkerProcess(const WorkerFuzzerFactory& make_fuzzer,
                                           const WorkerDatabaseFactory& make_database,
                                           CampaignOptions options,
                                           const WorkerOptions& worker_options) {
  WorkerShardOutcome outcome;

  // Wall base for worker-run span placement: every child life is recorded
  // as [fork, waitpid] on this shard-local clock, and a completing child's
  // statement spans (relative to its own campaign start) are shifted onto
  // it. Observational only.
  const telemetry::WallTimer shard_timer;
  struct RunRec {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    std::string verdict;  // completed|crashed|unannounced-death|fork-failed|...
    int bug_id = 0;       // announced crashes only
  };
  std::vector<RunRec> runs;
  std::vector<trace::CrashFlightRecord> flights;
  int last_checkpoint_cases = -1;  // newest checkpoint seen on the pipe

  // Attaches the supervision-side observability to the shard's final result:
  // the collected crash-flight records always, and — when tracing — one
  // worker-run span per child life (parented under the shard span) with the
  // completing run's statement spans shifted onto the shard clock and
  // re-parented under it (the child cannot know its own fork ordinal).
  const auto attach_observability = [&](CampaignResult& result,
                                        uint64_t final_run_start_ns) {
    result.crash_flights = flights;
    if (options.trace_sample <= 0 || runs.empty()) {
      return;
    }
    const std::string& dialect = result.dialect;
    const uint64_t shard_span_id =
        trace::SpanId(dialect, options.shard_index, trace::SpanKind::kShard, 0);
    const uint64_t final_run_id =
        trace::SpanId(dialect, options.shard_index, trace::SpanKind::kWorkerRun,
                      static_cast<int>(runs.size()) - 1);
    for (trace::TraceSpan& span : result.trace.spans) {
      span.start_ns += final_run_start_ns;
      if (span.kind == trace::SpanKind::kStatement && span.parent_id == 0) {
        span.parent_id = final_run_id;
      }
    }
    std::vector<trace::TraceSpan> run_spans;
    run_spans.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      trace::TraceSpan span;
      span.id = trace::SpanId(dialect, options.shard_index,
                              trace::SpanKind::kWorkerRun, static_cast<int>(i));
      span.parent_id = shard_span_id;
      span.kind = trace::SpanKind::kWorkerRun;
      span.shard = options.shard_index;
      span.start_ns = runs[i].start_ns;
      span.dur_ns = runs[i].end_ns - runs[i].start_ns;
      span.args.emplace_back("run", std::to_string(i));
      span.args.emplace_back("verdict", runs[i].verdict);
      if (runs[i].bug_id != 0) {
        span.args.emplace_back("bug_id", std::to_string(runs[i].bug_id));
      }
      run_spans.push_back(std::move(span));
    }
    result.trace.spans.insert(result.trace.spans.begin(), run_spans.begin(),
                              run_spans.end());
  };

  // Restart duplicates: a replaying child re-emits checkpoints it already
  // streamed in a previous life; forward only strictly-new progress. A
  // failing downstream sink latches degradation for the shard — duplicates
  // and already-degraded forwards still count as "handled" (true) so the
  // child keeps its own journal_degraded flag accurate.
  const auto original_sink = options.checkpoint_sink;
  int max_forwarded_cases = 0;
  bool sink_degraded = false;
  const std::function<bool(const CampaignCheckpoint&)> forward_checkpoint =
      [&](const CampaignCheckpoint& cp) {
        last_checkpoint_cases = std::max(last_checkpoint_cases, cp.cases_completed);
        if (!original_sink || sink_degraded || cp.cases_completed <= max_forwarded_cases) {
          return true;
        }
        max_forwarded_cases = cp.cases_completed;
        if (!original_sink(cp)) {
          sink_degraded = true;
        }
        return true;
      };

  int confirmed_crashes = 0;
  int consecutive_unannounced = 0;
  int backoff_ms = worker_options.backoff_initial_ms;

  for (;;) {
    if (consecutive_unannounced >= worker_options.max_consecutive_deaths) {
      // Degradation ladder's last rung: finish the shard in-process with
      // simulated crashes. Deterministic replay makes this produce the same
      // campaign the real-crash path would have.
      outcome.stats.degraded_to_simulated = true;
      std::unique_ptr<Database> db = make_database();
      std::unique_ptr<Fuzzer> fuzzer = make_fuzzer();
      if (db == nullptr || fuzzer == nullptr) {
        return outcome;
      }
      CampaignOptions degraded = options;
      degraded.crash_realism = CrashRealism::kSimulated;
      degraded.checkpoint_sink = forward_checkpoint;
      RunRec rec;
      rec.start_ns = shard_timer.ElapsedNs();
      outcome.result = fuzzer->Run(*db, degraded);
      rec.end_ns = shard_timer.ElapsedNs();
      rec.verdict = "degraded-simulated";
      runs.push_back(rec);
      outcome.result.journal_degraded |= sink_degraded;
      outcome.coverage = db->coverage();
      attach_observability(outcome.result, rec.start_ns);
      return outcome;
    }

    int fds[2];
    if (::pipe(fds) != 0) {
      ++consecutive_unannounced;
      continue;
    }
    ++outcome.stats.forks;
    const bool die_silently = outcome.stats.forks <= worker_options.test_silent_deaths;
    RunRec rec;
    rec.start_ns = shard_timer.ElapsedNs();
    // worker.fork simulates transient fork failure (EAGAIN class); it takes
    // the same backoff/degradation ladder a real fork failure would.
    const pid_t pid = SOFT_FAILPOINT_HIT("worker.fork") ? -1 : ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      rec.end_ns = shard_timer.ElapsedNs();
      rec.verdict = "fork-failed";
      runs.push_back(rec);
      ++outcome.stats.unexpected_deaths;
      ++consecutive_unannounced;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, worker_options.backoff_max_ms);
      continue;
    }
    if (pid == 0) {
      ::close(fds[0]);
      RunWorkerChild(fds[1], make_fuzzer, make_database, options, worker_options,
                     confirmed_crashes, die_silently);
    }
    ::close(fds[1]);
    ChildStream stream = ReadChildStream(fds[0], forward_checkpoint);
    ::close(fds[0]);
    int status = 0;
    ::waitpid(pid, &status, 0);
    rec.end_ns = shard_timer.ElapsedNs();

    if (stream.complete) {
      rec.verdict = "completed";
      runs.push_back(rec);
      outcome.result = std::move(stream.result);
      outcome.result.journal_degraded |= sink_degraded;
      outcome.coverage = std::move(stream.coverage);
      attach_observability(outcome.result, rec.start_ns);
      return outcome;
    }
    if (stream.announced) {
      // The expected real-crash path: the pipe identity is authoritative;
      // the exit signal is recorded as a cross-check.
      trace::CrashFlightRecord flight;
      flight.shard = options.shard_index;
      flight.worker_run = static_cast<int>(runs.size());
      flight.announced = true;
      flight.bug_id = stream.crash.bug_id;
      flight.last_checkpoint_cases = last_checkpoint_cases;
      flight.entries = std::move(stream.flight);
      flights.push_back(std::move(flight));
      rec.verdict = "crashed";
      rec.bug_id = stream.crash.bug_id;
      runs.push_back(rec);
      ++confirmed_crashes;
      ++outcome.stats.real_crashes;
      consecutive_unannounced = 0;
      backoff_ms = worker_options.backoff_initial_ms;
      if (WIFSIGNALED(status) &&
          WTERMSIG(status) == ExpectedSignalFor(stream.crash.crash)) {
        ++outcome.stats.matched_signals;
      } else {
        ++outcome.stats.mismatched_signals;
      }
      continue;
    }
    // Unannounced death: no flight ring made it out — the record carries the
    // last checkpoint the supervisor saw, which is where the restart resumes.
    {
      trace::CrashFlightRecord flight;
      flight.shard = options.shard_index;
      flight.worker_run = static_cast<int>(runs.size());
      flight.announced = false;
      flight.last_checkpoint_cases = last_checkpoint_cases;
      flights.push_back(std::move(flight));
    }
    rec.verdict = "unannounced-death";
    runs.push_back(rec);
    ++outcome.stats.unexpected_deaths;
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGALRM) {
      ++outcome.stats.alarm_kills;
    }
    ++consecutive_unannounced;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, worker_options.backoff_max_ms);
  }
}

}  // namespace soft
