#include "src/soft/boundary_values.h"

namespace soft {
namespace {

void AddDigitSweep(std::vector<std::string>& out, int max_digits) {
  // Integers 9, 99, ..., 10^k, and their negations, sweeping digit lengths.
  for (int digits : {1, 2, 3, 5, 7, 10, 13, 16, 19, 20}) {
    std::string nines(static_cast<size_t>(digits), '9');
    out.push_back(nines);
    out.push_back("-" + nines);
  }
  // Fractions 0.9…9 sweeping fraction-digit counts across every dialect's
  // precision cap (31 = MariaDB String::set_real, 38/40 = decimal2string,
  // 65 = MySQL precision, and past-cap probes).
  for (int digits : {1, 3, 5, 10, 20, 30, 31, 32, 38, 40, 41, 50, 60, 64, 65, 66}) {
    if (digits > max_digits) {
      break;
    }
    std::string frac(static_cast<size_t>(digits), '9');
    out.push_back("0." + frac);
    out.push_back("-0." + frac);
    out.push_back("1." + frac);
  }
  // Long integer parts too (the AVG global-overflow shape).
  for (int digits : {25, 40, 48, 65, 80}) {
    if (digits > max_digits) {
      break;
    }
    out.push_back(std::string(static_cast<size_t>(digits), '9'));
  }
  // INT64 edges.
  out.push_back("9223372036854775807");
  out.push_back("-9223372036854775808");
  out.push_back("2147483647");
  out.push_back("-2147483648");
  out.push_back("0");
  out.push_back("-1");
}

void AddCraftedStrings(std::vector<std::string>& out) {
  // Format-shaped strings (12.9% of studied bugs came from crafted string
  // literals: JSON, dates, paths, addresses, WKT, format specs).
  out.push_back("''");
  out.push_back("' '");
  out.push_back("'0'");
  out.push_back("'{\"key\": 0}'");
  out.push_back("'[1,2,3]'");
  out.push_back("'[[[[[[[[['");
  out.push_back("'{{{{{{{{{'");
  out.push_back("'[1,[1,[1,[1,[1,[1,[1,[1,[1,[1]]]]]]]]]]'");
  out.push_back("'2024-01-01'");
  out.push_back("'0000-00-00'");
  out.push_back("'9999-12-31'");
  out.push_back("'$[2][1]'");
  out.push_back("'$.a.b.c'");
  out.push_back("'%Y%m%d%H%i%s'");
  out.push_back("'POINT(1 2)'");
  out.push_back("'LINESTRING(0 0, 1 1)'");
  out.push_back("'255.255.255.255'");
  out.push_back("'::ffff:1.2.3.4'");
  out.push_back("'<a><c></c></a>'");
  out.push_back("'/a/c[1]'");
  out.push_back("'99999'");
  out.push_back("'-99999'");
  out.push_back("'1e-32'");
  out.push_back("'x7fffffff'");
}

void AddSpecials(std::vector<std::string>& out) {
  out.push_back("NULL");
  out.push_back("*");
  out.push_back("TRUE");
  out.push_back("FALSE");
  // Composite literals (pool extension; see DESIGN.md): the MDEV-14596
  // class needs non-comparable ROW values, and empty/one-element arrays are
  // the DuckDB boundary shape.
  out.push_back("ROW(1, 1)");
  out.push_back("ROW(1, 2)");
  out.push_back("ARRAY[]");
  out.push_back("ARRAY[1]");
  out.push_back("x'00'");
  out.push_back("x'FFFF'");
}

}  // namespace

BoundaryPool GenerateBoundaryPool(int max_digits) {
  BoundaryPool pool;
  AddDigitSweep(pool.snippets, max_digits);
  AddCraftedStrings(pool.snippets);
  AddSpecials(pool.snippets);
  return pool;
}

BoundaryPool GenerateExtremesOnlyPool() {
  BoundaryPool pool;
  // One extreme per class — the ablation strawman.
  pool.snippets = {
      std::string(100, '9'),
      "-" + std::string(100, '9'),
      "0." + std::string(100, '9'),
      "''",
      "NULL",
      "*",
  };
  return pool;
}

}  // namespace soft
