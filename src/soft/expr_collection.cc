#include "src/soft/expr_collection.h"

#include <cctype>
#include <set>

#include "src/util/str_util.h"

namespace soft {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds the matching ')' for the '(' at `open`, honouring string literals.
// Returns npos when unbalanced.
size_t MatchParen(const std::string& sql, size_t open) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = open; i < sql.size(); ++i) {
    const char c = sql[i];
    if (in_string) {
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          ++i;
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (c == '\'') {
      in_string = true;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

}  // namespace

std::vector<std::string> ExtractFunctionExpressions(const std::string& sql,
                                                    const FunctionRegistry& registry) {
  std::vector<std::string> out;
  for (size_t i = 0; i < sql.size(); ++i) {
    if (sql[i] != '(') {
      continue;
    }
    // Token immediately before the '(' (skipping spaces).
    size_t end = i;
    while (end > 0 && std::isspace(static_cast<unsigned char>(sql[end - 1])) != 0) {
      --end;
    }
    size_t start = end;
    while (start > 0 && IsIdentChar(sql[start - 1])) {
      --start;
    }
    if (start == end) {
      continue;
    }
    const std::string name = sql.substr(start, end - start);
    if (!registry.Contains(name)) {
      continue;
    }
    const size_t close = MatchParen(sql, i);
    if (close == std::string::npos) {
      continue;
    }
    out.push_back(sql.substr(start, close - start + 1));
  }
  return out;
}

FunctionCorpus CollectCorpus(const Database& db,
                             const std::vector<std::string>& suite_scripts) {
  FunctionCorpus corpus;
  std::set<std::string> seen;

  // Documentation scan: every registry entry ships an example invocation.
  for (const FunctionDef* def : db.registry().All()) {
    if (!def->example.empty() && seen.insert(def->example).second) {
      corpus.expressions.push_back(def->example);
    }
  }

  // Regression-suite scan.
  for (const std::string& script : suite_scripts) {
    const std::string upper = AsciiUpper(script);
    if (StartsWith(upper, "CREATE ") || StartsWith(upper, "INSERT ") ||
        StartsWith(upper, "DROP ")) {
      corpus.prerequisites.push_back(script);
      continue;
    }
    for (std::string& expr : ExtractFunctionExpressions(script, db.registry())) {
      if (seen.insert(expr).second) {
        corpus.expressions.push_back(std::move(expr));
      }
    }
  }
  return corpus;
}

}  // namespace soft
