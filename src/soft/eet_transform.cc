#include "src/soft/eet_transform.h"

#include <memory>
#include <utility>

#include "src/dialects/dialect_diffs.h"
#include "src/sqlast/ast.h"
#include "src/sqlparser/parser.h"

namespace soft {
namespace {

bool IsStarItem(const SelectItem& item) {
  return item.expr->kind == ExprKind::kLiteral && item.expr->literal.is_star();
}

// Mirrors the evaluator's notion of a constant argument expression
// (LogicScope::kConstArgs): literals and unary-op/cast chains over them.
bool IsConstExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return !e.literal.is_star();
    case ExprKind::kUnaryOp:
    case ExprKind::kCast:
      return e.args.size() == 1 && IsConstExpr(*e.args[0]);
    default:
      return false;
  }
}

ExprPtr CoalescePair(const Expr& e) {
  std::vector<ExprPtr> args;
  args.push_back(e.Clone());
  args.push_back(e.Clone());
  return MakeFunctionCall("COALESCE", std::move(args));
}

// Wraps every non-star select item of every UNION branch in COALESCE(e, e).
// Equivalent because COALESCE returns its first non-null argument verbatim
// (and NULL when both are) — but each wrapped call now sits one level deeper.
std::string ShellCoalesceVariant(const SelectStmt& sel) {
  const std::unique_ptr<SelectStmt> clone = sel.Clone();
  bool changed = false;
  for (SelectStmt* s = clone.get(); s != nullptr; s = s->union_next.get()) {
    for (SelectItem& item : s->items) {
      if (IsStarItem(item)) {
        continue;
      }
      item.expr = CoalescePair(*item.expr);
      changed = true;
    }
  }
  return changed ? clone->ToSql() : std::string();
}

// Wraps the top-level WHERE predicate: p AND TRUE / p OR FALSE / NOT (NOT p).
// All three preserve three-valued row selection: WHERE keeps a row exactly
// when the condition coerces to TRUE, and each wrapper maps
// {TRUE, FALSE, NULL} onto itself.
std::string PredicateVariant(const SelectStmt& sel, const std::string& shape) {
  if (sel.where == nullptr) {
    return std::string();
  }
  const std::unique_ptr<SelectStmt> clone = sel.Clone();
  if (shape == "and_true") {
    clone->where = MakeBinaryOp("AND", std::move(clone->where),
                                MakeLiteral(Value::Boolean(true)));
  } else if (shape == "or_false") {
    clone->where = MakeBinaryOp("OR", std::move(clone->where),
                                MakeLiteral(Value::Boolean(false)));
  } else {
    clone->where = MakeUnaryOp("NOT", MakeUnaryOp("NOT", std::move(clone->where)));
  }
  return clone->ToSql();
}

// Replaces the first constant function argument with the identity chain
// COALESCE(c, c) — same value, but the argument expression is no longer
// syntactically constant.
std::string ArgIdentityVariant(const SelectStmt& sel) {
  const std::unique_ptr<SelectStmt> clone = sel.Clone();
  std::vector<Expr*> calls;
  clone->CollectFunctionCalls(calls);
  for (Expr* call : calls) {
    if (call->func_name == "COALESCE") {
      continue;  // wrapping COALESCE's own args is a no-op rewrite
    }
    for (ExprPtr& arg : call->args) {
      if (!IsConstExpr(*arg)) {
        continue;
      }
      arg = CoalescePair(*arg);
      return clone->ToSql();
    }
  }
  return std::string();
}

}  // namespace

std::vector<EetVariant> BuildEetVariants(const std::string& sql) {
  std::vector<EetVariant> variants;
  if (!OracleComparable(sql)) {
    return variants;
  }
  Result<Statement> parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return variants;
  }
  Statement stmt = std::move(parsed).value();
  const SelectStmt* sel = stmt.mutable_select();
  if (sel == nullptr) {
    return variants;
  }

  const auto add = [&](const char* label, std::string variant_sql) {
    if (!variant_sql.empty() && variant_sql != sql) {
      variants.push_back(EetVariant{label, std::move(variant_sql)});
    }
  };
  add("shell.coalesce", ShellCoalesceVariant(*sel));
  add("pred.and_true", PredicateVariant(*sel, "and_true"));
  add("pred.or_false", PredicateVariant(*sel, "or_false"));
  add("pred.not_not", PredicateVariant(*sel, "not_not"));
  add("arg.identity", ArgIdentityVariant(*sel));
  return variants;
}

}  // namespace soft
