#include "src/soft/report.h"

namespace soft {

std::string RenderBugReport(const Database& db, const FoundBug& bug) {
  std::string out;
  out += "## BUG-" + bug.crash.dbms + "-" + std::to_string(bug.crash.bug_id) + ": " +
         std::string(CrashTypeLongName(bug.crash.crash)) + " in " + bug.crash.function +
         "\n\n";
  out += "* **Target:** " + db.config().name + " (simulated dialect)\n";
  out += "* **Crash type:** " + std::string(CrashTypeName(bug.crash.crash)) + " (" +
         std::string(CrashTypeLongName(bug.crash.crash)) + ")\n";
  out += "* **Processing stage:** " + std::string(StageName(bug.crash.stage)) + "\n";
  out += "* **Found by pattern:** " + bug.found_by + " after " +
         std::to_string(bug.statements_until_found) + " statements\n\n";
  out += "### Reproduction\n\n```sql\n" + bug.poc_sql + ";\n```\n\n";
  out += "### Analysis\n\n" + bug.crash.description + "\n";
  return out;
}

std::string RenderCampaignReport(const Database& db, const CampaignResult& result) {
  std::string out;
  out += "# SOFT campaign report — " + result.dialect + "\n\n";
  out += "| metric | value |\n|---|---|\n";
  out += "| tool | " + result.tool + " |\n";
  out += "| statements executed | " + std::to_string(result.statements_executed) + " |\n";
  out += "| SQL errors | " + std::to_string(result.sql_errors) + " |\n";
  out += "| crash events | " + std::to_string(result.crashes_observed) + " |\n";
  out += "| unique bugs | " + std::to_string(result.unique_bugs.size()) + " |\n";
  out += "| false positives (resource limits) | " +
         std::to_string(result.false_positives) + " |\n";
  out += "| functions triggered | " + std::to_string(result.functions_triggered) + " |\n";
  out += "| branches covered | " + std::to_string(result.branches_covered) + " |\n\n";
  for (const FoundBug& bug : result.unique_bugs) {
    out += RenderBugReport(db, bug);
    out += "\n---\n\n";
  }
  return out;
}

}  // namespace soft
