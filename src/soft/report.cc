#include "src/soft/report.h"

#include <cstdio>

#include "src/telemetry/telemetry.h"

namespace soft {
namespace {

std::string FormatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

// Renders the recorded stage latencies and per-pattern counters. All timing
// in reports flows through the telemetry histograms — there is no second,
// ad-hoc chrono code path.
std::string RenderTelemetrySection(const telemetry::CampaignTelemetry& telemetry) {
  std::string out;
  out += "## Telemetry\n\n";
  out += "| stage | samples | mean µs | max µs |\n|---|---|---|---|\n";
  for (size_t i = 0; i < telemetry::kStageCount; ++i) {
    const telemetry::LatencyHistogram& h = telemetry.stage_latency[i];
    out += "| " + std::string(telemetry::kStageKeys[i]) + " | " +
           std::to_string(h.samples) + " | " + FormatUs(h.MeanUs()) + " | " +
           FormatUs(static_cast<double>(h.max_ns) / 1000.0) + " |\n";
  }
  out += "\n| pattern | generated | executed | crashes | bugs | sql errors | "
         "false positives |\n|---|---|---|---|---|---|---|\n";
  for (const auto& [pattern, c] : telemetry.patterns) {
    out += "| " + pattern + " | " + std::to_string(c.generated) + " | " +
           std::to_string(c.executed) + " | " + std::to_string(c.crashes) + " | " +
           std::to_string(c.bugs_deduped) + " | " + std::to_string(c.sql_errors) +
           " | " + std::to_string(c.false_positives) + " |\n";
  }
  out += "\n";
  return out;
}

}  // namespace

std::string RenderBugReport(const Database& db, const FoundBug& bug) {
  std::string out;
  out += "## BUG-" + bug.crash.dbms + "-" + std::to_string(bug.crash.bug_id) + ": " +
         std::string(CrashTypeLongName(bug.crash.crash)) + " in " + bug.crash.function +
         "\n\n";
  out += "* **Target:** " + db.config().name + " (simulated dialect)\n";
  out += "* **Crash type:** " + std::string(CrashTypeName(bug.crash.crash)) + " (" +
         std::string(CrashTypeLongName(bug.crash.crash)) + ")\n";
  out += "* **Processing stage:** " + std::string(StageName(bug.crash.stage)) + "\n";
  out += "* **Found by pattern:** " + bug.found_by + " after " +
         std::to_string(bug.statements_until_found) + " statements\n\n";
  out += "### Reproduction\n\n```sql\n" + bug.poc_sql + ";\n```\n\n";
  out += "### Analysis\n\n" + bug.crash.description + "\n";
  return out;
}

std::string RenderCampaignReport(const Database& db, const CampaignResult& result) {
  std::string out;
  out += "# SOFT campaign report — " + result.dialect + "\n\n";
  out += "| metric | value |\n|---|---|\n";
  out += "| tool | " + result.tool + " |\n";
  out += "| statements executed | " + std::to_string(result.statements_executed) + " |\n";
  out += "| SQL errors | " + std::to_string(result.sql_errors) + " |\n";
  out += "| crash events | " + std::to_string(result.crashes_observed) + " |\n";
  out += "| unique bugs | " + std::to_string(result.unique_bugs.size()) + " |\n";
  out += "| false positives (resource limits) | " +
         std::to_string(result.false_positives) + " |\n";
  out += "| functions triggered | " + std::to_string(result.functions_triggered) + " |\n";
  out += "| branches covered | " + std::to_string(result.branches_covered) + " |\n\n";
  if (!result.telemetry.empty()) {
    out += RenderTelemetrySection(result.telemetry);
  }
  for (const FoundBug& bug : result.unique_bugs) {
    out += RenderBugReport(db, bug);
    out += "\n---\n\n";
  }
  return out;
}

}  // namespace soft
