// Function-expression collection (Section 7.1, step 1).
//
// SOFT first harvests SQL function expressions from two sources: the DBMS's
// documentation (here: the function registry, whose entries carry example
// invocations) and the DBMS's regression test suite (here: per-dialect seed
// scripts). Test-suite harvesting follows the paper's mechanism literally:
// scan for parenthesis pairs whose preceding token is a documented function
// name, and lift the balanced-paren expression.
#ifndef SRC_SOFT_EXPR_COLLECTION_H_
#define SRC_SOFT_EXPR_COLLECTION_H_

#include <string>
#include <vector>

#include "src/engine/database.h"

namespace soft {

struct FunctionCorpus {
  // Each entry is a self-contained function expression, e.g.
  // "JSON_LENGTH('[1,2]', '$')" — executable as "SELECT <expr>".
  std::vector<std::string> expressions;
  // Prerequisite statements (CREATE TABLE / INSERT) harvested from the suite
  // scripts; run before any table-referencing expression (Finding 4).
  std::vector<std::string> prerequisites;
};

// Scans SQL text for expressions invoking functions known to `registry`
// (the paper's paren-matching scan). Returns the extracted expressions.
std::vector<std::string> ExtractFunctionExpressions(const std::string& sql,
                                                    const FunctionRegistry& registry);

// Full corpus for one dialect: registry examples ("documentation") plus
// expressions extracted from `suite_scripts` ("regression suite").
FunctionCorpus CollectCorpus(const Database& db,
                             const std::vector<std::string>& suite_scripts);

}  // namespace soft

#endif  // SRC_SOFT_EXPR_COLLECTION_H_
