// Per-dialect regression-suite stand-ins: the seed scripts SOFT harvests
// function expressions from (Section 7.1). Each suite mixes literal-only
// queries, table-backed queries with CREATE/INSERT prerequisites, and
// UNION/GROUP BY shapes — mirroring the Finding 4 split of prerequisite
// dependence in real bug-inducing statements.
#ifndef SRC_SOFT_SEEDS_H_
#define SRC_SOFT_SEEDS_H_

#include <string>
#include <vector>

namespace soft {

// Seed script lines for a dialect ("postgresql", "mysql", ...). Unknown
// names get the generic suite.
std::vector<std::string> SeedSuiteFor(const std::string& dialect);

}  // namespace soft

#endif  // SRC_SOFT_SEEDS_H_
