#include "src/soft/seeds.h"

namespace soft {
namespace {

// Queries every dialect's suite contains (common SQL).
const char* const kGenericSuite[] = {
    "CREATE TABLE t1 (a INT, b STRING, c DOUBLE)",
    "INSERT INTO t1 VALUES (1, 'one', 1.5), (2, 'two', 2.5), (3, 'three', 3.5)",
    "CREATE TABLE dates (d DATE, note STRING)",
    "INSERT INTO dates VALUES ('2024-01-31', 'jan'), ('2024-02-29', 'leap')",
    "SELECT UPPER(b) FROM t1 WHERE a > 1",
    "SELECT LENGTH(b), REVERSE(b) FROM t1",
    "SELECT CONCAT(b, '-', b) FROM t1 ORDER BY a",
    "SELECT SUBSTR(b, 1, 2) FROM t1",
    "SELECT REPLACE(b, 'o', '0') FROM t1",
    "SELECT TRIM('  padded  ')",
    "SELECT LPAD('5', 3, '0'), RPAD('5', 3, '0')",
    "SELECT REPEAT('ab', 3)",
    "SELECT ABS(-5), SIGN(-5), MOD(10, 3)",
    "SELECT ROUND(c, 1), FLOOR(c), CEIL(c) FROM t1",
    "SELECT SQRT(2), POWER(2, 10), EXP(1)",
    "SELECT COUNT(*) FROM t1",
    "SELECT SUM(a), AVG(a), MIN(a), MAX(a) FROM t1",
    "SELECT b, COUNT(a) FROM t1 GROUP BY b HAVING COUNT(a) > 0",
    "SELECT GROUP_CONCAT(b) FROM t1",
    "SELECT IFNULL(NULL, 'fallback'), COALESCE(NULL, b) FROM t1",
    "SELECT NULLIF(a, 2) FROM t1",
    "SELECT YEAR(d), MONTH(d), DAY(d) FROM dates",
    "SELECT DATEDIFF(d, '2024-01-01') FROM dates",
    "SELECT DATE_ADD(d, 30) FROM dates",
    "SELECT CAST(a AS STRING) FROM t1 UNION SELECT b FROM t1",
    "SELECT a FROM t1 UNION ALL SELECT a + 1 FROM t1",
    "SELECT ASCII(b) FROM t1",
};

// Seed lines shared by the dialects that ship the fuller string/condition
// surface (everything except PostgreSQL's and MonetDB's pruned catalogs).
const char* const kRichStringSuite[] = {
    "SELECT HEX(b) FROM t1",
    "SELECT INSTR(b, 'o'), STRCMP(b, 'one') FROM t1",
    "SELECT GREATEST(1, 2, 3), LEAST(1, 2, 3)",
};

const char* const kJsonSuite[] = {
    "SELECT JSON_VALID('{\"a\": 1}')",
    "SELECT JSON_LENGTH('[1,2,3]', '$')",
    "SELECT JSON_EXTRACT('{\"a\": [1,2]}', '$.a[1]')",
    "SELECT JSON_TYPE('[1]')",
};

const char* const kSpatialSuite[] = {
    "SELECT ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))",
    "SELECT ST_X(POINT(1, 2)), ST_Y(POINT(1, 2))",
    "SELECT ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))",
    "SELECT BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))",
};

void Append(std::vector<std::string>& out, const char* const* items, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(items[i]);
  }
}

}  // namespace

std::vector<std::string> SeedSuiteFor(const std::string& dialect) {
  std::vector<std::string> out;
  Append(out, kGenericSuite, std::size(kGenericSuite));

  if (dialect == "postgresql") {
    out.push_back("SELECT HEX(b), STRCMP(b, 'one') FROM t1");
    out.push_back("SELECT GREATEST(1, 2, 3), LEAST(1, 2, 3)");
    out.push_back("SELECT JSONB_OBJECT_AGG(b, a) FROM t1");
    out.push_back("SELECT JSONB_OBJECT_AGG(DISTINCT b, a) FROM t1");
    out.push_back("SELECT SPLIT_PART('a,b,c', ',', 2)");
    out.push_back("SELECT INITCAP('hello world')");
    Append(out, kJsonSuite, std::size(kJsonSuite));
  } else if (dialect == "mysql") {
    Append(out, kRichStringSuite, std::size(kRichStringSuite));
    out.push_back("SELECT UPDATEXML('<a><c></c></a>', '/a/c[1]', '<b></b>')");
    out.push_back("SELECT EXTRACTVALUE('<a><b>x</b></a>', '/a/b')");
    out.push_back("SELECT FORMAT(1234.5678, 2)");
    out.push_back("SELECT BENCHMARK(10, 1 + 1)");
    out.push_back("SELECT SLEEP(0)");
    out.push_back("SELECT CHARSET('x'), COLLATION('x'), COERCIBILITY('x')");
    Append(out, kJsonSuite, std::size(kJsonSuite));
    Append(out, kSpatialSuite, std::size(kSpatialSuite));
  } else if (dialect == "mariadb") {
    Append(out, kRichStringSuite, std::size(kRichStringSuite));
    out.push_back("SELECT COLUMN_JSON(COLUMN_CREATE('x', 1))");
    out.push_back("SELECT NEXTVAL('s1'), LASTVAL('s1')");
    out.push_back("SELECT FORMAT(1234.5678, 2, 'de_DE')");
    out.push_back("SELECT MAKEDATE(2024, 60)");
    out.push_back("SELECT DATE_FORMAT(d, '%Y/%m/%d') FROM dates");
    out.push_back("SELECT INTERVAL(5, 1, 10)");
    out.push_back("SELECT INET6_ATON('255.255.255.255')");
    Append(out, kJsonSuite, std::size(kJsonSuite));
    Append(out, kSpatialSuite, std::size(kSpatialSuite));
  } else if (dialect == "clickhouse") {
    Append(out, kRichStringSuite, std::size(kRichStringSuite));
    out.push_back("SELECT TOSTRING(1.5), TOINT64('42'), TOFLOAT64('1.5')");
    out.push_back("SELECT TODECIMAL256('1.5'), TODECIMALSTRING(1.5, 4)");
    out.push_back("SELECT TODATE('2024-06-15')");
    out.push_back("SELECT ARRAY_CONCAT(ARRAY[1], ARRAY[2])");
    out.push_back("SELECT ELEMENT_AT(ARRAY[1, 2, 3], 2)");
    Append(out, kJsonSuite, std::size(kJsonSuite));
  } else if (dialect == "monetdb") {
    out.push_back("SELECT INSTR(b, 'o') FROM t1");
    out.push_back("SELECT JSON_EXTRACT('[[1]]', '$[0][0]')");
    out.push_back("SELECT LOCATE('na', 'banana', 3)");
    out.push_back("SELECT STDDEV(a), VARIANCE(a) FROM t1");
    out.push_back("SELECT TYPEOF(1)");
    out.push_back("SELECT SLEEP(0)");
    out.push_back("SELECT JSON_VALID('{\"a\": 1}')");
  } else if (dialect == "duckdb") {
    Append(out, kRichStringSuite, std::size(kRichStringSuite));
    out.push_back("SELECT ELEMENT_AT(ARRAY[1, 2, 3], 2)");
    out.push_back("SELECT ARRAY_SLICE(ARRAY[1, 2, 3], 1, 2)");
    out.push_back("SELECT ARRAY_POSITION(ARRAY[1, 2], 2)");
    out.push_back("SELECT MAP_EXTRACT(MAP(ARRAY['a'], ARRAY[1]), 'a')");
    out.push_back("SELECT CARDINALITY(ARRAY[1, 2])");
    out.push_back("SELECT TYPEOF(1)");
    Append(out, kJsonSuite, std::size(kJsonSuite));
  } else if (dialect == "virtuoso") {
    Append(out, kRichStringSuite, std::size(kRichStringSuite));
    out.push_back("SELECT CONTAINS('haystack', 'hay')");
    out.push_back("SELECT AREF(VECTOR(1, 2, 3), 1)");
    out.push_back("SELECT HASHINT('x'), RDF_BOX(1)");
    out.push_back("SELECT SYS_STAT('st_dbms_ver')");
    out.push_back("SELECT BLOB_TO_STRING(STRING_TO_BLOB('abc'))");
    out.push_back("SELECT INTERNAL_TYPE_NAME(1)");
    out.push_back("SELECT UPDATEXML('<a><c></c></a>', '/a/c[1]', '<b></b>')");
    out.push_back("SELECT EXTRACTVALUE('<a><b>x</b></a>', '/a/b')");
    Append(out, kJsonSuite, std::size(kJsonSuite));
    Append(out, kSpatialSuite, std::size(kSpatialSuite));
  }
  return out;
}

}  // namespace soft
