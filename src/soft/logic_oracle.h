// Correctness-bug extension (Section 8, "Correctness Bugs in SQL Functions").
//
// The paper proposes extending SOFT beyond crashes with metamorphic oracles
// in the NoREC / TLP style. This module implements both for the simulated
// engine:
//
//   NoREC  — a predicate's optimized evaluation (WHERE p) must select
//            exactly the rows where the unoptimized per-row evaluation of p
//            (projected as a SELECT item) yields TRUE.
//   TLP    — ternary logic partitioning: |t| = |WHERE p| + |WHERE NOT p| +
//            |WHERE p IS NULL| for any predicate p.
//
// SOFT's boundary pool supplies the predicate constants, so logic bugs in
// boundary handling surface the same way crash bugs do.
#ifndef SRC_SOFT_LOGIC_ORACLE_H_
#define SRC_SOFT_LOGIC_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/engine/database.h"

namespace soft {

struct LogicBug {
  std::string oracle;     // "NoREC" | "TLP"
  std::string predicate;  // SQL text of p
  std::string detail;     // counts that disagreed
};

// Runs the NoREC oracle for predicate `p` over table `table`. Returns a
// LogicBug on mismatch, nullopt when consistent, and an error status when
// the queries themselves fail (not an oracle verdict).
Result<std::optional<LogicBug>> CheckNoRec(Database& db, const std::string& table,
                                           const std::string& predicate);

// Runs the TLP partition oracle for predicate `p` over `table`.
Result<std::optional<LogicBug>> CheckTlp(Database& db, const std::string& table,
                                         const std::string& predicate);

struct LogicCampaignResult {
  int predicates_checked = 0;
  int skipped_errors = 0;  // predicates that failed to execute at all
  std::vector<LogicBug> bugs;
};

// Generates boundary-valued predicates over the table's columns and runs
// both oracles on each. Deterministic per seed.
LogicCampaignResult RunLogicCampaign(Database& db, const std::string& table,
                                     int predicate_budget, uint64_t seed = 1);

}  // namespace soft

#endif  // SRC_SOFT_LOGIC_ORACLE_H_
