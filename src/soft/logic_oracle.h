// Correctness-bug extension (Section 8, "Correctness Bugs in SQL Functions").
//
// The paper proposes extending SOFT beyond crashes with metamorphic oracles
// in the NoREC / TLP style. This module implements both for the simulated
// engine:
//
//   NoREC  — a predicate's optimized evaluation (WHERE p) must select
//            exactly the rows where the unoptimized per-row evaluation of p
//            (projected as a SELECT item) yields TRUE.
//   TLP    — ternary logic partitioning: |t| = |WHERE p| + |WHERE NOT p| +
//            |WHERE p IS NULL| for any predicate p.
//
// SOFT's boundary pool supplies the predicate constants, so logic bugs in
// boundary handling surface the same way crash bugs do.
#ifndef SRC_SOFT_LOGIC_ORACLE_H_
#define SRC_SOFT_LOGIC_ORACLE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/engine/database.h"

namespace soft {

// One result-set oracle examining campaign statements. Four implementations
// ship ("eet", "diff", "norec", "tlp"); campaigns run any subset. Verdicts
// come exclusively from result comparison — an oracle never consults the
// injected LogicBugSpec corpus, which exists only so the campaign can
// validate verdicts against ground truth afterwards.
class LogicOracle {
 public:
  struct Verdict {
    bool checked = false;     // the statement was in this oracle's scope
    bool divergence = false;  // results disagreed — a wrong-result bug
    std::string witness;      // what disagreed: variant SQL, sibling dialect,
                              // or reference predicate
    std::string detail;       // human-readable account of the disagreement
  };

  virtual ~LogicOracle() = default;

  virtual std::string_view name() const = 0;

  // Examines one successfully executed campaign statement. Must be a pure
  // function of (sql, current table state, armed faults) so partition-mode
  // sharding reproduces serial verdicts exactly.
  virtual Verdict Check(Database& db, const std::string& sql,
                        const StatementResult& result) = 0;

  // Successful non-SELECT campaign statements pass through here so stateful
  // oracles (the differential's sibling engines) keep their catalogs and
  // table contents in lockstep with the campaign database.
  virtual void ObserveSideEffect(const std::string& sql) {}
};

// True for "eet", "diff", "norec", "tlp", and "all".
bool IsKnownLogicOracle(const std::string& name);

// Builds the oracle set for a campaign on `dialect`. "all" expands to every
// implementation; duplicates collapse. The differential oracle instantiates
// the six sibling dialects with their logic faults left DISABLED — clean
// reference engines.
std::vector<std::unique_ptr<LogicOracle>> MakeLogicOracles(
    const std::vector<std::string>& names, const std::string& dialect);

struct LogicBug {
  std::string oracle;     // "NoREC" | "TLP"
  std::string predicate;  // SQL text of p
  std::string detail;     // counts that disagreed
};

// Runs the NoREC oracle for predicate `p` over table `table`. Returns a
// LogicBug on mismatch, nullopt when consistent, and an error status when
// the queries themselves fail (not an oracle verdict).
Result<std::optional<LogicBug>> CheckNoRec(Database& db, const std::string& table,
                                           const std::string& predicate);

// Runs the TLP partition oracle for predicate `p` over `table`.
Result<std::optional<LogicBug>> CheckTlp(Database& db, const std::string& table,
                                         const std::string& predicate);

struct LogicCampaignResult {
  int predicates_checked = 0;
  int skipped_errors = 0;  // predicates that failed to execute at all
  std::vector<LogicBug> bugs;
};

// Generates boundary-valued predicates over the table's columns and runs
// both oracles on each. Deterministic per seed.
LogicCampaignResult RunLogicCampaign(Database& db, const std::string& table,
                                     int predicate_budget, uint64_t seed = 1);

}  // namespace soft

#endif  // SRC_SOFT_LOGIC_ORACLE_H_
