// Behaviour tests for the math and date/time function libraries.
#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace soft {
namespace {

class FunctionsTest : public testing::Test {
 protected:
  std::string Eval(const std::string& expr) {
    const StatementResult r = db_.Execute("SELECT " + expr);
    if (!r.ok()) {
      return "<" + std::string(StatusCodeName(r.status.code())) + ">";
    }
    return r.rows[0][0].ToDisplayString();
  }
  Database db_;
};

TEST_F(FunctionsTest, AbsSignBoundaries) {
  EXPECT_EQ(Eval("ABS(-5)"), "5");
  EXPECT_EQ(Eval("ABS(5)"), "5");
  EXPECT_EQ(Eval("ABS(-1.25)"), "1.25");  // exact decimal path
  // The INT64_MIN literal doesn't fit int64, so the parser types it DECIMAL
  // and ABS stays exact (a true int64 INT64_MIN would be an overflow error).
  EXPECT_EQ(Eval("ABS(-9223372036854775808)"), "9223372036854775808");
  EXPECT_EQ(Eval("SIGN(-3)"), "-1");
  EXPECT_EQ(Eval("SIGN(0)"), "0");
  EXPECT_EQ(Eval("SIGN(0.5)"), "1");
}

TEST_F(FunctionsTest, RoundingFamily) {
  EXPECT_EQ(Eval("CEIL(1.2)"), "2");
  EXPECT_EQ(Eval("CEIL(-1.2)"), "-1");
  EXPECT_EQ(Eval("FLOOR(1.8)"), "1");
  EXPECT_EQ(Eval("FLOOR(-1.2)"), "-2");
  EXPECT_EQ(Eval("ROUND(1.2345, 2)"), "1.23");
  EXPECT_EQ(Eval("ROUND(1.5)"), "2");
  EXPECT_EQ(Eval("ROUND(-1.5)"), "-2");  // half away from zero
  EXPECT_EQ(Eval("ROUND(1234.5, -2)"), "1200");
  EXPECT_EQ(Eval("TRUNCATE(1.999, 1)"), "1.9");
  EXPECT_EQ(Eval("TRUNCATE(-1.999, 1)"), "-1.9");
  EXPECT_EQ(Eval("TRUNCATE(5, 2)"), "5");
}

TEST_F(FunctionsTest, ModDivBoundaries) {
  EXPECT_EQ(Eval("MOD(10, 3)"), "1");
  EXPECT_EQ(Eval("MOD(-10, 3)"), "-1");
  EXPECT_EQ(Eval("MOD(10, 0)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("MOD(-9223372036854775808, -1)"), "0");  // checked SIGFPE case
  EXPECT_EQ(Eval("DIV(10, 3)"), "3");
  EXPECT_EQ(Eval("DIV(10, 0)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("DIV(-9223372036854775808, -1)"), "<INVALID_ARGUMENT>");
}

TEST_F(FunctionsTest, PowerLogDomains) {
  EXPECT_EQ(Eval("POWER(2, 10)"), "1024");
  EXPECT_EQ(Eval("POWER(2, 10000)"), "<INVALID_ARGUMENT>");  // overflow
  EXPECT_EQ(Eval("POWER(0, -1)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("SQRT(-1)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("SQRT(4)"), "2");
  EXPECT_EQ(Eval("LN(0)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("LOG(2, 8)"), "3");
  EXPECT_EQ(Eval("LOG(1, 8)"), "<INVALID_ARGUMENT>");  // base 1
  EXPECT_EQ(Eval("LOG10(100)"), "2");
  EXPECT_EQ(Eval("LOG2(8)"), "3");
  EXPECT_EQ(Eval("EXP(10000)"), "<INVALID_ARGUMENT>");
}

TEST_F(FunctionsTest, TrigDomains) {
  EXPECT_EQ(Eval("SIN(0)"), "0");
  EXPECT_EQ(Eval("COS(0)"), "1");
  EXPECT_EQ(Eval("ASIN(2)"), "<INVALID_ARGUMENT>");  // |x| > 1
  EXPECT_EQ(Eval("ACOS(-2)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("ATAN2(0, 1)"), "0");
  EXPECT_EQ(Eval("DEGREES(PI())"), "180");
  EXPECT_EQ(Eval("RADIANS(0)"), "0");
}

TEST_F(FunctionsTest, BitAndChecksum) {
  EXPECT_EQ(Eval("BIT_COUNT(7)"), "3");
  EXPECT_EQ(Eval("BIT_COUNT(0)"), "0");
  EXPECT_EQ(Eval("BIT_COUNT(-1)"), "64");
  EXPECT_EQ(Eval("CRC32('abc')"), Eval("CRC32('abc')"));
  EXPECT_NE(Eval("CRC32('abc')"), Eval("CRC32('abd')"));
  EXPECT_EQ(Eval("RAND(42)"), Eval("RAND(42)"));  // deterministic
}

// --- Dates -------------------------------------------------------------------

TEST_F(FunctionsTest, DateParts) {
  EXPECT_EQ(Eval("YEAR(DATE '2024-06-15')"), "2024");
  EXPECT_EQ(Eval("MONTH(DATE '2024-06-15')"), "6");
  EXPECT_EQ(Eval("DAY(DATE '2024-06-15')"), "15");
  EXPECT_EQ(Eval("QUARTER(DATE '2024-06-15')"), "2");
  EXPECT_EQ(Eval("DAYOFWEEK(DATE '2024-06-15')"), "7");  // Saturday
  EXPECT_EQ(Eval("DAYOFYEAR(DATE '2024-03-01')"), "61"); // leap year
}

TEST_F(FunctionsTest, DateArithmetic) {
  EXPECT_EQ(Eval("DATE_ADD(DATE '2024-02-28', 1)"), "2024-02-29");
  EXPECT_EQ(Eval("DATE_SUB(DATE '2024-03-01', 1)"), "2024-02-29");
  EXPECT_EQ(Eval("DATEDIFF(DATE '2024-02-01', DATE '2024-01-01')"), "31");
  EXPECT_EQ(Eval("DATEDIFF('2024-01-01', '2024-02-01')"), "-31");  // string coercion
  EXPECT_EQ(Eval("DATE_ADD(DATE '9999-12-31', 1)"), "NULL");       // out of range
  EXPECT_EQ(Eval("LAST_DAY(DATE '2024-02-10')"), "2024-02-29");
  EXPECT_EQ(Eval("ADD_MONTHS(DATE '2024-01-31', 1)"), "2024-02-29");
}

TEST_F(FunctionsTest, MakedateBoundaries) {
  EXPECT_EQ(Eval("MAKEDATE(2024, 60)"), "2024-02-29");
  EXPECT_EQ(Eval("MAKEDATE(2024, 0)"), "NULL");
  EXPECT_EQ(Eval("MAKEDATE(2024, 366)"), "2024-12-31");
  EXPECT_EQ(Eval("MAKEDATE(-5, 1)"), "NULL");
  EXPECT_EQ(Eval("MAKEDATE(9999, 400)"), "NULL");  // spills past year 9999
}

TEST_F(FunctionsTest, DateFormatSpecifiers) {
  EXPECT_EQ(Eval("DATE_FORMAT(DATE '2024-06-15', '%Y/%m/%d')"), "2024/06/15");
  EXPECT_EQ(Eval("DATE_FORMAT(DATE '2024-06-15', '%j')"), "167");
  EXPECT_EQ(Eval("DATE_FORMAT(DATE '2024-06-15', '%%')"), "%");
  EXPECT_EQ(Eval("DATE_FORMAT(DATE '2024-06-15', 'plain')"), "plain");
  EXPECT_EQ(Eval("DATE_FORMAT('bogus', '%Y')"), "NULL");
}

TEST_F(FunctionsTest, DayNumberRoundTrip) {
  EXPECT_EQ(Eval("FROM_DAYS(TO_DAYS(DATE '2024-06-15'))"), "2024-06-15");
  EXPECT_EQ(Eval("FROM_DAYS(0)"), "0000-01-01");   // year-0 floor
  EXPECT_EQ(Eval("FROM_DAYS(-1)"), "NULL");        // before year 0
  EXPECT_EQ(Eval("CURRENT_DATE()"), "2025-03-30");  // pinned engine date
}

// --- Condition functions -------------------------------------------------------

TEST_F(FunctionsTest, ConditionFamily) {
  EXPECT_EQ(Eval("IFNULL(NULL, 'x')"), "x");
  EXPECT_EQ(Eval("IFNULL(1, 'x')"), "1");
  EXPECT_EQ(Eval("NULLIF(1, 1)"), "NULL");
  EXPECT_EQ(Eval("NULLIF(1, 2)"), "1");
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 3)"), "3");
  EXPECT_EQ(Eval("COALESCE(NULL, NULL)"), "NULL");
  EXPECT_EQ(Eval("IF(1 < 2, 'y', 'n')"), "y");
  EXPECT_EQ(Eval("IF(NULL, 'y', 'n')"), "n");
  EXPECT_EQ(Eval("ISNULL(NULL)"), "1");
  EXPECT_EQ(Eval("GREATEST(1, 2.5, 2)"), "2.5");
  EXPECT_EQ(Eval("LEAST('b', 'a')"), "a");
  EXPECT_EQ(Eval("GREATEST(1, NULL)"), "NULL");
  EXPECT_EQ(Eval("NVL2(NULL, 'a', 'b')"), "b");
  EXPECT_EQ(Eval("DECODE(2, 1, 'a', 2, 'b', 'z')"), "b");
  EXPECT_EQ(Eval("DECODE(9, 1, 'a', 'z')"), "z");
  EXPECT_EQ(Eval("DECODE(NULL, NULL, 'matched', 'z')"), "matched");
}

TEST_F(FunctionsTest, IntervalValidatesComparability) {
  EXPECT_EQ(Eval("INTERVAL(5, 1, 10)"), "1");
  EXPECT_EQ(Eval("INTERVAL(0, 1, 10)"), "0");
  EXPECT_EQ(Eval("INTERVAL(15, 1, 10)"), "2");
  EXPECT_EQ(Eval("INTERVAL(NULL, 1)"), "-1");
  // MDEV-14596: ROW arguments must be rejected, not dereferenced.
  EXPECT_EQ(Eval("INTERVAL(ROW(1,1), ROW(1,2))"), "<TYPE_ERROR>");
}

// --- Casting functions ------------------------------------------------------------

TEST_F(FunctionsTest, CastingFamily) {
  EXPECT_EQ(Eval("CONVERT('12', 'SIGNED')"), "12");
  EXPECT_EQ(Eval("CONVERT('1.5', 'DOUBLE')"), "1.5");
  EXPECT_EQ(Eval("CONVERT(1, 'NO_TYPE')"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("TO_NUMBER('1.5')"), "1.5");
  EXPECT_EQ(Eval("TO_CHAR(1.5)"), "1.5");
  EXPECT_EQ(Eval("BIN(7)"), "111");
  EXPECT_EQ(Eval("BIN(0)"), "0");
  EXPECT_EQ(Eval("OCT(8)"), "10");
}

TEST_F(FunctionsTest, ToDecimalStringValidatesPrecision) {
  EXPECT_EQ(Eval("TODECIMALSTRING(1.5, 4)"), "1.5000");
  EXPECT_EQ(Eval("TODECIMALSTRING(1.5, 0)"), "2");
  EXPECT_EQ(Eval("TODECIMALSTRING(1.5, -1)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("TODECIMALSTRING(1.5, 100)"), "<INVALID_ARGUMENT>");
  // Listing 1's star argument: validated in the reference implementation.
  EXPECT_EQ(Eval("TODECIMALSTRING('110'::Decimal256(45), *)"), "<INVALID_ARGUMENT>");
}

TEST_F(FunctionsTest, InetFamily) {
  EXPECT_EQ(Eval("INET_ATON('10.0.0.1')"), "167772161");
  EXPECT_EQ(Eval("INET_NTOA(167772161)"), "10.0.0.1");
  EXPECT_EQ(Eval("INET_ATON('bogus')"), "NULL");
  EXPECT_EQ(Eval("INET_NTOA(-1)"), "NULL");
  EXPECT_EQ(Eval("INET6_NTOA(INET6_ATON('255.255.255.255'))"), "255.255.255.255");
  EXPECT_EQ(Eval("INET6_ATON('not-an-ip')"), "NULL");
}

}  // namespace
}  // namespace soft
