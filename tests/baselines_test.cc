// Baseline fuzzer tests and the comparative claims of Section 7.5: under
// identical budgets the baselines find (essentially) no SQL function bugs
// while SOFT finds many, and SOFT covers more functions and branches.
#include <gtest/gtest.h>

#include "src/baselines/comparison.h"
#include "src/dialects/dialects.h"

namespace soft {
namespace {

constexpr int kBudget = 10000;

CampaignResult RunTool(Fuzzer& tool, const std::string& dialect, int budget = kBudget) {
  auto db = MakeDialect(dialect);
  CampaignOptions options;
  options.seed = 3;
  options.max_statements = budget;
  return tool.Run(*db, options);
}

TEST(Baselines, RandSmithExecutesAndTriggersManyFunctions) {
  RandSmith tool;
  const CampaignResult r = RunTool(tool, "mariadb");
  EXPECT_EQ(r.statements_executed, kBudget);
  // SQLsmith-style catalog sweep touches most of the catalog.
  EXPECT_GT(r.functions_triggered, 60u);
  EXPECT_GT(r.branches_covered, r.functions_triggered);
}

TEST(Baselines, PqsGenStaysInItsModeledPool) {
  PqsGen tool;
  const CampaignResult r = RunTool(tool, "mariadb");
  EXPECT_EQ(r.statements_executed, kBudget);
  // SQLancer models few functions; triggered count stays small.
  EXPECT_LT(r.functions_triggered, 40u);
  EXPECT_GT(r.functions_triggered, 5u);
}

TEST(Baselines, MutSquirrelMutatesSeeds) {
  MutSquirrel tool;
  const CampaignResult r = RunTool(tool, "mariadb");
  EXPECT_EQ(r.statements_executed, kBudget);
  EXPECT_GT(r.functions_triggered, 20u);
}

class BaselineBugClaimTest : public testing::TestWithParam<std::string> {};

TEST_P(BaselineBugClaimTest, BaselinesFindAlmostNoBugs) {
  // Section 7.5: SQUIRREL, SQLancer, SQLsmith found no SQL function bugs in
  // 24 hours. Allow a tiny tolerance (<= 1) for the simulated reproduction.
  for (const std::unique_ptr<Fuzzer>& tool : MakeAllTools()) {
    if (tool->name() == "SOFT") {
      continue;
    }
    const CampaignResult r = RunTool(*tool, GetParam());
    EXPECT_LE(r.unique_bugs.size(), 1u)
        << tool->name() << " on " << GetParam() << " found "
        << r.unique_bugs.size() << " bugs; first: "
        << (r.unique_bugs.empty() ? "" : r.unique_bugs[0].poc_sql);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDialects, BaselineBugClaimTest,
                         testing::ValuesIn(AllDialectNames()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Comparison, SoftDominatesOnMariadb) {
  const std::vector<ToolRun> runs = RunAllTools("mariadb", kBudget, 5);
  const ToolRun* soft_run = nullptr;
  for (const ToolRun& run : runs) {
    if (run.tool == "SOFT") {
      soft_run = &run;
    }
  }
  ASSERT_NE(soft_run, nullptr);
  EXPECT_GE(soft_run->result.unique_bugs.size(), 10u);
  for (const ToolRun& run : runs) {
    if (run.tool == "SOFT") {
      continue;
    }
    EXPECT_GT(soft_run->result.unique_bugs.size(), run.result.unique_bugs.size())
        << run.tool;
    // Function counts can saturate the catalog at small budgets (both SOFT
    // and the catalog-sweeping SQLsmith* reach nearly every function), so
    // allow ties there; branch coverage — the boundary-argument depth — must
    // be strictly higher.
    EXPECT_GE(soft_run->result.functions_triggered, run.result.functions_triggered)
        << run.tool;
    EXPECT_GT(soft_run->result.branches_covered, run.result.branches_covered)
        << run.tool;
  }
}

TEST(Comparison, SupportMatrixMatchesTable5) {
  EXPECT_TRUE(ToolSupportsDialect("SQUIRREL*", "mysql"));
  EXPECT_FALSE(ToolSupportsDialect("SQUIRREL*", "clickhouse"));
  EXPECT_TRUE(ToolSupportsDialect("SQLancer*", "clickhouse"));
  EXPECT_FALSE(ToolSupportsDialect("SQLancer*", "monetdb"));
  EXPECT_TRUE(ToolSupportsDialect("SQLsmith*", "monetdb"));
  EXPECT_FALSE(ToolSupportsDialect("SQLsmith*", "mysql"));
  for (const std::string& dialect : AllDialectNames()) {
    EXPECT_TRUE(ToolSupportsDialect("SOFT", dialect));
  }
}

}  // namespace
}  // namespace soft
