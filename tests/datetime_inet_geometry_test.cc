// Date, inet, and geometry substrate tests.
#include <gtest/gtest.h>

#include "src/sqlvalue/datetime.h"
#include "src/sqlvalue/geometry.h"
#include "src/sqlvalue/inet.h"

namespace soft {
namespace {

// --- Dates ------------------------------------------------------------------

TEST(DateParse, Basic) {
  const Result<Date> d = ParseDate("2024-06-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year, 2024);
  EXPECT_EQ(d->month, 6);
  EXPECT_EQ(d->day, 15);
  EXPECT_TRUE(ParseDate("2024/06/15").ok());
}

TEST(DateParse, RejectsInvalid) {
  EXPECT_FALSE(ParseDate("2024-13-01").ok());
  EXPECT_FALSE(ParseDate("2024-02-30").ok());
  EXPECT_FALSE(ParseDate("2023-02-29").ok());  // not a leap year
  EXPECT_FALSE(ParseDate("garbage").ok());
  EXPECT_FALSE(ParseDate("2024-01").ok());
  EXPECT_FALSE(ParseDate("10000-01-01").ok());
}

TEST(DateLeapYears, Rules) {
  EXPECT_TRUE(IsLeapYear(2024));
  EXPECT_FALSE(IsLeapYear(2023));
  EXPECT_FALSE(IsLeapYear(1900));  // century, not divisible by 400
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_EQ(DaysInMonth(2024, 2), 29);
  EXPECT_EQ(DaysInMonth(2023, 2), 28);
  EXPECT_EQ(DaysInMonth(2024, 4), 30);
  EXPECT_EQ(DaysInMonth(2024, 13), 0);
}

TEST(DateDayNumber, RoundTripsAcrossRange) {
  for (const char* text : {"0001-01-01", "1969-12-31", "1970-01-01", "2000-02-29",
                           "2024-06-15", "9999-12-31"}) {
    const Result<Date> d = ParseDate(text);
    ASSERT_TRUE(d.ok()) << text;
    const Result<Date> back = DayNumberToDate(DateToDayNumber(*d));
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, *d) << text;
  }
  EXPECT_EQ(DateToDayNumber(Date{1970, 1, 1}), 0);
}

TEST(DateArithmetic, AddDaysAndOverflow) {
  const Date base{2024, 2, 28};
  EXPECT_EQ(AddDays(base, 1)->day, 29);  // leap day
  EXPECT_EQ(AddDays(base, 2)->month, 3);
  EXPECT_FALSE(AddDays(Date{9999, 12, 31}, 1).ok());
  EXPECT_FALSE(AddDays(Date{0, 1, 1}, -400).ok());
}

TEST(DateArithmetic, AddMonthsClampsEndOfMonth) {
  const Result<Date> d = AddMonths(Date{2024, 1, 31}, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->month, 2);
  EXPECT_EQ(d->day, 29);  // clamped to Feb 29
  EXPECT_EQ(AddMonths(Date{2024, 1, 31}, -1)->day, 31);
  EXPECT_FALSE(AddMonths(Date{9999, 12, 1}, 1).ok());
}

TEST(DateWeekday, KnownAnchors) {
  EXPECT_EQ(DayOfWeek(Date{1970, 1, 1}), 5);   // Thursday (1 = Sunday)
  EXPECT_EQ(DayOfWeek(Date{2024, 6, 15}), 7);  // Saturday
  EXPECT_EQ(DayOfYear(Date{2024, 3, 1}), 61);  // leap year
  EXPECT_EQ(DayOfYear(Date{2023, 3, 1}), 60);
}

TEST(DateTimeParse, WithTimeOfDay) {
  const Result<DateTime> dt = ParseDateTime("2024-06-15 23:59:59");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->hour, 23);
  EXPECT_FALSE(ParseDateTime("2024-06-15 24:00:00").ok());
  EXPECT_FALSE(ParseDateTime("2024-06-15 12:61:00").ok());
  EXPECT_EQ(FormatDateTime(*dt), "2024-06-15 23:59:59");
}

// --- Inet -------------------------------------------------------------------

TEST(InetParse, V4) {
  const Result<InetAddr> a = ParseInet("255.255.255.255");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->is_v4);
  EXPECT_EQ(FormatInet(*a), "255.255.255.255");
  EXPECT_EQ(InetToBinary(*a).size(), 4u);
  EXPECT_FALSE(ParseInet("1.2.3").ok());
  EXPECT_FALSE(ParseInet("1.2.3.256").ok());
  EXPECT_FALSE(ParseInet("a.b.c.d").ok());
}

TEST(InetParse, V6) {
  const Result<InetAddr> a = ParseInet("2001:db8::1");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->is_v4);
  EXPECT_EQ(InetToBinary(*a).size(), 16u);
  EXPECT_TRUE(ParseInet("::").ok());
  EXPECT_TRUE(ParseInet("::1").ok());
  EXPECT_FALSE(ParseInet("1:2:3:4:5:6:7").ok());     // too few without ::
  EXPECT_FALSE(ParseInet("1:2:3:4:5:6:7:8:9").ok()); // too many
  EXPECT_FALSE(ParseInet("xyz::1").ok());
}

TEST(InetBinary, RoundTrip) {
  for (const char* text : {"10.0.0.1", "::1", "2001:db8::ff"}) {
    const Result<InetAddr> a = ParseInet(text);
    ASSERT_TRUE(a.ok()) << text;
    const Result<InetAddr> back = InetFromBinary(InetToBinary(*a));
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, *a) << text;
  }
  EXPECT_FALSE(InetFromBinary("abc").ok());  // 3 bytes: neither v4 nor v6
}

// --- Geometry ----------------------------------------------------------------

TEST(GeometryWkt, ParseAndRender) {
  const Result<Geometry> p = ParseWkt("POINT(1 2)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->kind, GeometryKind::kPoint);
  EXPECT_EQ(GeometryToWkt(*p), "POINT(1 2)");

  const Result<Geometry> l = ParseWkt("LINESTRING(0 0, 3 4)");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->points.size(), 2u);

  EXPECT_FALSE(ParseWkt("POINT(1 2, 3 4)").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING(0 0)").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE(0 0)").ok());
  EXPECT_FALSE(ParseWkt("POINT").ok());
}

TEST(GeometryBinary, RoundTripAndRejection) {
  const Result<Geometry> g = ParseWkt("LINESTRING(0 0, 1 1, 2 0)");
  ASSERT_TRUE(g.ok());
  const Result<Geometry> back = GeometryFromBinary(GeometryToBinary(*g));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *g);

  // The Case 6 surface: inet binary forms must NOT decode as geometry.
  const Result<InetAddr> addr = ParseInet("255.255.255.255");
  ASSERT_TRUE(addr.ok());
  EXPECT_FALSE(GeometryFromBinary(InetToBinary(*addr)).ok());
  EXPECT_FALSE(GeometryFromBinary("").ok());
  EXPECT_FALSE(GeometryFromBinary(std::string("\xFF\x00\x00\x00\x00", 5)).ok());
}

TEST(GeometryBoundary, PerKind) {
  const Result<Geometry> line = ParseWkt("LINESTRING(0 0, 1 1, 2 0)");
  const Result<Geometry> boundary = GeometryBoundary(*line);
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(boundary->points.size(), 2u);
  EXPECT_EQ(boundary->points[1], (GeoPoint{2, 0}));

  const Result<Geometry> point = ParseWkt("POINT(1 2)");
  EXPECT_FALSE(GeometryBoundary(*point).ok());  // empty boundary
}

}  // namespace
}  // namespace soft
