// Tests for the Section 8 extensions: the NoREC/TLP correctness oracles and
// the clause-boundary generator.
#include <gtest/gtest.h>

#include "src/dialects/dialects.h"
#include "src/soft/clause_extension.h"
#include "src/soft/logic_oracle.h"

namespace soft {
namespace {

class LogicOracleTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b STRING, c DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x', 1.5e0), (2, 'y', -2.5e0), "
                            "(3, '', 0.0e0), (NULL, NULL, NULL)")
                    .ok());
  }
  Database db_;
};

TEST_F(LogicOracleTest, NoRecConsistentOnHealthyEngine) {
  for (const char* predicate :
       {"a > 1", "a = NULL", "b != ''", "c < 0.0e0", "a > 99999999999", "a IS NULL",
        "LENGTH(b) > 0"}) {
    const Result<std::optional<LogicBug>> verdict = CheckNoRec(db_, "t", predicate);
    ASSERT_TRUE(verdict.ok()) << predicate << ": " << verdict.status().ToString();
    EXPECT_FALSE(verdict->has_value())
        << predicate << " flagged: " << (*verdict)->detail;
  }
}

TEST_F(LogicOracleTest, TlpPartitionsExactly) {
  for (const char* predicate : {"a > 1", "a = 2", "b = ''", "c >= 0.0e0", "a IS NULL"}) {
    const Result<std::optional<LogicBug>> verdict = CheckTlp(db_, "t", predicate);
    ASSERT_TRUE(verdict.ok()) << predicate;
    EXPECT_FALSE(verdict->has_value())
        << predicate << " flagged: " << (*verdict)->detail;
  }
}

TEST_F(LogicOracleTest, OracleQueriesFailuresAreErrorsNotVerdicts) {
  const Result<std::optional<LogicBug>> verdict = CheckNoRec(db_, "t", "ROW(1,1) > 2");
  EXPECT_FALSE(verdict.ok());  // the predicate itself is ill-typed
  const Result<std::optional<LogicBug>> missing = CheckNoRec(db_, "nope", "a > 1");
  EXPECT_FALSE(missing.ok());
}

TEST_F(LogicOracleTest, DetectsAnInjectedLogicBug) {
  // A deliberately broken comparison function: IS_POSITIVE misclassifies the
  // boundary value 0 depending on context — the reference path disagrees
  // with itself because the implementation consults a call-count toggle.
  FunctionDef def;
  def.name = "IS_POSITIVE";
  def.type = FunctionType::kMath;
  def.min_args = 1;
  def.max_args = 1;
  def.doc = "deliberately inconsistent predicate for oracle testing";
  def.example = "IS_POSITIVE(1)";
  auto calls = std::make_shared<int>(0);
  def.scalar = [calls](FunctionContext& ctx, const ValueList& args) -> Result<Value> {
    SOFT_ASSIGN_OR_RETURN(double d, ctx.ArgDouble(args[0]));
    ++*calls;
    // Flips its verdict for zero on every other invocation.
    if (d == 0) {
      return Value::Boolean(*calls % 2 == 0);
    }
    return Value::Boolean(d > 0);
  };
  db_.registry().Register(std::move(def));

  bool flagged = false;
  for (int attempt = 0; attempt < 4 && !flagged; ++attempt) {
    const Result<std::optional<LogicBug>> verdict =
        CheckNoRec(db_, "t", "IS_POSITIVE(c)");
    ASSERT_TRUE(verdict.ok());
    flagged = verdict->has_value();
  }
  EXPECT_TRUE(flagged) << "NoREC failed to flag the inconsistent predicate";
}

TEST_F(LogicOracleTest, CampaignRunsCleanOnHealthyEngine) {
  const LogicCampaignResult result = RunLogicCampaign(db_, "t", 200, 7);
  EXPECT_GT(result.predicates_checked, 100);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs[0].oracle << ": "
                                   << result.bugs[0].predicate << " — "
                                   << result.bugs[0].detail;
}

TEST(ClauseExtension, GeneratesAllClauseKinds) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b STRING)").ok());
  const std::vector<ClauseCase> cases = GenerateClauseCases(db, "t", 200, 3);
  ASSERT_EQ(cases.size(), 200u);
  std::set<std::string> kinds;
  for (const ClauseCase& c : cases) {
    kinds.insert(c.clause);
    EXPECT_NE(c.sql.find("FROM t"), std::string::npos) << c.sql;
  }
  EXPECT_EQ(kinds.size(), 4u);  // WHERE, ORDER BY, GROUP BY, LIMIT
}

TEST(ClauseExtension, CampaignSurvivesBoundaryClauses) {
  // On a healthy engine boundary clauses produce errors or empty results,
  // never crashes or aborts.
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b STRING)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  const ClauseCampaignResult result = RunClauseCampaign(db, "t", 300, 11);
  EXPECT_EQ(result.statements_executed, 300);
  EXPECT_EQ(result.crashes, 0);
  EXPECT_TRUE(result.unique_crashes.empty());
}

TEST(ClauseExtension, ReachesInjectedComparisonBugs) {
  // A fault keyed on comparison inputs inside WHERE machinery: boundary
  // constants in clauses must be able to reach function-level faults too
  // (here: LENGTH invoked from a WHERE predicate of a clause case is out of
  // scope, so inject directly on the comparison path via a wrapper bug on
  // COUNT during GROUP BY of a boundary value).
  auto db = MakeMariadbDialect();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT, b STRING)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'x')").ok());
  BugSpec spec;
  spec.id = 900;
  spec.dbms = "mariadb";
  spec.function = "COUNT";
  spec.function_type = "aggregate";
  spec.crash = CrashType::kSegmentationViolation;
  spec.pattern = "P1.2";
  spec.trigger = TriggerKind::kArgIsStar;  // COUNT(*) inside the clause cases
  db->faults().AddBug(spec);
  const ClauseCampaignResult result = RunClauseCampaign(*db, "t", 200, 11);
  EXPECT_GT(result.crashes, 0);
  ASSERT_FALSE(result.unique_crashes.empty());
  EXPECT_EQ(result.unique_crashes[0].bug_id, 900);
}

}  // namespace
}  // namespace soft
