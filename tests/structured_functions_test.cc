// Behaviour tests for the JSON, XML, spatial, array/map, aggregate, system
// and sequence function libraries.
#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace soft {
namespace {

class StructuredTest : public testing::Test {
 protected:
  std::string Eval(const std::string& expr) {
    const StatementResult r = db_.Execute("SELECT " + expr);
    if (!r.ok()) {
      return "<" + std::string(StatusCodeName(r.status.code())) + ">";
    }
    return r.rows[0][0].ToDisplayString();
  }
  Database db_;
};

TEST_F(StructuredTest, JsonValidity) {
  EXPECT_EQ(Eval("JSON_VALID('{\"a\": 1}')"), "TRUE");
  EXPECT_EQ(Eval("JSON_VALID('{bad}')"), "FALSE");
  EXPECT_EQ(Eval("JSON_VALID('')"), "FALSE");
  EXPECT_EQ(Eval("JSON_DEPTH('[[1]]')"), "3");
  EXPECT_EQ(Eval("JSON_TYPE('[1]')"), "ARRAY");
  EXPECT_EQ(Eval("JSON_TYPE('3')"), "NUMBER");
}

TEST_F(StructuredTest, JsonLengthAndPath) {
  EXPECT_EQ(Eval("JSON_LENGTH('[1,2,3]')"), "3");
  EXPECT_EQ(Eval("JSON_LENGTH('{\"a\":1,\"b\":2}')"), "2");
  EXPECT_EQ(Eval("JSON_LENGTH('5')"), "1");
  EXPECT_EQ(Eval("JSON_LENGTH('[1,[2,3]]', '$[1]')"), "2");
  EXPECT_EQ(Eval("JSON_LENGTH('[1]', '$[9]')"), "NULL");
  EXPECT_EQ(Eval("JSON_EXTRACT('{\"a\": [1,2]}', '$.a[1]')"), "2");
  EXPECT_EQ(Eval("JSON_EXTRACT('{\"a\": 1}', '$.b')"), "NULL");
  EXPECT_EQ(Eval("JSON_EXTRACT('[1]', 'bad-path')"), "<INVALID_ARGUMENT>");
}

TEST_F(StructuredTest, JsonBuilders) {
  EXPECT_EQ(Eval("JSON_ARRAY(1, 'a', TRUE)"), "[1,\"a\",true]");
  EXPECT_EQ(Eval("JSON_OBJECT('a', 1)"), "{\"a\":1}");
  EXPECT_EQ(Eval("JSON_OBJECT('a')"), "<INVALID_ARGUMENT>");  // odd arity
  EXPECT_EQ(Eval("JSON_QUOTE('x\"y')"), "\"x\\\"y\"");
  EXPECT_EQ(Eval("JSON_UNQUOTE('\"abc\"')"), "abc");
  EXPECT_EQ(Eval("JSON_KEYS('{\"a\":1,\"b\":2}')"), "[\"a\",\"b\"]");
  EXPECT_EQ(Eval("JSON_KEYS('[1]')"), "NULL");
  EXPECT_EQ(Eval("JSON_MERGE_PRESERVE('[1]', '[2]')"), "[1,2]");
  EXPECT_EQ(Eval("JSON_CONTAINS_PATH('{\"a\": 1}', '$.a')"), "TRUE");
}

TEST_F(StructuredTest, DynamicColumns) {
  EXPECT_EQ(Eval("COLUMN_JSON(COLUMN_CREATE('x', 1))"), "{\"x\":1}");
  // The MDEV-8407 shape survives in the reference implementation: the full
  // digit string is preserved through pack/unpack.
  const std::string digits48(48, '9');
  EXPECT_EQ(Eval("COLUMN_JSON(COLUMN_CREATE('x', " + digits48 + "))"),
            "{\"x\":\"" + digits48 + "\"}");
  EXPECT_EQ(Eval("COLUMN_JSON('garbage')"), "<INVALID_ARGUMENT>");
}

TEST_F(StructuredTest, XmlFamily) {
  EXPECT_EQ(Eval("EXTRACTVALUE('<a><b>x</b></a>', '/a/b')"), "x");
  EXPECT_EQ(Eval("EXTRACTVALUE('<a><b>x</b><b>y</b></a>', '/a/b[2]')"), "y");
  EXPECT_EQ(Eval("EXTRACTVALUE('<a/>', '/a/b')"), "");
  EXPECT_EQ(Eval("EXTRACTVALUE('not xml', '/a')"), "NULL");
  EXPECT_EQ(Eval("UPDATEXML('<a><c></c></a>', '/a/c[1]', '<b></b>')"),
            "<a><b></b></a>");
  EXPECT_EQ(Eval("UPDATEXML('<a><c/></a>', '/a/zzz', '<b/>')"), "<a><c/></a>");
  EXPECT_EQ(Eval("XML_VALID('<a><b/></a>')"), "TRUE");
  EXPECT_EQ(Eval("XML_VALID('<a><b></a>')"), "FALSE");  // mismatched close
  EXPECT_EQ(Eval("XML_ROOT('<root><x/></root>')"), "root");
  EXPECT_EQ(Eval("XML_ELEMENT_COUNT('<a><b/><b/></a>')"), "3");
}

TEST_F(StructuredTest, SpatialFamily) {
  EXPECT_EQ(Eval("ST_ASTEXT(POINT(1, 2))"), "POINT(1 2)");
  EXPECT_EQ(Eval("ST_X(POINT(1, 2))"), "1");
  EXPECT_EQ(Eval("ST_Y(POINT(1, 2))"), "2");
  EXPECT_EQ(Eval("ST_X(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))"),
            "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))"), "5");
  EXPECT_EQ(Eval("ST_DISTANCE(POINT(0, 0), POINT(3, 4))"), "5");
  EXPECT_EQ(Eval("ST_NUMPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))"), "2");
  EXPECT_EQ(Eval("ST_EQUALS(POINT(1, 2), POINT(1, 2))"), "TRUE");
  EXPECT_EQ(Eval("ST_ASTEXT(BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1, 2 0)')))"),
            "LINESTRING(0 0, 2 0)");
  EXPECT_EQ(Eval("BOUNDARY(POINT(1, 2))"), "NULL");
  // The reference implementation *rejects* the Case 6 chain cleanly.
  EXPECT_EQ(Eval("ST_ASTEXT(INET6_ATON('255.255.255.255'))"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("ST_ISVALID(POINT(1, 2))"), "TRUE");
  EXPECT_EQ(Eval("ST_ISVALID(x'00FF')"), "FALSE");
}

TEST_F(StructuredTest, ArrayFamily) {
  EXPECT_EQ(Eval("ARRAY_LENGTH(ARRAY[1, 2, 3])"), "3");
  EXPECT_EQ(Eval("ARRAY_LENGTH(ARRAY[])"), "0");
  EXPECT_EQ(Eval("ELEMENT_AT(ARRAY[1, 2, 3], 2)"), "2");
  EXPECT_EQ(Eval("ELEMENT_AT(ARRAY[1, 2, 3], -1)"), "3");
  EXPECT_EQ(Eval("ELEMENT_AT(ARRAY[1], 9)"), "NULL");
  EXPECT_EQ(Eval("ELEMENT_AT(ARRAY[1], 0)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("ARRAY_CONCAT(ARRAY[1], ARRAY[2, 3])"), "[1, 2, 3]");
  EXPECT_EQ(Eval("ARRAY_APPEND(ARRAY[1], 'x')"), "[1, x]");
  EXPECT_EQ(Eval("ARRAY_CONTAINS(ARRAY[1, 2], 2)"), "TRUE");
  EXPECT_EQ(Eval("ARRAY_CONTAINS(ARRAY[], 1)"), "FALSE");
  EXPECT_EQ(Eval("ARRAY_SLICE(ARRAY[1, 2, 3], 2, 3)"), "[2, 3]");
  EXPECT_EQ(Eval("ARRAY_SLICE(ARRAY[1, 2, 3], -5, 99)"), "[1, 2, 3]");  // clamped
  EXPECT_EQ(Eval("ARRAY_REVERSE(ARRAY[1, 2])"), "[2, 1]");
  EXPECT_EQ(Eval("ARRAY_POSITION(ARRAY[5, 7], 7)"), "2");
  EXPECT_EQ(Eval("ARRAY_POSITION(ARRAY[5], 9)"), "NULL");
  EXPECT_EQ(Eval("CARDINALITY(ARRAY[1, 2])"), "2");
  EXPECT_EQ(Eval("CARDINALITY(5)"), "<TYPE_ERROR>");
}

TEST_F(StructuredTest, MapFamily) {
  EXPECT_EQ(Eval("MAP_EXTRACT(MAP(ARRAY['a', 'b'], ARRAY[1, 2]), 'b')"), "2");
  EXPECT_EQ(Eval("MAP_EXTRACT(MAP(ARRAY['a'], ARRAY[1]), 'zz')"), "NULL");
  EXPECT_EQ(Eval("MAP_KEYS(MAP(ARRAY['a'], ARRAY[1]))"), "[a]");
  EXPECT_EQ(Eval("MAP_VALUES(MAP(ARRAY['a'], ARRAY[1]))"), "[1]");
  EXPECT_EQ(Eval("MAP(ARRAY['a'], ARRAY[1, 2])"), "<INVALID_ARGUMENT>");  // length
  EXPECT_EQ(Eval("MAP(ARRAY[NULL], ARRAY[1])"), "<INVALID_ARGUMENT>");    // NULL key
  EXPECT_EQ(Eval("MAP_KEYS('x')"), "<TYPE_ERROR>");
}

TEST_F(StructuredTest, SystemFamily) {
  EXPECT_EQ(Eval("VERSION()"), "soft-engine 1.0.0");
  EXPECT_EQ(Eval("DATABASE()"), "main");
  EXPECT_EQ(Eval("CONNECTION_ID()"), "1");
  EXPECT_EQ(Eval("TYPEOF(1.5)"), "DECIMAL");
  EXPECT_EQ(Eval("TYPEOF('x')"), "STRING");
  EXPECT_EQ(Eval("TYPEOF(NULL)"), "NULL");
  EXPECT_EQ(Eval("CONTAINS('haystack', 'hay')"), "1");
  EXPECT_EQ(Eval("CONTAINS('haystack', 'zzz')"), "0");
  EXPECT_EQ(Eval("CONTAINS('ABC', 'abc', 'i')"), "1");
  // Case 2's star argument is rejected by the reference implementation.
  EXPECT_EQ(Eval("CONTAINS('x', 'x', *)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("SLEEP(0)"), "0");
  EXPECT_EQ(Eval("SLEEP(-1)"), "<INVALID_ARGUMENT>");
  EXPECT_EQ(Eval("BENCHMARK(10, 1 + 1)"), "0");
  EXPECT_EQ(Eval("BENCHMARK(99999999, 1)"), "<RESOURCE_EXHAUSTED>");
  EXPECT_EQ(Eval("UUID()"), Eval("UUID()"));  // deterministic per session
}

TEST_F(StructuredTest, SequenceFamily) {
  EXPECT_EQ(Eval("NEXTVAL('s1')"), "1");
  EXPECT_EQ(Eval("NEXTVAL('s1')"), "2");
  EXPECT_EQ(Eval("LASTVAL('s1')"), "2");
  EXPECT_EQ(Eval("LASTVAL('never')"), "NULL");
  EXPECT_EQ(Eval("SETVAL('s1', 100)"), "100");
  EXPECT_EQ(Eval("NEXTVAL('s1')"), "101");
  EXPECT_EQ(Eval("LAST_INSERT_ID()"), "101");
  EXPECT_EQ(Eval("NEXTVAL('')"), "<INVALID_ARGUMENT>");
}

class AggregateTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b STRING, d DOUBLE)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0), "
                            "(3, 'x', 4.0), (NULL, 'z', NULL)")
                    .ok());
  }
  std::string Eval(const std::string& expr) {
    const StatementResult r = db_.Execute("SELECT " + expr + " FROM t");
    if (!r.ok()) {
      return "<" + std::string(StatusCodeName(r.status.code())) + ">";
    }
    return r.rows[0][0].ToDisplayString();
  }
  Database db_;
};

TEST_F(AggregateTest, CoreAggregates) {
  EXPECT_EQ(Eval("COUNT(*)"), "4");
  EXPECT_EQ(Eval("COUNT(a)"), "3");
  EXPECT_EQ(Eval("SUM(a)"), "6");
  EXPECT_EQ(Eval("MIN(b)"), "x");
  EXPECT_EQ(Eval("MAX(b)"), "z");
  EXPECT_EQ(Eval("AVG(d)"), "2.3333333333333335");  // double path
  EXPECT_EQ(Eval("GROUP_CONCAT(b)"), "x,y,x,z");
  EXPECT_EQ(Eval("GROUP_CONCAT(DISTINCT b)"), "x,y,z");
  EXPECT_EQ(Eval("STDDEV(d)"), Eval("STDDEV(d)"));
  EXPECT_EQ(Eval("VARIANCE(a)"), Eval("VARIANCE(a)"));
  EXPECT_EQ(Eval("BIT_OR(a)"), "3");
  EXPECT_EQ(Eval("BIT_AND(a)"), "0");
  EXPECT_EQ(Eval("BIT_XOR(a)"), "0");
  EXPECT_EQ(Eval("MEDIAN(a)"), "2");
  EXPECT_EQ(Eval("BOOL_AND(a > 0)"), "TRUE");
  EXPECT_EQ(Eval("BOOL_OR(a > 2)"), "TRUE");
  EXPECT_EQ(Eval("JSON_ARRAYAGG(a)"), "[1,2,3,null]");
}

TEST_F(AggregateTest, EmptySetSemantics) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE e (a INT)").ok());
  auto eval = [&](const std::string& expr) {
    const StatementResult r = db.Execute("SELECT " + expr + " FROM e");
    EXPECT_TRUE(r.ok()) << r.status.ToString();
    return r.rows.empty() ? "<no row>" : r.rows[0][0].ToDisplayString();
  };
  EXPECT_EQ(eval("COUNT(*)"), "0");
  EXPECT_EQ(eval("SUM(a)"), "NULL");
  EXPECT_EQ(eval("AVG(a)"), "NULL");
  EXPECT_EQ(eval("MIN(a)"), "NULL");
  EXPECT_EQ(eval("GROUP_CONCAT(a)"), "NULL");
  EXPECT_EQ(eval("BIT_AND(a)"), "-1");  // identity of AND
}

TEST_F(AggregateTest, JsonbObjectAgg) {
  EXPECT_EQ(Eval("JSONB_OBJECT_AGG(b, a)"),
            "{\"x\":1,\"y\":2,\"x\":3,\"z\":null}");
  const StatementResult r = db_.Execute("SELECT JSONB_OBJECT_AGG(NULL, 1) FROM t");
  EXPECT_FALSE(r.ok());  // NULL keys rejected
}

TEST_F(AggregateTest, SumKeepsDecimalDigits) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE d (v DECIMAL(40,2))").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO d VALUES (99999999999999999999999999999999999.50),"
                         "(0.50)")
                  .ok());
  const StatementResult r = db.Execute("SELECT SUM(v) FROM d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.rows[0][0].ToDisplayString(), "100000000000000000000000000000000000.00");
}

}  // namespace
}  // namespace soft
