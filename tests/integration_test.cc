// Cross-module integration tests: table-backed crash paths (Finding 4
// shapes), PoC builder properties, report rendering, dialect isolation, and
// end-to-end script behaviour after a crash.
#include <gtest/gtest.h>

#include "src/dialects/dialects.h"
#include "src/soft/report.h"
#include "src/soft/soft_fuzzer.h"

namespace soft {
namespace {

TEST(Integration, TableBackedCrashPath) {
  // Finding 4: 47.5% of the studied PoCs route crafted values through
  // CREATE TABLE + INSERT and a FROM clause. The fault layer must fire on
  // values arriving from table rows exactly as on literals.
  auto db = MakeMariadbDialect();
  ASSERT_TRUE(db->Execute("CREATE TABLE nums (v DECIMAL(65,0))").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO nums VALUES (" + std::string(60, '9') + ")").ok());
  // MariaDB bug 13 (COLUMN_CREATE, decimal digits >= 41) via a column ref.
  const StatementResult r =
      db->Execute("SELECT COLUMN_CREATE('x', v) FROM nums");
  ASSERT_TRUE(r.crashed()) << r.status.ToString();
  EXPECT_EQ(r.crash->function, "COLUMN_CREATE");
}

TEST(Integration, InsertItselfCanCrash) {
  // Crafted values can crash during INSERT's implicit column conversion.
  auto db = MakeMariadbDialect();
  BugSpec spec;
  spec.id = 901;
  spec.dbms = "mariadb";
  spec.function = "CAST";
  spec.function_type = "casting";
  spec.crash = CrashType::kHeapBufferOverflow;
  spec.pattern = "P2.1";
  spec.trigger = TriggerKind::kCastTargetIs;
  spec.param_type = TypeKind::kDate;
  db->faults().AddBug(spec);
  ASSERT_TRUE(db->Execute("CREATE TABLE d (x DATE)").ok());
  const StatementResult r = db->Execute("INSERT INTO d VALUES ('2024-01-01')");
  ASSERT_TRUE(r.crashed());
  EXPECT_EQ(r.crash->bug_id, 901);
}

TEST(Integration, ScriptStopsAfterCrash) {
  // A crashed server processes nothing further in the script.
  auto db = MakeVirtuosoDialect();
  const auto results = db->ExecuteScript(
      "SELECT 1; SELECT CONTAINS('x', 'x', *); SELECT 2");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].crashed());
}

TEST(Integration, DialectBugsAreIsolated) {
  // The Virtuoso CONTAINS star bug must not exist in dialects that either
  // lack CONTAINS or implement it correctly.
  auto virtuoso = MakeVirtuosoDialect();
  const StatementResult v = virtuoso->Execute("SELECT CONTAINS('x', 'x', *)");
  EXPECT_TRUE(v.crashed());

  Database vanilla;  // no injected bugs at all
  const StatementResult clean = vanilla.Execute("SELECT CONTAINS('x', 'x', *)");
  EXPECT_FALSE(clean.crashed());
  EXPECT_EQ(clean.status.code(), StatusCode::kInvalidArgument);
}

TEST(Integration, VanillaEngineHasNoBugs) {
  // A plain Database never crashes on the entire PoC corpus of all dialects
  // (its reference implementations carry the fixes).
  Database vanilla;
  int checked = 0;
  for (const std::string& name : AllDialectNames()) {
    auto dialect = MakeDialect(name);
    for (const BugSpec& spec : dialect->faults().AllBugs()) {
      const Result<std::string> poc = BuildPocSql(*dialect, spec);
      if (!poc.ok()) {
        continue;
      }
      const StatementResult r = vanilla.Execute(*poc);
      EXPECT_FALSE(r.crashed()) << name << " PoC crashed the vanilla engine: " << *poc;
      ++checked;
    }
  }
  EXPECT_GT(checked, 120);
}

TEST(Integration, Table4CorpusIsExecuteStage) {
  // All of SOFT's Table 4 bugs fire at the execution stage (the paper's
  // campaign bugs are argument-triggered); stage attribution must agree.
  for (const std::string& name : AllDialectNames()) {
    auto db = MakeDialect(name);
    for (const BugSpec& spec : db->faults().AllBugs()) {
      const Result<std::string> poc = BuildPocSql(*db, spec);
      ASSERT_TRUE(poc.ok());
      const StatementResult r = db->Execute(*poc);
      ASSERT_TRUE(r.crashed());
      EXPECT_EQ(r.crash->stage, Stage::kExecute) << name << " bug " << spec.id;
    }
  }
}

TEST(Integration, ReportRendering) {
  auto db = MakeMonetdbDialect();
  SoftFuzzer fuzzer;
  CampaignOptions options;
  options.max_statements = 30000;
  options.stop_when_all_bugs_found = true;
  const CampaignResult result = fuzzer.Run(*db, options);
  ASSERT_FALSE(result.unique_bugs.empty());

  const std::string report = RenderCampaignReport(*db, result);
  EXPECT_NE(report.find("# SOFT campaign report — monetdb"), std::string::npos);
  EXPECT_NE(report.find("| unique bugs | " +
                        std::to_string(result.unique_bugs.size())),
            std::string::npos);
  EXPECT_NE(report.find("```sql"), std::string::npos);
  // Every finding's summary appears.
  for (const FoundBug& bug : result.unique_bugs) {
    EXPECT_NE(report.find("BUG-monetdb-" + std::to_string(bug.crash.bug_id)),
              std::string::npos);
  }
#ifdef SOFT_TELEMETRY_ENABLED
  // The recorded snapshot renders as the report's Telemetry section.
  ASSERT_FALSE(result.telemetry.empty());
  EXPECT_NE(report.find("## Telemetry"), std::string::npos);
  EXPECT_NE(report.find("| parse |"), std::string::npos);
  EXPECT_NE(report.find("| execute |"), std::string::npos);
#else
  EXPECT_EQ(report.find("## Telemetry"), std::string::npos);
#endif
}

TEST(Integration, CoverageAccumulatesAcrossCampaigns) {
  auto db = MakeMonetdbDialect();
  SoftFuzzer fuzzer;
  CampaignOptions options;
  options.max_statements = 500;
  fuzzer.Run(*db, options);
  const size_t first = db->coverage().CoveredBranchCount();
  options.seed = 2;
  fuzzer.Run(*db, options);
  EXPECT_GE(db->coverage().CoveredBranchCount(), first);
}

TEST(Integration, SessionStatePersistsAcrossStatements) {
  auto db = MakeMariadbDialect();
  EXPECT_EQ(db->Execute("SELECT NEXTVAL('seq')").rows[0][0].int_value(), 1);
  EXPECT_EQ(db->Execute("SELECT NEXTVAL('seq')").rows[0][0].int_value(), 2);
  EXPECT_EQ(db->Execute("SELECT LAST_INSERT_ID()").rows[0][0].int_value(), 2);
}

}  // namespace
}  // namespace soft
