// Fleet campaign service (src/fleet/, docs/ROBUSTNESS.md): lease-table
// state machine under a fake clock, wire result-block round-trips, and real
// forked-worker socket campaigns — digest parity with the sharded/serial
// reference at any worker count, across chaos-killed and hung workers,
// through the degrade-to-local ladder, and across a coordinator kill -9
// followed by --resume.
//
// These tests fork and bind Unix sockets — keep the suite names out of the
// TSan lane regex ('Parallel|GoldenPoc|Telemetry|LogicOracle|GoldenLogic');
// the asan-fleet CI lane runs `ctest -R 'Fleet'`.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/failpoint/failpoint.h"
#include "src/fleet/coordinator.h"
#include "src/fleet/lease.h"
#include "src/soft/chaos.h"
#include "src/soft/soft_fuzzer.h"
#include "src/soft/wire.h"
#include "src/telemetry/journal.h"

namespace soft {
namespace fleet {
namespace {

constexpr char kDialect[] = "virtuoso";
constexpr int kBudget = 2000;
constexpr int kUnits = 4;

// Unique short socket path per test (sun_path caps at ~107 bytes, so
// testing::TempDir() paths are risky — /tmp is not).
std::string SocketPath(const char* tag) {
  return "/tmp/soft_fleet_" + std::to_string(static_cast<long>(::getpid())) +
         "_" + tag + ".sock";
}

CampaignOptions SmallCampaign() {
  CampaignOptions options;
  options.seed = 20260809;
  options.max_statements = kBudget;
  return options;
}

CampaignResult ShardedReference() {
  return RunShardedSoftCampaign(kDialect, SmallCampaign(), kUnits);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int CountSubstring(const std::string& haystack, const std::string& needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// Lease table (fake clock — no time reads inside the table)
// ---------------------------------------------------------------------------

TEST(FleetLease, GrantsLowestPendingUnitAndTracksCounters) {
  LeaseTable table(3);
  EXPECT_EQ(table.units(), 3);
  EXPECT_EQ(table.Grant(/*worker=*/7, /*now_ns=*/100, /*lease_ns=*/50), 0);
  EXPECT_EQ(table.Grant(8, 100, 50), 1);
  EXPECT_EQ(table.Grant(9, 100, 50), 2);
  EXPECT_EQ(table.Grant(9, 100, 50), -1) << "no pending units left";
  EXPECT_EQ(table.counters().granted, 3);
  EXPECT_EQ(table.pending(), 0);
  EXPECT_EQ(table.leased(), 3);
  EXPECT_FALSE(table.AllDone());
}

TEST(FleetLease, HeartbeatExtendsTheDeadlineStaleHeartbeatDoesNot) {
  LeaseTable table(1);
  ASSERT_EQ(table.Grant(1, 100, 50), 0);
  EXPECT_EQ(table.NextDeadlineNs(), 150u);
  EXPECT_TRUE(table.Heartbeat(0, 1, /*cases=*/10, /*now_ns=*/140, 50));
  EXPECT_EQ(table.NextDeadlineNs(), 190u);
  EXPECT_FALSE(table.Heartbeat(0, 2, 10, 160, 50)) << "wrong worker";
  EXPECT_FALSE(table.Heartbeat(1, 1, 10, 160, 50)) << "unit out of range";
  EXPECT_EQ(table.counters().heartbeats, 1);
}

TEST(FleetLease, ExpiredLeaseIsReclaimedAndItsRegrantCountsAsStolen) {
  LeaseTable table(2);
  ASSERT_EQ(table.Grant(1, 100, 50), 0);
  EXPECT_TRUE(table.ReclaimExpired(149).empty()) << "deadline not reached";
  const std::vector<int> reclaimed = table.ReclaimExpired(150);
  ASSERT_EQ(reclaimed.size(), 1u);
  EXPECT_EQ(reclaimed[0], 0);
  EXPECT_EQ(table.counters().reclaimed, 1);
  EXPECT_EQ(table.counters().stolen, 0);
  // The reclaimed unit is pending again and is the lowest — the next grant
  // steals it.
  EXPECT_EQ(table.Grant(2, 200, 50), 0);
  EXPECT_EQ(table.counters().stolen, 1);
  EXPECT_FALSE(table.Heartbeat(0, 1, 5, 210, 50))
      << "the evicted worker's heartbeat must not refresh the thief's lease";
  EXPECT_TRUE(table.Heartbeat(0, 2, 5, 210, 50));
}

TEST(FleetLease, ReclaimWorkerReturnsEveryUnitItHeld) {
  LeaseTable table(3);
  ASSERT_EQ(table.Grant(1, 100, 50), 0);
  ASSERT_EQ(table.Grant(2, 100, 50), 1);
  ASSERT_EQ(table.Grant(1, 100, 50), 2);
  const std::vector<int> reclaimed = table.ReclaimWorker(1);
  EXPECT_EQ(reclaimed, (std::vector<int>{0, 2}));
  EXPECT_EQ(table.pending(), 2);
  EXPECT_EQ(table.leased(), 1);
}

TEST(FleetLease, CompleteRequiresTheLeaseHolderAndDrivesAllDone) {
  LeaseTable table(2);
  ASSERT_EQ(table.Grant(1, 100, 50), 0);
  ASSERT_EQ(table.Grant(2, 100, 50), 1);
  EXPECT_FALSE(table.Complete(0, 2)) << "not the holder";
  EXPECT_TRUE(table.Complete(0, 1));
  EXPECT_FALSE(table.Complete(0, 1)) << "already done";
  EXPECT_FALSE(table.AllDone());
  EXPECT_TRUE(table.Complete(1, 2));
  EXPECT_TRUE(table.AllDone());
  EXPECT_EQ(table.done(), 2);
  // Done units never expire or reclaim.
  EXPECT_TRUE(table.ReclaimExpired(10000).empty());
  EXPECT_TRUE(table.ReclaimWorker(1).empty());
}

TEST(FleetLease, ForceCompleteAdmitsResumedUnitsIdempotently) {
  LeaseTable table(2);
  table.ForceComplete(0, -1);
  table.ForceComplete(0, -1);
  EXPECT_EQ(table.done(), 1);
  EXPECT_EQ(table.counters().completed, 1);
  EXPECT_EQ(table.Grant(1, 100, 50), 1) << "unit 0 is done, grant skips it";
}

// ---------------------------------------------------------------------------
// Wire result blocks (the spool format and the socket payload)
// ---------------------------------------------------------------------------

TEST(FleetWire, ResultBlockRoundTripsACampaignBitIdentically) {
  CampaignOptions options = SmallCampaign();
  options.logic_oracles = {"eet"};
  options.stop_when_all_bugs_found = false;
  const CampaignResult original = RunShardedSoftCampaign(kDialect, options, 1);
  ASSERT_FALSE(original.unique_bugs.empty());

  std::vector<std::string> records;
  ASSERT_TRUE(wire::WriteResultBlock(
      [&records](const std::string& record) {
        records.push_back(record);
        return true;
      },
      original, CoverageTracker()));

  wire::ResultBlock block;
  for (const std::string& record : records) {
    ASSERT_TRUE(wire::ConsumeResultLine(record, block)) << record;
  }
  ASSERT_TRUE(block.complete);
  EXPECT_EQ(DigestCampaignResult(block.result), DigestCampaignResult(original));
  EXPECT_EQ(DigestBugInventory(block.result), DigestBugInventory(original));
  EXPECT_EQ(DigestLogicOutcome(block.result), DigestLogicOutcome(original));
}

TEST(FleetWire, TornBlockNeverParsesAsComplete) {
  const CampaignResult original =
      RunShardedSoftCampaign(kDialect, SmallCampaign(), 1);
  std::vector<std::string> records;
  wire::WriteResultBlock(
      [&records](const std::string& record) {
        records.push_back(record);
        return true;
      },
      original, CoverageTracker());
  ASSERT_GT(records.size(), 2u);
  wire::ResultBlock block;
  for (size_t i = 0; i + 1 < records.size(); ++i) {  // drop END
    ASSERT_TRUE(wire::ConsumeResultLine(records[i], block));
  }
  EXPECT_FALSE(block.complete);
}

// ---------------------------------------------------------------------------
// Socket campaigns: digest parity, chaos, degrade, resume
// ---------------------------------------------------------------------------

TEST(FleetCampaign, DigestMatchesShardedReferenceAtAnyWorkerCount) {
  const CampaignResult reference = ShardedReference();
  const CampaignResult serial =
      RunShardedSoftCampaign(kDialect, SmallCampaign(), 1);
  for (const int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    FleetOptions fleet;
    fleet.socket_path = SocketPath(("par" + std::to_string(workers)).c_str());
    fleet.workers = workers;
    fleet.units = kUnits;
    const Result<FleetOutcome> outcome =
        RunFleetCampaign(kDialect, SmallCampaign(), fleet);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(DigestCampaignResult(outcome->result),
              DigestCampaignResult(reference));
    // The bug inventory is additionally invariant against the *serial* run —
    // the partition changes witnesses, never which bugs exist.
    EXPECT_EQ(DigestBugInventory(outcome->result), DigestBugInventory(serial));
    EXPECT_EQ(outcome->stats.units_completed, kUnits);
    EXPECT_GE(outcome->stats.heartbeats, kUnits)
        << "every unit must at least acknowledge its grant";
  }
}

TEST(FleetCampaign, ChaosKilledWorkerLosesItsLeaseToAThief) {
  const CampaignResult reference = ShardedReference();
  FleetOptions fleet;
  fleet.socket_path = SocketPath("kill");
  fleet.workers = 2;
  fleet.units = kUnits;
  fleet.lease_deadline_ms = 3000;
  fleet.test_kill_worker_at_unit = 0;  // first worker SIGKILLs at its first unit
  const Result<FleetOutcome> outcome =
      RunFleetCampaign(kDialect, SmallCampaign(), fleet);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->stats.worker_deaths, 1);
  EXPECT_GE(outcome->stats.leases_reclaimed, 1);
  EXPECT_GE(outcome->stats.leases_stolen, 1);
  EXPECT_EQ(DigestCampaignResult(outcome->result),
            DigestCampaignResult(reference))
      << "a murdered worker must not change the campaign outcome";
}

TEST(FleetCampaign, HungWorkerLeaseExpiresAndTheUnitIsRerun) {
  const CampaignResult reference = ShardedReference();
  FleetOptions fleet;
  fleet.socket_path = SocketPath("hang");
  fleet.workers = 2;
  fleet.units = kUnits;
  fleet.heartbeat_every = 50;
  fleet.lease_deadline_ms = 1000;  // short: the hung lease must expire fast
  fleet.test_hang_worker_at_unit = 0;  // first worker stops heartbeating
  const Result<FleetOutcome> outcome =
      RunFleetCampaign(kDialect, SmallCampaign(), fleet);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->stats.leases_reclaimed, 1)
      << "the hung worker's lease must expire via missed heartbeats";
  EXPECT_EQ(DigestCampaignResult(outcome->result),
            DigestCampaignResult(reference));
}

TEST(FleetCampaign, DegradesToLocalExecutionWhenThePoolNeverForms) {
  const CampaignResult reference = ShardedReference();
  FleetOptions fleet;
  fleet.socket_path = SocketPath("local");
  fleet.workers = 0;              // external attachers only — and none come
  fleet.units = kUnits;
  fleet.lease_deadline_ms = 300;  // the attach grace period
  const Result<FleetOutcome> outcome =
      RunFleetCampaign(kDialect, SmallCampaign(), fleet);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->stats.degraded_to_local);
  EXPECT_EQ(outcome->stats.units_run_locally, kUnits);
  EXPECT_EQ(outcome->stats.workers_spawned, 0);
  EXPECT_EQ(DigestCampaignResult(outcome->result),
            DigestCampaignResult(reference))
      << "the degrade ladder runs the identical unit plans in-process";
}

TEST(FleetCampaign, RejectsRealCrashModeAndUnknownDialects) {
  FleetOptions fleet;
  fleet.socket_path = SocketPath("bad");
  CampaignOptions options = SmallCampaign();
  options.crash_realism = CrashRealism::kReal;
  EXPECT_FALSE(RunFleetCampaign(kDialect, options, fleet).ok());
  EXPECT_FALSE(RunFleetCampaign("no-such-dbms", SmallCampaign(), fleet).ok());
  FleetOptions no_socket;
  EXPECT_FALSE(RunFleetCampaign(kDialect, SmallCampaign(), no_socket).ok());
}

TEST(FleetStatus, QueryFailsCleanlyWithNoCoordinatorListening) {
  const Result<std::string> payload = QueryFleetStatus(SocketPath("nobody"));
  ASSERT_FALSE(payload.ok());
  EXPECT_NE(payload.status().message().find("no fleet coordinator"),
            std::string::npos)
      << payload.status().ToString();
}

// ---------------------------------------------------------------------------
// Coordinator crash + resume (the tentpole's crash-survivability oracle)
// ---------------------------------------------------------------------------

TEST(FleetResume, CoordinatorKill9MidCampaignResumesBitIdentical) {
  const std::string journal_path =
      testing::TempDir() + "/soft_fleet_kill9.ndjson";
  std::remove(journal_path.c_str());

  const CampaignResult reference = ShardedReference();

  // A real coordinator process, killed once at least one unit result is
  // journaled complete (its spool write is already durable by then).
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    FleetOptions fleet;
    fleet.socket_path = SocketPath("k9serve");
    fleet.workers = 2;
    fleet.units = kUnits;
    fleet.journal_path = journal_path;
    RunFleetCampaign(kDialect, SmallCampaign(), fleet);
    ::_exit(0);
  }
  bool killed = false;
  for (int i = 0; i < 4000; ++i) {
    const std::string journal = ReadFileOrEmpty(journal_path);
    if (CountSubstring(journal, "\"action\":\"complete\"") >= 1) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!killed) {
    // The campaign finished before the kill landed — the journal then holds
    // every unit and resume degenerates to the pure re-admission path, which
    // is still worth asserting below.
    ASSERT_TRUE(WIFEXITED(status));
  } else {
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  }

  // Resume on a fresh socket (orphaned workers of the killed coordinator may
  // still be retrying the old path; they drain and exit on their own).
  FleetOptions fleet;
  fleet.socket_path = SocketPath("k9resume");
  fleet.workers = 2;
  fleet.units = kUnits;
  fleet.journal_path = journal_path;
  fleet.resume = true;
  const Result<FleetOutcome> resumed =
      RunFleetCampaign(kDialect, SmallCampaign(), fleet);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_GE(resumed->stats.units_resumed, 1)
      << "at least the journaled-complete unit must be re-admitted";
  EXPECT_EQ(resumed->stats.units_completed, kUnits);
  EXPECT_EQ(DigestCampaignResult(resumed->result),
            DigestCampaignResult(reference))
      << "kill -9 + resume must be invisible in the merged outcome";

  // The resumed journal replays: resume marker, lease stream, fleet tail.
  const Result<telemetry::JournalReplay> replay =
      telemetry::ReplayJournalFile(journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->fleet_finished);
  EXPECT_EQ(replay->fleet.units, kUnits);
  EXPECT_TRUE(replay->finished);
  std::remove(journal_path.c_str());
}

TEST(FleetResume, DivergedSpoolUnitIsDistrustedAndRerun) {
  const std::string journal_path =
      testing::TempDir() + "/soft_fleet_spool.ndjson";
  std::remove(journal_path.c_str());
  const CampaignResult reference = ShardedReference();

  FleetOptions fleet;
  fleet.socket_path = SocketPath("spool1");
  fleet.workers = 1;
  fleet.units = kUnits;
  fleet.journal_path = journal_path;
  ASSERT_TRUE(RunFleetCampaign(kDialect, SmallCampaign(), fleet).ok());

  // Corrupt one spooled unit behind the journal's back.
  {
    std::ofstream out(journal_path + ".units/unit_1.wire", std::ios::trunc);
    out << "RES not what the digest promised\n";
  }
  fleet.socket_path = SocketPath("spool2");
  fleet.resume = true;
  const Result<FleetOutcome> resumed =
      RunFleetCampaign(kDialect, SmallCampaign(), fleet);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->stats.units_spool_diverged, 1);
  EXPECT_EQ(resumed->stats.units_resumed, kUnits - 1);
  EXPECT_EQ(DigestCampaignResult(resumed->result),
            DigestCampaignResult(reference))
      << "a corrupt spool entry re-runs; it must never merge";
  std::remove(journal_path.c_str());
}

TEST(FleetResume, RejectsAJournalFromADifferentCampaign) {
  const std::string journal_path =
      testing::TempDir() + "/soft_fleet_foreign.ndjson";
  std::remove(journal_path.c_str());
  FleetOptions fleet;
  fleet.socket_path = SocketPath("foreign1");
  fleet.workers = 1;
  fleet.units = kUnits;
  fleet.journal_path = journal_path;
  ASSERT_TRUE(RunFleetCampaign(kDialect, SmallCampaign(), fleet).ok());

  CampaignOptions different = SmallCampaign();
  different.seed += 1;
  fleet.socket_path = SocketPath("foreign2");
  fleet.resume = true;
  const Result<FleetOutcome> resumed =
      RunFleetCampaign(kDialect, different, fleet);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("does not match"), std::string::npos)
      << resumed.status().ToString();
  std::remove(journal_path.c_str());
}

// ---------------------------------------------------------------------------
// Fleet chaos oracle (the five fleet.* failpoint sites)
// ---------------------------------------------------------------------------

TEST(FleetChaos, EverySiteOracleHoldsUnderInjection) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const ChaosReport report = RunFleetChaosEnumeration(kDialect, /*budget=*/800);
  EXPECT_EQ(report.outcomes.size(), 5u)
      << "one outcome per fleet.* site in failpoint::kInventory";
  for (const ChaosSiteOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.failpoint << ": " << outcome.detail;
    EXPECT_TRUE(outcome.ran) << outcome.failpoint;
  }
}

}  // namespace
}  // namespace fleet
}  // namespace soft
